# KNNPC_SANITIZE=ON builds the whole tree with AddressSanitizer and
# UndefinedBehaviorSanitizer. This is the correctness harness for perf and
# scaling work: run the tier-1 suite under it before trusting a hot-path
# change.
if(KNNPC_SANITIZE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
    add_link_options(-fsanitize=address,undefined)
  else()
    message(WARNING "KNNPC_SANITIZE is only supported with GCC/Clang; ignoring")
  endif()
endif()
