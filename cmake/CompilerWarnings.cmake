# knnpc_set_warnings(<target>)
#
# Applies the project warning set to a target. The library must stay
# warning-clean under -Wall -Wextra; KNNPC_WERROR=ON (used by CI) promotes
# any regression to a build failure.
function(knnpc_set_warnings target)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(${target} PRIVATE -Wall -Wextra)
    if(KNNPC_WERROR)
      target_compile_options(${target} PRIVATE -Werror)
    endif()
  elseif(MSVC)
    target_compile_options(${target} PRIVATE /W4)
    if(KNNPC_WERROR)
      target_compile_options(${target} PRIVATE /WX)
    endif()
  endif()
endfunction()
