// Abl-2: full traversal-heuristic ablation — the paper's three heuristics
// plus our extensions (random, greedy-resident, dynamic-degree) across all
// Table-1 PI graphs.
//
// Usage: bench_heuristics [--datasets=wiki-vote,gen-rel,...]
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/datasets.h"
#include "graph/digraph.h"
#include "pigraph/heuristics.h"
#include "pigraph/simulator.h"
#include "util/options.h"
#include "util/timer.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_string("datasets", "comma-separated Table-1 dataset names",
                  "wiki-vote,gen-rel,high-energy,astro-phys,email,gnutella");
  if (!opts.parse(argc, argv)) return 0;

  std::vector<std::string> names;
  {
    std::istringstream in(opts.get_string("datasets"));
    std::string token;
    while (std::getline(in, token, ',')) names.push_back(token);
  }

  std::printf("Abl-2: load/unload operations per traversal heuristic "
              "(2 slots)\n");
  std::printf("%-12s |", "dataset");
  for (const auto& h : all_heuristic_names()) {
    std::printf(" %15s", h.c_str());
  }
  std::printf("\n--------------------------------------------------------"
              "--------------------------------------------------\n");

  const LoadUnloadSimulator sim(2);
  for (const auto& name : names) {
    const Table1Dataset& row = table1_dataset(name);
    const PiGraph pi =
        PiGraph::from_digraph(Digraph(generate_table1_graph(row)));
    std::printf("%-12s |", row.name.c_str());
    for (const auto& h : all_heuristic_names()) {
      const auto result = sim.run(pi, *make_heuristic(h));
      std::printf(" %15llu",
                  static_cast<unsigned long long>(result.operations()));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: random is worst; sequential next; the "
              "degree heuristics\nsave ~5-15%%; our extensions "
              "(greedy-resident, dynamic-degree, cost-aware)\nsave the "
              "most, with cost-aware best.\n");
  return 0;
}
