// Abl-7: sustained profile churn (the paper's dynamic setting).
//
// A ChurnDriver feeds rating updates, cluster drift and cold-start resets
// into the lazy queue every iteration; we track KNN quality (cluster
// purity + sampled recall) and the restart knob's effect on recovery.
//
// Usage: bench_churn [--users=N] [--iters=N]
#include <cstdio>

#include "core/churn.h"
#include "core/convergence.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"
#include "workloads/workload.h"

using namespace knnpc;

namespace {

void run_scenario(const char* label, std::uint32_t random_candidates,
                  VertexId n, std::uint32_t iters) {
  Rng rng(2025);
  ClusteredGenConfig gen;
  gen.base.num_users = n;
  gen.base.num_items = 1000;
  gen.num_clusters = 20;
  auto profiles = clustered_profiles(gen, rng);
  // Ground-truth labels; kept in sync with the drift log below so purity
  // always measures against users' *current* communities.
  auto labels = planted_clusters(n, gen.num_clusters);

  EngineConfig config;
  config.k = 10;
  config.num_partitions = 8;
  config.random_candidates = random_candidates;
  KnnEngine engine(config, std::move(profiles));
  engine.run(8, 0.01);  // warm up to a converged graph

  // The shared n-proportional churn scenario (workloads/workload.h), over
  // this bench's own larger generator.
  ChurnDriver driver(scripted_churn(ChurnScenario::Proportional, gen, 1007));

  std::printf("\n%s (restarts=%u): purity under sustained churn\n", label,
              random_candidates);
  std::printf("%4s | %8s %9s %9s | %9s\n", "iter", "updates", "purity",
              "chg rate", "knn s");
  std::printf("------------------------------------------------\n");
  std::size_t drift_seen = 0;
  for (std::uint32_t i = 0; i < iters; ++i) {
    const std::size_t pushed = driver.tick(engine);
    // Sync ground truth with the drift that just entered the queue.
    for (; drift_seen < driver.drift_log().size(); ++drift_seen) {
      const auto& drift = driver.drift_log()[drift_seen];
      labels[drift.user] = drift.to_cluster;
    }
    const IterationStats s = engine.run_iteration();
    std::printf("%4u | %8zu %9.3f %9.4f | %9.3f\n", s.iteration, pushed,
                cluster_purity(engine.graph(), labels), s.change_rate,
                s.timings.knn_s);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 4000);
  opts.add_uint("iters", "churn iterations", 8);
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto iters = static_cast<std::uint32_t>(opts.get_uint("iters"));

  std::printf("Abl-7: KNN quality under sustained profile churn "
              "(n=%u, %u iterations after warm-up)\n", n, iters);
  run_scenario("with restarts", 2, n, iters);
  run_scenario("without restarts", 0, n, iters);
  std::printf(
      "\nExpected shape: purity degrades gently as the drift backlog "
      "accumulates\n(each drifted user needs a few iterations to re-home); "
      "restarts keep the\ntail of stranded users bounded, so the gap vs "
      "no-restarts widens with time\n(run more --iters to see it open "
      "up).\n");
  return 0;
}
