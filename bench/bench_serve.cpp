// Serving-layer bench: query latency/QPS and beam recall against a
// *churning* engine. One publisher thread runs engine iterations (each of
// which publishes a snapshot through the SnapshotSink hook) while
// `--query-threads` reader threads issue a fixed mix of indexed top_k
// reads and ad-hoc beam queries. Reports, per query path, p50/p99 latency
// and aggregate QPS, plus beam recall@k against brute force on the final
// snapshot and an exactness check of the indexed path.
//
// Usage: bench_serve [--users=N] [--items=N] [--k=N] [--partitions=M]
//                    [--iters=N] [--query-threads=N] [--search-l=N]
//                    [--recall-queries=N] [--json]
// With --json the table is replaced by one JSON object on stdout (the CI
// serve-smoke job parses it; see tools/bench_to_json.py).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/brute_force.h"
#include "core/engine.h"
#include "profiles/generators.h"
#include "serve/knn_server.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace knnpc;

namespace {

struct PathStats {
  std::vector<double> latencies_ms;  // merged after the threads join
  double seconds = 0.0;

  [[nodiscard]] double qps() const {
    return seconds > 0 ? static_cast<double>(latencies_ms.size()) / seconds
                       : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 5000);
  opts.add_uint("items", "number of items", 1000);
  opts.add_uint("k", "neighbours per user / per query", 10);
  opts.add_uint("partitions", "partition count m", 8);
  opts.add_uint("iters", "engine iterations (snapshots published)", 6);
  opts.add_uint("query-threads", "concurrent reader threads", 2);
  opts.add_uint("search-l", "beam width for ad-hoc queries", 64);
  opts.add_uint("seeds", "beam seeds kept per partition", 16);
  opts.add_uint("recall-queries",
                "ad-hoc queries for the final recall estimate", 200);
  opts.add_uint("seed", "master seed", 42);
  opts.add_flag("json", "emit results as JSON instead of a table");
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto k = static_cast<std::uint32_t>(opts.get_uint("k"));
  const auto iters = static_cast<std::uint32_t>(opts.get_uint("iters"));
  const auto num_threads = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(opts.get_uint("query-threads"), 1));
  const auto search_l =
      static_cast<std::uint32_t>(opts.get_uint("search-l"));
  const bool json = opts.get_flag("json");

  Rng rng(opts.get_uint("seed") + 1);
  ClusteredGenConfig gen;
  gen.base.num_users = n;
  gen.base.num_items = static_cast<ItemId>(opts.get_uint("items"));
  gen.num_clusters = 40;
  std::vector<SparseProfile> profiles = clustered_profiles(gen, rng);
  const InMemoryProfileStore query_source{profiles};

  EngineConfig config;
  config.k = k;
  config.num_partitions =
      static_cast<PartitionId>(opts.get_uint("partitions"));
  config.seed = opts.get_uint("seed");
  KnnEngine engine(config, std::move(profiles));

  ServeConfig serve_config;
  serve_config.measure = config.measure;
  serve_config.search_l = search_l;
  serve_config.seeds_per_partition =
      static_cast<std::uint32_t>(opts.get_uint("seeds"));
  serve_config.max_readers = num_threads + 1;
  KnnServer server(serve_config);
  engine.set_snapshot_sink(&server);

  // Reader threads: wait for the first publish, then alternate indexed
  // top_k reads with ad-hoc beam queries until the publisher stops them.
  std::atomic<bool> stop{false};
  std::vector<PathStats> topk_stats(num_threads);
  std::vector<PathStats> adhoc_stats(num_threads);
  std::vector<std::thread> readers;
  readers.reserve(num_threads);
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng thread_rng(config.seed + 31 * (t + 1));
      KnnServer::Reader reader = server.reader();
      PathStats& topk = topk_stats[t];
      PathStats& adhoc = adhoc_stats[t];
      Timer active;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!server.has_snapshot()) {
          std::this_thread::yield();
          active = Timer();
          continue;
        }
        const auto u = static_cast<VertexId>(thread_rng.next_below(n));
        Timer latency;
        (void)reader.top_k(u);
        topk.latencies_ms.push_back(latency.elapsed_seconds() * 1e3);
        latency = Timer();
        (void)reader.query(query_source.get(u), k);
        adhoc.latencies_ms.push_back(latency.elapsed_seconds() * 1e3);
      }
      topk.seconds = adhoc.seconds = active.elapsed_seconds();
    });
  }

  // Publisher: the engine loop. Every run_iteration() ends in a publish.
  for (std::uint32_t i = 0; i < iters; ++i) (void)engine.run_iteration();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  PathStats topk, adhoc;
  for (std::uint32_t t = 0; t < num_threads; ++t) {
    topk.latencies_ms.insert(topk.latencies_ms.end(),
                             topk_stats[t].latencies_ms.begin(),
                             topk_stats[t].latencies_ms.end());
    adhoc.latencies_ms.insert(adhoc.latencies_ms.end(),
                              adhoc_stats[t].latencies_ms.begin(),
                              adhoc_stats[t].latencies_ms.end());
    topk.seconds = std::max(topk.seconds, topk_stats[t].seconds);
    adhoc.seconds = std::max(adhoc.seconds, adhoc_stats[t].seconds);
  }

  // Final-snapshot quality: indexed rows must equal G(t) exactly; beam
  // recall@k is measured against brute force over the same profiles.
  KnnServer::Reader reader = server.reader();
  bool topk_exact = true;
  for (VertexId u = 0; u < n && topk_exact; ++u) {
    const std::vector<Neighbor> row = reader.top_k(u);
    const std::span<const Neighbor> expect = engine.graph().neighbors(u);
    topk_exact =
        std::equal(row.begin(), row.end(), expect.begin(), expect.end());
  }
  const auto recall_queries = static_cast<VertexId>(
      std::min<std::uint64_t>(opts.get_uint("recall-queries"), n));
  std::size_t hits = 0, wanted = 0;
  {
    const KnnServer::Reader::Pin pin = reader.pin();
    const KnnGraph truth =
        brute_force_knn(pin->profiles, k, config.measure, 0);
    for (VertexId i = 0; i < recall_queries; ++i) {
      const auto u = static_cast<VertexId>(
          (static_cast<std::uint64_t>(i) * n) / recall_queries);
      const QueryResult got =
          beam_search(*pin.get(), query_source.get(u), k, search_l);
      // brute_force_knn excludes self-edges; the beam rightfully finds u
      // itself for an in-index query profile, so score against truth + u.
      for (const Neighbor& want : truth.neighbors(u)) {
        ++wanted;
        for (const Neighbor& have : got.neighbors) {
          if (have.id == want.id) {
            ++hits;
            break;
          }
        }
      }
      for (const Neighbor& have : got.neighbors) {
        if (have.id == u) {
          --wanted;  // u replaces the truth row's weakest entry
          break;
        }
      }
    }
  }
  const double recall =
      wanted ? static_cast<double>(hits) / static_cast<double>(wanted) : 0.0;

  const double topk_p50 = percentile(topk.latencies_ms, 50);
  const double topk_p99 = percentile(topk.latencies_ms, 99);
  const double adhoc_p50 = percentile(adhoc.latencies_ms, 50);
  const double adhoc_p99 = percentile(adhoc.latencies_ms, 99);
  if (json) {
    std::printf(
        "{\"bench\":\"serve\",\"users\":%u,\"items\":%llu,\"k\":%u,"
        "\"partitions\":%u,\"iters\":%u,\"query_threads\":%u,"
        "\"search_l\":%u,\"results\":{"
        "\"topk\":{\"queries\":%zu,\"p50_ms\":%.6f,\"p99_ms\":%.6f,"
        "\"qps\":%.1f},"
        "\"adhoc\":{\"queries\":%zu,\"p50_ms\":%.6f,\"p99_ms\":%.6f,"
        "\"qps\":%.1f},"
        "\"recall\":%.6f,\"recall_queries\":%u,\"topk_exact\":%s,"
        "\"snapshots_published\":%llu}}\n",
        n, static_cast<unsigned long long>(opts.get_uint("items")), k,
        config.num_partitions, iters, num_threads, search_l,
        topk.latencies_ms.size(), topk_p50, topk_p99, topk.qps(),
        adhoc.latencies_ms.size(), adhoc_p50, adhoc_p99, adhoc.qps(),
        recall, recall_queries, topk_exact ? "true" : "false",
        static_cast<unsigned long long>(server.version()));
  } else {
    std::printf("serve bench: n=%u, k=%u, %u iterations, %u query "
                "threads, search_l=%u\n",
                n, k, iters, num_threads, search_l);
    std::printf("%8s | %10s %10s %10s %10s\n", "path", "queries", "p50 ms",
                "p99 ms", "QPS");
    std::printf("---------------------------------------------------------\n");
    std::printf("%8s | %10zu %10.4f %10.4f %10.1f\n", "top_k",
                topk.latencies_ms.size(), topk_p50, topk_p99, topk.qps());
    std::printf("%8s | %10zu %10.4f %10.4f %10.1f\n", "ad-hoc",
                adhoc.latencies_ms.size(), adhoc_p50, adhoc_p99,
                adhoc.qps());
    std::printf("\nbeam recall@%u vs brute force: %.4f (%u queries)\n", k,
                recall, recall_queries);
    std::printf("indexed top_k exact vs published G(t): %s\n",
                topk_exact ? "yes" : "NO");
    std::printf("snapshots published: %llu\n",
                static_cast<unsigned long long>(server.version()));
  }
  return topk_exact ? 0 : 1;
}
