// Figure 1 — the five-phase pipeline. Reports the per-phase wall-time and
// I/O breakdown of every iteration of an out-of-core KNN run (the paper's
// Figure 1 is the pipeline diagram; this regenerates its quantitative
// content: what each phase costs as the graph converges).
//
// Usage: bench_phases [--users=N] [--k=N] [--partitions=N] [--iters=N]
//
// Besides the per-iteration phase breakdown, the bench re-runs the same
// workload once per phase-4 kernel backend (scalar, simd, and
// simd+quantized; --kernel-iters iterations each, 0 disables) and reports
// per-kernel knn/score seconds plus the speedup over scalar. The scalar
// and simd variants must land on the same graph checksum — the process
// exits non-zero otherwise, so the bench doubles as a determinism gate.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "graph/knn_graph_io.h"
#include "profiles/generators.h"
#include "profiles/similarity_kernels.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

namespace {

struct KernelRow {
  std::string name;
  std::string backend;  // resolved ISA
  double knn_s = 0.0;
  double knn_score_s = 0.0;
  std::uint64_t checksum = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 20000);
  opts.add_uint("k", "neighbours per user", 10);
  opts.add_uint("partitions", "partition count m", 32);
  opts.add_uint("iters", "max iterations", 10);
  opts.add_uint("threads", "phase-4 worker threads (0 = auto)", 1);
  opts.add_string("heuristic", "PI traversal heuristic", "low-high");
  opts.add_string("kernel",
                  "phase-4 kernel backend for the main run (auto | scalar "
                  "| simd)",
                  "auto");
  opts.add_uint("kernel-iters",
                "iterations per backend in the kernel comparison "
                "(0 = skip the comparison)",
                2);
  opts.add_flag("json", "emit results as JSON instead of a table");
  if (!opts.parse(argc, argv)) return 0;
  const bool json = opts.get_flag("json");

  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  Rng rng(1234);
  ClusteredGenConfig pconfig;
  pconfig.base.num_users = n;
  pconfig.base.num_items = 2000;
  pconfig.base.min_items = 15;
  pconfig.base.max_items = 30;
  pconfig.num_clusters = 50;
  pconfig.in_cluster_prob = 0.85;

  EngineConfig config;
  config.k = static_cast<std::uint32_t>(opts.get_uint("k"));
  config.num_partitions =
      static_cast<PartitionId>(opts.get_uint("partitions"));
  config.threads = static_cast<std::uint32_t>(opts.get_uint("threads"));
  config.heuristic = opts.get_string("heuristic");
  config.kernel = opts.get_string("kernel");
  const char* resolved_backend =
      kernel_backend_name(resolve_kernel_backend(config.kernel));

  if (json) {
    std::printf("{\"bench\":\"phases\",\"users\":%u,\"k\":%u,"
                "\"partitions\":%u,\"heuristic\":\"%s\",\"kernel\":\"%s\","
                "\"kernel_backend\":\"%s\",\"iterations\":[",
                n, config.k, config.num_partitions,
                config.heuristic.c_str(), config.kernel.c_str(),
                resolved_backend);
  } else {
    std::printf("Figure 1: per-phase breakdown (n=%u, k=%u, m=%u, "
                "heuristic=%s, kernel=%s/%s)\n",
                n, config.k, config.num_partitions,
                config.heuristic.c_str(), config.kernel.c_str(),
                resolved_backend);
    std::printf("%4s | %9s %9s %9s %9s %9s | %9s | %8s %8s %10s %9s | "
                "%9s\n",
                "iter", "P1 part", "P2 hash", "P3 PI", "P4 knn", "P5 upd",
                "total s", "tuples", "PIpairs", "loads+unl", "MB moved",
                "chg rate");
    std::printf("---------------------------------------------------------"
                "---------------------------------------------------------"
                "\n");
  }

  KnnEngine engine(config, clustered_profiles(pconfig, rng));
  PhaseTimings cumulative;
  const auto max_iters = static_cast<std::uint32_t>(opts.get_uint("iters"));
  for (std::uint32_t i = 0; i < max_iters; ++i) {
    const IterationStats s = engine.run_iteration();
    cumulative.partition_s += s.timings.partition_s;
    cumulative.hash_s += s.timings.hash_s;
    cumulative.pi_graph_s += s.timings.pi_graph_s;
    cumulative.knn_s += s.timings.knn_s;
    cumulative.update_s += s.timings.update_s;
    if (json) {
      std::printf(
          "%s{\"iter\":%u,\"partition_s\":%.6f,\"hash_s\":%.6f,"
          "\"pi_graph_s\":%.6f,\"knn_s\":%.6f,\"knn_score_s\":%.6f,"
          "\"knn_merge_s\":%.6f,\"update_s\":%.6f,\"total_s\":%.6f,"
          "\"tuples\":%llu,\"pi_pairs\":%llu,\"loads_unloads\":%llu,"
          "\"mb_moved\":%.3f,\"threads_used\":%u,\"change_rate\":%.6f}",
          i == 0 ? "" : ",", s.iteration, s.timings.partition_s,
          s.timings.hash_s, s.timings.pi_graph_s, s.timings.knn_s,
          s.knn_score_s, s.knn_merge_s, s.timings.update_s,
          s.timings.total(),
          static_cast<unsigned long long>(s.unique_tuples),
          static_cast<unsigned long long>(s.pi_pairs),
          static_cast<unsigned long long>(s.partition_loads +
                                          s.partition_unloads),
          static_cast<double>(s.io.bytes_read + s.io.bytes_written) / 1e6,
          s.threads_used, s.change_rate);
    } else {
      std::printf(
          "%4u | %9.3f %9.3f %9.3f %9.3f %9.3f | %9.3f | %8llu %8llu "
          "%10llu "
          "%9.1f | %9.4f\n",
          s.iteration, s.timings.partition_s, s.timings.hash_s,
          s.timings.pi_graph_s, s.timings.knn_s, s.timings.update_s,
          s.timings.total(),
          static_cast<unsigned long long>(s.unique_tuples),
          static_cast<unsigned long long>(s.pi_pairs),
          static_cast<unsigned long long>(s.partition_loads +
                                          s.partition_unloads),
          static_cast<double>(s.io.bytes_read + s.io.bytes_written) / 1e6,
          s.change_rate);
    }
    if (s.change_rate < 0.01) break;
  }
  // Per-kernel phase-4 comparison: a fresh engine per backend variant
  // over the same generated workload. scalar vs simd is also a
  // determinism gate (bit-identical contract -> equal checksums).
  std::vector<KernelRow> rows;
  const auto kernel_iters =
      static_cast<std::uint32_t>(opts.get_uint("kernel-iters"));
  if (kernel_iters > 0) {
    struct Variant {
      const char* name;
      const char* kernel;
      bool quantize;
    };
    const Variant variants[] = {{"scalar", "scalar", false},
                                {"simd", "simd", false},
                                {"simd+quantized", "simd", true}};
    for (const Variant& v : variants) {
      EngineConfig kconfig = config;
      kconfig.kernel = v.kernel;
      kconfig.quantize_profiles = v.quantize;
      Rng krng(1234);  // same workload every variant
      KnnEngine kengine(kconfig, clustered_profiles(pconfig, krng));
      KernelRow row;
      row.name = v.name;
      row.backend = kernel_backend_name(resolve_kernel_backend(v.kernel));
      for (std::uint32_t i = 0; i < kernel_iters; ++i) {
        const IterationStats s = kengine.run_iteration();
        row.knn_s += s.timings.knn_s;
        row.knn_score_s += s.knn_score_s;
      }
      row.checksum = knn_graph_checksum(kengine.graph());
      rows.push_back(std::move(row));
    }
  }

  const double total = cumulative.total();
  const double scalar_score_s = rows.empty() ? 0.0 : rows[0].knn_score_s;
  if (json) {
    std::printf("],\"cumulative\":{\"partition_s\":%.6f,\"hash_s\":%.6f,"
                "\"pi_graph_s\":%.6f,\"knn_s\":%.6f,\"update_s\":%.6f,"
                "\"total_s\":%.6f},\"kernels\":[",
                cumulative.partition_s, cumulative.hash_s,
                cumulative.pi_graph_s, cumulative.knn_s,
                cumulative.update_s, total);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::printf("%s{\"name\":\"%s\",\"backend\":\"%s\",\"iters\":%u,"
                  "\"knn_s\":%.6f,\"knn_score_s\":%.6f,\"speedup\":%.3f,"
                  "\"checksum\":\"%016llx\"}",
                  r == 0 ? "" : ",", rows[r].name.c_str(),
                  rows[r].backend.c_str(), kernel_iters, rows[r].knn_s,
                  rows[r].knn_score_s,
                  rows[r].knn_score_s > 0.0
                      ? scalar_score_s / rows[r].knn_score_s
                      : 0.0,
                  static_cast<unsigned long long>(rows[r].checksum));
    }
    std::printf("]}\n");
  } else {
    std::printf("---------------------------------------------------------"
                "---------------------------------------------------------"
                "\n");
    std::printf("cumulative: partition %.1f%%  hash %.1f%%  pi %.1f%%  "
                "knn %.1f%%  update %.1f%%  (total %.3f s)\n",
                100 * cumulative.partition_s / total,
                100 * cumulative.hash_s / total,
                100 * cumulative.pi_graph_s / total,
                100 * cumulative.knn_s / total,
                100 * cumulative.update_s / total, total);
    if (!rows.empty()) {
      std::printf("\nphase-4 kernels (%u iters each):\n", kernel_iters);
      std::printf("%16s | %8s | %9s %9s | %7s | %s\n", "kernel", "backend",
                  "knn s", "score s", "speedup", "checksum");
      for (const KernelRow& row : rows) {
        std::printf("%16s | %8s | %9.3f %9.3f | %6.2fx | %016llx\n",
                    row.name.c_str(), row.backend.c_str(), row.knn_s,
                    row.knn_score_s,
                    row.knn_score_s > 0.0
                        ? scalar_score_s / row.knn_score_s
                        : 0.0,
                    static_cast<unsigned long long>(row.checksum));
      }
    }
  }
  // Determinism gate: scalar and simd must produce the same graph
  // (quantized is exempt — it is documented as not bit-identical to f32).
  if (rows.size() >= 2 && rows[0].checksum != rows[1].checksum) {
    std::fprintf(stderr,
                 "FATAL: scalar/simd kernel checksums diverge "
                 "(%016llx vs %016llx)\n",
                 static_cast<unsigned long long>(rows[0].checksum),
                 static_cast<unsigned long long>(rows[1].checksum));
    return 1;
  }
  return 0;
}
