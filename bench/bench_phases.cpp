// Figure 1 — the five-phase pipeline. Reports the per-phase wall-time and
// I/O breakdown of every iteration of an out-of-core KNN run (the paper's
// Figure 1 is the pipeline diagram; this regenerates its quantitative
// content: what each phase costs as the graph converges).
//
// Usage: bench_phases [--users=N] [--k=N] [--partitions=N] [--iters=N]
#include <cstdio>

#include "core/engine.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 20000);
  opts.add_uint("k", "neighbours per user", 10);
  opts.add_uint("partitions", "partition count m", 32);
  opts.add_uint("iters", "max iterations", 10);
  opts.add_uint("threads", "phase-4 worker threads (0 = auto)", 1);
  opts.add_string("heuristic", "PI traversal heuristic", "low-high");
  opts.add_flag("json", "emit results as JSON instead of a table");
  if (!opts.parse(argc, argv)) return 0;
  const bool json = opts.get_flag("json");

  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  Rng rng(1234);
  ClusteredGenConfig pconfig;
  pconfig.base.num_users = n;
  pconfig.base.num_items = 2000;
  pconfig.base.min_items = 15;
  pconfig.base.max_items = 30;
  pconfig.num_clusters = 50;
  pconfig.in_cluster_prob = 0.85;

  EngineConfig config;
  config.k = static_cast<std::uint32_t>(opts.get_uint("k"));
  config.num_partitions =
      static_cast<PartitionId>(opts.get_uint("partitions"));
  config.threads = static_cast<std::uint32_t>(opts.get_uint("threads"));
  config.heuristic = opts.get_string("heuristic");

  if (json) {
    std::printf("{\"bench\":\"phases\",\"users\":%u,\"k\":%u,"
                "\"partitions\":%u,\"heuristic\":\"%s\",\"iterations\":[",
                n, config.k, config.num_partitions,
                config.heuristic.c_str());
  } else {
    std::printf("Figure 1: per-phase breakdown (n=%u, k=%u, m=%u, "
                "heuristic=%s)\n",
                n, config.k, config.num_partitions,
                config.heuristic.c_str());
    std::printf("%4s | %9s %9s %9s %9s %9s | %9s | %8s %8s %10s %9s | "
                "%9s\n",
                "iter", "P1 part", "P2 hash", "P3 PI", "P4 knn", "P5 upd",
                "total s", "tuples", "PIpairs", "loads+unl", "MB moved",
                "chg rate");
    std::printf("---------------------------------------------------------"
                "---------------------------------------------------------"
                "\n");
  }

  KnnEngine engine(config, clustered_profiles(pconfig, rng));
  PhaseTimings cumulative;
  const auto max_iters = static_cast<std::uint32_t>(opts.get_uint("iters"));
  for (std::uint32_t i = 0; i < max_iters; ++i) {
    const IterationStats s = engine.run_iteration();
    cumulative.partition_s += s.timings.partition_s;
    cumulative.hash_s += s.timings.hash_s;
    cumulative.pi_graph_s += s.timings.pi_graph_s;
    cumulative.knn_s += s.timings.knn_s;
    cumulative.update_s += s.timings.update_s;
    if (json) {
      std::printf(
          "%s{\"iter\":%u,\"partition_s\":%.6f,\"hash_s\":%.6f,"
          "\"pi_graph_s\":%.6f,\"knn_s\":%.6f,\"knn_score_s\":%.6f,"
          "\"knn_merge_s\":%.6f,\"update_s\":%.6f,\"total_s\":%.6f,"
          "\"tuples\":%llu,\"pi_pairs\":%llu,\"loads_unloads\":%llu,"
          "\"mb_moved\":%.3f,\"threads_used\":%u,\"change_rate\":%.6f}",
          i == 0 ? "" : ",", s.iteration, s.timings.partition_s,
          s.timings.hash_s, s.timings.pi_graph_s, s.timings.knn_s,
          s.knn_score_s, s.knn_merge_s, s.timings.update_s,
          s.timings.total(),
          static_cast<unsigned long long>(s.unique_tuples),
          static_cast<unsigned long long>(s.pi_pairs),
          static_cast<unsigned long long>(s.partition_loads +
                                          s.partition_unloads),
          static_cast<double>(s.io.bytes_read + s.io.bytes_written) / 1e6,
          s.threads_used, s.change_rate);
    } else {
      std::printf(
          "%4u | %9.3f %9.3f %9.3f %9.3f %9.3f | %9.3f | %8llu %8llu "
          "%10llu "
          "%9.1f | %9.4f\n",
          s.iteration, s.timings.partition_s, s.timings.hash_s,
          s.timings.pi_graph_s, s.timings.knn_s, s.timings.update_s,
          s.timings.total(),
          static_cast<unsigned long long>(s.unique_tuples),
          static_cast<unsigned long long>(s.pi_pairs),
          static_cast<unsigned long long>(s.partition_loads +
                                          s.partition_unloads),
          static_cast<double>(s.io.bytes_read + s.io.bytes_written) / 1e6,
          s.change_rate);
    }
    if (s.change_rate < 0.01) break;
  }
  const double total = cumulative.total();
  if (json) {
    std::printf("],\"cumulative\":{\"partition_s\":%.6f,\"hash_s\":%.6f,"
                "\"pi_graph_s\":%.6f,\"knn_s\":%.6f,\"update_s\":%.6f,"
                "\"total_s\":%.6f}}\n",
                cumulative.partition_s, cumulative.hash_s,
                cumulative.pi_graph_s, cumulative.knn_s,
                cumulative.update_s, total);
  } else {
    std::printf("---------------------------------------------------------"
                "---------------------------------------------------------"
                "\n");
    std::printf("cumulative: partition %.1f%%  hash %.1f%%  pi %.1f%%  "
                "knn %.1f%%  update %.1f%%  (total %.3f s)\n",
                100 * cumulative.partition_s / total,
                100 * cumulative.hash_s / total,
                100 * cumulative.pi_graph_s / total,
                100 * cumulative.knn_s / total,
                100 * cumulative.update_s / total, total);
  }
  return 0;
}
