// Ext-B (paper future work): effect of the memory budget (resident
// partition slots) on load/unload traffic.
//
// Part 1 replays the Table-1 PI graphs through the simulator at different
// slot counts; part 2 runs the real engine and reports actual loads.
//
// Usage: bench_memory [--dataset=wiki-vote] [--users=N]
#include <cstdio>

#include "core/datasets.h"
#include "core/engine.h"
#include "graph/digraph.h"
#include "pigraph/heuristics.h"
#include "pigraph/simulator.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_string("dataset", "Table-1 dataset for the simulator part",
                  "wiki-vote");
  opts.add_uint("users", "users for the live-engine part", 8000);
  if (!opts.parse(argc, argv)) return 0;

  const std::size_t slot_counts[] = {2, 3, 4, 8, 16};

  // Part 1: simulator on a Table-1 PI graph.
  const Table1Dataset& row = table1_dataset(opts.get_string("dataset"));
  const PiGraph pi =
      PiGraph::from_digraph(Digraph(generate_table1_graph(row)));
  std::printf("Ext-B part 1: simulated ops vs slots on %s-as-PI-graph\n",
              row.name.c_str());
  std::printf("%6s | %12s %12s %12s\n", "slots", "sequential", "high-low",
              "low-high");
  std::printf("--------------------------------------------------\n");
  for (const std::size_t slots : slot_counts) {
    const LoadUnloadSimulator sim(slots);
    std::printf("%6zu | %12llu %12llu %12llu\n", slots,
                static_cast<unsigned long long>(
                    sim.run(pi, SequentialHeuristic{}).operations()),
                static_cast<unsigned long long>(
                    sim.run(pi, DegreeHeuristic{true}).operations()),
                static_cast<unsigned long long>(
                    sim.run(pi, DegreeHeuristic{false}).operations()));
  }

  // Part 2: the live engine (one iteration per slot count, same input).
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  std::printf("\nExt-B part 2: live engine loads/unloads vs slots "
              "(n=%u, m=16, one iteration)\n", n);
  std::printf("%6s | %10s %10s %12s %12s\n", "slots", "loads", "unloads",
              "MB read", "phase4 s");
  std::printf("------------------------------------------------------\n");
  for (const std::size_t slots : slot_counts) {
    Rng rng(42);
    ClusteredGenConfig pconfig;
    pconfig.base.num_users = n;
    pconfig.base.num_items = 1000;
    pconfig.num_clusters = 20;
    EngineConfig config;
    config.k = 10;
    config.num_partitions = 16;
    config.memory_slots = slots;
    KnnEngine engine(config, clustered_profiles(pconfig, rng));
    const IterationStats s = engine.run_iteration();
    std::printf("%6zu | %10llu %10llu %12.1f %12.3f\n", slots,
                static_cast<unsigned long long>(s.partition_loads),
                static_cast<unsigned long long>(s.partition_unloads),
                static_cast<double>(s.io.bytes_read) / 1e6,
                s.timings.knn_s);
  }
  std::printf("\nExpected shape: operations fall monotonically as the "
              "memory budget grows;\nthe 2-slot floor is the paper's "
              "constrained setting.\n");
  return 0;
}
