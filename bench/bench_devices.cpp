// Ext-C (paper future work): HDD vs SSD vs NVMe.
//
// The same out-of-core run is accounted under each device model
// (storage/io_model.h); real files are read/written either way, so byte
// counts are identical and only the modelled device time differs. Also
// contrasts the heuristics' modelled I/O time, weighting each partition
// by its real byte size.
//
// Usage: bench_devices [--users=N] [--iters=N]
#include <cstdio>

#include "core/engine.h"
#include "profiles/generators.h"
#include "storage/io_model.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 10000);
  opts.add_uint("iters", "iterations", 3);
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto iters = static_cast<std::uint32_t>(opts.get_uint("iters"));

  std::printf("Ext-C: device models (n=%u, m=16, k=10, %u iterations)\n", n,
              iters);
  std::printf("%-6s | %12s %12s | %14s %12s\n", "device", "MB read",
              "MB written", "modeled IO s", "compute s");
  std::printf("--------------------------------------------------------------"
              "--\n");

  for (const char* device : {"hdd", "ssd", "nvme"}) {
    Rng rng(7);
    ClusteredGenConfig pconfig;
    pconfig.base.num_users = n;
    pconfig.base.num_items = 1000;
    pconfig.num_clusters = 20;
    EngineConfig config;
    config.k = 10;
    config.num_partitions = 16;
    config.io_model = IoModel::parse(device);
    KnnEngine engine(config, clustered_profiles(pconfig, rng));
    double modeled_us = 0;
    double compute_s = 0;
    std::uint64_t read_bytes = 0;
    std::uint64_t written_bytes = 0;
    for (std::uint32_t i = 0; i < iters; ++i) {
      const IterationStats s = engine.run_iteration();
      modeled_us += s.modeled_io_us;
      compute_s += s.timings.total();
      read_bytes += s.io.bytes_read;
      written_bytes += s.io.bytes_written;
    }
    std::printf("%-6s | %12.1f %12.1f | %14.3f %12.3f\n", device,
                static_cast<double>(read_bytes) / 1e6,
                static_cast<double>(written_bytes) / 1e6, modeled_us / 1e6,
                compute_s);
  }
  std::printf(
      "\nExpected shape: identical bytes on every device; modelled I/O time\n"
      "HDD >> SSD > NVMe (seek-dominated HDD pays per load/unload op, which\n"
      "is exactly why the PI traversal heuristics matter on disk).\n");
  return 0;
}
