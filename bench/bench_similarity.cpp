// Abl-3: similarity-measure micro-costs (google-benchmark). The phase-4
// inner loop is one sim(s, d) per tuple; this pins down the per-call cost
// for every measure and profile size.
#include <benchmark/benchmark.h>

#include "profiles/generators.h"
#include "profiles/similarity.h"
#include "util/rng.h"

using namespace knnpc;

namespace {

std::vector<SparseProfile> make_profiles(std::uint32_t items_per_profile) {
  Rng rng(9000 + items_per_profile);
  ProfileGenConfig config;
  config.num_users = 256;
  config.num_items = items_per_profile * 20;
  config.min_items = items_per_profile;
  config.max_items = items_per_profile;
  return uniform_profiles(config, rng);
}

void BM_Similarity(benchmark::State& state) {
  const auto measure = static_cast<SimilarityMeasure>(state.range(0));
  const auto size = static_cast<std::uint32_t>(state.range(1));
  const auto profiles = make_profiles(size);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = profiles[i % profiles.size()];
    const auto& b = profiles[(i * 7 + 1) % profiles.size()];
    benchmark::DoNotOptimize(similarity(measure, a, b));
    ++i;
  }
  state.SetLabel(similarity_name(measure) + "/" + std::to_string(size) +
                 " items");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_Similarity)
    ->ArgsProduct({{static_cast<long>(SimilarityMeasure::Cosine),
                    static_cast<long>(SimilarityMeasure::Jaccard),
                    static_cast<long>(SimilarityMeasure::Dice),
                    static_cast<long>(SimilarityMeasure::Overlap),
                    static_cast<long>(SimilarityMeasure::CommonItems),
                    static_cast<long>(SimilarityMeasure::InverseEuclid)},
                   {8, 32, 128}});

BENCHMARK_MAIN();
