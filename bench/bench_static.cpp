// Abl-6: the paper's motivating contrast, quantified.
//
// GraphChi-style (sharded PSW) and X-Stream-style (edge streaming)
// engines run PageRank on a Table-1-scale graph; the knnpc engine runs a
// KNN iteration on the same vertex population. The static engines move
// less data per iteration *because the structure never changes* — the
// KNN pipeline must repartition and rewrite the graph every iteration,
// which is exactly the capability gap the paper's introduction describes
// ("such features are not supported in either GraphChi or X-Stream").
//
// Usage: bench_static [--users=N]
#include <cstdio>

#include "core/engine.h"
#include "graph/generators.h"
#include "profiles/generators.h"
#include "staticgraph/edge_stream.h"
#include "staticgraph/sharded_graph.h"
#include "staticgraph/vertex_programs.h"
#include "storage/block_file.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "vertex/user count", 10000);
  opts.add_uint("iters", "iterations per engine", 3);
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto iters = static_cast<std::uint32_t>(opts.get_uint("iters"));

  Rng rng(99);
  const EdgeList graph = chung_lu_directed(n, n * 10, 2.3, rng);
  std::printf("Abl-6: static engines vs the KNN pipeline "
              "(n=%u, %zu edges, %u iterations each)\n",
              n, graph.edges.size(), iters);
  std::printf("%-26s | %10s %12s %12s | %10s\n", "engine / algorithm",
              "s/iter", "MB read/it", "MB writ/it", "mutates G?");
  std::printf("--------------------------------------------------------------"
              "--------------\n");

  {
    ScratchDir dir("bench-psw");
    staticgraph::ShardedGraph sharded(dir.path(), graph, 16);
    sharded.reset_io();
    Timer timer;
    (void)staticgraph::pagerank(sharded, iters, 0.85, 0.0);
    const double seconds = timer.elapsed_seconds();
    const auto& io = sharded.io().counters();
    // pagerank runs a priming pass + `iters` sweeps.
    const double sweeps = iters + 1;
    std::printf("%-26s | %10.3f %12.1f %12.1f | %10s\n",
                "graphchi-psw / pagerank", seconds / sweeps,
                static_cast<double>(io.bytes_read) / sweeps / 1e6,
                static_cast<double>(io.bytes_written) / sweeps / 1e6, "no");
  }
  {
    ScratchDir dir("bench-xs");
    staticgraph::EdgeStreamEngine stream(dir.path(), graph, 16);
    stream.reset_io();
    Timer timer;
    (void)staticgraph::edge_stream_pagerank(stream, iters);
    const double seconds = timer.elapsed_seconds();
    const auto& io = stream.io().counters();
    std::printf("%-26s | %10.3f %12.1f %12.1f | %10s\n",
                "xstream-sg / pagerank", seconds / iters,
                static_cast<double>(io.bytes_read) / iters / 1e6,
                static_cast<double>(io.bytes_written) / iters / 1e6, "no");
  }
  {
    Rng prng(100);
    ClusteredGenConfig pconfig;
    pconfig.base.num_users = n;
    pconfig.base.num_items = 1000;
    pconfig.num_clusters = 20;
    EngineConfig config;
    config.k = 10;
    config.num_partitions = 16;
    KnnEngine engine(config, clustered_profiles(pconfig, prng));
    Timer timer;
    std::uint64_t read_bytes = 0;
    std::uint64_t written_bytes = 0;
    for (std::uint32_t i = 0; i < iters; ++i) {
      const IterationStats s = engine.run_iteration();
      read_bytes += s.io.bytes_read;
      written_bytes += s.io.bytes_written;
    }
    const double seconds = timer.elapsed_seconds();
    std::printf("%-26s | %10.3f %12.1f %12.1f | %10s\n",
                "knnpc / knn iteration", seconds / iters,
                static_cast<double>(read_bytes) / iters / 1e6,
                static_cast<double>(written_bytes) / iters / 1e6,
                "yes (top-K)");
  }
  std::printf(
      "\nExpected shape: the static engines stream a fixed structure "
      "(cheap,\nre-usable shards); the KNN engine re-partitions, re-sorts "
      "and rewrites\nG(t) every iteration and additionally moves tuple "
      "shards — the extra\nwrite traffic is the price of a mutating graph, "
      "which is the paper's point.\n");
  return 0;
}
