// Abl-4: KNN quality — the out-of-core engine vs in-memory NN-Descent vs
// exact brute force. Reports recall@K, similarity evaluations and time.
//
// Usage: bench_quality [--users=N] [--k=N]
#include <cstdio>

#include "core/brute_force.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "core/nn_descent.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 3000);
  opts.add_uint("k", "neighbours per user", 10);
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto k = static_cast<std::uint32_t>(opts.get_uint("k"));

  Rng rng(77);
  ClusteredGenConfig pconfig;
  pconfig.base.num_users = n;
  pconfig.base.num_items = 2000;
  pconfig.base.min_items = 15;
  pconfig.base.max_items = 30;
  pconfig.num_clusters = 30;
  pconfig.in_cluster_prob = 0.85;
  const auto profiles = clustered_profiles(pconfig, rng);
  const auto labels = planted_clusters(n, 30);
  const InMemoryProfileStore store{profiles};

  std::printf("Abl-4: quality comparison (n=%u, k=%u, clustered profiles)\n",
              n, k);
  std::printf("%-22s | %8s %9s | %12s | %9s\n", "method", "recall@K",
              "purity", "sim evals", "time s");
  std::printf("----------------------------------------------------------"
              "-----------\n");

  Timer bf_timer;
  const KnnGraph exact =
      brute_force_knn(store, k, SimilarityMeasure::Cosine, 8);
  const double bf_s = bf_timer.elapsed_seconds();
  std::printf("%-22s | %8.3f %9.3f | %12llu | %9.3f\n",
              "brute force (exact)", 1.0, cluster_purity(exact, labels),
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(n) * (n - 1) / 2),
              bf_s);

  Timer nnd_timer;
  NnDescentConfig nnd_config;
  nnd_config.k = k;
  NnDescentStats nnd_stats;
  const KnnGraph descent = nn_descent(store, nnd_config, &nnd_stats);
  const double nnd_s = nnd_timer.elapsed_seconds();
  std::printf("%-22s | %8.3f %9.3f | %12llu | %9.3f\n",
              "nn-descent (memory)", recall_at_k(descent, exact),
              cluster_purity(descent, labels),
              static_cast<unsigned long long>(
                  nnd_stats.similarity_evaluations),
              nnd_s);

  Timer engine_timer;
  EngineConfig config;
  config.k = k;
  config.num_partitions = 8;
  KnnEngine engine(config, profiles);
  const RunStats run = engine.run(15, 0.01);
  const double engine_s = engine_timer.elapsed_seconds();
  std::uint64_t engine_sims = 0;
  for (const auto& it : run.iterations) engine_sims += it.unique_tuples;
  std::printf("%-22s | %8.3f %9.3f | %12llu | %9.3f\n",
              "knnpc (out-of-core)", recall_at_k(engine.graph(), exact),
              cluster_purity(engine.graph(), labels),
              static_cast<unsigned long long>(engine_sims), engine_s);

  std::printf("\nExpected shape: both approximate methods reach >0.9 recall; "
              "the\nout-of-core engine trades wall time (it pays disk I/O) "
              "for bounded memory.\n");
  return 0;
}
