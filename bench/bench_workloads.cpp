// Workload-zoo differential sweep: every registered scenario
// (src/workloads/workload.h) replayed through all five execution modes —
// serial, thread-pool, sharded thread / process / persistent workers —
// plus a grid over shards x threads x partitioner x heuristic in
// thread-mode sharding. Checksums gate the determinism contract: the
// binary exits non-zero if any workload's graph diverges across the five
// modes, or if any grid cell drifts from the serial baseline (placement
// and order are pure I/O concerns — see integration_test's ComboTest).
//
// Usage: bench_workloads [--users=N] [--iters=N] [--workloads=a,b] [--json]
// With --json the table is replaced by one JSON object on stdout (the CI
// workloads-smoke job parses it; see tools/bench_to_json.py).
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/shard_driver.h"
#include "graph/knn_graph_io.h"
#include "util/options.h"
#include "util/timer.h"
#include "workloads/workload.h"

using namespace knnpc;

namespace {

struct RunResult {
  std::uint64_t checksum = 0;
  double wall_s = 0.0;
};

RunResult run_serial(const std::string& name, const WorkloadParams& params,
                     const EngineConfig& config, std::uint32_t iters) {
  Workload workload = make_workload(name, params);
  const auto n = static_cast<VertexId>(workload.profiles.size());
  KnnEngine engine(config, std::move(workload.profiles));
  RunResult result;
  Timer wall;
  for (std::uint32_t i = 0; i < iters; ++i) {
    workload.tick(engine.update_queue(), n);
    engine.run_iteration();
  }
  result.wall_s = wall.elapsed_seconds();
  result.checksum = knn_graph_checksum(engine.graph());
  return result;
}

RunResult run_sharded(const std::string& name, const WorkloadParams& params,
                      const EngineConfig& config, std::uint32_t shards,
                      ShardWorkerMode mode, std::uint32_t iters) {
  Workload workload = make_workload(name, params);
  const auto n = static_cast<VertexId>(workload.profiles.size());
  ShardConfig shard_config;
  shard_config.shards = shards;
  shard_config.worker_mode = mode;
  shard_config.worker_timeout_s = 120.0;
  ShardedKnnEngine engine(config, shard_config,
                          std::move(workload.profiles));
  RunResult result;
  Timer wall;
  for (std::uint32_t i = 0; i < iters; ++i) {
    workload.tick(engine.update_queue(), n);
    engine.run_iteration();
  }
  result.wall_s = wall.elapsed_seconds();
  result.checksum = knn_graph_checksum(engine.graph());
  return result;
}

struct ModeRow {
  const char* mode;
  RunResult run;
  bool identical = false;
};

struct GridCell {
  std::string partitioner;
  std::string heuristic;
  std::uint32_t shards = 0;
  std::uint32_t threads = 0;
  RunResult run;
  bool identical = false;
};

struct WorkloadRow {
  std::string name;
  std::vector<ModeRow> modes;
  bool identical = false;
  std::vector<GridCell> grid;
  bool grid_identical = false;
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Process/persistent cells re-execute this binary as shard workers.
  if (const auto worker_exit = maybe_run_shard_worker(argc, argv)) {
    return *worker_exit;
  }
  Options opts;
  opts.add_uint("users", "users per workload", 400);
  opts.add_uint("items", "items per workload", 400);
  opts.add_uint("clusters", "planted clusters (where the scenario has any)",
                4);
  opts.add_uint("k", "neighbours per user", 8);
  opts.add_uint("partitions", "partition count m", 4);
  opts.add_uint("iters", "iterations per run", 3);
  opts.add_uint("seed", "workload seed (P(0) + update script)", 1007);
  opts.add_string("workloads",
                  "comma-separated subset of the zoo; empty = all", "");
  opts.add_flag("no-grid",
                "skip the shards x threads x partitioner x heuristic grid");
  opts.add_flag("json", "emit results as JSON instead of a table");
  if (!opts.parse(argc, argv)) return 0;

  WorkloadParams params;
  params.users = static_cast<VertexId>(opts.get_uint("users"));
  params.items = static_cast<ItemId>(opts.get_uint("items"));
  params.clusters = static_cast<std::uint32_t>(opts.get_uint("clusters"));
  params.seed = opts.get_uint("seed");
  const auto iters = static_cast<std::uint32_t>(opts.get_uint("iters"));
  const bool json = opts.get_flag("json");
  const bool grid = !opts.get_flag("no-grid");

  EngineConfig config;
  config.k = static_cast<std::uint32_t>(opts.get_uint("k"));
  config.num_partitions =
      static_cast<PartitionId>(opts.get_uint("partitions"));

  std::vector<std::string> names = split_csv(opts.get_string("workloads"));
  if (names.empty()) names = workload_names();

  if (!json) {
    std::printf("Workload-zoo differential sweep (n=%u, items=%u, k=%u, "
                "m=%u, %u iters)\n",
                params.users, params.items, config.k, config.num_partitions,
                iters);
    std::printf("%-20s | %9s %9s %9s %9s %9s | %9s | %s\n", "workload",
                "serial s", "thread s", "shard s", "proc s", "persist s",
                "identical", grid ? "grid" : "");
    std::printf("--------------------------------------------------------"
                "----------------------------------------\n");
  }

  const std::vector<std::string> grid_partitioners = {"range", "hash",
                                                      "greedy"};
  const std::vector<std::string> grid_heuristics = {"low-high", "high-low"};
  const std::vector<std::uint32_t> grid_shards = {1, 2};
  const std::vector<std::uint32_t> grid_threads = {1, 2};

  std::vector<WorkloadRow> rows;
  for (const std::string& name : names) {
    WorkloadRow row;
    row.name = name;

    // The five execution modes, replaying the identical scenario.
    row.modes.push_back(
        {"serial", run_serial(name, params, config, iters), false});
    {
      EngineConfig threaded = config;
      threaded.threads = 2;
      row.modes.push_back(
          {"threaded", run_serial(name, params, threaded, iters), false});
    }
    row.modes.push_back({"shard-thread",
                         run_sharded(name, params, config, 2,
                                     ShardWorkerMode::Thread, iters),
                         false});
    row.modes.push_back({"shard-process",
                         run_sharded(name, params, config, 2,
                                     ShardWorkerMode::Process, iters),
                         false});
    row.modes.push_back({"shard-persistent",
                         run_sharded(name, params, config, 3,
                                     ShardWorkerMode::Persistent, iters),
                         false});
    const std::uint64_t reference = row.modes.front().run.checksum;
    row.identical = true;
    for (ModeRow& mode : row.modes) {
      mode.identical = mode.run.checksum == reference;
      row.identical = row.identical && mode.identical;
    }

    // The grid: shard-thread mode across every placement/order knob. All
    // cells must land on the serial checksum.
    row.grid_identical = true;
    if (grid) {
      for (const std::string& partitioner : grid_partitioners) {
        for (const std::string& heuristic : grid_heuristics) {
          for (const std::uint32_t shards : grid_shards) {
            for (const std::uint32_t threads : grid_threads) {
              EngineConfig cell_config = config;
              cell_config.partitioner = partitioner;
              cell_config.heuristic = heuristic;
              cell_config.threads = threads;
              GridCell cell;
              cell.partitioner = partitioner;
              cell.heuristic = heuristic;
              cell.shards = shards;
              cell.threads = threads;
              cell.run = run_sharded(name, params, cell_config, shards,
                                     ShardWorkerMode::Thread, iters);
              cell.identical = cell.run.checksum == reference;
              row.grid_identical = row.grid_identical && cell.identical;
              row.grid.push_back(std::move(cell));
            }
          }
        }
      }
    }

    if (!json) {
      std::printf("%-20s | %9.3f %9.3f %9.3f %9.3f %9.3f | %9s |",
                  row.name.c_str(), row.modes[0].run.wall_s,
                  row.modes[1].run.wall_s, row.modes[2].run.wall_s,
                  row.modes[3].run.wall_s, row.modes[4].run.wall_s,
                  row.identical ? "yes" : "NO");
      if (grid) {
        std::size_t drifted = 0;
        for (const GridCell& cell : row.grid) {
          if (!cell.identical) ++drifted;
        }
        std::printf(" %zu cells, %zu drifted%s", row.grid.size(), drifted,
                    row.grid_identical ? "" : " (NO)");
      }
      std::printf("\n");
    }
    rows.push_back(std::move(row));
  }

  if (json) {
    std::printf("{\"bench\":\"workloads\",\"users\":%u,\"items\":%u,"
                "\"clusters\":%u,\"k\":%u,\"partitions\":%u,\"iters\":%u,"
                "\"seed\":%llu,\"results\":[",
                params.users, params.items, params.clusters, config.k,
                config.num_partitions, iters,
                static_cast<unsigned long long>(params.seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const WorkloadRow& row = rows[i];
      std::printf("%s{\"workload\":\"%s\",\"identical\":%s,\"modes\":[",
                  i == 0 ? "" : ",", row.name.c_str(),
                  row.identical ? "true" : "false");
      for (std::size_t m = 0; m < row.modes.size(); ++m) {
        const ModeRow& mode = row.modes[m];
        std::printf("%s{\"mode\":\"%s\",\"wall_s\":%.6f,"
                    "\"checksum\":\"%016llx\",\"identical\":%s}",
                    m == 0 ? "" : ",", mode.mode, mode.run.wall_s,
                    static_cast<unsigned long long>(mode.run.checksum),
                    mode.identical ? "true" : "false");
      }
      std::printf("],\"grid_identical\":%s,\"grid\":[",
                  row.grid_identical ? "true" : "false");
      for (std::size_t c = 0; c < row.grid.size(); ++c) {
        const GridCell& cell = row.grid[c];
        std::printf("%s{\"partitioner\":\"%s\",\"heuristic\":\"%s\","
                    "\"shards\":%u,\"threads\":%u,\"wall_s\":%.6f,"
                    "\"checksum\":\"%016llx\",\"identical\":%s}",
                    c == 0 ? "" : ",", cell.partitioner.c_str(),
                    cell.heuristic.c_str(), cell.shards, cell.threads,
                    cell.run.wall_s,
                    static_cast<unsigned long long>(cell.run.checksum),
                    cell.identical ? "true" : "false");
      }
      std::printf("]}");
    }
    std::printf("]}\n");
  } else {
    std::printf(
        "\nExpected shape: every workload says identical=yes and 0 grid "
        "cells drifted —\nthe five-mode determinism contract checked "
        "across the whole zoo, and the\nplacement/order-invariance "
        "contract (partitioner, heuristic, S, threads are\npure I/O "
        "concerns) checked per workload. Any NO is a released-determinism"
        "\nbug, not a tolerance issue: the binary exits non-zero.\n");
  }

  const bool all_identical =
      std::all_of(rows.begin(), rows.end(), [](const WorkloadRow& r) {
        return r.identical && r.grid_identical;
      });
  if (!all_identical) {
    std::fprintf(stderr,
                 "bench_workloads: determinism contract violated (some "
                 "workload diverged across modes or grid cells)\n");
  }
  return all_identical ? 0 : 1;
}
