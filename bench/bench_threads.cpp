// Ext-D (paper future work): multi-threaded similarity computation.
// Sweeps phase-4 worker threads and reports the phase-4 time and speedup.
//
// Usage: bench_threads [--users=N] [--k=N]
#include <cstdio>

#include "core/engine.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 20000);
  opts.add_uint("k", "neighbours per user", 10);
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));

  std::printf("Ext-D: phase-4 threads sweep (n=%u, k=%llu, m=16, one "
              "iteration)\n",
              n, static_cast<unsigned long long>(opts.get_uint("k")));
  std::printf("%8s | %10s %10s %10s\n", "threads", "phase4 s", "total s",
              "speedup");
  std::printf("--------------------------------------------\n");

  double baseline = 0;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u, 16u}) {
    Rng rng(11);
    ClusteredGenConfig pconfig;
    pconfig.base.num_users = n;
    pconfig.base.num_items = 2000;
    pconfig.base.min_items = 25;   // heavier profiles: more sim work
    pconfig.base.max_items = 50;
    pconfig.num_clusters = 40;
    EngineConfig config;
    config.k = static_cast<std::uint32_t>(opts.get_uint("k"));
    config.num_partitions = 16;
    config.threads = threads;
    KnnEngine engine(config, clustered_profiles(pconfig, rng));
    const IterationStats s = engine.run_iteration();
    if (threads == 1) baseline = s.timings.knn_s;
    std::printf("%8u | %10.3f %10.3f %9.2fx\n", threads, s.timings.knn_s,
                s.timings.total(), baseline / s.timings.knn_s);
  }
  std::printf("\nExpected shape: phase-4 time falls with threads until the "
              "per-pair I/O\nand top-K merge serial sections dominate "
              "(Amdahl).\n");
  return 0;
}
