// Ext-D (paper future work): multi-threaded similarity computation.
// Sweeps phase-4 worker threads and reports the phase-4 time (split into
// parallel scoring and top-K merge) and speedup, plus the engine's
// auto-selected thread count (threads=0).
//
// Usage: bench_threads [--users=N] [--k=N] [--json]
// With --json the table is replaced by one JSON object on stdout (the CI
// perf-tracking job parses it; see tools/bench_to_json.py).
#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 20000);
  opts.add_uint("k", "neighbours per user", 10);
  opts.add_flag("json", "emit results as JSON instead of a table");
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto k = static_cast<std::uint32_t>(opts.get_uint("k"));
  const bool json = opts.get_flag("json");

  if (!json) {
    std::printf("Ext-D: phase-4 threads sweep (n=%u, k=%u, m=16, one "
                "iteration)\n",
                n, k);
    std::printf("%8s | %10s %10s %10s %10s %10s\n", "threads", "phase4 s",
                "score s", "merge s", "total s", "speedup");
    std::printf("----------------------------------------------------------"
                "--------\n");
  }

  struct Row {
    std::uint32_t requested;
    std::uint32_t used;
    IterationStats stats;
  };
  std::vector<Row> rows;
  double baseline = 0;
  // threads=0 last: the auto row shows what large runs pick by default.
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u, 16u, 0u}) {
    Rng rng(11);
    ClusteredGenConfig pconfig;
    pconfig.base.num_users = n;
    pconfig.base.num_items = 2000;
    pconfig.base.min_items = 25;   // heavier profiles: more sim work
    pconfig.base.max_items = 50;
    pconfig.num_clusters = 40;
    EngineConfig config;
    config.k = k;
    config.num_partitions = 16;
    config.threads = threads;
    KnnEngine engine(config, clustered_profiles(pconfig, rng));
    const IterationStats s = engine.run_iteration();
    if (threads == 1) baseline = s.timings.knn_s;
    rows.push_back({threads, s.threads_used, s});
    if (!json) {
      char label[32];
      if (threads == 0) {
        std::snprintf(label, sizeof label, "auto(%u)", s.threads_used);
      } else {
        std::snprintf(label, sizeof label, "%u", threads);
      }
      std::printf("%8s | %10.3f %10.3f %10.3f %10.3f %9.2fx\n", label,
                  s.timings.knn_s, s.knn_score_s, s.knn_merge_s,
                  s.timings.total(), baseline / s.timings.knn_s);
    }
  }

  if (json) {
    std::printf("{\"bench\":\"threads\",\"users\":%u,\"k\":%u,"
                "\"results\":[",
                n, k);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const IterationStats& s = rows[i].stats;
      std::printf("%s{\"threads\":%u,\"threads_used\":%u,"
                  "\"phase4_s\":%.6f,\"score_s\":%.6f,\"merge_s\":%.6f,"
                  "\"total_s\":%.6f,\"speedup\":%.4f}",
                  i == 0 ? "" : ",", rows[i].requested, rows[i].used,
                  s.timings.knn_s, s.knn_score_s, s.knn_merge_s,
                  s.timings.total(), baseline / s.timings.knn_s);
    }
    std::printf("]}\n");
  } else {
    std::printf("\nExpected shape: phase-4 time falls with threads until "
                "the per-pair I/O serial\nsections dominate (Amdahl); the "
                "score/merge columns show both halves\nparallelising.\n");
  }
  return 0;
}
