// Ext-A (paper future work): execution time vs graph size.
// Sweeps the user count at fixed K and reports per-iteration time, tuple
// throughput and I/O volume.
//
// Usage: bench_scaling [--k=N] [--iters=N] [--sizes=2000,4000,...]
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

namespace {

std::vector<VertexId> parse_sizes(const std::string& csv) {
  std::vector<VertexId> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    out.push_back(static_cast<VertexId>(std::stoul(token)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("k", "neighbours per user", 10);
  opts.add_uint("iters", "iterations per size", 3);
  opts.add_string("sizes", "comma-separated user counts",
                  "2000,4000,8000,16000,32000,64000");
  if (!opts.parse(argc, argv)) return 0;

  const auto k = static_cast<std::uint32_t>(opts.get_uint("k"));
  const auto iters = static_cast<std::uint32_t>(opts.get_uint("iters"));
  std::printf("Ext-A: execution time vs graph size (k=%u, %u iterations "
              "each, m scales as n/2500)\n", k, iters);
  std::printf("%8s %6s | %10s %12s %12s %10s | %12s\n", "users", "m",
              "s/iter", "tuples/iter", "Mtuples/s", "MB/iter", "loads/iter");
  std::printf("--------------------------------------------------------"
              "--------------------------\n");

  for (const VertexId n : parse_sizes(opts.get_string("sizes"))) {
    Rng rng(500 + n);
    ClusteredGenConfig pconfig;
    pconfig.base.num_users = n;
    pconfig.base.num_items = std::max<ItemId>(1000, n / 10);
    pconfig.num_clusters = 50;

    EngineConfig config;
    config.k = k;
    config.num_partitions = std::max<PartitionId>(4, n / 2500);
    KnnEngine engine(config, clustered_profiles(pconfig, rng));

    double seconds = 0;
    std::uint64_t tuples = 0;
    std::uint64_t bytes = 0;
    std::uint64_t loads = 0;
    for (std::uint32_t i = 0; i < iters; ++i) {
      const IterationStats s = engine.run_iteration();
      seconds += s.timings.total();
      tuples += s.unique_tuples;
      bytes += s.io.bytes_read + s.io.bytes_written;
      loads += s.partition_loads;
    }
    std::printf("%8u %6u | %10.3f %12llu %12.2f %10.1f | %12llu\n", n,
                config.num_partitions, seconds / iters,
                static_cast<unsigned long long>(tuples / iters),
                static_cast<double>(tuples) / seconds / 1e6,
                static_cast<double>(bytes) / iters / 1e6,
                static_cast<unsigned long long>(loads / iters));
  }
  std::printf("\nExpected shape: time and I/O grow ~linearly in n at fixed "
              "K (tuple count is ~n*K^2).\n");
  return 0;
}
