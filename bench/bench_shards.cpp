// Sharded-driver sweep: runs the same pinned workload at several shard
// counts — in thread mode, process mode AND persistent-worker mode —
// reports total and per-shard wall time plus the merged phase-4 time,
// and verifies the bit-identical-output contract by checksumming every
// run (all modes) against thread-mode S=1.
//
// Usage: bench_shards [--users=N] [--k=N] [--iters=N] [--agents=N] [--json]
// With --json the table is replaced by one JSON object on stdout (the CI
// perf-tracking job parses it; see tools/bench_to_json.py). On
// multi-iteration runs (--iters > 1) the persistent column shows the
// spawn-amortisation story: process mode pays fork+execv + plan +
// snapshot + store-open per shard per wave per iteration, persistent
// mode pays the spawn once and ships G(t) deltas after that.
// --agents=N adds a distributed column: the persistent sweep re-run with
// the workers behind N in-process loopback-TCP worker agents, measuring
// the coordinator/sync overhead against local persistent mode and
// re-verifying the checksum contract over real sockets.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/shard_driver.h"
#include "core/worker_agent.h"
#include "graph/knn_graph_io.h"
#include "profiles/generators.h"
#include "storage/block_file.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace knnpc;

namespace {

std::vector<SparseProfile> pinned_profiles(VertexId n) {
  Rng rng(11);
  ClusteredGenConfig pconfig;
  pconfig.base.num_users = n;
  pconfig.base.num_items = 2000;
  pconfig.base.min_items = 25;
  pconfig.base.max_items = 50;
  pconfig.num_clusters = 40;
  return clustered_profiles(pconfig, rng);
}

/// One in-process loopback worker agent on a background thread, with its
/// own scratch work root — the bench-local stand-in for a remote host.
struct LoopbackAgent {
  ScratchDir scratch;
  WorkerAgent agent;
  std::thread thread;

  explicit LoopbackAgent(const std::string& tag)
      : scratch("bench_shards_" + tag),
        agent([&] {
          WorkerAgentConfig config;
          config.work_root = scratch.path();
          return config;
        }()),
        thread([this] { agent.run(); }) {}

  ~LoopbackAgent() {
    agent.stop();
    thread.join();
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(agent.port());
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Process-mode rows re-execute this binary as shard workers.
  if (const auto worker_exit = maybe_run_shard_worker(argc, argv)) {
    return *worker_exit;
  }
  Options opts;
  opts.add_uint("users", "number of users", 20000);
  opts.add_uint("k", "neighbours per user", 10);
  opts.add_uint("iters", "iterations per shard count", 1);
  opts.add_uint("agents",
                "also run the persistent sweep behind N loopback-TCP "
                "worker agents (0 = skip the distributed column)",
                0);
  opts.add_flag("json", "emit results as JSON instead of a table");
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto k = static_cast<std::uint32_t>(opts.get_uint("k"));
  const auto iters = static_cast<std::uint32_t>(opts.get_uint("iters"));
  const auto agents = static_cast<std::uint32_t>(opts.get_uint("agents"));
  const bool json = opts.get_flag("json");

  if (!json) {
    std::printf("Sharded driver sweep (n=%u, k=%u, m=16, %u iteration%s)\n",
                n, k, iters, iters == 1 ? "" : "s");
    std::printf("%8s | %10s %10s %12s %10s %9s | %10s %9s | %10s %9s | %s\n",
                "shards", "wall s", "cpu s", "max shard s", "speedup",
                "identical", "proc s", "proc id", "persist s", "pers id",
                "per-shard wall s");
    std::printf("----------------------------------------------------------"
                "--------------------------------------------------------\n");
  }

  struct Row {
    std::uint32_t shards = 0;
    std::uint32_t threads_per_shard = 0;
    /// Measured wall time of the whole run (the number sharding must
    /// improve); cpu_s is the sum of per-worker phase timings.
    double wall_s = 0.0;
    double cpu_s = 0.0;
    double phase4_s = 0.0;
    /// Same workload through out-of-process workers: the spawn/plan/
    /// sidecar overhead is process_wall_s - wall_s.
    double process_wall_s = 0.0;
    /// And through persistent workers: one spawn for the whole run, then
    /// framed commands with G(t) deltas. On multi-iteration runs this
    /// should beat process_wall_s — the amortisation the mode exists for.
    double persistent_wall_s = 0.0;
    /// Persistent-mode round-trip accounting. round_trips is the MAX
    /// heavy commands any worker saw in any one iteration — the fused
    /// protocol's contract is exactly 1 on a clean run (the GO barrier
    /// frame is payload-free and uncounted). profile_reads counts
    /// partition-profile loads, which an edges-only persistent fleet
    /// must keep at 0; the byte counters are run totals.
    std::uint32_t persistent_round_trips = 0;
    std::uint64_t persistent_bytes_tx = 0;
    std::uint64_t persistent_bytes_rx = 0;
    std::uint64_t persistent_profile_reads = 0;
    /// --agents only: the persistent sweep again, workers behind
    /// loopback-TCP agents. distributed_wall_s - persistent_wall_s is
    /// the coordinator tax (run-dir sync + spool relay + TCP); the sync
    /// counters total what the content-addressed sync moved vs skipped.
    double distributed_wall_s = 0.0;
    std::uint64_t distributed_sync_files_tx = 0;
    std::uint64_t distributed_sync_bytes_tx = 0;
    std::uint64_t distributed_sync_files_skipped = 0;
    std::uint64_t distributed_sync_bytes_skipped = 0;
    std::vector<double> shard_wall_s;
    std::uint64_t checksum = 0;
    std::uint64_t process_checksum = 0;
    std::uint64_t persistent_checksum = 0;
    std::uint64_t distributed_checksum = 0;
    bool identical = false;
    bool process_identical = false;
    bool persistent_identical = false;
    bool distributed_identical = true;  // vacuously when --agents=0
  };
  std::vector<Row> rows;
  double baseline = 0.0;
  std::uint64_t reference_checksum = 0;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    EngineConfig config;
    config.k = k;
    config.num_partitions = 16;
    ShardConfig shard_config;
    shard_config.shards = shards;
    Row row;
    row.shards = shards;
    row.shard_wall_s.assign(shards, 0.0);
    {
      ShardedKnnEngine driver(config, shard_config, pinned_profiles(n));
      row.threads_per_shard = driver.threads_per_shard();
      Timer wall;
      for (std::uint32_t i = 0; i < iters; ++i) {
        const ShardedIterationStats s = driver.run_iteration();
        row.cpu_s += s.merged.timings.total();
        row.phase4_s += s.merged.timings.knn_s;
        for (const ShardWorkerStats& w : s.workers) {
          row.shard_wall_s[w.shard] += w.wall_s();
        }
      }
      row.wall_s = wall.elapsed_seconds();
      row.checksum = knn_graph_checksum(driver.graph());
    }
    {
      shard_config.worker_mode = ShardWorkerMode::Process;
      ShardedKnnEngine driver(config, shard_config, pinned_profiles(n));
      Timer wall;
      for (std::uint32_t i = 0; i < iters; ++i) {
        (void)driver.run_iteration();
      }
      row.process_wall_s = wall.elapsed_seconds();
      row.process_checksum = knn_graph_checksum(driver.graph());
    }
    {
      shard_config.worker_mode = ShardWorkerMode::Persistent;
      ShardedKnnEngine driver(config, shard_config, pinned_profiles(n));
      Timer wall;
      for (std::uint32_t i = 0; i < iters; ++i) {
        const ShardedIterationStats s = driver.run_iteration();
        for (const ShardWorkerStats& w : s.workers) {
          row.persistent_round_trips =
              std::max(row.persistent_round_trips, w.round_trips);
          row.persistent_bytes_tx += w.bytes_tx;
          row.persistent_bytes_rx += w.bytes_rx;
          row.persistent_profile_reads += w.profile_reads;
        }
      }
      row.persistent_wall_s = wall.elapsed_seconds();
      row.persistent_checksum = knn_graph_checksum(driver.graph());
    }
    if (agents > 0) {
      const std::uint32_t fleet = std::min(agents, shards);
      std::vector<std::unique_ptr<LoopbackAgent>> fleet_agents;
      std::vector<std::string> endpoints;
      for (std::uint32_t a = 0; a < fleet; ++a) {
        fleet_agents.push_back(std::make_unique<LoopbackAgent>(
            "s" + std::to_string(shards) + "_a" + std::to_string(a)));
        endpoints.push_back(fleet_agents.back()->endpoint());
      }
      shard_config.worker_mode = ShardWorkerMode::Persistent;
      shard_config.worker_endpoints = endpoints;
      ShardedKnnEngine driver(config, shard_config, pinned_profiles(n));
      Timer wall;
      for (std::uint32_t i = 0; i < iters; ++i) {
        const ShardedIterationStats s = driver.run_iteration();
        for (const ShardWorkerStats& w : s.workers) {
          row.distributed_sync_files_tx += w.sync_files_tx;
          row.distributed_sync_bytes_tx += w.sync_bytes_tx;
          row.distributed_sync_files_skipped += w.sync_files_skipped;
          row.distributed_sync_bytes_skipped += w.sync_bytes_skipped;
        }
      }
      row.distributed_wall_s = wall.elapsed_seconds();
      row.distributed_checksum = knn_graph_checksum(driver.graph());
      shard_config.worker_endpoints.clear();
    }
    if (shards == 1) {
      baseline = row.wall_s;
      reference_checksum = row.checksum;
    }
    row.identical = row.checksum == reference_checksum;
    row.process_identical = row.process_checksum == reference_checksum;
    row.persistent_identical = row.persistent_checksum == reference_checksum;
    if (agents > 0) {
      row.distributed_identical =
          row.distributed_checksum == reference_checksum;
    }
    rows.push_back(row);
    if (!json) {
      double max_wall = 0.0;
      for (double w : row.shard_wall_s) max_wall = std::max(max_wall, w);
      std::printf("%8u | %10.3f %10.3f %12.3f %9.2fx %9s | %10.3f %9s "
                  "| %10.3f %9s | ",
                  shards, row.wall_s, row.cpu_s, max_wall,
                  baseline / row.wall_s, row.identical ? "yes" : "NO",
                  row.process_wall_s,
                  row.process_identical ? "yes" : "NO",
                  row.persistent_wall_s,
                  row.persistent_identical ? "yes" : "NO");
      if (agents > 0) {
        std::printf("dist %.3f %s | ", row.distributed_wall_s,
                    row.distributed_identical ? "yes" : "NO");
      }
      for (double w : row.shard_wall_s) std::printf("%.3f ", w);
      std::printf("\n");
    }
  }

  if (json) {
    std::printf("{\"bench\":\"shards\",\"users\":%u,\"k\":%u,\"iters\":%u,"
                "\"results\":[",
                n, k, iters);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::printf("%s{\"shards\":%u,\"threads_per_shard\":%u,"
                  "\"wall_s\":%.6f,\"cpu_s\":%.6f,\"phase4_s\":%.6f,"
                  "\"speedup\":%.4f,\"checksum\":\"%016llx\","
                  "\"identical\":%s,\"process_wall_s\":%.6f,"
                  "\"process_checksum\":\"%016llx\","
                  "\"process_identical\":%s,"
                  "\"persistent_wall_s\":%.6f,"
                  "\"persistent_checksum\":\"%016llx\","
                  "\"persistent_identical\":%s,"
                  "\"persistent_round_trips\":%u,"
                  "\"persistent_bytes_tx\":%llu,"
                  "\"persistent_bytes_rx\":%llu,"
                  "\"persistent_profile_reads\":%llu,",
                  i == 0 ? "" : ",", row.shards, row.threads_per_shard,
                  row.wall_s, row.cpu_s, row.phase4_s,
                  baseline / row.wall_s,
                  static_cast<unsigned long long>(row.checksum),
                  row.identical ? "true" : "false", row.process_wall_s,
                  static_cast<unsigned long long>(row.process_checksum),
                  row.process_identical ? "true" : "false",
                  row.persistent_wall_s,
                  static_cast<unsigned long long>(row.persistent_checksum),
                  row.persistent_identical ? "true" : "false",
                  row.persistent_round_trips,
                  static_cast<unsigned long long>(row.persistent_bytes_tx),
                  static_cast<unsigned long long>(row.persistent_bytes_rx),
                  static_cast<unsigned long long>(
                      row.persistent_profile_reads));
      if (agents > 0) {
        std::printf("\"distributed_wall_s\":%.6f,"
                    "\"distributed_checksum\":\"%016llx\","
                    "\"distributed_identical\":%s,"
                    "\"distributed_sync_files_tx\":%llu,"
                    "\"distributed_sync_bytes_tx\":%llu,"
                    "\"distributed_sync_files_skipped\":%llu,"
                    "\"distributed_sync_bytes_skipped\":%llu,",
                    row.distributed_wall_s,
                    static_cast<unsigned long long>(row.distributed_checksum),
                    row.distributed_identical ? "true" : "false",
                    static_cast<unsigned long long>(
                        row.distributed_sync_files_tx),
                    static_cast<unsigned long long>(
                        row.distributed_sync_bytes_tx),
                    static_cast<unsigned long long>(
                        row.distributed_sync_files_skipped),
                    static_cast<unsigned long long>(
                        row.distributed_sync_bytes_skipped));
      }
      std::printf("\"per_shard_wall_s\":[");
      for (std::size_t s = 0; s < row.shard_wall_s.size(); ++s) {
        std::printf("%s%.6f", s == 0 ? "" : ",", row.shard_wall_s[s]);
      }
      std::printf("]}");
    }
    std::printf("]}\n");
  } else {
    std::printf(
        "\nExpected shape: every row says identical=yes, proc id=yes and "
        "pers id=yes\n(the determinism contract, all execution modes). "
        "Wall time falls with shards\nonce scoring dominates partition "
        "I/O; cpu s grows with S because each shard\npays fixed costs "
        "(its own PI pass, spool read-back, partition loads for its\n"
        "schedule) — the gap between the two columns is the sharding "
        "overhead. proc s\nadditionally pays one spawn + plan/sidecar "
        "round-trip per worker per wave;\npersist s pays the spawn once "
        "per run and ships deltas, so on multi-iteration\nruns "
        "(--iters > 1) it should undercut proc s.\n");
  }
  const bool all_identical =
      std::all_of(rows.begin(), rows.end(), [](const Row& r) {
        return r.identical && r.process_identical &&
               r.persistent_identical && r.distributed_identical;
      });
  // The one-round-trip contract: a clean persistent run sends exactly one
  // heavy command per worker per iteration (the GO barrier is payload-
  // free) and, with an edges-only store, never reads a partition profile.
  const bool round_trip_contract =
      std::all_of(rows.begin(), rows.end(), [](const Row& r) {
        return r.persistent_round_trips == 1 &&
               r.persistent_profile_reads == 0;
      });
  if (!round_trip_contract) {
    std::fprintf(stderr,
                 "bench_shards: persistent round-trip contract violated "
                 "(expected 1 heavy command per worker per iteration and "
                 "0 partition-profile reads)\n");
  }
  return (all_identical && round_trip_contract) ? 0 : 1;
}
