// Abl-1: partitioner ablation on the paper's phase-1 objective
// min Σ (N_in + N_out). Compares range / hash / greedy / greedy+refine on
// power-law and clique-structured graphs.
//
// Usage: bench_partitioner [--users=N] [--partitions=N]
#include <cstdio>

#include "graph/generators.h"
#include "partition/cost.h"
#include "partition/partitioner.h"
#include "partition/refinement.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace knnpc;

namespace {

void report(const char* graph_name, const Digraph& graph, PartitionId m) {
  std::printf("\n%s (n=%u, e=%zu, m=%u)\n", graph_name,
              graph.num_vertices(), graph.num_edges(), m);
  std::printf("%-16s | %12s %12s %10s | %8s\n", "partitioner",
              "sum(Nin+Nout)", "external", "edge cut", "time s");
  std::printf("---------------------------------------------------------"
              "-------\n");
  for (const char* name : {"range", "hash", "degree-range", "greedy"}) {
    Timer timer;
    auto assignment = make_partitioner(name)->assign(graph, m);
    const double assign_s = timer.elapsed_seconds();
    const auto cost = partition_cost(graph, assignment);
    const auto ext = external_partition_cost(graph, assignment);
    std::printf("%-16s | %12zu %12zu %10zu | %8.3f\n", name, cost.total,
                ext.total, edge_cut(graph, assignment), assign_s);
    if (std::string(name) == "greedy") {
      timer.reset();
      refine_swaps(graph, assignment, 8, 4096);
      const double refine_s = timer.elapsed_seconds();
      const auto refined = partition_cost(graph, assignment);
      const auto refined_ext = external_partition_cost(graph, assignment);
      std::printf("%-16s | %12zu %12zu %10zu | %8.3f\n", "greedy+refine",
                  refined.total, refined_ext.total,
                  edge_cut(graph, assignment), assign_s + refine_s);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "vertices in the random graphs", 4000);
  opts.add_uint("partitions", "partition count m", 16);
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto m = static_cast<PartitionId>(opts.get_uint("partitions"));

  std::printf("Abl-1: phase-1 objective across partitioners\n");

  Rng rng(21);
  report("chung-lu power law", Digraph(chung_lu(n, n * 5, 2.3, rng)), m);

  // Clique-of-communities graph: strong locality for greedy to find.
  EdgeList cliques;
  const VertexId community = 50;
  const VertexId communities = n / community;
  cliques.num_vertices = communities * community;
  Rng crng(22);
  for (VertexId c = 0; c < communities; ++c) {
    const VertexId base = c * community;
    for (VertexId i = 0; i < community; ++i) {
      for (VertexId j = 0; j < community; ++j) {
        if (i != j && crng.next_bool(0.3)) {
          cliques.edges.push_back({base + i, base + j});
        }
      }
    }
  }
  report("planted communities", Digraph(cliques), m);

  Rng erng(23);
  report("erdos-renyi (no locality)", Digraph(erdos_renyi(n, n * 5, erng)),
         m);

  std::printf("\nExpected shape: greedy < range < hash on graphs with "
              "locality; all\nstrategies converge on structure-free ER "
              "graphs; refinement never worsens.\n");
  return 0;
}
