// Abl-5: engine design-choice ablations (DESIGN.md §5) — each knob the
// engine exposes, toggled on the same workload:
//   reverse candidates on/off, candidate sampling rate, incremental
//   repartitioning period, read() vs mmap storage, random restarts.
// Reports per-iteration time, tuple volume, and final recall vs brute
// force.
//
// Usage: bench_ablation [--users=N] [--k=N]
#include <cstdio>
#include <functional>
#include <string>

#include "core/brute_force.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace knnpc;

namespace {

struct Variant {
  std::string name;
  std::function<void(EngineConfig&)> tweak;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 4000);
  opts.add_uint("k", "neighbours per user", 10);
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto k = static_cast<std::uint32_t>(opts.get_uint("k"));

  Rng rng(4242);
  ClusteredGenConfig pconfig;
  pconfig.base.num_users = n;
  pconfig.base.num_items = 2000;
  pconfig.num_clusters = 40;
  const auto profiles = clustered_profiles(pconfig, rng);
  const InMemoryProfileStore store{profiles};
  const KnnGraph exact = brute_force_knn(store, k, SimilarityMeasure::Cosine, 8);

  const Variant variants[] = {
      {"baseline", [](EngineConfig&) {}},
      {"+reverse", [](EngineConfig& c) { c.include_reverse = true; }},
      {"rho=0.5", [](EngineConfig& c) { c.sample_rate = 0.5; }},
      {"rho=0.25", [](EngineConfig& c) { c.sample_rate = 0.25; }},
      {"repart every 4", [](EngineConfig& c) { c.repartition_every = 4; }},
      {"mmap storage",
       [](EngineConfig& c) { c.storage_mode = PartitionStore::Mode::Mmap; }},
      {"no restarts", [](EngineConfig& c) { c.random_candidates = 0; }},
      {"greedy partition",
       [](EngineConfig& c) { c.partitioner = "greedy"; }},
      {"cost-aware trav.",
       [](EngineConfig& c) { c.heuristic = "cost-aware"; }},
  };

  std::printf("Abl-5: engine design-choice ablation (n=%u, k=%u, m=8, "
              "run to change<0.01, max 15 iters)\n", n, k);
  std::printf("%-18s | %5s %9s %12s %10s | %8s\n", "variant", "iters",
              "s/iter", "tuples/iter", "MB/iter", "recall@K");
  std::printf("------------------------------------------------------------"
              "-----------\n");
  for (const Variant& variant : variants) {
    EngineConfig config;
    config.k = k;
    config.num_partitions = 8;
    variant.tweak(config);
    KnnEngine engine(config, profiles);
    Timer timer;
    const RunStats run = engine.run(15, 0.01);
    const double seconds = timer.elapsed_seconds();
    std::uint64_t tuples = 0;
    std::uint64_t bytes = 0;
    for (const auto& it : run.iterations) {
      tuples += it.unique_tuples;
      bytes += it.io.bytes_read + it.io.bytes_written;
    }
    const auto iters = run.iterations.size();
    std::printf("%-18s | %5zu %9.3f %12llu %10.1f | %8.3f\n",
                variant.name.c_str(), iters, seconds / iters,
                static_cast<unsigned long long>(tuples / iters),
                static_cast<double>(bytes) / iters / 1e6,
                recall_at_k(engine.graph(), exact));
  }
  std::printf("\nExpected shape: +reverse converges in fewer iterations at "
              "higher per-iteration\ncost; sampling trades recall for tuple "
              "volume; repartition reuse and mmap cut\nper-iteration cost "
              "without hurting recall; no-restarts matches here (static\n"
              "profiles) but breaks dynamic-profile recovery (see "
              "engine tests).\n");
  return 0;
}
