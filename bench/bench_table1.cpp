// Table 1 — "# Load/unload operations using PI graph."
//
// Methodology (paper §2.1): interpret each network directly as a PI graph
// and count partition load/unload operations under the three traversal
// heuristics with two resident slots. Datasets are synthetic power-law
// stand-ins with the paper's exact node/edge counts (DESIGN.md §4), so
// compare *shape* (ordering and relative gaps), not absolute values.
//
// Usage: bench_table1 [--seed=N] [--slots=N]
#include <algorithm>
#include <cstdio>

#include "core/datasets.h"
#include "graph/digraph.h"
#include "pigraph/heuristics.h"
#include "pigraph/simulator.h"
#include "profiles/similarity_kernels.h"
#include "util/options.h"
#include "util/timer.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("seed", "dataset generation seed", 2014);
  opts.add_uint("slots", "resident partition slots", 2);
  opts.add_double("gamma", "power-law exponent of the stand-ins", 2.01);
  opts.add_uint("seeds", "stand-in instances to average over", 1);
  opts.add_flag("json", "emit results as JSON instead of a table");
  if (!opts.parse(argc, argv)) return 0;
  const auto seed = opts.get_uint("seed");
  const auto slots = static_cast<std::size_t>(opts.get_uint("slots"));
  const double gamma = opts.get_double("gamma");
  const bool json = opts.get_flag("json");

  if (json) {
    // kernel_backend is informational only — this bench never scores
    // profiles, but the dashboard groups runs by the host's resolved ISA.
    std::printf("{\"bench\":\"table1\",\"slots\":%zu,\"seed\":%llu,"
                "\"kernel_backend\":\"%s\",\"datasets\":[",
                slots, static_cast<unsigned long long>(seed),
                kernel_backend_name(resolve_kernel_backend("auto")));
  } else {
    std::printf("Table 1: # load/unload operations using PI graph "
                "(slots=%zu, seed=%llu)\n",
                slots, static_cast<unsigned long long>(seed));
    std::printf("%-12s %8s %8s | %10s %10s %10s | %7s %7s | %s\n", "Dataset",
                "Nodes", "Edges", "Seq.", "High-Low", "Low-High", "HL/Seq",
                "LH/Seq", "paper Seq/HL/LH");
    std::printf("-----------------------------------------------------------"
                "--"
                "----------------------------------------------\n");
  }
  bool first_row = true;

  const auto num_seeds =
      std::max<std::uint64_t>(opts.get_uint("seeds"), 1);
  const LoadUnloadSimulator sim(slots);
  for (const Table1Dataset& row : table1_datasets()) {
    // Average over `seeds` independent stand-in instances (seed, seed+1,
    // ...) so the reported numbers aren't an artefact of one draw.
    SimulationResult seq{};
    SimulationResult high_low{};
    SimulationResult low_high{};
    for (std::uint64_t s = 0; s < num_seeds; ++s) {
      const EdgeList graph = generate_table1_graph(row, seed + s, gamma);
      const PiGraph pi = PiGraph::from_digraph(Digraph(graph));
      const auto r_seq = sim.run(pi, SequentialHeuristic{});
      const auto r_hl = sim.run(pi, DegreeHeuristic{true});
      const auto r_lh = sim.run(pi, DegreeHeuristic{false});
      seq.loads += r_seq.loads;
      seq.unloads += r_seq.unloads;
      high_low.loads += r_hl.loads;
      high_low.unloads += r_hl.unloads;
      low_high.loads += r_lh.loads;
      low_high.unloads += r_lh.unloads;
    }
    seq.loads /= num_seeds;
    seq.unloads /= num_seeds;
    high_low.loads /= num_seeds;
    high_low.unloads /= num_seeds;
    low_high.loads /= num_seeds;
    low_high.unloads /= num_seeds;
    if (json) {
      std::printf("%s{\"name\":\"%s\",\"nodes\":%u,\"edges\":%zu,"
                  "\"seq\":%llu,\"high_low\":%llu,\"low_high\":%llu,"
                  "\"hl_over_seq\":%.5f,\"lh_over_seq\":%.5f}",
                  first_row ? "" : ",", row.name.c_str(), row.nodes,
                  row.edges,
                  static_cast<unsigned long long>(seq.operations()),
                  static_cast<unsigned long long>(high_low.operations()),
                  static_cast<unsigned long long>(low_high.operations()),
                  static_cast<double>(high_low.operations()) /
                      static_cast<double>(seq.operations()),
                  static_cast<double>(low_high.operations()) /
                      static_cast<double>(seq.operations()));
      first_row = false;
    } else {
      std::printf(
          "%-12s %8u %8zu | %10llu %10llu %10llu | %6.3f%% %6.3f%% | "
          "%zu/%zu/%zu\n",
          row.name.c_str(), row.nodes, row.edges,
          static_cast<unsigned long long>(seq.operations()),
          static_cast<unsigned long long>(high_low.operations()),
          static_cast<unsigned long long>(low_high.operations()),
          100.0 * static_cast<double>(high_low.operations()) /
              static_cast<double>(seq.operations()),
          100.0 * static_cast<double>(low_high.operations()) /
              static_cast<double>(seq.operations()),
          row.paper_seq, row.paper_high_low, row.paper_low_high);
    }
  }
  if (json) {
    std::printf("]}\n");
  } else {
    std::printf(
        "\nExpected shape (paper): degree-based heuristics need ~5-15%% "
        "fewer\noperations than Sequential on these degree-skewed "
        "graphs.\n");
  }
  return 0;
}
