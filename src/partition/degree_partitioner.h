// Degree-ordered range partitioner: vertices sorted by total degree
// (descending) and cut into contiguous chunks of that order.
//
// Groups hubs together so the partitions holding them concentrate the
// high-traffic tuple bundles — a cheap preprocessing trick (one sort)
// between plain range and the greedy streaming partitioner.
#pragma once

#include "partition/partitioner.h"

namespace knnpc {

class DegreeRangePartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionAssignment assign(const Digraph& graph,
                                           PartitionId m) const override;
  [[nodiscard]] std::string name() const override { return "degree-range"; }
};

}  // namespace knnpc
