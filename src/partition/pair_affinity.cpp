#include "partition/pair_affinity.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace knnpc {

PartitionAssignment pair_affinity_shard_split(
    const PartitionAssignment& partitions, PartitionId shards) {
  if (shards == 0) {
    throw std::invalid_argument(
        "pair_affinity_shard_split: shards must be > 0");
  }
  if (!partitions.fully_assigned()) {
    throw std::invalid_argument(
        "pair_affinity_shard_split: partition assignment incomplete");
  }
  const PartitionId m = partitions.num_partitions();
  const VertexId n = partitions.num_vertices();

  // Group the m partitions into `shards` contiguous groups with balanced
  // user counts (weight 1 per partition when the store is empty, so the
  // grouping stays total). With shards >= m each partition is its own
  // group.
  std::vector<PartitionId> group(m, 0);
  if (shards >= m) {
    for (PartitionId p = 0; p < m; ++p) group[p] = p;
  } else {
    const std::vector<std::size_t> sizes = partitions.sizes();
    std::uint64_t total = 0;
    for (const std::size_t s : sizes) total += s;
    const bool by_count = total == 0;
    if (by_count) total = m;
    PartitionId g = 0;
    std::uint64_t cum = 0;
    for (PartitionId p = 0; p < m; ++p) {
      group[p] = g;
      cum += by_count ? 1 : sizes[p];
      const PartitionId remaining_parts = m - p - 1;
      const PartitionId remaining_groups = shards - g - 1;
      if (g + 1 < shards &&
          (cum * shards >= total * (g + 1) ||
           remaining_parts == remaining_groups)) {
        ++g;
      }
    }
  }

  std::vector<PartitionId> owner(n, kInvalidPartition);
  for (VertexId u = 0; u < n; ++u) {
    owner[u] = group[partitions.owner(u)];
  }
  return PartitionAssignment(std::move(owner), shards);
}

}  // namespace knnpc
