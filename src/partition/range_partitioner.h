// Contiguous-range partitioner: vertex v goes to partition v / ceil(n/m).
// The paper's strict "fixed number of users n/m" baseline; also the layout
// GraphChi's sharding produces.
#pragma once

#include "partition/partitioner.h"

namespace knnpc {

class RangePartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionAssignment assign(const Digraph& graph,
                                           PartitionId m) const override;
  [[nodiscard]] std::string name() const override { return "range"; }
};

}  // namespace knnpc
