// The paper's phase-1 partitioning objective:
//   min Σ_i (N_in_i + N_out_i)
// where N_in_i  = # unique source vertices of in-edges into R_i, and
//       N_out_i = # unique destination vertices of out-edges leaving R_i.
//
// Intuition: N_in_i + N_out_i is how many *foreign* profiles phase 4 must
// pair with partition i, i.e. its data-locality deficit.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"
#include "partition/assignment.h"

namespace knnpc {

struct PartitionCost {
  /// Per-partition N_in_i (unique in-edge sources).
  std::vector<std::size_t> unique_in_sources;
  /// Per-partition N_out_i (unique out-edge destinations).
  std::vector<std::size_t> unique_out_destinations;
  /// Σ_i (N_in_i + N_out_i) — the objective.
  std::size_t total = 0;
};

/// Evaluates the objective. Follows the paper's definition literally:
/// *all* unique endpoint vertices count, including those inside R_i itself
/// (internal endpoints still occupy partition working-set space; and the
/// formula in the paper carries no "external-only" qualifier).
PartitionCost partition_cost(const Digraph& graph,
                             const PartitionAssignment& assignment);

/// Variant counting only *external* endpoints (owner != i). Strictly a
/// locality measure; exposed for the partitioner ablation bench.
PartitionCost external_partition_cost(const Digraph& graph,
                                      const PartitionAssignment& assignment);

/// Number of edges whose endpoints lie in different partitions (classic
/// edge-cut, reported alongside the paper's objective for context).
std::size_t edge_cut(const Digraph& graph,
                     const PartitionAssignment& assignment);

}  // namespace knnpc
