#include "partition/assignment.h"

#include <algorithm>
#include <stdexcept>

namespace knnpc {

PartitionAssignment::PartitionAssignment(VertexId num_vertices,
                                         PartitionId num_partitions)
    : owner_(num_vertices, kInvalidPartition), m_(num_partitions) {
  if (num_partitions == 0) {
    throw std::invalid_argument("PartitionAssignment: m must be > 0");
  }
}

PartitionAssignment::PartitionAssignment(std::vector<PartitionId> owner,
                                         PartitionId num_partitions)
    : owner_(std::move(owner)), m_(num_partitions) {
  if (num_partitions == 0) {
    throw std::invalid_argument("PartitionAssignment: m must be > 0");
  }
  for (PartitionId p : owner_) {
    if (p != kInvalidPartition && p >= m_) {
      throw std::invalid_argument("PartitionAssignment: owner out of range");
    }
  }
}

void PartitionAssignment::assign(VertexId v, PartitionId p) {
  if (p >= m_) {
    throw std::invalid_argument("PartitionAssignment: partition out of range");
  }
  owner_.at(v) = p;
}

bool PartitionAssignment::fully_assigned() const noexcept {
  return std::all_of(owner_.begin(), owner_.end(),
                     [](PartitionId p) { return p != kInvalidPartition; });
}

std::vector<VertexId> PartitionAssignment::members(PartitionId p) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < owner_.size(); ++v) {
    if (owner_[v] == p) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> PartitionAssignment::sizes() const {
  std::vector<std::size_t> out(m_, 0);
  for (PartitionId p : owner_) {
    if (p != kInvalidPartition) ++out[p];
  }
  return out;
}

double PartitionAssignment::imbalance() const {
  if (owner_.empty()) return 1.0;
  const auto counts = sizes();
  const std::size_t max_size = *std::max_element(counts.begin(), counts.end());
  const std::size_t ideal = (owner_.size() + m_ - 1) / m_;
  return ideal == 0 ? 1.0
                    : static_cast<double>(max_size) /
                          static_cast<double>(ideal);
}

}  // namespace knnpc
