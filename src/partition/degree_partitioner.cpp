#include "partition/degree_partitioner.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace knnpc {

PartitionAssignment DegreeRangePartitioner::assign(const Digraph& graph,
                                                   PartitionId m) const {
  if (m == 0) {
    throw std::invalid_argument("DegreeRangePartitioner: m must be > 0");
  }
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return graph.degree(a) > graph.degree(b);
  });
  PartitionAssignment assignment(n, m);
  const VertexId chunk = n == 0 ? 1 : (n + m - 1) / m;
  for (VertexId rank = 0; rank < n; ++rank) {
    assignment.assign(order[rank],
                      std::min<PartitionId>(rank / chunk, m - 1));
  }
  return assignment;
}

}  // namespace knnpc
