#include "partition/hash_partitioner.h"

#include <stdexcept>
#include <vector>

#include "util/hash.h"

namespace knnpc {

PartitionAssignment HashPartitioner::assign(const Digraph& graph,
                                            PartitionId m) const {
  if (m == 0) throw std::invalid_argument("HashPartitioner: m must be > 0");
  const VertexId n = graph.num_vertices();
  PartitionAssignment assignment(n, m);
  const std::size_t capacity = (n + m - 1) / m;
  std::vector<std::size_t> fill(m, 0);
  for (VertexId v = 0; v < n; ++v) {
    PartitionId p = mix32(v) % m;
    // Linear probe to the next partition with room (keeps sizes at n/m,
    // matching the paper's fixed-size constraint).
    while (fill[p] >= capacity) p = (p + 1) % m;
    assignment.assign(v, p);
    ++fill[p];
  }
  return assignment;
}

}  // namespace knnpc
