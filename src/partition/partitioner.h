// Partitioner strategy interface (phase 1).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "graph/digraph.h"
#include "partition/assignment.h"

namespace knnpc {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Splits the graph's vertices into `m` partitions. Implementations must
  /// return a fully-assigned, capacity-respecting assignment (each
  /// partition holds at most ceil(n/m) * slack vertices).
  [[nodiscard]] virtual PartitionAssignment assign(const Digraph& graph,
                                                   PartitionId m) const = 0;

  /// Strategy name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Factory: "range" | "hash" | "greedy". Throws std::invalid_argument on
/// unknown names.
std::unique_ptr<Partitioner> make_partitioner(std::string_view name);

}  // namespace knnpc
