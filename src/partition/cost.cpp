#include "partition/cost.h"

#include <unordered_set>

namespace knnpc {
namespace {

PartitionCost cost_impl(const Digraph& graph,
                        const PartitionAssignment& assignment,
                        bool external_only) {
  const PartitionId m = assignment.num_partitions();
  PartitionCost cost;
  cost.unique_in_sources.assign(m, 0);
  cost.unique_out_destinations.assign(m, 0);

  // One pass per partition with hash sets of unique endpoints.
  std::vector<std::unordered_set<VertexId>> in_sources(m);
  std::vector<std::unordered_set<VertexId>> out_dests(m);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const PartitionId pv = assignment.owner(v);
    for (VertexId s : graph.in_neighbors(v)) {
      if (external_only && assignment.owner(s) == pv) continue;
      in_sources[pv].insert(s);
    }
    for (VertexId d : graph.out_neighbors(v)) {
      if (external_only && assignment.owner(d) == pv) continue;
      out_dests[pv].insert(d);
    }
  }
  for (PartitionId p = 0; p < m; ++p) {
    cost.unique_in_sources[p] = in_sources[p].size();
    cost.unique_out_destinations[p] = out_dests[p].size();
    cost.total += in_sources[p].size() + out_dests[p].size();
  }
  return cost;
}

}  // namespace

PartitionCost partition_cost(const Digraph& graph,
                             const PartitionAssignment& assignment) {
  return cost_impl(graph, assignment, /*external_only=*/false);
}

PartitionCost external_partition_cost(const Digraph& graph,
                                      const PartitionAssignment& assignment) {
  return cost_impl(graph, assignment, /*external_only=*/true);
}

std::size_t edge_cut(const Digraph& graph,
                     const PartitionAssignment& assignment) {
  std::size_t cut = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId d : graph.out_neighbors(v)) {
      if (assignment.owner(v) != assignment.owner(d)) ++cut;
    }
  }
  return cut;
}

}  // namespace knnpc
