#include "partition/refinement.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "partition/cost.h"
#include "util/rng.h"

namespace knnpc {
namespace {

/// Incremental objective bookkeeping: per partition, a multiset (counted
/// hash map) of endpoint vertices contributed by member edges. The unique
/// count is the map's size; moving one vertex updates only its incident
/// endpoints.
class CostTracker {
 public:
  CostTracker(const Digraph& graph, const PartitionAssignment& assignment)
      : graph_(graph),
        owner_(assignment.num_vertices()),
        in_counts_(assignment.num_partitions()),
        out_counts_(assignment.num_partitions()) {
    for (VertexId v = 0; v < assignment.num_vertices(); ++v) {
      owner_[v] = assignment.owner(v);
    }
    for (VertexId v = 0; v < assignment.num_vertices(); ++v) {
      add_vertex_contrib(v, owner_[v]);
    }
  }

  [[nodiscard]] std::size_t total() const {
    std::size_t sum = 0;
    for (const auto& s : in_counts_) sum += s.size();
    for (const auto& s : out_counts_) sum += s.size();
    return sum;
  }

  [[nodiscard]] PartitionId owner(VertexId v) const { return owner_[v]; }

  void move(VertexId v, PartitionId to) {
    remove_vertex_contrib(v, owner_[v]);
    owner_[v] = to;
    add_vertex_contrib(v, to);
  }

 private:
  void add_vertex_contrib(VertexId v, PartitionId p) {
    // v's in-edges (s, v) contribute source s to N_in of p; v's out-edges
    // (v, d) contribute destination d to N_out of p.
    for (VertexId s : graph_.in_neighbors(v)) bump(in_counts_[p], s, +1);
    for (VertexId d : graph_.out_neighbors(v)) bump(out_counts_[p], d, +1);
  }

  void remove_vertex_contrib(VertexId v, PartitionId p) {
    for (VertexId s : graph_.in_neighbors(v)) bump(in_counts_[p], s, -1);
    for (VertexId d : graph_.out_neighbors(v)) bump(out_counts_[p], d, -1);
  }

  static void bump(std::unordered_map<VertexId, std::int64_t>& counts,
                   VertexId key, std::int64_t delta) {
    auto it = counts.try_emplace(key, 0).first;
    it->second += delta;
    if (it->second == 0) counts.erase(it);
  }

  const Digraph& graph_;
  std::vector<PartitionId> owner_;
  std::vector<std::unordered_map<VertexId, std::int64_t>> in_counts_;
  std::vector<std::unordered_map<VertexId, std::int64_t>> out_counts_;
};

}  // namespace

RefinementResult refine_swaps(const Digraph& graph,
                              PartitionAssignment& assignment,
                              std::size_t max_rounds,
                              std::size_t samples_per_round,
                              std::uint64_t seed, double sideways_prob) {
  RefinementResult result;
  const VertexId n = assignment.num_vertices();
  if (n < 2 || assignment.num_partitions() < 2) {
    result.cost_before = result.cost_after =
        partition_cost(graph, assignment).total;
    return result;
  }
  CostTracker tracker(graph, assignment);
  result.cost_before = tracker.total();
  Rng rng(seed);

  std::size_t stagnant_rounds = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::size_t improved_this_round = 0;
    for (std::size_t s = 0; s < samples_per_round; ++s) {
      const auto a = static_cast<VertexId>(rng.next_below(n));
      const auto b = static_cast<VertexId>(rng.next_below(n));
      const PartitionId pa = tracker.owner(a);
      const PartitionId pb = tracker.owner(b);
      if (a == b || pa == pb) continue;
      const std::size_t before = tracker.total();
      tracker.move(a, pb);
      tracker.move(b, pa);
      const std::size_t after = tracker.total();
      const bool keep =
          after < before ||
          (after == before && rng.next_bool(sideways_prob));
      if (!keep) {
        tracker.move(a, pa);  // revert
        tracker.move(b, pb);
      } else if (after < before) {
        ++improved_this_round;
        ++result.swaps_applied;
      }
    }
    // With sideways moves enabled, allow plateau walking for a couple of
    // rounds before giving up; without them, stop at the first dry round.
    stagnant_rounds = improved_this_round == 0 ? stagnant_rounds + 1 : 0;
    const std::size_t patience = sideways_prob > 0.0 ? 3 : 1;
    if (stagnant_rounds >= patience) break;
  }

  for (VertexId v = 0; v < n; ++v) assignment.assign(v, tracker.owner(v));
  result.cost_after = tracker.total();
  return result;
}

}  // namespace knnpc
