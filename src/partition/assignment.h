// Phase 1 output: which partition R_i owns each user vertex.
//
// The paper fixes partition sizes at n/m users each; we allow a small
// imbalance tolerance (the greedy partitioner needs slack to do anything
// useful) and expose balance checks.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace knnpc {

class PartitionAssignment {
 public:
  PartitionAssignment() = default;

  /// All vertices initially unassigned (kInvalidPartition).
  PartitionAssignment(VertexId num_vertices, PartitionId num_partitions);

  /// Builds directly from an owner vector; validates owners < m.
  PartitionAssignment(std::vector<PartitionId> owner,
                      PartitionId num_partitions);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(owner_.size());
  }
  [[nodiscard]] PartitionId num_partitions() const noexcept { return m_; }

  [[nodiscard]] PartitionId owner(VertexId v) const { return owner_.at(v); }

  /// The whole owner map (index = vertex id) — the view the serving
  /// layer's SnapshotSink publication hook hands out per iteration.
  [[nodiscard]] const std::vector<PartitionId>& owners() const noexcept {
    return owner_;
  }
  void assign(VertexId v, PartitionId p);

  [[nodiscard]] bool fully_assigned() const noexcept;

  /// Vertices owned by partition p, in ascending id order.
  [[nodiscard]] std::vector<VertexId> members(PartitionId p) const;

  /// Number of vertices in each partition.
  [[nodiscard]] std::vector<std::size_t> sizes() const;

  /// max partition size / ceil(n/m); 1.0 means perfectly balanced.
  [[nodiscard]] double imbalance() const;

 private:
  std::vector<PartitionId> owner_;
  PartitionId m_ = 0;
};

}  // namespace knnpc
