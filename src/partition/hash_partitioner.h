// Hash partitioner: v goes to mix32(v) % m with capacity overflow spill.
// Destroys locality by construction — the "random" baseline the greedy
// partitioner must beat on the paper's objective.
#pragma once

#include "partition/partitioner.h"

namespace knnpc {

class HashPartitioner final : public Partitioner {
 public:
  [[nodiscard]] PartitionAssignment assign(const Digraph& graph,
                                           PartitionId m) const override;
  [[nodiscard]] std::string name() const override { return "hash"; }
};

}  // namespace knnpc
