// Greedy streaming partitioner (LDG-style, Stanton & Kliot KDD'12 adapted
// to the paper's objective).
//
// Vertices are streamed in descending-degree order; each is placed in the
// partition where it adds the fewest *new* unique external endpoints
// (the marginal Σ(N_in + N_out) increase), weighted by remaining capacity
// so sizes stay within ceil(n/m).
#pragma once

#include <cstdint>

#include "partition/partitioner.h"

namespace knnpc {

class GreedyPartitioner final : public Partitioner {
 public:
  /// `seed` breaks score ties deterministically.
  explicit GreedyPartitioner(std::uint64_t seed = 42) : seed_(seed) {}

  [[nodiscard]] PartitionAssignment assign(const Digraph& graph,
                                           PartitionId m) const override;
  [[nodiscard]] std::string name() const override { return "greedy"; }

 private:
  std::uint64_t seed_;
};

}  // namespace knnpc
