// Pair-affinity shard split: align the user -> shard map with the
// user -> partition map.
//
// The sharded driver (core/shard_driver.h) splits consumers by a second,
// independent partitioner over the users. With an arbitrary split, each
// consumer's tuples reach into almost every partition, so every worker
// streams nearly all m partitions through its phase-4 cache. Grouping the
// m partitions into S contiguous groups and assigning each user to the
// group of its own partition concentrates a consumer's tuple endpoints in
// its partition group: its PI graph — and therefore its schedule and its
// partition reads — shrinks by roughly a factor of S.
//
// The split changes only which worker scores which users, never the
// scores: the merged G(t+1) stays bit-identical to the serial engine (the
// driver's split-independence contract).
#pragma once

#include "partition/assignment.h"
#include "util/types.h"

namespace knnpc {

/// Groups the partitions of `partitions` into `shards` contiguous,
/// user-count-balanced groups and returns the induced user -> shard
/// assignment: shard(u) = group(partition_owner(u)). Deterministic in its
/// inputs. When shards >= num_partitions, group(p) == p (surplus shards
/// own no users — the driver tolerates empty consumers). Throws
/// std::invalid_argument when `shards` is 0 or `partitions` is not fully
/// assigned.
PartitionAssignment pair_affinity_shard_split(
    const PartitionAssignment& partitions, PartitionId shards);

}  // namespace knnpc
