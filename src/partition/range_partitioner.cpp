#include "partition/range_partitioner.h"

#include <stdexcept>

namespace knnpc {

PartitionAssignment RangePartitioner::assign(const Digraph& graph,
                                             PartitionId m) const {
  if (m == 0) throw std::invalid_argument("RangePartitioner: m must be > 0");
  const VertexId n = graph.num_vertices();
  PartitionAssignment assignment(n, m);
  const VertexId chunk = (n + m - 1) / m;  // ceil(n/m)
  for (VertexId v = 0; v < n; ++v) {
    assignment.assign(v, chunk == 0 ? 0 : std::min<PartitionId>(v / chunk, m - 1));
  }
  return assignment;
}

}  // namespace knnpc
