#include <stdexcept>

#include "partition/degree_partitioner.h"
#include "partition/greedy_partitioner.h"
#include "partition/hash_partitioner.h"
#include "partition/partitioner.h"
#include "partition/range_partitioner.h"

namespace knnpc {

std::unique_ptr<Partitioner> make_partitioner(std::string_view name) {
  if (name == "range") return std::make_unique<RangePartitioner>();
  if (name == "hash") return std::make_unique<HashPartitioner>();
  if (name == "greedy") return std::make_unique<GreedyPartitioner>();
  if (name == "degree-range") {
    return std::make_unique<DegreeRangePartitioner>();
  }
  throw std::invalid_argument("unknown partitioner: " + std::string(name));
}

}  // namespace knnpc
