#include "partition/greedy_partitioner.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace knnpc {

PartitionAssignment GreedyPartitioner::assign(const Digraph& graph,
                                              PartitionId m) const {
  if (m == 0) throw std::invalid_argument("GreedyPartitioner: m must be > 0");
  const VertexId n = graph.num_vertices();
  PartitionAssignment assignment(n, m);
  const std::size_t capacity = (n + m - 1) / m;

  // Stream order: descending total degree (hubs placed first anchor their
  // neighbourhoods), id ascending as tie-break for determinism.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const std::size_t da = graph.degree(a);
    const std::size_t db = graph.degree(b);
    return da != db ? da > db : a < b;
  });

  // endpoint_sets[p] approximates the unique external endpoint set of p:
  // all neighbours (either direction) of members of p.
  std::vector<std::unordered_set<VertexId>> endpoint_sets(m);
  std::vector<std::size_t> fill(m, 0);
  Rng rng(seed_);

  for (VertexId v : order) {
    // Count how many neighbours of v are *already counted* in each
    // partition's endpoint set — placing v there adds fewer new uniques.
    double best_score = -1e300;
    PartitionId best = 0;
    for (PartitionId p = 0; p < m; ++p) {
      if (fill[p] >= capacity) continue;
      std::size_t already = 0;
      std::size_t neighbors = 0;
      auto count = [&](VertexId u) {
        ++neighbors;
        if (endpoint_sets[p].contains(u)) ++already;
      };
      for (VertexId u : graph.out_neighbors(v)) count(u);
      for (VertexId u : graph.in_neighbors(v)) count(u);
      // LDG balance factor: prefer emptier partitions among equal overlap.
      const double balance =
          1.0 - static_cast<double>(fill[p]) / static_cast<double>(capacity);
      const double score =
          static_cast<double>(already) * balance +
          1e-9 * rng.next_double();  // deterministic-seed tie noise
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    assignment.assign(v, best);
    ++fill[best];
    for (VertexId u : graph.out_neighbors(v)) endpoint_sets[best].insert(u);
    for (VertexId u : graph.in_neighbors(v)) endpoint_sets[best].insert(u);
  }
  return assignment;
}

}  // namespace knnpc
