// Kernighan–Lin-style local refinement on the paper's objective.
//
// Takes any assignment and repeatedly swaps vertex pairs across partitions
// while Σ(N_in + N_out) strictly decreases. Swaps (not moves) preserve the
// fixed n/m partition sizes the paper requires.
#pragma once

#include <cstddef>

#include "graph/digraph.h"
#include "partition/assignment.h"

namespace knnpc {

struct RefinementResult {
  std::size_t swaps_applied = 0;
  std::size_t cost_before = 0;
  std::size_t cost_after = 0;
};

/// Hill-climbs by sampled pair swaps: up to `max_rounds` rounds, each
/// examining `samples_per_round` random candidate swaps and applying those
/// that improve the objective. The objective has large plateaus (moving a
/// vertex between partitions that both already count its endpoints changes
/// nothing), so cost-neutral swaps are also accepted with probability
/// `sideways_prob` — a random walk along the plateau that never worsens
/// the objective. Deterministic for a fixed seed.
RefinementResult refine_swaps(const Digraph& graph,
                              PartitionAssignment& assignment,
                              std::size_t max_rounds = 8,
                              std::size_t samples_per_round = 2048,
                              std::uint64_t seed = 7,
                              double sideways_prob = 0.2);

}  // namespace knnpc
