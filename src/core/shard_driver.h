// Sharded execution driver: one engine worker per user shard over one
// shared on-disk partition store.
//
// The paper's scaling argument is that the pipeline's phases communicate
// only through files — partitions (phase 1 -> 2/4) and tuple shards
// (phase 2 -> 4) — so nothing in memory has to be split to add workers.
// This driver takes that literally:
//
//   driver   phase 1: partition G(t) once, write the shared partition
//            store; split the user universe into S shards with a
//            src/partition partitioner.
//   worker w phase 2 (producer wave): generate candidate tuples from its
//            slice of the partitions (p ≡ w mod S) plus the random
//            restarts of its own users, and route every tuple to the
//            shard owning its source user through one spool file per
//            (producer, consumer) pair (storage/shard_writer.h).
//   worker c phases 2b-4 (consumer wave): dedup its spooled tuples into
//            its own hash table H_c, build its own PI graph + schedule,
//            stream the shared read-only partition store through a
//            private 2-slot cache, and keep top-K for its users only.
//   driver   merge the per-shard graphs (staticgraph/sharded_graph.h's
//            ShardedKnnGraph) and run phase 5 on the shared profiles.
//
// Determinism contract (mirrors PR 2's thread-count contract): the merged
// G(t+1) is bit-identical to the serial KnnEngine's for the same
// EngineConfig, for ANY shard count. It holds because (a) each user's
// top-K kept set is a pure function of its unique candidate SET — the
// accumulator keeps "top K by (score desc, id asc)" regardless of offer
// order (core/topk.cpp) — and (b) phase 2 generates a
// decomposition-independent candidate set: sampling and restart RNG
// streams are derived per partition / per user (core/tuple_generation.h)
// and dedup happens consumer-side, where all tuples of a given source
// user meet. shard_driver_test asserts the contract for S in {1,2,3,5},
// including the spill-scores path.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "graph/knn_graph.h"
#include "profiles/profile_store.h"
#include "profiles/update_queue.h"
#include "util/types.h"

namespace knnpc {

/// Auto shard mode: one worker per this many candidate edges (n * k),
/// i.e. 4x the phase-4 per-thread granularity — a shard only pays off
/// once it can keep a few threads busy. At k=10 the second worker
/// arrives at 20k users (n*k = 2 * kWorkPerShard), growing to the
/// kMaxAutoShards cap near 80k.
inline constexpr std::uint64_t kWorkPerShard = 4 * kPhase4WorkPerThread;
inline constexpr std::uint32_t kMaxAutoShards = 8;

/// Resolves the shard-count knob: `requested > 0` is taken verbatim
/// (clamped to the user count); `requested == 0` is auto — hardware
/// concurrency clamped so every shard gets at least kWorkPerShard of the
/// n*k workload, capped at kMaxAutoShards. Always returns >= 1.
std::uint32_t resolve_shard_count(std::uint32_t requested,
                                  VertexId num_users, std::uint32_t k);

/// How the S workers execute one iteration's two waves.
enum class ShardWorkerMode {
  /// One thread per worker inside the driver's process (the PR 3 mode).
  Thread,
  /// One OS process per worker per wave: the driver re-executes
  /// `ShardConfig::worker_exe` in the hidden --shard-worker role, with
  /// all cross-worker state carried by files (plan, partition store,
  /// spools, ShardResult, stats sidecar — see ARCHITECTURE.md
  /// "Process-mode execution"). Crash containment per worker: a dead,
  /// non-zero or wedged worker is re-executed once; a second failure
  /// fails the iteration with a per-worker diagnostic. The merged graph
  /// stays bit-identical to thread mode and to the serial engine.
  Process,
  /// S worker processes spawned ONCE per run and kept alive across
  /// iterations: each worker opens the shared partition store once and
  /// is then driven through a length-prefixed command protocol over
  /// pipes (util/ipc_channel.h). One heavy RUN_ITERATION command per
  /// iteration carries every per-iteration delta at once — ownership
  /// maps only when they changed, G(t) as a changed-rows
  /// knn_graph_delta, P(t) as a changed-users profile_delta — the
  /// worker runs its produce wave, replies with a lightweight PRODUCED
  /// frame, and the driver releases the produce -> consume barrier with
  /// a payload-free GO once every shard has spooled; the consume wave
  /// then replies ITERATION_DONE with stats + ShardResult inline.
  /// Because profiles sync over the channel, persistent workers stream
  /// partitions edges-only: the shared store never writes or serves
  /// .prof files in this mode. Amortises the per-wave fork+execv, plan
  /// write, snapshot write and store re-open that Process mode pays.
  /// Supervision: a worker that dies, replies garbage, or exceeds
  /// `worker_timeout_s` on one command is SIGKILLed and respawned
  /// exactly once with a full graph + profile resync, and the wave
  /// replays deterministically (a consume-phase respawn re-runs only
  /// the consume body against the dead incarnation's intact spools); a
  /// second failure in the same wave throws with per-worker diagnostics
  /// and leaves G(t) untouched. Output stays bit-identical to every
  /// other mode.
  Persistent,
};

/// Parses "thread" | "process" | "persistent"; throws
/// std::invalid_argument.
ShardWorkerMode parse_worker_mode(std::string_view name);
/// Inverse of parse_worker_mode.
const char* worker_mode_name(ShardWorkerMode mode) noexcept;

struct ShardConfig {
  /// Engine workers S. 0 = auto (resolve_shard_count); 1 degenerates to
  /// the serial pipeline run through the driver's machinery.
  std::uint32_t shards = 0;
  /// How the user universe is split into shards: "range" | "hash" |
  /// "degree-range" | "greedy" (any src/partition strategy), or
  /// "pair-affinity" — shard(u) = group of u's partition, with the m
  /// partitions grouped into S contiguous balanced groups
  /// (partition/pair_affinity.h), so each consumer's phase-4 schedule
  /// touches ~m/S partitions instead of all m. The output graph does not
  /// depend on this choice — only load balance and partition reads do.
  std::string shard_partitioner = "range";
  /// Thread workers (default), per-wave processes, or long-lived
  /// processes driven over pipes.
  ShardWorkerMode worker_mode = ShardWorkerMode::Thread;
  /// Process/persistent modes: wall-clock budget for ONE wave of ONE
  /// worker (persistent mode: for one wave command's reply). A worker
  /// exceeding it is SIGKILLed, counted as wedged, and retried once like
  /// any other failure. Follows the uniform timeout contract
  /// (util/ipc_channel.h): < 0 disables the deadline (a truly wedged
  /// worker then hangs the run — keep a bound in production), 0 polls
  /// once and treats any still-pending reply as a timeout.
  double worker_timeout_s = 600.0;
  /// Process/persistent modes: binary to re-execute as --shard-worker;
  /// empty = the running executable (/proc/self/exe). The binary must
  /// dispatch maybe_run_shard_worker() before its own argv parsing —
  /// knnpc_run, bench_shards and the process-mode test suites all do.
  std::string worker_exe;
  /// Distributed persistent mode: worker-agent endpoints ("host:port",
  /// one `knnpc_run --worker-agent` process each). Non-empty turns the
  /// driver into a cluster coordinator — EVERY worker runs behind an
  /// agent (shard s connects to endpoint s*E/S: contiguous balanced
  /// shard groups), the plan + partition store sync to each agent
  /// content-addressed by FNV-1a checksums (storage/file_sync.h), and
  /// cross-agent spool traffic relays through the driver between the
  /// produce and consume phases. Supervision (retry-once, full resync,
  /// deadline kills) and the merged output are identical to local
  /// persistent mode — a remote worker kill mid-run still yields the
  /// serial engine's bit-exact graph. Requires worker_mode ==
  /// Persistent; worker_exe is ignored remotely (each agent decides its
  /// own binary).
  std::vector<std::string> worker_endpoints;
  /// Deadline for connecting to an agent and for each agent control
  /// round-trip (sync, spool relay, remote kill). Same < 0 / 0 / > 0
  /// contract as worker_timeout_s.
  double agent_timeout_s = 30.0;
};

/// Per-worker observability for one iteration.
struct ShardWorkerStats {
  std::uint32_t shard = 0;
  /// Users this shard owns (its top-K responsibility).
  VertexId users = 0;
  /// Tuples received through the spools (pre-dedup).
  std::uint64_t spooled_tuples = 0;
  /// Wall time of this worker's producer / consumer wave participation.
  double produce_s = 0.0;
  double consume_s = 0.0;
  /// Persistent mode: processes launched for this worker slot so far in
  /// the run (1 = the original spawn, each respawn adds one) and
  /// full-snapshot resyncs shipped after a respawn. Zero in the other
  /// modes. Cumulative across iterations — the spawn-amortisation story
  /// in numbers.
  std::uint32_t spawn_count = 0;
  std::uint32_t resync_count = 0;
  /// Command-channel traffic to / from this worker this iteration,
  /// including frame headers (persistent mode). Process mode counts the
  /// file bytes the driver ships to and collects from the worker (plan +
  /// G(t) snapshot in, sidecars + ShardResult out); zero in thread mode.
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  /// Heavy command round-trips this iteration: RUN_ITERATION commands in
  /// persistent mode (1 on the steady path; the payload-free GO barrier
  /// is not counted), 2 in process mode (one process per wave).
  std::uint32_t round_trips = 0;
  /// Partitions this worker's phase-4 schedule actually streamed (pair
  /// incidence of its PI graph) — ~m/S under the pair-affinity split.
  std::uint32_t partitions_touched = 0;
  /// Full-partition (.prof-bearing) loads this worker's phase-4 cache
  /// issued this iteration. Persistent workers stream edges-only and
  /// sync profiles over the channel, so this is 0 there from iteration 0.
  std::uint64_t profile_reads = 0;
  /// KPRD profile-delta rows shipped to this worker this iteration
  /// (persistent mode): the churned users on the steady path, all n on a
  /// respawn resync — how tests pin "a resync carries a full snapshot".
  std::uint64_t profile_rows_rx = 0;
  /// Distributed mode: content-addressed transfer accounting for this
  /// worker's agent endpoint this iteration, attributed to the
  /// endpoint's LOWEST shard (zero on the endpoint's other shards and in
  /// every local mode). Files/bytes actually shipped vs skipped because
  /// the agent already held an identical checksum — "unchanged
  /// partitions never re-transfer", in numbers. Cross-agent spool relays
  /// count on the destination endpoint (shipped or, when the identical
  /// spool was already pushed, skipped).
  std::uint64_t sync_files_tx = 0;
  std::uint64_t sync_bytes_tx = 0;
  std::uint64_t sync_files_skipped = 0;
  std::uint64_t sync_bytes_skipped = 0;
  /// This worker's share of the merged counters (sum_iteration_stats
  /// folds these into ShardedIterationStats::merged).
  IterationStats stats;

  [[nodiscard]] double wall_s() const noexcept {
    return produce_s + consume_s;
  }
};

struct ShardedIterationStats {
  /// Aggregate view, same shape as the serial engine's IterationStats:
  /// counters and I/O are summed over workers (plus the driver's phase-1
  /// work); change_rate is recomputed from summed per-user change counts
  /// and therefore matches the serial engine's exactly.
  IterationStats merged;
  std::vector<ShardWorkerStats> workers;
};

/// S-worker sharded pipeline with the KnnEngine interface.
///
/// Thread-safety: single-owner, like KnnEngine — no member function may
/// overlap another call on the same instance. run_iteration() spawns one
/// producer and one consumer thread per shard internally (each worker
/// with its own ThreadPool, the phase-4 thread budget divided across
/// shards) and joins them before returning. In
/// ShardWorkerMode::Process the waves run as supervised child processes
/// instead — same files, same merged output, crash containment per
/// worker.
///
/// Ownership: owns the profiles, the merged graph, the per-shard pools
/// and the work directory (scratch unless EngineConfig::work_dir is set).
class ShardedKnnEngine {
 public:
  ShardedKnnEngine(EngineConfig config, ShardConfig shard_config,
                   std::vector<SparseProfile> profiles);
  ~ShardedKnnEngine();
  ShardedKnnEngine(const ShardedKnnEngine&) = delete;
  ShardedKnnEngine& operator=(const ShardedKnnEngine&) = delete;

  /// Replaces the current graph G(t) (vertex count must match).
  void set_initial_graph(KnnGraph graph);

  /// One full five-phase iteration across all shards.
  ShardedIterationStats run_iteration();

  /// Iterates until change_rate < `convergence_delta` or `max_iterations`
  /// (RunStats holds the merged per-iteration stats).
  RunStats run(std::uint32_t max_iterations, double convergence_delta = 0.01);

  [[nodiscard]] const KnnGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const InMemoryProfileStore& profiles() const noexcept {
    return profiles_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }
  /// Resolved worker count S.
  [[nodiscard]] std::uint32_t num_shards() const noexcept;
  /// Phase-4 threads each worker runs with (total budget / S).
  [[nodiscard]] std::uint32_t threads_per_shard() const noexcept;

  /// Same lazy phase-5 semantics as KnnEngine::update_queue().
  UpdateQueue& update_queue() noexcept { return queue_; }

  /// Same serving-layer hook as KnnEngine::set_snapshot_sink(): publishes
  /// the merged (G(t+1), P(t+1)) at the end of every sharded iteration.
  void set_snapshot_sink(SnapshotSink* sink) noexcept { sink_ = sink; }

 private:
  struct Impl;

  EngineConfig config_;
  ShardConfig shard_config_;
  InMemoryProfileStore profiles_;
  KnnGraph graph_;
  UpdateQueue queue_;
  SnapshotSink* sink_ = nullptr;
  std::uint32_t iteration_ = 0;
  std::unique_ptr<Impl> impl_;  // scratch dir, per-shard pools
};

// ---------------------------------------------------------------------------
// The hidden --shard-worker role (process mode).

/// Entry point of one worker wave in its own process. Loads the driver's
/// plan file, runs the `wave` ("produce" | "consume") body for `shard`,
/// writes the wave's outputs (spools / ShardResult) and finally the stats
/// sidecar — the atomic completion marker the driver requires before it
/// will merge anything. Returns the process exit code (0 = success);
/// exceptions are reported on stderr and become a non-zero code.
int shard_worker_main(const std::filesystem::path& plan_file,
                      const std::string& wave, std::uint32_t shard,
                      std::uint32_t attempt);

/// Entry point of one PERSISTENT worker (--wave=serve): loads the static
/// plan, opens the shared partition store and thread pool once, sends a
/// READY frame on stdout and then serves RUN_ITERATION / SHUTDOWN
/// commands from stdin until shutdown or EOF (both exit 0). Each
/// RUN_ITERATION applies the shipped ownership / graph / profile deltas,
/// runs the produce wave, replies PRODUCED, waits for the driver's GO
/// barrier and runs the consume wave against its worker-local profile
/// store, replying ITERATION_DONE (a skip-produce command — the
/// consume-phase respawn path — goes straight to the consume body). Wave
/// bodies, spool layout and fault injection are shared with the per-wave
/// worker; only the transport differs. Protocol errors are reported on
/// stderr and become a non-zero exit — the driver's respawn path takes
/// over from there.
int persistent_shard_worker_main(const std::filesystem::path& plan_file,
                                 std::uint32_t shard);

/// Dispatch helper for binaries that can be re-executed as workers: when
/// argv contains --shard-worker, runs the worker role and returns its
/// exit code for main() to return; otherwise returns nullopt and the
/// binary proceeds with its normal argv parsing. Call this FIRST in
/// main() — worker argv is not meant for the normal option parsers.
std::optional<int> maybe_run_shard_worker(int argc, char** argv);

/// Fault-injection hook for the process/persistent-mode test harness.
/// When this environment variable is set in a *worker* process
/// (inherited from the spawning test), the worker injects the named
/// fault mid-wave:
///   "<wave>:<shard>:<kind>[:<attempt>[:<iteration>]]"
/// kind ∈ { kill (raise SIGKILL), exit (exit code 3), wedge (sleep until
/// the driver's deadline kills the worker) }. Without the optional
/// attempt filter the fault fires on every attempt (driving the
/// retry-then-fail path); with it, only on that attempt (driving the
/// retry-succeeds path); "*" matches any attempt. The optional fifth
/// field restricts the fault to one iteration — that is how the
/// persistent-mode tests kill a long-lived worker mid-run at iteration
/// i > 0 without also killing its respawned successor in later
/// iterations. Thread-mode workers never consult this.
inline constexpr const char* kShardFaultEnv = "KNNPC_SHARD_FAULT";

}  // namespace knnpc
