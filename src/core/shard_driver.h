// Sharded execution driver: one engine worker per user shard over one
// shared on-disk partition store.
//
// The paper's scaling argument is that the pipeline's phases communicate
// only through files — partitions (phase 1 -> 2/4) and tuple shards
// (phase 2 -> 4) — so nothing in memory has to be split to add workers.
// This driver takes that literally:
//
//   driver   phase 1: partition G(t) once, write the shared partition
//            store; split the user universe into S shards with a
//            src/partition partitioner.
//   worker w phase 2 (producer wave): generate candidate tuples from its
//            slice of the partitions (p ≡ w mod S) plus the random
//            restarts of its own users, and route every tuple to the
//            shard owning its source user through one spool file per
//            (producer, consumer) pair (storage/shard_writer.h).
//   worker c phases 2b-4 (consumer wave): dedup its spooled tuples into
//            its own hash table H_c, build its own PI graph + schedule,
//            stream the shared read-only partition store through a
//            private 2-slot cache, and keep top-K for its users only.
//   driver   merge the per-shard graphs (staticgraph/sharded_graph.h's
//            ShardedKnnGraph) and run phase 5 on the shared profiles.
//
// Determinism contract (mirrors PR 2's thread-count contract): the merged
// G(t+1) is bit-identical to the serial KnnEngine's for the same
// EngineConfig, for ANY shard count. It holds because (a) each user's
// top-K kept set is a pure function of its unique candidate SET — the
// accumulator keeps "top K by (score desc, id asc)" regardless of offer
// order (core/topk.cpp) — and (b) phase 2 generates a
// decomposition-independent candidate set: sampling and restart RNG
// streams are derived per partition / per user (core/tuple_generation.h)
// and dedup happens consumer-side, where all tuples of a given source
// user meet. shard_driver_test asserts the contract for S in {1,2,3,5},
// including the spill-scores path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "graph/knn_graph.h"
#include "profiles/profile_store.h"
#include "profiles/update_queue.h"
#include "util/types.h"

namespace knnpc {

/// Auto shard mode: one worker per this many candidate edges (n * k),
/// i.e. 4x the phase-4 per-thread granularity — a shard only pays off
/// once it can keep a few threads busy. At k=10 the second worker
/// arrives at 20k users (n*k = 2 * kWorkPerShard), growing to the
/// kMaxAutoShards cap near 80k.
inline constexpr std::uint64_t kWorkPerShard = 4 * kPhase4WorkPerThread;
inline constexpr std::uint32_t kMaxAutoShards = 8;

/// Resolves the shard-count knob: `requested > 0` is taken verbatim
/// (clamped to the user count); `requested == 0` is auto — hardware
/// concurrency clamped so every shard gets at least kWorkPerShard of the
/// n*k workload, capped at kMaxAutoShards. Always returns >= 1.
std::uint32_t resolve_shard_count(std::uint32_t requested,
                                  VertexId num_users, std::uint32_t k);

struct ShardConfig {
  /// Engine workers S. 0 = auto (resolve_shard_count); 1 degenerates to
  /// the serial pipeline run through the driver's machinery.
  std::uint32_t shards = 0;
  /// How the user universe is split into shards: "range" | "hash" |
  /// "degree-range" | "greedy" (any src/partition strategy). The output
  /// graph does not depend on this choice — only load balance does.
  std::string shard_partitioner = "range";
};

/// Per-worker observability for one iteration.
struct ShardWorkerStats {
  std::uint32_t shard = 0;
  /// Users this shard owns (its top-K responsibility).
  VertexId users = 0;
  /// Tuples received through the spools (pre-dedup).
  std::uint64_t spooled_tuples = 0;
  /// Wall time of this worker's producer / consumer wave participation.
  double produce_s = 0.0;
  double consume_s = 0.0;
  /// This worker's share of the merged counters (sum_iteration_stats
  /// folds these into ShardedIterationStats::merged).
  IterationStats stats;

  [[nodiscard]] double wall_s() const noexcept {
    return produce_s + consume_s;
  }
};

struct ShardedIterationStats {
  /// Aggregate view, same shape as the serial engine's IterationStats:
  /// counters and I/O are summed over workers (plus the driver's phase-1
  /// work); change_rate is recomputed from summed per-user change counts
  /// and therefore matches the serial engine's exactly.
  IterationStats merged;
  std::vector<ShardWorkerStats> workers;
};

/// S-worker sharded pipeline with the KnnEngine interface.
///
/// Thread-safety: single-owner, like KnnEngine — no member function may
/// overlap another call on the same instance. run_iteration() spawns one
/// producer and one consumer thread per shard internally (each worker
/// with its own ThreadPool, the phase-4 thread budget divided across
/// shards) and joins them before returning.
///
/// Ownership: owns the profiles, the merged graph, the per-shard pools
/// and the work directory (scratch unless EngineConfig::work_dir is set).
class ShardedKnnEngine {
 public:
  ShardedKnnEngine(EngineConfig config, ShardConfig shard_config,
                   std::vector<SparseProfile> profiles);
  ~ShardedKnnEngine();
  ShardedKnnEngine(const ShardedKnnEngine&) = delete;
  ShardedKnnEngine& operator=(const ShardedKnnEngine&) = delete;

  /// Replaces the current graph G(t) (vertex count must match).
  void set_initial_graph(KnnGraph graph);

  /// One full five-phase iteration across all shards.
  ShardedIterationStats run_iteration();

  /// Iterates until change_rate < `convergence_delta` or `max_iterations`
  /// (RunStats holds the merged per-iteration stats).
  RunStats run(std::uint32_t max_iterations, double convergence_delta = 0.01);

  [[nodiscard]] const KnnGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const InMemoryProfileStore& profiles() const noexcept {
    return profiles_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }
  /// Resolved worker count S.
  [[nodiscard]] std::uint32_t num_shards() const noexcept;
  /// Phase-4 threads each worker runs with (total budget / S).
  [[nodiscard]] std::uint32_t threads_per_shard() const noexcept;

  /// Same lazy phase-5 semantics as KnnEngine::update_queue().
  UpdateQueue& update_queue() noexcept { return queue_; }

 private:
  struct Impl;

  EngineConfig config_;
  ShardConfig shard_config_;
  InMemoryProfileStore profiles_;
  KnnGraph graph_;
  UpdateQueue queue_;
  std::uint32_t iteration_ = 0;
  std::unique_ptr<Impl> impl_;  // scratch dir, per-shard pools
};

}  // namespace knnpc
