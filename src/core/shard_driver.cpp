#include "core/shard_driver.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/convergence.h"
#include "core/stats_io.h"
#include "core/worker_agent.h"
#include "core/topk.h"
#include "core/tuple_generation.h"
#include "core/tuple_table.h"
#include "graph/digraph.h"
#include "graph/knn_graph_delta.h"
#include "graph/knn_graph_io.h"
#include "partition/cost.h"
#include "partition/partitioner.h"
#include "partition/pair_affinity.h"
#include "pigraph/heuristics.h"
#include "pigraph/pi_graph.h"
#include "profiles/flat_profile.h"
#include "profiles/profile_delta.h"
#include "profiles/similarity_kernels.h"
#include "staticgraph/sharded_graph.h"
#include "storage/block_file.h"
#include "storage/file_sync.h"
#include "storage/partition_store.h"
#include "storage/shard_writer.h"
#include "util/fnv.h"
#include "util/ipc_channel.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/subprocess.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace knnpc {
namespace fs = std::filesystem;

std::uint32_t resolve_shard_count(std::uint32_t requested,
                                  VertexId num_users, std::uint32_t k) {
  const std::uint64_t users = std::max<std::uint64_t>(num_users, 1);
  if (requested == 0) {
    requested = resolve_thread_count(
        0, users * std::max<std::uint32_t>(k, 1), kWorkPerShard);
    requested = std::min(requested, kMaxAutoShards);
  }
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(std::max(requested, 1u), users));
}

ShardWorkerMode parse_worker_mode(std::string_view name) {
  if (name == "thread") return ShardWorkerMode::Thread;
  if (name == "process") return ShardWorkerMode::Process;
  if (name == "persistent") return ShardWorkerMode::Persistent;
  throw std::invalid_argument("parse_worker_mode: unknown mode '" +
                              std::string(name) +
                              "' (thread | process | persistent)");
}

const char* worker_mode_name(ShardWorkerMode mode) noexcept {
  switch (mode) {
    case ShardWorkerMode::Process:
      return "process";
    case ShardWorkerMode::Persistent:
      return "persistent";
    case ShardWorkerMode::Thread:
      break;
  }
  return "thread";
}

namespace {

// ------------------------------------------------ work-directory layout --
// Everything the two waves exchange lives under the driver's work dir;
// process mode adds the plan, the G(t) snapshot, and per-worker
// results/stats. Paths are defined here once — the driver and the
// re-executed workers must agree byte-for-byte.

constexpr const char* kSpoolStem = "tuples";

fs::path spools_dir(const fs::path& work_dir) { return work_dir / "spools"; }

fs::path consumer_scratch_dir(const fs::path& work_dir, std::uint32_t c) {
  return work_dir / ("worker_" + std::to_string(c));
}

fs::path plan_file_path(const fs::path& work_dir) {
  return work_dir / "plan.bin";
}

fs::path prev_graph_path(const fs::path& work_dir) {
  return work_dir / "graph_t.knng";
}

fs::path sidecar_path(const fs::path& work_dir, const std::string& wave,
                      std::uint32_t shard) {
  return work_dir / "stats" / (wave + "_" + std::to_string(shard) + ".stats");
}

fs::path result_file_path(const fs::path& work_dir, std::uint32_t shard) {
  return work_dir / "results" / ("shard_" + std::to_string(shard) + ".res");
}

// --------------------------------------------------------- fault points --
// Worker processes consult kShardFaultEnv at one mid-wave point per wave
// (see shard_driver.h). Parsing is deliberately forgiving: a malformed
// spec injects nothing rather than crashing a production run that
// happens to have the variable set.

void maybe_inject_fault(const char* wave, std::uint32_t shard,
                        std::uint32_t attempt, std::uint32_t iteration) {
  const char* env = std::getenv(kShardFaultEnv);
  if (env == nullptr) return;
  std::vector<std::string> parts;
  {
    std::string spec(env);
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t colon = spec.find(':', start);
      if (colon == std::string::npos) {
        parts.push_back(spec.substr(start));
        break;
      }
      parts.push_back(spec.substr(start, colon - start));
      start = colon + 1;
    }
  }
  if (parts.size() < 3 || parts[0] != wave) return;
  // Optional fields 3/4 filter by attempt and iteration; "*" (or an
  // omitted field) matches anything.
  auto matches = [&](std::size_t index, std::uint32_t value) {
    if (parts.size() <= index || parts[index].empty() ||
        parts[index] == "*") {
      return true;
    }
    return std::stoul(parts[index]) == value;
  };
  try {
    if (std::stoul(parts[1]) != shard) return;
    if (!matches(3, attempt) || !matches(4, iteration)) return;
  } catch (const std::exception&) {
    return;
  }
  const std::string& kind = parts[2];
  std::fprintf(stderr, "shard_worker: injecting fault '%s' (%s wave, shard "
                       "%u, attempt %u, iteration %u)\n",
               kind.c_str(), wave, shard, attempt, iteration);
  if (kind == "kill") {
    std::raise(SIGKILL);
  } else if (kind == "exit") {
    std::_Exit(3);
  } else if (kind == "wedge") {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

// ---------------------------------------------------- shared wave bodies --
// The producer and consumer bodies are mode-agnostic: thread mode calls
// them on one thread per shard inside the driver, process mode calls them
// from shard_worker_main in a child process. Keeping one body per wave is
// what makes the two modes bit-identical by construction.

struct WaveContext {
  const EngineConfig& config;
  std::uint32_t iteration;
  std::uint32_t shards;
  std::uint32_t threads_per_shard;
  const PartitionAssignment& assignment;   // user -> partition (m)
  const PartitionAssignment& shard_owner;  // user -> shard (S)
  fs::path work_dir;
};

/// Phase 2, producer wave for shard `w`: generate candidates, route by
/// owner of the source user into `sink` (= spool files (w, *)). The
/// caller flushes the sink (thread mode: RoutedShardWriter::finish after
/// all producers join; process mode: the worker before its sidecar).
void produce_candidates(const WaveContext& ctx, std::uint32_t w,
                        std::span<const VertexId> members,
                        const PartitionStore& store,
                        RecordShardWriter<Tuple>& sink,
                        ShardWorkerStats& worker,
                        const std::function<void()>& mid_wave_hook) {
  const EngineConfig& config = ctx.config;
  const VertexId n = ctx.assignment.num_vertices();
  const PartitionId m = ctx.assignment.num_partitions();
  Timer wall;
  ScopedAccumulator timing(&worker.stats.timings.hash_s);
  auto route = [&](Tuple t) {
    sink.add(ctx.shard_owner.owner(t.s), t);
    if (config.include_reverse) {
      sink.add(ctx.shard_owner.owner(t.d), Tuple{t.d, t.s});
    }
  };
  const bool sampling = config.sample_rate < 1.0;
  for (PartitionId p = w; p < m; p += ctx.shards) {
    const PartitionData part = store.load_edges(p);
    // Same per-partition sampling stream as the serial engine — the
    // decisions don't depend on which worker processes p.
    Rng sample_rng = candidate_sample_rng(config.seed, ctx.iteration, p);
    worker.stats.candidate_tuples += merge_join_tuples(
        part.in_edges, part.out_edges, [&](Tuple t) {
          if (sampling && !sample_rng.next_bool(config.sample_rate)) {
            return;
          }
          route(t);
        });
    // Direct edges of G(t), never sampled (as in the serial engine).
    for (const Edge& e : part.out_edges) {
      ++worker.stats.candidate_tuples;
      route(Tuple{e.src, e.dst});
    }
  }
  // Random restarts for this shard's own users, one derived stream per
  // user — identical values to the serial engine's.
  if (config.random_candidates > 0 && n > 1) {
    for (VertexId s : members) {
      Rng restart_rng = random_restart_rng(config.seed, ctx.iteration, s);
      for (std::uint32_t r = 0; r < config.random_candidates; ++r) {
        const auto d = static_cast<VertexId>(restart_rng.next_below(n));
        if (d == s) continue;
        ++worker.stats.candidate_tuples;
        route(Tuple{s, d});
      }
    }
  }
  if (mid_wave_hook) mid_wave_hook();
  worker.produce_s = wall.elapsed_seconds();
}

struct ConsumerOutput {
  /// Full-size graph populated only for the owned users.
  KnnGraph next;
  /// Exact change count over the owned users.
  std::uint64_t changed = 0;
};

/// Phases 2b-4, consumer wave for shard `c`: dedup the spooled tuples,
/// build this shard's PI graph + schedule, stream the shared store, keep
/// top-K for owned users, count changes against `prev` = G(t).
///
/// `local_profiles` non-null redirects profile lookups to that store and
/// streams partitions edges-only (no .prof reads) — the persistent-worker
/// path, where profiles arrive over the command channel as KPRD deltas.
/// The values are identical either way, so the output graph is too.
ConsumerOutput consume_candidates(const WaveContext& ctx, std::uint32_t c,
                                  std::span<const VertexId> members,
                                  const PartitionStore& store,
                                  const KnnGraph& prev, ThreadPool* pool,
                                  IoAccountant* io,
                                  const ProfileStore* local_profiles,
                                  ShardWorkerStats& worker,
                                  const std::function<void()>& mid_wave_hook) {
  const EngineConfig& config = ctx.config;
  const VertexId n = ctx.assignment.num_vertices();
  const PartitionId m = ctx.assignment.num_partitions();
  const std::uint32_t S = ctx.shards;
  IterationStats& stats = worker.stats;
  Timer wall;

  // Phase 2b: consumer-side H_c — global dedup per source user falls
  // out of the routing (all (s, *) tuples land here together).
  const std::size_t num_slots = pi_pair_slot(m - 1, m - 1, m) + 1;
  TupleShardWriter pair_writer(consumer_scratch_dir(ctx.work_dir, c),
                               "tuples", num_slots,
                               std::max<std::size_t>(
                                   config.shard_buffer_bytes / S,
                                   sizeof(Tuple)),
                               io);
  {
    ScopedAccumulator timing(&stats.timings.hash_s);
    // Stream one producer's spool at a time — peak extra memory is the
    // largest single spool, not the whole pre-dedup stream. The expected
    // record count comes from the spool file sizes, so both execution
    // modes reserve identically.
    std::uint64_t expected = 0;
    for (std::uint32_t p = 0; p < S; ++p) {
      expected += knnpc::file_size(routed_spool_path(
                      spools_dir(ctx.work_dir), kSpoolStem, p, c)) /
                  sizeof(Tuple);
    }
    TupleTable table(expected);
    for (std::uint32_t p = 0; p < S; ++p) {
      const std::vector<Tuple> chunk = read_record_shard<Tuple>(
          routed_spool_path(spools_dir(ctx.work_dir), kSpoolStem, p, c), io);
      worker.spooled_tuples += chunk.size();
      for (const Tuple& t : chunk) {
        if (table.insert(t)) {
          pair_writer.add(pi_pair_slot(ctx.assignment.owner(t.s),
                                       ctx.assignment.owner(t.d), m),
                          t);
        }
      }
    }
    stats.unique_tuples = table.size();
    pair_writer.finish();
  }
  if (mid_wave_hook) mid_wave_hook();

  // Phase 3: this shard's own PI graph + traversal schedule.
  PiGraph pi(m);
  Schedule schedule;
  {
    ScopedAccumulator timing(&stats.timings.pi_graph_s);
    for (PartitionId a = 0; a < m; ++a) {
      for (PartitionId b = a; b < m; ++b) {
        const auto count = pair_writer.shard_records(pi_pair_slot(a, b, m));
        if (count > 0) pi.add_edge(a, b, count);
      }
    }
    pi.finalize();
    stats.pi_pairs = pi.num_pairs();
    schedule = make_heuristic(config.heuristic)->schedule(pi);
  }

  // Phase 4: stream the shared store through a private cache; top-K for
  // this shard's users only. Offers are made serially — the kept set is
  // offer-order-independent, so only scoring needs the pool.
  KnnGraph next(n, config.k);
  {
    ScopedAccumulator timing(&stats.timings.knn_s);
    TopKAccumulator acc(n, config.k);
    std::optional<RecordShardWriter<ScoredTuple>> score_writer;
    if (config.spill_scores) {
      score_writer.emplace(consumer_scratch_dir(ctx.work_dir, c), "scores",
                           m,
                           std::max<std::size_t>(
                               config.shard_buffer_bytes / S,
                               sizeof(ScoredTuple)),
                           io);
    }
    PartitionCache cache(store, config.memory_slots,
                         /*edges_only=*/local_profiles != nullptr);
    const KernelBackend backend = resolve_kernel_backend(config.kernel);
    // Streaming path: flat (SoA) copies of loaded partitions, cached per
    // slot. Persistent path (local_profiles): tuples may reference any
    // user and partitions stream edges-only, so pack the worker's whole
    // P(t) once — O(total entries), amortised over the full wave.
    FlatSetCache flat_cache(config.memory_slots, config.quantize_profiles);
    std::optional<FlatProfileSet> local_flat;
    if (local_profiles != nullptr) {
      local_flat.emplace(config.quantize_profiles);
      std::size_t total = 0;
      for (VertexId v = 0; v < n; ++v) {
        total += local_profiles->get(v).size();
      }
      local_flat->reserve(n, total);
      for (VertexId v = 0; v < n; ++v) {
        local_flat->add(v, local_profiles->get(v));
      }
    }
    std::vector<float> scores;
    for (PairIndex idx : schedule) {
      const PiPair& pair = pi.pair(idx);
      const std::vector<Tuple> tuples = read_record_shard<Tuple>(
          pair_writer.shard_path(pi_pair_slot(pair.a, pair.b, m)), io);
      const PartitionData& pa = cache.get(pair.a);
      const PartitionData& pb = pair.b == pair.a ? pa : cache.get(pair.b);
      const FlatProfileSet& fa =
          local_flat ? *local_flat
                     : flat_cache.get(pair.a, pa.vertices, pa.profiles);
      const FlatProfileSet* fb = nullptr;
      if (!local_flat && pair.b != pair.a) {
        fb = &flat_cache.get(pair.b, pb.vertices, pb.profiles);
      }
      scores.assign(tuples.size(), 0.0f);
      {
        ScopedAccumulator score_timing(&stats.knn_score_s);
        // Same run-batched kernel dispatch as the engine: tuples arrive
        // grouped by source user, so each run shares one source lookup.
        auto score_range = [&](std::size_t lo, std::size_t hi) {
          KernelScratch scratch;
          std::vector<VertexId> cands;
          std::size_t i = lo;
          while (i < hi) {
            std::size_t run_end = i + 1;
            while (run_end < hi && tuples[run_end].s == tuples[i].s) {
              ++run_end;
            }
            cands.clear();
            for (std::size_t t = i; t < run_end; ++t) {
              cands.push_back(tuples[t].d);
            }
            score_batch(fa, fb, tuples[i].s, cands, config.measure, backend,
                        scores.data() + i, scratch);
            i = run_end;
          }
        };
        if (pool != nullptr) {
          pool->parallel_for(0, tuples.size(), score_range,
                             /*min_chunk=*/256);
        } else {
          score_range(0, tuples.size());
        }
      }
      if (score_writer) {
        for (std::size_t i = 0; i < tuples.size(); ++i) {
          score_writer->add(ctx.assignment.owner(tuples[i].s),
                            {tuples[i].s, tuples[i].d, scores[i]});
        }
      } else {
        ScopedAccumulator merge_timing(&stats.knn_merge_s);
        for (std::size_t i = 0; i < tuples.size(); ++i) {
          acc.offer(tuples[i].s, tuples[i].d, scores[i]);
        }
      }
    }
    cache.flush();
    stats.partition_loads = cache.loads();
    stats.partition_unloads = cache.unloads();
    worker.partitions_touched = pi.touched_partitions();
    // Each full-partition load reads a .prof file; edges-only streaming
    // (the persistent path) never does.
    worker.profile_reads = local_profiles != nullptr ? 0 : cache.loads();

    ScopedAccumulator merge_timing(&stats.knn_merge_s);
    if (score_writer) {
      // Finalise one partition at a time, restricted to owned users.
      score_writer->finish();
      for (PartitionId p = 0; p < m; ++p) {
        const auto spilled = read_record_shard<ScoredTuple>(
            score_writer->shard_path(p), io);
        for (const ScoredTuple& t : spilled) {
          acc.offer(t.s, t.d, t.score);
        }
        for (VertexId member : ctx.assignment.members(p)) {
          if (ctx.shard_owner.owner(member) !=
              static_cast<PartitionId>(c)) {
            continue;
          }
          next.set_neighbors(member, acc.take(member));
        }
      }
    } else {
      next = acc.build_graph(pool);
    }
  }

  // Exact per-user change counts over owned users; the driver's sum
  // reproduces the serial change rate bit-for-bit.
  std::uint64_t changed = 0;
  for (VertexId s : members) {
    changed += KnnGraph::change_count(prev, next, s, s + 1);
  }
  worker.consume_s = wall.elapsed_seconds();
  return {std::move(next), changed};
}

// ---------------------------------------------------- process-mode plan --
// The plan file ("KPLN") carries everything a worker process needs that
// is not already on disk: the wave-relevant EngineConfig fields, the
// resolved shard/thread budget, and both ownership maps. Same-build
// producer and consumer (the worker IS the driver's binary).

constexpr char kPlanMagic[4] = {'K', 'P', 'L', 'N'};
// v2: adds the phase-4 kernel backend string and the quantize_profiles
// flag (both read by the wave bodies, so process-mode workers must see
// the configured values, not the defaults).
constexpr std::uint32_t kPlanVersion = 2;

// Tripwire: the plan file hand-serialises the wave-relevant subset of
// EngineConfig. A field added to EngineConfig that the wave bodies read
// but the plan omits would make process-mode workers silently run on the
// default while thread mode uses the configured value — a plausible but
// wrong graph. Growing EngineConfig therefore fails here on the CI
// platform until save_plan_file/load_plan_file (below) were reviewed and
// this constant is bumped.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(EngineConfig) == 288,
              "EngineConfig changed: review the process-mode plan "
              "serialisation (save_plan_file/load_plan_file) before "
              "bumping this size");
#endif

struct ProcessPlan {
  EngineConfig config;
  std::uint32_t iteration = 0;
  std::uint32_t shards = 1;
  std::uint32_t threads_per_shard = 1;
  std::vector<PartitionId> partition_owner;  // user -> partition
  std::vector<PartitionId> shard_owner;      // user -> shard
};

void append_string(std::vector<std::byte>& out, const std::string& s) {
  append_record(out, static_cast<std::uint32_t>(s.size()));
  for (const char c : s) append_record(out, c);
}

void save_plan_file(const fs::path& path, const ProcessPlan& plan) {
  const EngineConfig& config = plan.config;
  std::vector<std::byte> bytes;
  bytes.reserve(128 + plan.partition_owner.size() * 2 * sizeof(PartitionId));
  for (const char c : kPlanMagic) append_record(bytes, c);
  append_record(bytes, kPlanVersion);
  append_record(bytes, plan.iteration);
  append_record(bytes, plan.shards);
  append_record(bytes, plan.threads_per_shard);
  append_record(bytes, config.k);
  append_record(bytes, config.num_partitions);
  append_record(bytes, static_cast<std::uint32_t>(config.measure));
  append_record(bytes, static_cast<std::uint64_t>(config.memory_slots));
  append_record(bytes, static_cast<std::uint64_t>(config.shard_buffer_bytes));
  append_record(bytes, config.seed);
  append_record(bytes, config.sample_rate);
  append_record(bytes, config.random_candidates);
  append_record(bytes, static_cast<std::uint8_t>(config.include_reverse));
  append_record(bytes, static_cast<std::uint8_t>(config.spill_scores));
  append_record(bytes, static_cast<std::uint8_t>(config.storage_mode));
  append_record(bytes, static_cast<std::uint8_t>(config.quantize_profiles));
  append_string(bytes, config.kernel);
  append_string(bytes, config.heuristic);
  append_string(bytes, config.io_model.name);
  append_record(bytes, config.io_model.seek_us);
  append_record(bytes, config.io_model.bytes_per_us);
  append_record(bytes,
                static_cast<std::uint32_t>(plan.partition_owner.size()));
  for (const PartitionId p : plan.partition_owner) append_record(bytes, p);
  for (const PartitionId p : plan.shard_owner) append_record(bytes, p);
  IoCounters counters;
  write_file(path, bytes, counters);
}

ProcessPlan load_plan_file(const fs::path& path) {
  IoCounters counters;
  const std::vector<std::byte> bytes = read_file(path, counters);
  std::size_t offset = 0;
  auto fail = [&](const std::string& what) -> std::runtime_error {
    return std::runtime_error("load_plan_file: " + what + " in " +
                              path.string());
  };
  auto read = [&]<typename T>(T& out) {
    if (!read_record(bytes, offset, out)) throw fail("truncated plan");
  };
  auto read_string = [&](std::string& out) {
    std::uint32_t len = 0;
    read(len);
    // Corrupt-header protection: the string must fit in what's left.
    if (len > bytes.size() - offset) throw fail("string exceeds file size");
    out.resize(len);
    for (char& c : out) read(c);
  };
  char magic[4];
  for (char& c : magic) read(c);
  if (std::memcmp(magic, kPlanMagic, sizeof(kPlanMagic)) != 0) {
    throw fail("bad magic");
  }
  std::uint32_t version = 0;
  read(version);
  if (version != kPlanVersion) {
    throw fail("unsupported version " + std::to_string(version));
  }
  ProcessPlan plan;
  EngineConfig& config = plan.config;
  read(plan.iteration);
  read(plan.shards);
  read(plan.threads_per_shard);
  read(config.k);
  read(config.num_partitions);
  std::uint32_t measure = 0;
  read(measure);
  config.measure = static_cast<SimilarityMeasure>(measure);
  std::uint64_t slots = 0;
  std::uint64_t buffer = 0;
  read(slots);
  read(buffer);
  config.memory_slots = static_cast<std::size_t>(slots);
  config.shard_buffer_bytes = static_cast<std::size_t>(buffer);
  read(config.seed);
  read(config.sample_rate);
  read(config.random_candidates);
  std::uint8_t reverse = 0;
  std::uint8_t spill = 0;
  std::uint8_t storage_mode = 0;
  std::uint8_t quantize = 0;
  read(reverse);
  read(spill);
  read(storage_mode);
  read(quantize);
  config.include_reverse = reverse != 0;
  config.spill_scores = spill != 0;
  config.storage_mode = static_cast<PartitionStore::Mode>(storage_mode);
  config.quantize_profiles = quantize != 0;
  read_string(config.kernel);
  read_string(config.heuristic);
  read_string(config.io_model.name);
  read(config.io_model.seek_us);
  read(config.io_model.bytes_per_us);
  std::uint32_t n = 0;
  read(n);
  // Both ownership maps must actually fit in the remaining bytes before
  // n drives any allocation (corrupt-header protection).
  if (n > (bytes.size() - offset) / (2 * sizeof(PartitionId))) {
    throw fail("vertex count exceeds file size");
  }
  plan.partition_owner.resize(n);
  for (PartitionId& p : plan.partition_owner) read(p);
  plan.shard_owner.resize(n);
  for (PartitionId& p : plan.shard_owner) read(p);
  if (offset != bytes.size()) throw fail("trailing bytes");
  if (plan.shards == 0 || config.num_partitions == 0) {
    throw fail("degenerate shard/partition count");
  }
  return plan;
}

/// Flattens an assignment into its owner vector for the plan file.
std::vector<PartitionId> owner_vector(const PartitionAssignment& a) {
  std::vector<PartitionId> owners(a.num_vertices());
  for (VertexId v = 0; v < a.num_vertices(); ++v) owners[v] = a.owner(v);
  return owners;
}

// ------------------------------------------------------ wave supervision --

/// Spawns one worker process per pending shard for `wave`, waits with the
/// configured deadline, verifies completion markers, retries failed
/// shards exactly once, and throws with a per-worker diagnostic when a
/// shard fails twice. Guarantees on exit: either every shard's outputs
/// are complete on disk, or an exception — never a hang, never a merge
/// of a failed worker's partial output (stale outputs of the pending
/// shards are deleted before each attempt, and the atomically-written
/// sidecar is the completion marker).
void supervise_wave(const WaveContext& ctx, const ShardConfig& shard_config,
                    const std::string& wave) {
  const fs::path& work_dir = ctx.work_dir;
  const bool consume = wave == "consume";
  const std::string exe = shard_config.worker_exe.empty()
                              ? current_executable().string()
                              : shard_config.worker_exe;
  std::vector<std::uint32_t> pending(ctx.shards);
  for (std::uint32_t s = 0; s < ctx.shards; ++s) pending[s] = s;
  std::vector<std::string> history(ctx.shards);

  for (std::uint32_t attempt = 0; attempt < 2; ++attempt) {
    // A stale file from a failed attempt must never masquerade as this
    // attempt's output.
    for (const std::uint32_t s : pending) {
      std::error_code ec;
      fs::remove(sidecar_path(work_dir, wave, s), ec);
      if (consume) fs::remove(result_file_path(work_dir, s), ec);
    }
    std::vector<Subprocess> procs;
    procs.reserve(pending.size());
    for (const std::uint32_t s : pending) {
      procs.emplace_back(std::vector<std::string>{
          exe, "--shard-worker",
          "--plan=" + plan_file_path(work_dir).string(), "--wave=" + wave,
          "--shard=" + std::to_string(s),
          "--attempt=" + std::to_string(attempt)});
    }
    const std::vector<SubprocessStatus> statuses =
        wait_all(procs, shard_config.worker_timeout_s);

    std::vector<std::uint32_t> failed;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::uint32_t s = pending[i];
      std::string why;
      if (!statuses[i].success()) {
        why = statuses[i].describe();
      } else if (!fs::exists(sidecar_path(work_dir, wave, s))) {
        why = "exited 0 without writing its stats sidecar";
      } else if (consume && !fs::exists(result_file_path(work_dir, s))) {
        why = "exited 0 without writing its ShardResult";
      }
      if (!why.empty()) {
        failed.push_back(s);
        if (!history[s].empty()) history[s] += "; ";
        history[s] += "attempt " + std::to_string(attempt) + ": " + why;
      }
    }
    if (failed.empty()) return;
    if (attempt == 0) {
      for (const std::uint32_t s : failed) {
        KNNPC_LOG(Warn) << "shard " << s << " " << wave
                        << " worker failed (" << history[s]
                        << "); re-executing once";
      }
      pending = std::move(failed);
      continue;
    }
    std::string message =
        "sharded " + wave + " wave failed after one retry:";
    for (const std::uint32_t s : failed) {
      message += "\n  shard " + std::to_string(s) + ": " + history[s];
    }
    throw std::runtime_error(message);
  }
}

// ---------------------------------------------- persistent-worker protocol --
// Persistent mode spawns the S workers once and drives every iteration
// over a framed pipe channel (util/ipc_channel.h) in ONE heavy round-trip
// per worker. The frame vocabulary and payload layouts below are the whole
// protocol; both sides are by construction the same binary (like the plan
// file), so payloads use the same serde records as the on-disk formats.
//
// Driver -> worker commands:
//   RUN_ITERATION  u32 iteration, u32 attempt, u8 skip_produce,
//                  u8 maps_included,
//                  [u32 n, n x u32 partition_owner, n x u32 shard_owner],
//                  u8 graph_full, i64 graph_base_version,
//                  i64 graph_new_version, u32 kdlt_len, then kdlt_len
//                  bytes of "KDLT" knn_graph_delta (the G(t) rows that
//                  changed since graph_base_version; graph_full = every
//                  row — the respawn resync path),
//                  u8 prof_full, i64 prof_base_version,
//                  i64 prof_new_version, u32 kprd_len, then kprd_len
//                  bytes of "KPRD" profile_delta (the users phase 5
//                  touched; prof_full = every user).
//                  skip_produce = the consume-phase respawn path: the
//                  worker goes straight to the consume wave against the
//                  dead incarnation's intact spools.
//   GO             empty payload: the produce -> consume barrier. Sent to
//                  each worker once every shard's PRODUCED arrived; the
//                  worker then runs its consume wave.
//   SHUTDOWN       empty payload; the worker exits 0
// Worker -> driver replies:
//   READY          u32 shard (sent once at startup, store already open)
//   PRODUCED       raw ShardWorkerStats, produce-wave share (spools are
//                  on disk by now)
//   ITERATION_DONE raw ShardWorkerStats (consume-wave share), then
//                  "KSHR" ShardResult bytes
//
// Ownership maps ride along only when they changed since the last command
// the worker saw (or after a respawn); on the default range shard
// partitioner that is the first command only. Both delta payloads are
// length-prefixed because their parsers demand an exact span (trailing
// bytes are a typed error). The strict request/reply discipline (a worker
// never writes before fully reading its command, and writes nothing
// between PRODUCED and the driver's GO) means the two pipe directions can
// never deadlock on full buffers.

constexpr std::uint32_t kCmdShutdown = 3;
constexpr std::uint32_t kCmdRunIteration = 4;
constexpr std::uint32_t kCmdGo = 5;
constexpr std::uint32_t kRspReady = 100;
constexpr std::uint32_t kRspProduced = 103;
constexpr std::uint32_t kRspIterationDone = 104;

/// Bytes of one frame on the wire: the 12-byte header (magic, type,
/// length) plus the payload — what the bytes_tx / bytes_rx counters count.
std::uint64_t frame_wire_bytes(std::size_t payload_size) {
  return 12 + static_cast<std::uint64_t>(payload_size);
}

const char* frame_type_name(std::uint32_t type) {
  switch (type) {
    case kCmdShutdown: return "SHUTDOWN";
    case kCmdRunIteration: return "RUN_ITERATION";
    case kCmdGo: return "GO";
    case kRspReady: return "READY";
    case kRspProduced: return "PRODUCED";
    case kRspIterationDone: return "ITERATION_DONE";
  }
  return "?";
}

void append_owner_maps(std::vector<std::byte>& out,
                       const std::vector<PartitionId>& partition_owner,
                       const std::vector<PartitionId>& shard_owner) {
  append_record(out, static_cast<std::uint32_t>(partition_owner.size()));
  for (const PartitionId p : partition_owner) append_record(out, p);
  for (const PartitionId p : shard_owner) append_record(out, p);
}

/// One long-lived worker as the driver sees it: the process, its channel,
/// and what state the worker is known to hold (so commands can carry
/// deltas instead of snapshots).
struct PersistentWorker {
  Subprocess proc;
  IpcChannel channel;
  /// Distributed mode: this worker lives behind the agent at
  /// `worker_endpoints[endpoint]` — `proc` stays invalid (the agent holds
  /// the process handle; kills go over its control connection) and
  /// `channel` is the TCP socket the agent wired to the worker's stdio.
  bool remote = false;
  std::uint32_t endpoint = 0;
  /// READY seen (consumed lazily before the first command reply).
  bool ready = false;
  /// Worker holds current ownership maps.
  bool has_maps = false;
  /// Version of G the worker holds (-1 = none / desynced).
  std::int64_t graph_version = -1;
  /// Version of P the worker's local profile store holds (-1 = none).
  std::int64_t profile_version = -1;
  /// Set at respawn; cleared (and counted) when the full resync ships.
  bool needs_resync = false;
  std::uint32_t spawn_count = 0;
  std::uint32_t resync_count = 0;
};

/// Shard -> endpoint: contiguous balanced groups (shard s belongs to
/// endpoint s * E / S) — the one arithmetic the spawn path, the spool
/// relay and the stats attribution must all agree on.
std::uint32_t agent_of_shard(std::uint32_t shard, std::uint32_t shards,
                             std::uint32_t agents) {
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(shard) * agents / shards);
}

/// One worker-agent endpoint the driver coordinates: its held control
/// connection (run-long; dropping it is how the agent learns the run
/// died) and this iteration's content-addressed transfer accounting,
/// folded into the endpoint's lowest shard's ShardWorkerStats.
struct RemoteAgentLink {
  std::string endpoint;  // as configured, for diagnostics
  std::string host;
  std::uint16_t port = 0;
  IpcChannel control;
  std::uint32_t lowest_shard = std::numeric_limits<std::uint32_t>::max();
  AgentTransferCounters sync;
};

/// Driver-side state of the persistent fleet, owned by Impl.
struct PersistentRuntime {
  std::vector<PersistentWorker> workers;
  /// Distributed mode only: one link per configured endpoint (empty =
  /// all-local fleet) and the token naming this run's directory on every
  /// agent.
  std::vector<RemoteAgentLink> agents;
  std::string run_token;
  bool plan_written = false;
  /// The last G broadcast to the fleet and its version counter —
  /// the base the next iteration's incremental delta diffs against.
  KnnGraph synced_graph;
  std::int64_t broadcast_version = -1;
  /// Profile sync state: the version last broadcast, and the users phase
  /// 5 has touched since (the next iteration's KPRD rows). The driver
  /// never keeps a profile copy — the touched list IS the delta.
  std::int64_t profile_broadcast_version = -1;
  std::vector<VertexId> pending_profile_users;
  /// Ownership maps as last sent (maps ride commands only when changed).
  std::vector<PartitionId> sent_partition_owner;
  std::vector<PartitionId> sent_shard_owner;
};

void spawn_persistent_worker(PersistentRuntime& rt,
                             const ShardConfig& shard_config,
                             const fs::path& work_dir, std::uint32_t shard) {
  PersistentWorker& worker = rt.workers[shard];
  if (!rt.agents.empty()) {
    // Distributed: the agent spawns the process on its machine and wires
    // the accepted socket to the worker's stdio — from here on the same
    // protocol as a local pipe pair, including READY. The run's files
    // were synced before any spawn (the worker opens its partition store
    // at startup).
    worker.remote = true;
    worker.endpoint = agent_of_shard(
        shard, static_cast<std::uint32_t>(rt.workers.size()),
        static_cast<std::uint32_t>(rt.agents.size()));
    const RemoteAgentLink& agent = rt.agents[worker.endpoint];
    worker.proc = Subprocess();
    worker.channel =
        agent_connect_worker(agent.host, agent.port, rt.run_token, shard,
                             shard_config.agent_timeout_s);
  } else {
    const std::string exe = shard_config.worker_exe.empty()
                                ? current_executable().string()
                                : shard_config.worker_exe;
    IpcChannelPair pair = make_ipc_channel_pair();
    worker.proc = Subprocess(
        std::vector<std::string>{
            exe, "--shard-worker",
            "--plan=" + plan_file_path(work_dir).string(), "--wave=serve",
            "--shard=" + std::to_string(shard)},
        pair.child_read_fd, pair.child_write_fd);
    worker.channel = std::move(pair.parent);
  }
  worker.ready = false;
  worker.has_maps = false;
  worker.graph_version = -1;
  worker.profile_version = -1;
  ++worker.spawn_count;
}

/// Opens the control connections on the first distributed iteration and
/// assigns each endpoint its lowest shard (the stats attribution target).
void ensure_agent_links(PersistentRuntime& rt,
                        const ShardConfig& shard_config, std::uint32_t S) {
  if (shard_config.worker_endpoints.empty() || !rt.agents.empty()) return;
  // Distinct per engine instance so one agent can host several runs
  // (tests drive serial and distributed engines against one agent).
  static std::atomic<std::uint64_t> counter{0};
  rt.run_token = "run-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1));
  const auto E =
      static_cast<std::uint32_t>(shard_config.worker_endpoints.size());
  for (std::uint32_t e = 0; e < E; ++e) {
    RemoteAgentLink link;
    link.endpoint = shard_config.worker_endpoints[e];
    const auto [host, port] = parse_host_port(link.endpoint);
    link.host = host;
    link.port = port;
    link.control = agent_connect_control(host, port, rt.run_token,
                                         shard_config.agent_timeout_s);
    rt.agents.push_back(std::move(link));
  }
  for (std::uint32_t s = 0; s < S; ++s) {
    RemoteAgentLink& link = rt.agents[agent_of_shard(s, S, E)];
    link.lowest_shard = std::min(link.lowest_shard, s);
  }
}

/// Ships this iteration's run files — the plan and the freshly rewritten
/// partition store — to every shard-owning agent, content-addressed:
/// each agent answers the manifest with the checksums it lacks and only
/// those files transfer. Resets and charges the per-iteration transfer
/// counters. Must complete before any worker (re)spawn.
void sync_agent_files(PersistentRuntime& rt, const ShardConfig& shard_config,
                      const fs::path& work_dir) {
  if (rt.agents.empty()) return;
  IoCounters scratch_io;
  std::vector<SyncFileEntry> manifest;
  {
    SyncFileEntry plan;
    plan.relpath = "plan.bin";
    const std::vector<std::byte> bytes =
        read_file(plan_file_path(work_dir), scratch_io);
    plan.size = bytes.size();
    plan.checksum = fnv1a_bytes(bytes);
    manifest.push_back(std::move(plan));
  }
  for (SyncFileEntry entry : scan_sync_root(work_dir / "partitions")) {
    entry.relpath = "partitions/" + entry.relpath;
    manifest.push_back(std::move(entry));
  }
  const auto load = [&](const std::string& relpath) {
    return read_file(work_dir / fs::path(relpath), scratch_io);
  };
  for (RemoteAgentLink& link : rt.agents) {
    link.sync = AgentTransferCounters{};
    if (link.lowest_shard == std::numeric_limits<std::uint32_t>::max()) {
      continue;  // endpoint owns no shards (more endpoints than shards)
    }
    link.sync += agent_sync_push(link.control, manifest, load,
                                 shard_config.agent_timeout_s);
  }
}

/// Everything one iteration needs to build per-worker commands.
struct PersistentIterationInput {
  std::uint32_t iteration = 0;
  const std::vector<PartitionId>* partition_owner = nullptr;
  const std::vector<PartitionId>* shard_owner = nullptr;
  /// Maps differ from PersistentRuntime::sent_* (every worker needs them).
  bool maps_changed = false;
  /// G(t) and the fleet's last synced base.
  const KnnGraph* graph = nullptr;
  std::int64_t graph_base_version = -1;
  std::int64_t graph_new_version = -1;
  /// P(t) and the users whose profiles changed since the last broadcast
  /// (the incremental KPRD rows; a full resync ships every user).
  const InMemoryProfileStore* profiles = nullptr;
  const std::vector<VertexId>* changed_users = nullptr;
  std::int64_t profile_base_version = -1;
  std::int64_t profile_new_version = -1;
};

struct PersistentIterationReply {
  ShardWorkerStats produced;            // produce-wave share of the stats
  ShardWorkerStats consumed;            // consume-wave share of the stats
  std::vector<std::byte> result_bytes;  // "KSHR" payload
  /// Channel traffic and heavy-command count for this worker this
  /// iteration (1 RUN_ITERATION on the steady path; a respawn replay
  /// adds one), plus the KPRD rows shipped — the driver folds these into
  /// ShardWorkerStats.
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  std::uint32_t round_trips = 0;
  std::uint64_t profile_rows_rx = 0;
};

/// Drives ONE full iteration across the persistent fleet: one heavy
/// RUN_ITERATION command per worker carrying maps + G(t) + P(t) deltas,
/// a PRODUCED reply per worker, one payload-free GO barrier, and an
/// ITERATION_DONE reply per worker. Failure containment mirrors
/// supervise_wave, per phase: a worker that dies, replies garbage, or
/// misses the deadline during the produce phase is SIGKILLed and
/// respawned exactly once with a full graph + profile resync, and its
/// command replays verbatim (safe: no shard consumes before GO, so the
/// respawn may rewrite its spools). During the consume phase the
/// respawned worker gets a skip-produce command instead and re-runs only
/// the consume wave against the dead incarnation's intact spools
/// (PRODUCED is sent only after the spool sink flushed, so they are
/// complete by construction). A second failure in the same phase throws
/// with the per-worker diagnostic history. On return every shard's reply
/// is complete; partial output can never be observed by the caller.
std::vector<PersistentIterationReply> run_persistent_iteration(
    PersistentRuntime& rt, const ShardConfig& shard_config,
    const fs::path& work_dir, const PersistentIterationInput& in,
    const KnnGraph& full_base_graph) {
  using Clock = std::chrono::steady_clock;
  const std::uint32_t S = static_cast<std::uint32_t>(rt.workers.size());
  const double timeout_s = shard_config.worker_timeout_s;

  // Delta payloads are memoised per iteration: the incremental deltas are
  // shared by every in-sync worker, the full snapshots by every respawned
  // one.
  std::optional<std::vector<std::byte>> graph_incr;
  std::optional<std::vector<std::byte>> graph_full_bytes;
  auto graph_payload = [&](bool full) -> const std::vector<std::byte>& {
    if (full) {
      if (!graph_full_bytes) {
        graph_full_bytes =
            knn_graph_delta_to_bytes(full_knn_graph_delta(*in.graph));
      }
      return *graph_full_bytes;
    }
    if (!graph_incr) {
      graph_incr = knn_graph_delta_to_bytes(
          knn_graph_delta(full_base_graph, *in.graph));
    }
    return *graph_incr;
  };
  std::optional<std::vector<std::byte>> prof_incr;
  std::optional<std::vector<std::byte>> prof_full_bytes;
  std::uint64_t prof_incr_rows = 0;
  std::uint64_t prof_full_rows = 0;
  auto profile_payload = [&](bool full) -> const std::vector<std::byte>& {
    if (full) {
      if (!prof_full_bytes) {
        const ProfileDelta delta = full_profile_delta(*in.profiles);
        prof_full_rows = delta.rows.size();
        prof_full_bytes = profile_delta_to_bytes(delta);
      }
      return *prof_full_bytes;
    }
    if (!prof_incr) {
      const ProfileDelta delta =
          profile_delta_for_users(*in.profiles, *in.changed_users);
      prof_incr_rows = delta.rows.size();
      prof_incr = profile_delta_to_bytes(delta);
    }
    return *prof_incr;
  };

  std::vector<PersistentIterationReply> replies(S);

  // The full command for one worker. Fullness is per worker and per
  // payload: a worker whose held version is not the broadcast base (a
  // respawn, or a survivor of an aborted iteration) gets the snapshot.
  auto build_command = [&](std::uint32_t s, std::uint32_t attempt,
                           bool skip_produce) {
    PersistentWorker& worker = rt.workers[s];
    std::vector<std::byte> payload;
    append_record(payload, in.iteration);
    append_record(payload, attempt);
    append_record(payload, static_cast<std::uint8_t>(skip_produce));
    const bool include_maps = in.maps_changed || !worker.has_maps;
    append_record(payload, static_cast<std::uint8_t>(include_maps));
    if (include_maps) {
      append_owner_maps(payload, *in.partition_owner, *in.shard_owner);
    }
    const bool graph_full = in.graph_base_version < 0 ||
                            worker.graph_version != in.graph_base_version;
    append_record(payload, static_cast<std::uint8_t>(graph_full));
    append_record(payload, in.graph_base_version);
    append_record(payload, in.graph_new_version);
    {
      const std::vector<std::byte>& delta = graph_payload(graph_full);
      append_record(payload, static_cast<std::uint32_t>(delta.size()));
      payload.insert(payload.end(), delta.begin(), delta.end());
    }
    const bool prof_full =
        in.profile_base_version < 0 ||
        worker.profile_version != in.profile_base_version;
    append_record(payload, static_cast<std::uint8_t>(prof_full));
    append_record(payload, in.profile_base_version);
    append_record(payload, in.profile_new_version);
    {
      const std::vector<std::byte>& delta = profile_payload(prof_full);
      append_record(payload, static_cast<std::uint32_t>(delta.size()));
      payload.insert(payload.end(), delta.begin(), delta.end());
    }
    replies[s].profile_rows_rx = prof_full ? prof_full_rows : prof_incr_rows;
    if (graph_full && prof_full && worker.needs_resync) {
      ++worker.resync_count;
      worker.needs_resync = false;
    }
    return payload;
  };

  // Collect helper: one frame from worker s under its own deadline (a
  // wedged worker early in the collection order must not eat the budget
  // of a healthy one whose reply is still streaming), consuming the
  // leading READY of a fresh (re)spawn first. Throws IpcError /
  // runtime_error; the per-phase fail path takes over.
  // Kills worker s NOW and reports how it died: locally SIGKILL + reap,
  // remotely the agent's KillWorker round-trip (whose OK payload is the
  // describe string). "still running" when even the control link failed
  // — the agent kills its orphans itself once the link drops.
  auto kill_worker_now = [&](std::uint32_t s) -> std::string {
    PersistentWorker& worker = rt.workers[s];
    if (worker.remote) {
      try {
        return agent_kill_worker(rt.agents[worker.endpoint].control, s,
                                 shard_config.agent_timeout_s);
      } catch (const std::exception&) {
        return "still running";
      }
    }
    worker.proc.kill_now();
    worker.proc.wait();
    return worker.proc.status().describe();
  };

  auto collect_reply = [&](std::uint32_t s, std::uint32_t expected_reply)
      -> IpcFrame {
    PersistentWorker& worker = rt.workers[s];
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               timeout_s >= 0.0 ? timeout_s : 0.0));
    auto remaining = [&]() -> double {
      if (timeout_s < 0.0) return -1.0;
      return std::max(
          std::chrono::duration<double>(deadline - Clock::now()).count(),
          0.0);
    };
    if (!worker.ready) {
      const IpcFrame hello = worker.channel.recv(remaining());
      replies[s].bytes_rx += frame_wire_bytes(hello.payload.size());
      std::uint32_t echoed = S;  // any invalid value
      std::size_t offset = 0;
      if (hello.type != kRspReady ||
          !read_record(std::span<const std::byte>(hello.payload), offset,
                       echoed) ||
          echoed != s) {
        throw std::runtime_error(std::string("expected READY, got frame ") +
                                 frame_type_name(hello.type));
      }
      worker.ready = true;
    }
    IpcFrame frame = worker.channel.recv(remaining());
    replies[s].bytes_rx += frame_wire_bytes(frame.payload.size());
    if (frame.type != expected_reply) {
      throw std::runtime_error(std::string("expected ") +
                               frame_type_name(expected_reply) +
                               ", got frame " + frame_type_name(frame.type));
    }
    return frame;
  };

  // ---- Produce phase: RUN_ITERATION out, PRODUCED back. ----------------
  {
    std::vector<std::uint32_t> pending(S);
    for (std::uint32_t s = 0; s < S; ++s) pending[s] = s;
    std::vector<std::string> history(S);
    for (std::uint32_t attempt = 0; attempt < 2; ++attempt) {
      std::vector<std::uint32_t> failed;
      std::vector<bool> send_ok(S, true);
      // Record a failure for this attempt; the worker is killed (unless
      // the caller already did, to describe the corpse) so the next step
      // (respawn or diagnostic) starts clean.
      auto fail_worker = [&](std::uint32_t s, const std::string& why,
                             bool kill = true) {
        failed.push_back(s);
        if (!history[s].empty()) history[s] += "; ";
        history[s] += "attempt " + std::to_string(attempt) + ": " + why;
        if (kill) (void)kill_worker_now(s);
        rt.workers[s].channel = IpcChannel();
      };

      // Send phase: every pending worker gets its command (a dead peer
      // surfaces as an EPIPE SysError here and is handled like any other
      // failure — no hang, no partial wave; a socket peer that stops
      // draining hits the send deadline instead of wedging the driver).
      for (const std::uint32_t s : pending) {
        PersistentWorker& worker = rt.workers[s];
        const std::vector<std::byte> payload =
            build_command(s, attempt, /*skip_produce=*/false);
        ++replies[s].round_trips;
        try {
          worker.channel.send(kCmdRunIteration, payload, timeout_s);
          replies[s].bytes_tx += frame_wire_bytes(payload.size());
        } catch (const IpcError& e) {
          // An OversizedFrame here is the DRIVER refusing its own
          // payload (workload too large for the frame cap) —
          // deterministic, so a kill/respawn would only replay the
          // refusal against a healthy worker. Abort with the real cause.
          if (e.kind() == IpcErrorKind::OversizedFrame) {
            throw std::runtime_error(
                "sharded produce wave: command for shard " +
                std::to_string(s) + " exceeds the IPC frame bound (" +
                e.what() + "); use process mode for workloads of this "
                "size");
          }
          send_ok[s] = false;
          // Local: describe the (unreaped) process as-is, then kill.
          // Remote: the kill round-trip is the only way to learn how the
          // worker died, so it doubles as the describe.
          const std::string describe = worker.remote
                                           ? kill_worker_now(s)
                                           : worker.proc.status().describe();
          fail_worker(s, std::string("command send failed (") + e.what() +
                             "; worker " + describe + ")",
                      /*kill=*/!worker.remote);
        }
      }

      for (const std::uint32_t s : pending) {
        if (!send_ok[s]) continue;
        PersistentWorker& worker = rt.workers[s];
        try {
          const IpcFrame frame = collect_reply(s, kRspProduced);
          const std::span<const std::byte> payload(frame.payload);
          std::size_t offset = 0;
          ShardWorkerStats stats;
          if (!read_record(payload, offset, stats) ||
              offset != payload.size()) {
            throw std::runtime_error("malformed PRODUCED payload");
          }
          replies[s].produced = stats;
          // The worker observably holds what the command carried (it
          // applies every delta before its produce wave starts).
          worker.has_maps = true;
          worker.graph_version = in.graph_new_version;
          worker.profile_version = in.profile_new_version;
        } catch (const IpcError& e) {
          if (e.kind() == IpcErrorKind::Timeout) {
            fail_worker(s, "command timed out after " +
                               std::to_string(timeout_s) +
                               "s (killed with SIGKILL)");
          } else {
            // EOF / truncation / garbage: kill and reap first so the
            // description carries how the process actually died.
            fail_worker(s, std::string(e.what()) + " (worker " +
                               kill_worker_now(s) + ")",
                        /*kill=*/false);
          }
        } catch (const std::exception& e) {
          fail_worker(s, e.what());
        }
      }

      if (failed.empty()) break;
      if (attempt == 0) {
        for (const std::uint32_t s : failed) {
          KNNPC_LOG(Warn) << "persistent shard " << s << " produce"
                          << " worker failed (" << history[s]
                          << "); respawning once with a full resync";
          spawn_persistent_worker(rt, shard_config, work_dir, s);
          rt.workers[s].needs_resync = true;
        }
        pending = std::move(failed);
        continue;
      }
      std::string message = "sharded produce wave failed after one retry:";
      for (const std::uint32_t s : failed) {
        message += "\n  shard " + std::to_string(s) + ": " + history[s];
      }
      throw std::runtime_error(message);
    }
  }

  // ---- Spool relay (distributed, several agents): spool (p, c) was
  // written on p's machine but c consumes it on its own. Between the
  // PRODUCED barrier (all spools complete on disk) and any GO, route
  // every cross-agent spool through the driver, content-addressed like
  // any other sync — a converged spool that did not change since the
  // last iteration never re-transfers. A missing spool relays as empty
  // bytes so the consumer-side file always exists. ----------------------
  if (rt.agents.size() > 1) {
    const auto E = static_cast<std::uint32_t>(rt.agents.size());
    for (std::uint32_t p = 0; p < S; ++p) {
      const std::uint32_t ep = agent_of_shard(p, S, E);
      for (std::uint32_t c = 0; c < S; ++c) {
        const std::uint32_t ec = agent_of_shard(c, S, E);
        if (ep == ec) continue;
        const std::string relpath =
            routed_spool_path("spools", kSpoolStem, p, c).generic_string();
        const FileBlob blob = agent_fetch_file(
            rt.agents[ep].control, relpath, shard_config.agent_timeout_s);
        SyncFileEntry entry;
        entry.relpath = relpath;
        entry.size = blob.bytes.size();
        entry.checksum = fnv1a_bytes(blob.bytes);
        RemoteAgentLink& dest = rt.agents[ec];
        dest.sync += agent_sync_push(
            dest.control, {entry},
            [&](const std::string&) { return blob.bytes; },
            shard_config.agent_timeout_s);
      }
    }
  }

  // ---- Consume phase: GO out (the barrier — every shard has spooled by
  // now), ITERATION_DONE back. A respawn replays with skip_produce
  // instead of GO. -------------------------------------------------------
  {
    std::vector<std::uint32_t> pending(S);
    for (std::uint32_t s = 0; s < S; ++s) pending[s] = s;
    std::vector<std::string> history(S);
    for (std::uint32_t attempt = 0; attempt < 2; ++attempt) {
      std::vector<std::uint32_t> failed;
      std::vector<bool> send_ok(S, true);
      auto fail_worker = [&](std::uint32_t s, const std::string& why,
                             bool kill = true) {
        failed.push_back(s);
        if (!history[s].empty()) history[s] += "; ";
        history[s] += "attempt " + std::to_string(attempt) + ": " + why;
        if (kill) (void)kill_worker_now(s);
        rt.workers[s].channel = IpcChannel();
      };

      for (const std::uint32_t s : pending) {
        PersistentWorker& worker = rt.workers[s];
        try {
          if (attempt == 0) {
            worker.channel.send(kCmdGo, std::vector<std::byte>{}, timeout_s);
            replies[s].bytes_tx += frame_wire_bytes(0);
          } else {
            // The respawned worker re-runs only the consume wave: the
            // dead incarnation's spools are complete on disk, so
            // re-producing would be wasted (and, with other shards
            // mid-consume, unsafe).
            const std::vector<std::byte> payload =
                build_command(s, attempt, /*skip_produce=*/true);
            ++replies[s].round_trips;
            worker.channel.send(kCmdRunIteration, payload, timeout_s);
            replies[s].bytes_tx += frame_wire_bytes(payload.size());
          }
        } catch (const IpcError& e) {
          if (e.kind() == IpcErrorKind::OversizedFrame) {
            throw std::runtime_error(
                "sharded consume wave: command for shard " +
                std::to_string(s) + " exceeds the IPC frame bound (" +
                e.what() + "); use process mode for workloads of this "
                "size");
          }
          send_ok[s] = false;
          const std::string describe = worker.remote
                                           ? kill_worker_now(s)
                                           : worker.proc.status().describe();
          fail_worker(s, std::string("command send failed (") + e.what() +
                             "; worker " + describe + ")",
                      /*kill=*/!worker.remote);
        }
      }

      for (const std::uint32_t s : pending) {
        if (!send_ok[s]) continue;
        PersistentWorker& worker = rt.workers[s];
        try {
          const IpcFrame frame = collect_reply(s, kRspIterationDone);
          const std::span<const std::byte> payload(frame.payload);
          std::size_t offset = 0;
          ShardWorkerStats stats;
          if (!read_record(payload, offset, stats)) {
            throw std::runtime_error("malformed ITERATION_DONE payload");
          }
          replies[s].consumed = stats;
          replies[s].result_bytes.assign(payload.begin() + offset,
                                         payload.end());
          // A skip-produce replay applied fresh deltas; recording the
          // versions again for the steady path is harmless.
          worker.has_maps = true;
          worker.graph_version = in.graph_new_version;
          worker.profile_version = in.profile_new_version;
        } catch (const IpcError& e) {
          if (e.kind() == IpcErrorKind::Timeout) {
            fail_worker(s, "command timed out after " +
                               std::to_string(timeout_s) +
                               "s (killed with SIGKILL)");
          } else {
            fail_worker(s, std::string(e.what()) + " (worker " +
                               kill_worker_now(s) + ")",
                        /*kill=*/false);
          }
        } catch (const std::exception& e) {
          fail_worker(s, e.what());
        }
      }

      if (failed.empty()) break;
      if (attempt == 0) {
        for (const std::uint32_t s : failed) {
          KNNPC_LOG(Warn) << "persistent shard " << s << " consume"
                          << " worker failed (" << history[s]
                          << "); respawning once with a full resync";
          spawn_persistent_worker(rt, shard_config, work_dir, s);
          rt.workers[s].needs_resync = true;
        }
        pending = std::move(failed);
        continue;
      }
      std::string message = "sharded consume wave failed after one retry:";
      for (const std::uint32_t s : failed) {
        message += "\n  shard " + std::to_string(s) + ": " + history[s];
      }
      throw std::runtime_error(message);
    }
  }
  return replies;
}

}  // namespace

// ------------------------------------------------------ the worker role --

int shard_worker_main(const fs::path& plan_file, const std::string& wave,
                      std::uint32_t shard, std::uint32_t attempt) try {
  const fs::path work_dir = plan_file.parent_path();
  const ProcessPlan plan = load_plan_file(plan_file);
  if (shard >= plan.shards) {
    throw std::invalid_argument("shard " + std::to_string(shard) +
                                " out of range (S=" +
                                std::to_string(plan.shards) + ")");
  }
  const EngineConfig& config = plan.config;
  const PartitionAssignment assignment(plan.partition_owner,
                                       config.num_partitions);
  const PartitionAssignment shard_owner(plan.shard_owner, plan.shards);
  const WaveContext ctx{config,     plan.iteration,
                        plan.shards, plan.threads_per_shard,
                        assignment, shard_owner,
                        work_dir};
  const std::vector<VertexId> members = shard_owner.members(shard);
  const PartitionStore store(work_dir / "partitions", config.io_model,
                             config.storage_mode);
  IoAccountant io(config.io_model);

  ShardWorkerStats worker;
  worker.shard = shard;
  worker.users = static_cast<VertexId>(members.size());
  worker.stats.iteration = plan.iteration;
  worker.stats.threads_used = plan.threads_per_shard;
  const auto fault_hook = [&] {
    maybe_inject_fault(wave.c_str(), shard, attempt, plan.iteration);
  };

  if (wave == "produce") {
    RecordShardWriter<Tuple> sink(
        spools_dir(work_dir), routed_producer_stem(kSpoolStem, shard),
        plan.shards,
        std::max<std::size_t>(config.shard_buffer_bytes / plan.shards,
                              sizeof(Tuple)),
        &io);
    produce_candidates(ctx, shard, members, store, sink, worker, fault_hook);
    sink.finish();
  } else if (wave == "consume") {
    std::unique_ptr<ThreadPool> pool;
    if (plan.threads_per_shard > 1) {
      // The worker's main thread participates (same rule as everywhere).
      pool = std::make_unique<ThreadPool>(plan.threads_per_shard - 1);
    }
    const KnnGraph prev = load_knn_graph_file(prev_graph_path(work_dir));
    if (prev.num_vertices() != assignment.num_vertices()) {
      throw std::runtime_error("shard_worker: G(t) snapshot vertex count "
                               "does not match the plan");
    }
    ConsumerOutput out =
        consume_candidates(ctx, shard, members, store, prev, pool.get(), &io,
                           /*local_profiles=*/nullptr, worker, fault_hook);
    ShardResult result;
    result.shard = shard;
    result.num_vertices = assignment.num_vertices();
    result.k = config.k;
    result.changed = out.changed;
    result.entries.reserve(members.size());
    for (const VertexId user : members) {
      const auto list = out.next.neighbors(user);
      result.entries.emplace_back(
          user, std::vector<Neighbor>(list.begin(), list.end()));
    }
    save_shard_result_file(result_file_path(work_dir, shard), result);
  } else {
    std::fprintf(stderr, "shard_worker: unknown wave '%s'\n", wave.c_str());
    return 2;
  }

  worker.stats.io = io.counters();
  worker.stats.io += store.io().counters();
  worker.stats.modeled_io_us = io.modeled_us() + store.io().modeled_us();
  // Last write: the atomic sidecar is the completion marker the driver
  // requires, so everything above must already be on disk.
  save_worker_stats_file(sidecar_path(work_dir, wave, shard), worker);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "shard_worker (%s wave, shard %u): %s\n",
               wave.c_str(), shard, e.what());
  return 12;
}

int persistent_shard_worker_main(const fs::path& plan_file,
                                 std::uint32_t shard) try {
  const fs::path work_dir = plan_file.parent_path();
  const ProcessPlan plan = load_plan_file(plan_file);
  if (shard >= plan.shards) {
    throw std::invalid_argument("shard " + std::to_string(shard) +
                                " out of range (S=" +
                                std::to_string(plan.shards) + ")");
  }
  const EngineConfig& config = plan.config;
  // Opened ONCE and held — the point of staying alive. The store holds no
  // state between load() calls, so the driver rewriting the partition
  // files each iteration is safe by the same argument that makes the
  // store concurrent-reader safe within one.
  const PartitionStore store(work_dir / "partitions", config.io_model,
                             config.storage_mode);
  std::unique_ptr<ThreadPool> pool;
  if (plan.threads_per_shard > 1) {
    pool = std::make_unique<ThreadPool>(plan.threads_per_shard - 1);
  }
  // The command channel is this process's stdin/stdout (wired to the
  // driver's pipes by the Subprocess stdio constructor). Diagnostics go
  // to the inherited stderr only.
  IpcChannel channel(STDIN_FILENO, STDOUT_FILENO);

  // State synced from the driver across commands.
  std::optional<PartitionAssignment> assignment;  // user -> partition
  std::optional<PartitionAssignment> shard_owner;  // user -> shard
  std::vector<VertexId> members;
  KnnGraph graph;  // this worker's copy of G(t)
  std::int64_t graph_version = -1;
  InMemoryProfileStore local_profiles;  // this worker's copy of P(t)
  std::int64_t profile_version = -1;

  {
    std::vector<std::byte> hello;
    append_record(hello, shard);
    channel.send(kRspReady, hello);
  }

  for (;;) {
    IpcFrame frame;
    try {
      frame = channel.recv();
    } catch (const IpcError& e) {
      // The driver dropping its end is an orderly shutdown (its process
      // may already be gone); anything else is a protocol failure.
      if (e.kind() == IpcErrorKind::Eof) return 0;
      throw;
    }
    if (frame.type == kCmdShutdown) return 0;
    if (frame.type != kCmdRunIteration) {
      throw std::runtime_error(std::string("unexpected command frame ") +
                               frame_type_name(frame.type));
    }
    const std::span<const std::byte> payload(frame.payload);
    std::size_t offset = 0;
    auto read = [&]<typename T>(T& out) {
      if (!read_record(payload, offset, out)) {
        throw std::runtime_error(std::string("truncated ") +
                                 frame_type_name(frame.type) + " payload");
      }
    };
    std::uint32_t iteration = 0;
    std::uint32_t attempt = 0;
    std::uint8_t skip_produce = 0;
    std::uint8_t maps_included = 0;
    read(iteration);
    read(attempt);
    read(skip_produce);
    read(maps_included);
    if (maps_included != 0) {
      std::uint32_t n = 0;
      read(n);
      std::vector<PartitionId> partition_owner(n);
      for (PartitionId& p : partition_owner) read(p);
      std::vector<PartitionId> owner(n);
      for (PartitionId& p : owner) read(p);
      assignment.emplace(std::move(partition_owner), config.num_partitions);
      shard_owner.emplace(std::move(owner), plan.shards);
      members = shard_owner->members(shard);
    }
    if (!assignment || !shard_owner) {
      throw std::runtime_error("command arrived before any ownership maps");
    }

    // Sync this worker's G(t) from its (length-prefixed) delta. The delta
    // parsers demand an exact span, hence the explicit length.
    {
      std::uint8_t full_sync = 0;
      std::int64_t base_version = -1;
      std::int64_t new_version = -1;
      std::uint32_t delta_len = 0;
      read(full_sync);
      read(base_version);
      read(new_version);
      read(delta_len);
      if (delta_len > payload.size() - offset) {
        throw std::runtime_error("truncated RUN_ITERATION payload");
      }
      const KnnGraphDelta delta =
          knn_graph_delta_from_bytes(payload.subspan(offset, delta_len));
      offset += delta_len;
      if (full_sync != 0) {
        graph = KnnGraph(delta.num_vertices, delta.k);
      } else if (graph_version != base_version) {
        throw std::runtime_error(
            "incremental G(t) delta against version " +
            std::to_string(base_version) + " but this worker holds " +
            std::to_string(graph_version));
      }
      apply_knn_graph_delta(graph, delta);
      graph_version = new_version;
      if (graph.num_vertices() != assignment->num_vertices()) {
        throw std::runtime_error(
            "synced G(t) vertex count does not match the ownership maps");
      }
    }

    // Sync this worker's P(t) the same way. After iteration 0 only the
    // changed rows travel; the shared store's .prof files are never read
    // (the driver does not even write them in persistent mode).
    {
      std::uint8_t full_sync = 0;
      std::int64_t base_version = -1;
      std::int64_t new_version = -1;
      std::uint32_t delta_len = 0;
      read(full_sync);
      read(base_version);
      read(new_version);
      read(delta_len);
      if (delta_len > payload.size() - offset) {
        throw std::runtime_error("truncated RUN_ITERATION payload");
      }
      const ProfileDelta delta =
          profile_delta_from_bytes(payload.subspan(offset, delta_len));
      offset += delta_len;
      if (full_sync != 0) {
        local_profiles =
            InMemoryProfileStore(std::vector<SparseProfile>(delta.num_users));
      } else if (profile_version != base_version) {
        throw std::runtime_error(
            "incremental P(t) delta against version " +
            std::to_string(base_version) + " but this worker holds " +
            std::to_string(profile_version));
      }
      apply_profile_delta(local_profiles, delta);
      profile_version = new_version;
    }
    if (offset != payload.size()) {
      throw std::runtime_error("trailing bytes in RUN_ITERATION payload");
    }

    const WaveContext ctx{config,      iteration,
                          plan.shards, plan.threads_per_shard,
                          *assignment, *shard_owner,
                          work_dir};

    if (skip_produce == 0) {
      // Produce phase: spool, report PRODUCED, then hold at the barrier
      // until every other shard has spooled too.
      ShardWorkerStats worker;
      worker.shard = shard;
      worker.users = static_cast<VertexId>(members.size());
      worker.stats.iteration = iteration;
      worker.stats.threads_used = plan.threads_per_shard;
      IoAccountant io(config.io_model);
      // The held store's accountant runs for the whole process lifetime;
      // this phase's share is the delta across it.
      const IoCounters store_io_before = store.io().counters();
      const double store_us_before = store.io().modeled_us();
      const auto fault_hook = [&] {
        maybe_inject_fault("produce", shard, attempt, iteration);
      };
      RecordShardWriter<Tuple> sink(
          spools_dir(work_dir), routed_producer_stem(kSpoolStem, shard),
          plan.shards,
          std::max<std::size_t>(config.shard_buffer_bytes / plan.shards,
                                sizeof(Tuple)),
          &io);
      produce_candidates(ctx, shard, members, store, sink, worker,
                         fault_hook);
      sink.finish();
      worker.stats.io = io.counters();
      worker.stats.io += store.io().counters() - store_io_before;
      worker.stats.modeled_io_us =
          io.modeled_us() + (store.io().modeled_us() - store_us_before);
      std::vector<std::byte> reply;
      append_record(reply, worker);
      channel.send(kRspProduced, reply);

      IpcFrame go;
      try {
        go = channel.recv();
      } catch (const IpcError& e) {
        // A driver tearing the fleet down mid-iteration (another shard
        // failed twice) drops its end; that is an orderly exit here too.
        if (e.kind() == IpcErrorKind::Eof) return 0;
        throw;
      }
      if (go.type == kCmdShutdown) return 0;
      if (go.type != kCmdGo) {
        throw std::runtime_error(std::string("expected GO, got frame ") +
                                 frame_type_name(go.type));
      }
    }

    // Consume phase, against this worker's synced G(t) and P(t).
    ShardWorkerStats worker;
    worker.shard = shard;
    worker.users = static_cast<VertexId>(members.size());
    worker.stats.iteration = iteration;
    worker.stats.threads_used = plan.threads_per_shard;
    IoAccountant io(config.io_model);
    const IoCounters store_io_before = store.io().counters();
    const double store_us_before = store.io().modeled_us();
    const auto fault_hook = [&] {
      maybe_inject_fault("consume", shard, attempt, iteration);
    };
    ConsumerOutput out =
        consume_candidates(ctx, shard, members, store, graph, pool.get(),
                           &io, &local_profiles, worker, fault_hook);
    ShardResult result;
    result.shard = shard;
    result.num_vertices = assignment->num_vertices();
    result.k = config.k;
    result.changed = out.changed;
    result.entries.reserve(members.size());
    for (const VertexId user : members) {
      const auto list = out.next.neighbors(user);
      result.entries.emplace_back(
          user, std::vector<Neighbor>(list.begin(), list.end()));
    }
    worker.stats.io = io.counters();
    worker.stats.io += store.io().counters() - store_io_before;
    worker.stats.modeled_io_us =
        io.modeled_us() + (store.io().modeled_us() - store_us_before);
    std::vector<std::byte> reply;
    append_record(reply, worker);
    const std::vector<std::byte> result_bytes = shard_result_to_bytes(result);
    reply.insert(reply.end(), result_bytes.begin(), result_bytes.end());
    channel.send(kRspIterationDone, reply);
  }
} catch (const std::exception& e) {
  std::fprintf(stderr, "persistent shard_worker (shard %u): %s\n", shard,
               e.what());
  return 13;
}

std::optional<int> maybe_run_shard_worker(int argc, char** argv) {
  bool is_worker = false;
  std::string plan;
  std::string wave;
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;
  bool have_shard = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    auto value_of = [&](std::string_view prefix)
        -> std::optional<std::string> {
      if (arg.size() >= prefix.size() &&
          arg.substr(0, prefix.size()) == prefix) {
        return std::string(arg.substr(prefix.size()));
      }
      return std::nullopt;
    };
    std::string parse_error;
    auto parse_u32 = [&](const std::string& value, const char* flag,
                         std::uint32_t& out) {
      try {
        out = static_cast<std::uint32_t>(std::stoul(value));
      } catch (const std::exception&) {
        parse_error = std::string("bad ") + flag + " value '" + value + "'";
      }
    };
    if (arg == "--shard-worker") {
      is_worker = true;
    } else if (auto v = value_of("--plan=")) {
      plan = *v;
    } else if (auto v = value_of("--wave=")) {
      wave = *v;
    } else if (auto v = value_of("--shard=")) {
      parse_u32(*v, "--shard", shard);
      have_shard = parse_error.empty();
    } else if (auto v = value_of("--attempt=")) {
      parse_u32(*v, "--attempt", attempt);
    }
    // A parse failure only matters in the worker role; a normal binary
    // invocation must fall through to its own argv handling untouched.
    if (!parse_error.empty() && is_worker) {
      std::fprintf(stderr, "--shard-worker: %s\n", parse_error.c_str());
      return 2;
    }
  }
  if (!is_worker) return std::nullopt;
  if (plan.empty() || wave.empty() || !have_shard) {
    std::fprintf(stderr,
                 "--shard-worker requires --plan= --wave= --shard=\n");
    return 2;
  }
  if (wave == "serve") {
    return persistent_shard_worker_main(plan, shard);
  }
  return shard_worker_main(plan, wave, shard, attempt);
}

// ----------------------------------------------------------- the driver --

struct ShardedKnnEngine::Impl {
  std::unique_ptr<ScratchDir> scratch;
  fs::path work_dir;
  /// Resolved worker count S.
  std::uint32_t shards = 1;
  /// Phase-4 threads per worker: the total auto/explicit budget
  /// (resolve_thread_count, as in the serial engine) divided by S.
  std::uint32_t threads_per_shard = 1;
  /// One pool per worker (nullptr when threads_per_shard == 1: the worker
  /// thread itself is the one thread). Process mode leaves all slots
  /// empty — each worker process builds its own pool.
  std::vector<std::unique_ptr<ThreadPool>> pools;
  /// Previous phase-1 assignment (reused when repartition_every > 1).
  std::optional<PartitionAssignment> last_assignment;
  /// Persistent mode only: the long-lived worker fleet and its sync
  /// state. Workers spawn lazily on the first iteration and are shut
  /// down (gracefully, then by force) when the engine dies.
  PersistentRuntime persistent;

  ~Impl() { shutdown_persistent_workers(); }

  /// Sends SHUTDOWN to every live worker, waits briefly for orderly
  /// exits, and SIGKILLs stragglers. Never blocks unboundedly.
  void shutdown_persistent_workers() noexcept {
    using Clock = std::chrono::steady_clock;
    bool any = false;
    for (PersistentWorker& w : persistent.workers) {
      if (w.remote) {
        // Remote worker: best-effort orderly SHUTDOWN with a short
        // deadline (the socket may be backpressured by a dead peer),
        // then half-close so its recv loop sees EOF either way.
        if (w.channel.valid()) {
          try {
            w.channel.send(kCmdShutdown, {}, /*timeout_s=*/5.0);
          } catch (...) {
          }
          w.channel.close_write();
        }
        continue;
      }
      if (!w.proc.valid() || w.proc.status().finished()) continue;
      any = true;
      try {
        w.channel.send(kCmdShutdown, {});
      } catch (...) {
        // Already dead: the reap below handles it.
      }
      w.channel.close_write();
    }
    // Dropping the control links tells every agent this run is over; an
    // agent kills whatever workers ignored their SHUTDOWN.
    persistent.agents.clear();
    if (!any) return;
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    for (PersistentWorker& w : persistent.workers) {
      if (!w.proc.valid()) continue;
      while (!w.proc.poll().finished() && Clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (!w.proc.status().finished()) {
        w.proc.kill_now();
        w.proc.wait();
      }
    }
  }

  Impl(const EngineConfig& config, const ShardConfig& shard_config,
       VertexId num_users) {
    if (config.work_dir.empty()) {
      scratch = std::make_unique<ScratchDir>("shard_driver");
      work_dir = scratch->path();
    } else {
      work_dir = config.work_dir;
      fs::create_directories(work_dir);
    }
    shards = resolve_shard_count(shard_config.shards, num_users, config.k);
    const std::uint32_t total = resolve_thread_count(
        config.threads,
        static_cast<std::uint64_t>(num_users) *
            std::max<std::uint32_t>(config.k, 1),
        kPhase4WorkPerThread);
    threads_per_shard = std::max(total / shards, 1u);
    pools.resize(shards);
    if (shard_config.worker_mode == ShardWorkerMode::Thread) {
      for (std::uint32_t s = 0; s < shards; ++s) {
        if (threads_per_shard > 1) {
          // The worker thread participates in its own parallel loops, so
          // spawn one fewer pool worker (same rule as the serial engine).
          pools[s] = std::make_unique<ThreadPool>(threads_per_shard - 1);
        }
      }
    }
  }
};

ShardedKnnEngine::ShardedKnnEngine(EngineConfig config,
                                   ShardConfig shard_config,
                                   std::vector<SparseProfile> profiles)
    : config_(std::move(config)), shard_config_(std::move(shard_config)),
      profiles_(std::move(profiles)),
      impl_(std::make_unique<Impl>(config_, shard_config_,
                                   profiles_.num_users())) {
  if (config_.num_partitions == 0) {
    throw std::invalid_argument(
        "ShardedKnnEngine: num_partitions must be > 0");
  }
  if (config_.memory_slots < 2) {
    throw std::invalid_argument(
        "ShardedKnnEngine: memory_slots must be >= 2 (a PI pair needs "
        "both partitions resident)");
  }
  if (!shard_config_.worker_endpoints.empty() &&
      shard_config_.worker_mode != ShardWorkerMode::Persistent) {
    throw std::invalid_argument(
        "ShardedKnnEngine: worker_endpoints requires the persistent "
        "worker mode (distributed execution rides the persistent-worker "
        "protocol)");
  }
  // Identical bootstrap to KnnEngine: same seed, same initial G(0).
  Rng rng(config_.seed);
  graph_ = random_knn_graph(profiles_.num_users(), config_.k, rng);
}

ShardedKnnEngine::~ShardedKnnEngine() = default;

std::uint32_t ShardedKnnEngine::num_shards() const noexcept {
  return impl_->shards;
}

std::uint32_t ShardedKnnEngine::threads_per_shard() const noexcept {
  return impl_->threads_per_shard;
}

void ShardedKnnEngine::set_initial_graph(KnnGraph graph) {
  if (graph.num_vertices() != profiles_.num_users()) {
    throw std::invalid_argument(
        "ShardedKnnEngine::set_initial_graph: vertex count mismatch");
  }
  graph_ = std::move(graph);
}

ShardedIterationStats ShardedKnnEngine::run_iteration() {
  ShardedIterationStats out;
  const VertexId n = profiles_.num_users();
  const PartitionId m = config_.num_partitions;
  const std::uint32_t S = impl_->shards;
  const bool persistent =
      shard_config_.worker_mode == ShardWorkerMode::Persistent;
  PartitionStore store(impl_->work_dir / "partitions", config_.io_model,
                       config_.storage_mode);

  // ---- Phase 1 (driver): partition G(t) once; split users into shards.
  double partition_s = 0.0;
  PartitionAssignment assignment;
  PartitionAssignment shard_owner;
  std::optional<std::size_t> partition_cost_total;
  {
    ScopedAccumulator timing(&partition_s);
    const EdgeList edge_list = graph_.to_edge_list();
    const Digraph digraph(edge_list);
    const bool reuse =
        config_.repartition_every > 1 &&
        iteration_ % config_.repartition_every != 0 &&
        impl_->last_assignment.has_value() &&
        impl_->last_assignment->num_vertices() == n &&
        impl_->last_assignment->num_partitions() == m;
    if (reuse) {
      assignment = *impl_->last_assignment;
    } else {
      assignment = make_partitioner(config_.partitioner)->assign(digraph, m);
      impl_->last_assignment = assignment;
    }
    if (shard_config_.shard_partitioner == "pair-affinity") {
      // Align shards with the partition map so each consumer's schedule
      // touches only its own partition group (~S-fold fewer loads). Built
      // here, not via make_partitioner: the split is derived from the
      // phase-1 assignment, which a Partitioner never sees.
      shard_owner = pair_affinity_shard_split(assignment, S);
    } else {
      shard_owner =
          make_partitioner(shard_config_.shard_partitioner)->assign(digraph, S);
    }
    // Persistent workers hold P(t) locally (synced over the channel), so
    // their store carries edges only — no .prof files are ever written,
    // and partition-profile reads stay at zero from iteration 0.
    store.write_all(edge_list, assignment, profiles_,
                    /*include_profiles=*/!persistent);
    if (config_.record_partition_cost) {
      partition_cost_total = partition_cost(digraph, assignment).total;
    }
  }
  std::vector<std::vector<VertexId>> shard_members(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    shard_members[s] = shard_owner.members(s);
  }

  out.workers.resize(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    out.workers[s].shard = s;
    out.workers[s].users = static_cast<VertexId>(shard_members[s].size());
    out.workers[s].stats.iteration = iteration_;
    out.workers[s].stats.threads_used = impl_->threads_per_shard;
  }

  const WaveContext ctx{config_,    iteration_,
                       S,          impl_->threads_per_shard,
                       assignment, shard_owner,
                       impl_->work_dir};
  ShardedKnnGraph output(shard_owner, config_.k);
  std::vector<std::uint64_t> change_counts(S, 0);
  // I/O of the cross-shard exchange not already inside a worker's stats
  // (thread mode: the shared spool accountant; process mode: nothing —
  // workers account their own spool traffic in their sidecars).
  IoCounters exchange_io;
  double exchange_io_us = 0.0;

  // Validates and folds one worker's ShardResult into the merged output —
  // shared by the process (file handoff) and persistent (inline reply)
  // paths; a worker can never smuggle a wrong-shaped or foreign-user
  // result past this.
  auto fold_result = [&](std::uint32_t s, ShardResult result) {
    if (result.shard != s || result.num_vertices != n ||
        result.k != config_.k) {
      throw std::runtime_error(
          "shard_driver: ShardResult header mismatch for shard " +
          std::to_string(s));
    }
    if (result.entries.size() != shard_members[s].size()) {
      throw std::runtime_error(
          "shard_driver: shard " + std::to_string(s) + " returned " +
          std::to_string(result.entries.size()) + " users, owns " +
          std::to_string(shard_members[s].size()) +
          " (worker/driver build mismatch?)");
    }
    KnnGraph next(n, config_.k);
    for (auto& [user, list] : result.entries) {
      if (shard_owner.owner(user) != s) {
        throw std::runtime_error(
            "shard_driver: shard " + std::to_string(s) +
            " returned a result for foreign user " + std::to_string(user));
      }
      next.set_neighbors(user, std::move(list));
    }
    output.set_shard(s, std::move(next));
    change_counts[s] = result.changed;
  };

  if (shard_config_.worker_mode == ShardWorkerMode::Process) {
    // ---- Process mode: persist the plan + G(t), then supervise one
    // child process per shard per wave.
    ProcessPlan plan;
    plan.config = config_;
    plan.iteration = iteration_;
    plan.shards = S;
    plan.threads_per_shard = impl_->threads_per_shard;
    plan.partition_owner = owner_vector(assignment);
    plan.shard_owner = owner_vector(shard_owner);
    save_plan_file(plan_file_path(impl_->work_dir), plan);
    save_knn_graph_file(prev_graph_path(impl_->work_dir), graph_);
    fs::create_directories(impl_->work_dir / "stats");
    fs::create_directories(impl_->work_dir / "results");

    supervise_wave(ctx, shard_config_, "produce");
    supervise_wave(ctx, shard_config_, "consume");

    // Process-mode "wire" traffic is the file handoff: the plan and the
    // G(t) snapshot in, the sidecars and result out; the two process
    // spawns per shard play the role of heavy round trips.
    const std::uint64_t handoff_in =
        fs::file_size(plan_file_path(impl_->work_dir)) +
        fs::file_size(prev_graph_path(impl_->work_dir));
    for (std::uint32_t s = 0; s < S; ++s) {
      const ShardWorkerStats produced =
          load_worker_stats_file(sidecar_path(impl_->work_dir, "produce", s));
      const ShardWorkerStats consumed =
          load_worker_stats_file(sidecar_path(impl_->work_dir, "consume", s));
      ShardWorkerStats& worker = out.workers[s];
      worker.stats = sum_iteration_stats({produced.stats, consumed.stats});
      worker.stats.iteration = iteration_;
      worker.stats.threads_used = impl_->threads_per_shard;
      worker.produce_s = produced.produce_s;
      worker.consume_s = consumed.consume_s;
      worker.spooled_tuples = consumed.spooled_tuples;
      worker.round_trips = 2;
      worker.bytes_tx = handoff_in;
      worker.bytes_rx =
          fs::file_size(sidecar_path(impl_->work_dir, "produce", s)) +
          fs::file_size(sidecar_path(impl_->work_dir, "consume", s)) +
          fs::file_size(result_file_path(impl_->work_dir, s));
      worker.partitions_touched = consumed.partitions_touched;
      worker.profile_reads = consumed.profile_reads;

      fold_result(s,
                  load_shard_result_file(result_file_path(impl_->work_dir, s)));
    }
  } else if (shard_config_.worker_mode == ShardWorkerMode::Persistent) {
    // ---- Persistent mode: spawn the fleet once, then drive both waves
    // through framed commands carrying only deltas.
    PersistentRuntime& rt = impl_->persistent;
    if (!rt.plan_written) {
      // The static plan: config + resolved budgets. Ownership maps and
      // G(t) travel over the channel, so the maps here stay empty and
      // plan.iteration is meaningless to a persistent worker.
      ProcessPlan plan;
      plan.config = config_;
      plan.shards = S;
      plan.threads_per_shard = impl_->threads_per_shard;
      save_plan_file(plan_file_path(impl_->work_dir), plan);
      rt.plan_written = true;
    }
    // Distributed mode: connect the agent fleet once, then ship this
    // iteration's plan + partition store (rewritten by phase 1 just
    // above) content-addressed BEFORE any worker can spawn — a
    // persistent worker opens its partition store at startup.
    ensure_agent_links(rt, shard_config_, S);
    sync_agent_files(rt, shard_config_, impl_->work_dir);
    if (rt.workers.size() != S) {
      rt.workers = std::vector<PersistentWorker>(S);
      for (std::uint32_t s = 0; s < S; ++s) {
        spawn_persistent_worker(rt, shard_config_, impl_->work_dir, s);
      }
    }
    std::vector<PartitionId> part_owner = owner_vector(assignment);
    std::vector<PartitionId> sh_owner = owner_vector(shard_owner);
    const bool maps_changed = part_owner != rt.sent_partition_owner ||
                              sh_owner != rt.sent_shard_owner;

    PersistentIterationInput in;
    in.iteration = iteration_;
    in.partition_owner = &part_owner;
    in.shard_owner = &sh_owner;
    in.maps_changed = maps_changed;
    in.graph = &graph_;
    // An incremental delta needs a same-shape base the fleet actually
    // holds; set_initial_graph() after iterations (or a k change) voids
    // that, in which case everyone gets the full snapshot.
    const bool base_usable =
        rt.broadcast_version >= 0 &&
        rt.synced_graph.num_vertices() == graph_.num_vertices() &&
        rt.synced_graph.k() == graph_.k();
    in.graph_base_version = base_usable ? rt.broadcast_version : -1;
    in.graph_new_version = rt.broadcast_version + 1;
    in.profiles = &profiles_;
    // P(t) changes only through phase 5's queue, whose touched users
    // accumulate in pending_profile_users — that list IS the delta.
    in.changed_users = &rt.pending_profile_users;
    in.profile_base_version = rt.profile_broadcast_version;
    in.profile_new_version = rt.profile_broadcast_version + 1;

    const std::vector<PersistentIterationReply> replies =
        run_persistent_iteration(rt, shard_config_, impl_->work_dir, in,
                                 rt.synced_graph);

    rt.synced_graph = graph_;
    rt.broadcast_version = in.graph_new_version;
    rt.profile_broadcast_version = in.profile_new_version;
    rt.pending_profile_users.clear();
    rt.sent_partition_owner = std::move(part_owner);
    rt.sent_shard_owner = std::move(sh_owner);

    for (std::uint32_t s = 0; s < S; ++s) {
      const PersistentIterationReply& r = replies[s];
      ShardWorkerStats& worker = out.workers[s];
      worker.stats =
          sum_iteration_stats({r.produced.stats, r.consumed.stats});
      worker.stats.iteration = iteration_;
      worker.stats.threads_used = impl_->threads_per_shard;
      worker.produce_s = r.produced.produce_s;
      worker.consume_s = r.consumed.consume_s;
      worker.spooled_tuples = r.consumed.spooled_tuples;
      worker.spawn_count = rt.workers[s].spawn_count;
      worker.resync_count = rt.workers[s].resync_count;
      worker.bytes_tx = r.bytes_tx;
      worker.bytes_rx = r.bytes_rx;
      worker.round_trips = r.round_trips;
      worker.partitions_touched = r.consumed.partitions_touched;
      worker.profile_reads = r.consumed.profile_reads;
      worker.profile_rows_rx = r.profile_rows_rx;
      fold_result(s, shard_result_from_bytes(
                         r.result_bytes,
                         "persistent worker " + std::to_string(s) +
                             "'s ITERATION_DONE reply"));
    }
    // Content-addressed transfer accounting, attributed to each
    // endpoint's lowest shard (see ShardWorkerStats).
    for (const RemoteAgentLink& link : rt.agents) {
      if (link.lowest_shard >= S) continue;
      ShardWorkerStats& worker = out.workers[link.lowest_shard];
      worker.sync_files_tx = link.sync.files_tx;
      worker.sync_bytes_tx = link.sync.bytes_tx;
      worker.sync_files_skipped = link.sync.files_skipped;
      worker.sync_bytes_skipped = link.sync.bytes_skipped;
    }
  } else {
    // ---- Thread mode: one producer and one consumer thread per shard.
    std::vector<std::unique_ptr<IoAccountant>> worker_io;
    worker_io.reserve(S);
    for (std::uint32_t s = 0; s < S; ++s) {
      worker_io.push_back(std::make_unique<IoAccountant>(config_.io_model));
    }

    // Cross-shard exchange: spool (producer, consumer) holds the tuples
    // producer w generated whose source user consumer c owns. The
    // write-side accountant is shared (its charges are atomic).
    IoAccountant spool_io(config_.io_model);
    RoutedShardWriter<Tuple> spool(spools_dir(impl_->work_dir), kSpoolStem,
                                   S, S, config_.shard_buffer_bytes,
                                   &spool_io);

    // Runs fn(w) on one thread per shard; rethrows the lowest-shard
    // exception after all joined (deterministic, like the pool contract).
    auto run_wave = [&](auto&& fn) {
      std::vector<std::exception_ptr> errors(S);
      std::vector<std::thread> threads;
      threads.reserve(S);
      for (std::uint32_t w = 0; w < S; ++w) {
        threads.emplace_back([&, w] {
          try {
            fn(w);
          } catch (...) {
            errors[w] = std::current_exception();
          }
        });
      }
      for (auto& t : threads) t.join();
      for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    };

    run_wave([&](std::uint32_t w) {
      produce_candidates(ctx, w, shard_members[w], store, spool.producer(w),
                         out.workers[w], /*mid_wave_hook=*/{});
    });
    spool.finish();

    run_wave([&](std::uint32_t c) {
      ConsumerOutput consumer_out = consume_candidates(
          ctx, c, shard_members[c], store, graph_, impl_->pools[c].get(),
          worker_io[c].get(), /*local_profiles=*/nullptr, out.workers[c],
          /*mid_wave_hook=*/{});
      change_counts[c] = consumer_out.changed;
      output.set_shard(c, std::move(consumer_out.next));
    });

    for (std::uint32_t s = 0; s < S; ++s) {
      out.workers[s].stats.io = worker_io[s]->counters();
      out.workers[s].stats.modeled_io_us = worker_io[s]->modeled_us();
    }
    exchange_io = spool_io.counters();
    exchange_io_us = spool_io.modeled_us();
  }

  // ---- Merge (driver): deterministic re-assembly from shard owners.
  IterationStats merged;
  {
    std::vector<IterationStats> parts;
    parts.reserve(S);
    for (const ShardWorkerStats& w : out.workers) parts.push_back(w.stats);
    merged = sum_iteration_stats(parts);
  }
  merged.iteration = iteration_;
  merged.timings.partition_s += partition_s;
  merged.partition_cost_total = partition_cost_total;
  {
    double merge_s = 0.0;
    {
      ScopedAccumulator timing(&merge_s);
      graph_ = output.merge();
    }
    merged.timings.knn_s += merge_s;
    merged.knn_merge_s += merge_s;
  }
  std::uint64_t differing = 0;
  for (const std::uint64_t c : change_counts) differing += c;
  merged.change_rate =
      n == 0 ? 0.0
             : static_cast<double>(differing) /
                   (static_cast<double>(n) *
                    std::max<std::uint32_t>(config_.k, 1));

  // ---- Phase 5 (driver): apply queued profile updates.
  {
    ScopedAccumulator timing(&merged.timings.update_s);
    // Persistent mode records which users phase 5 touches: that list is
    // next iteration's P(t) delta over the worker channels.
    merged.profile_updates_applied = queue_.apply_to(
        profiles_,
        persistent ? &impl_->persistent.pending_profile_users : nullptr);
  }

  if (config_.checkpoint) {
    save_knn_graph_file(impl_->work_dir / "checkpoint_latest.knng", graph_);
  }
  if (config_.recall_samples > 0) {
    // Thread mode reuses shard 0's pool; process mode has no driver-side
    // pools, so spin one up for the estimator (it is O(samples * n) —
    // the pool spawn is noise next to it).
    ThreadPool* pool = impl_->pools[0].get();
    std::unique_ptr<ThreadPool> recall_pool;
    if (pool == nullptr && impl_->threads_per_shard > 1) {
      recall_pool = std::make_unique<ThreadPool>(impl_->threads_per_shard - 1);
      pool = recall_pool.get();
    }
    merged.sampled_recall =
        sampled_recall(graph_, profiles_, config_.measure,
                       config_.recall_samples, config_.seed, pool)
            .recall;
  }

  merged.io += store.io().counters();
  merged.io += exchange_io;
  merged.modeled_io_us += store.io().modeled_us() + exchange_io_us;

  KNNPC_LOG(Info) << "sharded iteration " << iteration_ << " (S=" << S
                  << ", " << worker_mode_name(shard_config_.worker_mode)
                  << " workers): " << merged.unique_tuples << " tuples, "
                  << merged.pi_pairs << " PI pairs, "
                  << merged.partition_loads << " loads, change rate "
                  << merged.change_rate;
  if (sink_ != nullptr) {
    sink_->publish(graph_, profiles_, assignment.owners(), iteration_);
  }
  ++iteration_;
  out.merged = merged;
  return out;
}

RunStats ShardedKnnEngine::run(std::uint32_t max_iterations,
                               double convergence_delta) {
  RunStats run_stats;
  Timer total;
  for (std::uint32_t i = 0; i < max_iterations; ++i) {
    ShardedIterationStats stats = run_iteration();
    const double change = stats.merged.change_rate;
    run_stats.iterations.push_back(std::move(stats.merged));
    if (change < convergence_delta) {
      run_stats.converged = true;
      break;
    }
  }
  run_stats.total_seconds = total.elapsed_seconds();
  return run_stats;
}

}  // namespace knnpc
