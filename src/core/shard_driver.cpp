#include "core/shard_driver.h"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/convergence.h"
#include "core/topk.h"
#include "core/tuple_generation.h"
#include "core/tuple_table.h"
#include "graph/digraph.h"
#include "graph/knn_graph_io.h"
#include "partition/cost.h"
#include "partition/partitioner.h"
#include "pigraph/heuristics.h"
#include "pigraph/pi_graph.h"
#include "staticgraph/sharded_graph.h"
#include "storage/partition_store.h"
#include "storage/shard_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace knnpc {
namespace fs = std::filesystem;

std::uint32_t resolve_shard_count(std::uint32_t requested,
                                  VertexId num_users, std::uint32_t k) {
  const std::uint64_t users = std::max<std::uint64_t>(num_users, 1);
  if (requested == 0) {
    requested = resolve_thread_count(
        0, users * std::max<std::uint32_t>(k, 1), kWorkPerShard);
    requested = std::min(requested, kMaxAutoShards);
  }
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(std::max(requested, 1u), users));
}

struct ShardedKnnEngine::Impl {
  std::unique_ptr<ScratchDir> scratch;
  fs::path work_dir;
  /// Resolved worker count S.
  std::uint32_t shards = 1;
  /// Phase-4 threads per worker: the total auto/explicit budget
  /// (resolve_thread_count, as in the serial engine) divided by S.
  std::uint32_t threads_per_shard = 1;
  /// One pool per worker (nullptr when threads_per_shard == 1: the worker
  /// thread itself is the one thread).
  std::vector<std::unique_ptr<ThreadPool>> pools;
  /// Previous phase-1 assignment (reused when repartition_every > 1).
  std::optional<PartitionAssignment> last_assignment;

  Impl(const EngineConfig& config, const ShardConfig& shard_config,
       VertexId num_users) {
    if (config.work_dir.empty()) {
      scratch = std::make_unique<ScratchDir>("shard_driver");
      work_dir = scratch->path();
    } else {
      work_dir = config.work_dir;
      fs::create_directories(work_dir);
    }
    shards = resolve_shard_count(shard_config.shards, num_users, config.k);
    const std::uint32_t total = resolve_thread_count(
        config.threads,
        static_cast<std::uint64_t>(num_users) *
            std::max<std::uint32_t>(config.k, 1),
        kPhase4WorkPerThread);
    threads_per_shard = std::max(total / shards, 1u);
    pools.resize(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      if (threads_per_shard > 1) {
        // The worker thread participates in its own parallel loops, so
        // spawn one fewer pool worker (same rule as the serial engine).
        pools[s] = std::make_unique<ThreadPool>(threads_per_shard - 1);
      }
    }
  }
};

ShardedKnnEngine::ShardedKnnEngine(EngineConfig config,
                                   ShardConfig shard_config,
                                   std::vector<SparseProfile> profiles)
    : config_(std::move(config)), shard_config_(std::move(shard_config)),
      profiles_(std::move(profiles)),
      impl_(std::make_unique<Impl>(config_, shard_config_,
                                   profiles_.num_users())) {
  if (config_.num_partitions == 0) {
    throw std::invalid_argument(
        "ShardedKnnEngine: num_partitions must be > 0");
  }
  if (config_.memory_slots < 2) {
    throw std::invalid_argument(
        "ShardedKnnEngine: memory_slots must be >= 2 (a PI pair needs "
        "both partitions resident)");
  }
  // Identical bootstrap to KnnEngine: same seed, same initial G(0).
  Rng rng(config_.seed);
  graph_ = random_knn_graph(profiles_.num_users(), config_.k, rng);
}

ShardedKnnEngine::~ShardedKnnEngine() = default;

std::uint32_t ShardedKnnEngine::num_shards() const noexcept {
  return impl_->shards;
}

std::uint32_t ShardedKnnEngine::threads_per_shard() const noexcept {
  return impl_->threads_per_shard;
}

void ShardedKnnEngine::set_initial_graph(KnnGraph graph) {
  if (graph.num_vertices() != profiles_.num_users()) {
    throw std::invalid_argument(
        "ShardedKnnEngine::set_initial_graph: vertex count mismatch");
  }
  graph_ = std::move(graph);
}

ShardedIterationStats ShardedKnnEngine::run_iteration() {
  ShardedIterationStats out;
  const VertexId n = profiles_.num_users();
  const PartitionId m = config_.num_partitions;
  const std::uint32_t S = impl_->shards;
  PartitionStore store(impl_->work_dir / "partitions", config_.io_model,
                       config_.storage_mode);

  // ---- Phase 1 (driver): partition G(t) once; split users into shards.
  double partition_s = 0.0;
  PartitionAssignment assignment;
  PartitionAssignment shard_owner;
  std::optional<std::size_t> partition_cost_total;
  {
    ScopedAccumulator timing(&partition_s);
    const EdgeList edge_list = graph_.to_edge_list();
    const Digraph digraph(edge_list);
    const bool reuse =
        config_.repartition_every > 1 &&
        iteration_ % config_.repartition_every != 0 &&
        impl_->last_assignment.has_value() &&
        impl_->last_assignment->num_vertices() == n &&
        impl_->last_assignment->num_partitions() == m;
    if (reuse) {
      assignment = *impl_->last_assignment;
    } else {
      assignment = make_partitioner(config_.partitioner)->assign(digraph, m);
      impl_->last_assignment = assignment;
    }
    shard_owner =
        make_partitioner(shard_config_.shard_partitioner)->assign(digraph, S);
    store.write_all(edge_list, assignment, profiles_);
    if (config_.record_partition_cost) {
      partition_cost_total = partition_cost(digraph, assignment).total;
    }
  }
  std::vector<std::vector<VertexId>> shard_members(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    shard_members[s] = shard_owner.members(s);
  }

  out.workers.resize(S);
  std::vector<std::unique_ptr<IoAccountant>> worker_io;
  worker_io.reserve(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    out.workers[s].shard = s;
    out.workers[s].users = static_cast<VertexId>(shard_members[s].size());
    out.workers[s].stats.iteration = iteration_;
    out.workers[s].stats.threads_used = impl_->threads_per_shard;
    worker_io.push_back(std::make_unique<IoAccountant>(config_.io_model));
  }

  // Cross-shard exchange: spool (producer, consumer) holds the tuples
  // producer w generated whose source user consumer c owns. The write-side
  // accountant is shared (its charges are atomic).
  IoAccountant spool_io(config_.io_model);
  RoutedShardWriter<Tuple> spool(impl_->work_dir / "spools", "tuples", S, S,
                                 config_.shard_buffer_bytes, &spool_io);

  // Runs fn(w) on one thread per shard; rethrows the lowest-shard
  // exception after all joined (deterministic, like the pool contract).
  auto run_wave = [&](auto&& fn) {
    std::vector<std::exception_ptr> errors(S);
    std::vector<std::thread> threads;
    threads.reserve(S);
    for (std::uint32_t w = 0; w < S; ++w) {
      threads.emplace_back([&, w] {
        try {
          fn(w);
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  };

  // ---- Phase 2, producer wave: generate candidates, route by owner of
  // the source user. No dedup here — H lives consumer-side, where all
  // tuples of a user meet.
  run_wave([&](std::uint32_t w) {
    ShardWorkerStats& worker = out.workers[w];
    Timer wall;
    ScopedAccumulator timing(&worker.stats.timings.hash_s);
    RecordShardWriter<Tuple>& sink = spool.producer(w);
    auto route = [&](Tuple t) {
      sink.add(shard_owner.owner(t.s), t);
      if (config_.include_reverse) {
        sink.add(shard_owner.owner(t.d), Tuple{t.d, t.s});
      }
    };
    const bool sampling = config_.sample_rate < 1.0;
    for (PartitionId p = w; p < m; p += S) {
      const PartitionData part = store.load_edges(p);
      // Same per-partition sampling stream as the serial engine — the
      // decisions don't depend on which worker processes p.
      Rng sample_rng = candidate_sample_rng(config_.seed, iteration_, p);
      worker.stats.candidate_tuples += merge_join_tuples(
          part.in_edges, part.out_edges, [&](Tuple t) {
            if (sampling && !sample_rng.next_bool(config_.sample_rate)) {
              return;
            }
            route(t);
          });
      // Direct edges of G(t), never sampled (as in the serial engine).
      for (const Edge& e : part.out_edges) {
        ++worker.stats.candidate_tuples;
        route(Tuple{e.src, e.dst});
      }
    }
    // Random restarts for this shard's own users, one derived stream per
    // user — identical values to the serial engine's.
    if (config_.random_candidates > 0 && n > 1) {
      for (VertexId s : shard_members[w]) {
        Rng restart_rng = random_restart_rng(config_.seed, iteration_, s);
        for (std::uint32_t r = 0; r < config_.random_candidates; ++r) {
          const auto d = static_cast<VertexId>(restart_rng.next_below(n));
          if (d == s) continue;
          ++worker.stats.candidate_tuples;
          route(Tuple{s, d});
        }
      }
    }
    worker.produce_s = wall.elapsed_seconds();
  });
  spool.finish();

  // ---- Phases 2b-4, consumer wave: dedup, schedule, score, top-K.
  ShardedKnnGraph output(shard_owner, config_.k);
  std::vector<std::uint64_t> change_counts(S, 0);
  run_wave([&](std::uint32_t c) {
    ShardWorkerStats& worker = out.workers[c];
    IterationStats& stats = worker.stats;
    IoAccountant* io = worker_io[c].get();
    Timer wall;

    // Phase 2b: consumer-side H_c — global dedup per source user falls
    // out of the routing (all (s, *) tuples land here together).
    const std::size_t num_slots = pi_pair_slot(m - 1, m - 1, m) + 1;
    TupleShardWriter pair_writer(impl_->work_dir / ("worker_" +
                                                    std::to_string(c)),
                                 "tuples", num_slots,
                                 std::max<std::size_t>(
                                     config_.shard_buffer_bytes / S,
                                     sizeof(Tuple)),
                                 io);
    {
      ScopedAccumulator timing(&stats.timings.hash_s);
      // Stream one producer's spool at a time — peak extra memory is the
      // largest single spool, not the whole pre-dedup stream.
      TupleTable table(spool.consumer_records(c));
      for (std::uint32_t p = 0; p < S; ++p) {
        const std::vector<Tuple> chunk =
            read_record_shard<Tuple>(spool.spool_path(p, c), io);
        worker.spooled_tuples += chunk.size();
        for (const Tuple& t : chunk) {
          if (table.insert(t)) {
            pair_writer.add(pi_pair_slot(assignment.owner(t.s),
                                         assignment.owner(t.d), m),
                            t);
          }
        }
      }
      stats.unique_tuples = table.size();
      pair_writer.finish();
    }

    // Phase 3: this shard's own PI graph + traversal schedule.
    PiGraph pi(m);
    Schedule schedule;
    {
      ScopedAccumulator timing(&stats.timings.pi_graph_s);
      for (PartitionId a = 0; a < m; ++a) {
        for (PartitionId b = a; b < m; ++b) {
          const auto count = pair_writer.shard_records(pi_pair_slot(a, b, m));
          if (count > 0) pi.add_edge(a, b, count);
        }
      }
      pi.finalize();
      stats.pi_pairs = pi.num_pairs();
      schedule = make_heuristic(config_.heuristic)->schedule(pi);
    }

    // Phase 4: stream the shared store through a private cache; top-K for
    // this shard's users only. Offers are made serially — the kept set is
    // offer-order-independent, so only scoring needs the pool.
    ThreadPool* pool = impl_->pools[c].get();
    KnnGraph next(n, config_.k);
    {
      ScopedAccumulator timing(&stats.timings.knn_s);
      TopKAccumulator acc(n, config_.k);
      std::optional<RecordShardWriter<ScoredTuple>> score_writer;
      if (config_.spill_scores) {
        score_writer.emplace(impl_->work_dir / ("worker_" +
                                                std::to_string(c)),
                             "scores", m,
                             std::max<std::size_t>(
                                 config_.shard_buffer_bytes / S,
                                 sizeof(ScoredTuple)),
                             io);
      }
      PartitionCache cache(store, config_.memory_slots);
      std::vector<float> scores;
      for (PairIndex idx : schedule) {
        const PiPair& pair = pi.pair(idx);
        const std::vector<Tuple> tuples = read_record_shard<Tuple>(
            pair_writer.shard_path(pi_pair_slot(pair.a, pair.b, m)), io);
        const PartitionData& pa = cache.get(pair.a);
        const PartitionData& pb = pair.b == pair.a ? pa : cache.get(pair.b);
        auto profile_of = [&](VertexId v) -> const SparseProfile& {
          if (const SparseProfile* p = pa.profile_of(v)) return *p;
          if (const SparseProfile* p = pb.profile_of(v)) return *p;
          throw std::logic_error(
              "shard_driver: tuple endpoint outside loaded pair");
        };
        scores.assign(tuples.size(), 0.0f);
        {
          ScopedAccumulator score_timing(&stats.knn_score_s);
          auto score_range = [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              scores[i] =
                  similarity(config_.measure, profile_of(tuples[i].s),
                             profile_of(tuples[i].d));
            }
          };
          if (pool != nullptr) {
            pool->parallel_for(0, tuples.size(), score_range,
                               /*min_chunk=*/256);
          } else {
            score_range(0, tuples.size());
          }
        }
        if (score_writer) {
          for (std::size_t i = 0; i < tuples.size(); ++i) {
            score_writer->add(assignment.owner(tuples[i].s),
                              {tuples[i].s, tuples[i].d, scores[i]});
          }
        } else {
          ScopedAccumulator merge_timing(&stats.knn_merge_s);
          for (std::size_t i = 0; i < tuples.size(); ++i) {
            acc.offer(tuples[i].s, tuples[i].d, scores[i]);
          }
        }
      }
      cache.flush();
      stats.partition_loads = cache.loads();
      stats.partition_unloads = cache.unloads();

      ScopedAccumulator merge_timing(&stats.knn_merge_s);
      if (score_writer) {
        // Finalise one partition at a time, restricted to owned users.
        score_writer->finish();
        for (PartitionId p = 0; p < m; ++p) {
          const auto spilled = read_record_shard<ScoredTuple>(
              score_writer->shard_path(p), io);
          for (const ScoredTuple& t : spilled) {
            acc.offer(t.s, t.d, t.score);
          }
          for (VertexId member : assignment.members(p)) {
            if (shard_owner.owner(member) != static_cast<PartitionId>(c)) {
              continue;
            }
            next.set_neighbors(member, acc.take(member));
          }
        }
      } else {
        next = acc.build_graph(pool);
      }
    }

    // Exact per-user change counts over owned users; the driver's sum
    // reproduces the serial change rate bit-for-bit.
    std::uint64_t changed = 0;
    for (VertexId s : shard_members[c]) {
      changed += KnnGraph::change_count(graph_, next, s, s + 1);
    }
    change_counts[c] = changed;
    output.set_shard(c, std::move(next));
    worker.consume_s = wall.elapsed_seconds();
  });

  for (std::uint32_t s = 0; s < S; ++s) {
    out.workers[s].stats.io = worker_io[s]->counters();
    out.workers[s].stats.modeled_io_us = worker_io[s]->modeled_us();
  }

  // ---- Merge (driver): deterministic re-assembly from shard owners.
  IterationStats merged;
  {
    std::vector<IterationStats> parts;
    parts.reserve(S);
    for (const ShardWorkerStats& w : out.workers) parts.push_back(w.stats);
    merged = sum_iteration_stats(parts);
  }
  merged.iteration = iteration_;
  merged.timings.partition_s += partition_s;
  merged.partition_cost_total = partition_cost_total;
  {
    double merge_s = 0.0;
    {
      ScopedAccumulator timing(&merge_s);
      graph_ = output.merge();
    }
    merged.timings.knn_s += merge_s;
    merged.knn_merge_s += merge_s;
  }
  std::uint64_t differing = 0;
  for (const std::uint64_t c : change_counts) differing += c;
  merged.change_rate =
      n == 0 ? 0.0
             : static_cast<double>(differing) /
                   (static_cast<double>(n) *
                    std::max<std::uint32_t>(config_.k, 1));

  // ---- Phase 5 (driver): apply queued profile updates.
  {
    ScopedAccumulator timing(&merged.timings.update_s);
    merged.profile_updates_applied = queue_.apply_to(profiles_);
  }

  if (config_.checkpoint) {
    save_knn_graph_file(impl_->work_dir / "checkpoint_latest.knng", graph_);
  }
  if (config_.recall_samples > 0) {
    merged.sampled_recall =
        sampled_recall(graph_, profiles_, config_.measure,
                       config_.recall_samples, config_.seed,
                       impl_->pools[0].get())
            .recall;
  }

  merged.io += store.io().counters();
  merged.io += spool_io.counters();
  merged.modeled_io_us += store.io().modeled_us() + spool_io.modeled_us();

  KNNPC_LOG(Info) << "sharded iteration " << iteration_ << " (S=" << S
                  << "): " << merged.unique_tuples << " tuples, "
                  << merged.pi_pairs << " PI pairs, "
                  << merged.partition_loads << " loads, change rate "
                  << merged.change_rate;
  ++iteration_;
  out.merged = merged;
  return out;
}

RunStats ShardedKnnEngine::run(std::uint32_t max_iterations,
                               double convergence_delta) {
  RunStats run_stats;
  Timer total;
  for (std::uint32_t i = 0; i < max_iterations; ++i) {
    ShardedIterationStats stats = run_iteration();
    const double change = stats.merged.change_rate;
    run_stats.iterations.push_back(std::move(stats.merged));
    if (change < convergence_delta) {
      run_stats.converged = true;
      break;
    }
  }
  run_stats.total_seconds = total.elapsed_seconds();
  return run_stats;
}

}  // namespace knnpc
