#include "core/topk.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace knnpc {
namespace {

/// Heap comparator placing the *worst* entry at the front: lowest score,
/// and among score ties the largest id (so the kept set is always "top K
/// by (score desc, id asc)" independent of arrival order).
struct WorstFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    // std::push_heap puts the comparator's maximum at front; "maximum"
    // here must be the worst entry, so a < b  <=>  a is better than b.
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }
};

}  // namespace

TopKAccumulator::TopKAccumulator(VertexId num_users, std::uint32_t k)
    : k_(k), heaps_(num_users) {}

void TopKAccumulator::offer(VertexId s, VertexId d, float score) {
  auto& heap = heaps_.at(s);
  if (heap.size() < k_) {
    heap.push_back({d, score});
    std::push_heap(heap.begin(), heap.end(), WorstFirst{});
    return;
  }
  if (k_ == 0) return;
  const Neighbor& worst = heap.front();
  if (score < worst.score ||
      (score == worst.score && d >= worst.id)) {
    return;  // not better than the current worst
  }
  std::pop_heap(heap.begin(), heap.end(), WorstFirst{});
  heap.back() = {d, score};
  std::push_heap(heap.begin(), heap.end(), WorstFirst{});
}

std::vector<Neighbor> TopKAccumulator::take(VertexId s) {
  std::vector<Neighbor> out = std::move(heaps_.at(s));
  heaps_.at(s).clear();
  return out;
}

KnnGraph TopKAccumulator::build_graph(ThreadPool* pool) {
  KnnGraph graph(num_users(), k_);
  auto emit = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      graph.set_neighbors(static_cast<VertexId>(v), std::move(heaps_[v]));
      heaps_[v].clear();
    }
  };
  if (pool != nullptr) {
    // Distinct users write distinct graph slots, so chunks are independent.
    pool->parallel_for(0, num_users(), emit, /*min_chunk=*/2048);
  } else {
    emit(0, num_users());
  }
  return graph;
}

}  // namespace knnpc
