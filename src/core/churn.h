// Scripted profile-churn workloads (the dynamic-profiles story of the
// paper, made reproducible).
//
// "We have a set of user profiles P(t) ... which can also change over
// time": a ChurnDriver generates a deterministic stream of ProfileUpdates
// per iteration — new ratings arriving, users drifting to another taste
// community, and cold-start users whose profiles are replaced wholesale —
// and feeds them into a KnnEngine's lazy update queue.
#pragma once

#include <cstdint>

#include "core/engine.h"
#include "profiles/generators.h"
#include "util/rng.h"

namespace knnpc {

struct ChurnConfig {
  /// Single-item rating updates (SetItem) pushed per iteration.
  std::uint32_t rating_updates_per_iteration = 50;
  /// Users whose profile is replaced with a fresh one from a *different*
  /// cluster per iteration (drift).
  std::uint32_t drifting_users_per_iteration = 2;
  /// Users whose profile is replaced with a fresh one from their *own*
  /// cluster (cold start / re-onboarding).
  std::uint32_t reset_users_per_iteration = 1;
  /// Cluster structure matching the profile generator that produced the
  /// engine's initial profiles (for drift targets).
  ClusteredGenConfig generator;
  std::uint64_t seed = 1007;
};

/// Deterministic churn generator; call tick(engine) once per iteration
/// *before* run_iteration() so the updates land in that iteration's
/// phase 5.
class ChurnDriver {
 public:
  explicit ChurnDriver(ChurnConfig config);

  /// Pushes this iteration's updates into the engine's queue. Returns the
  /// number of updates pushed.
  std::size_t tick(KnnEngine& engine);

  /// Engine-agnostic core: pushes into any update queue over `num_users`
  /// users. Two drivers with the same config produce identical update
  /// streams regardless of which engine consumes them — that is how the
  /// golden churn workload replays bit-identically through the serial,
  /// threaded, sharded, process and persistent execution modes.
  std::size_t tick(UpdateQueue& queue, VertexId num_users);

  /// Users that have drifted so far and their new cluster.
  struct Drift {
    VertexId user;
    std::uint32_t to_cluster;
  };
  [[nodiscard]] const std::vector<Drift>& drift_log() const noexcept {
    return drift_log_;
  }

 private:
  SparseProfile fresh_profile_for_cluster(std::uint32_t cluster);

  ChurnConfig config_;
  Rng rng_;
  std::vector<Drift> drift_log_;
};

}  // namespace knnpc
