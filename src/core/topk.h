// Phase 4 output side: per-user bounded top-K accumulators.
//
// Each user's accumulator is a size-K min-heap on score; offering a
// candidate is O(1) when it doesn't beat the current worst and O(log K)
// otherwise. Memory is O(n * K) — the light state that stays resident
// while profiles stream through the 2-slot cache (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/knn_graph.h"
#include "util/types.h"

namespace knnpc {

class ThreadPool;

class TopKAccumulator {
 public:
  TopKAccumulator(VertexId num_users, std::uint32_t k);

  /// Offers candidate `d` with `score` for user `s`. Callers must not
  /// offer the same (s, d) twice within one iteration (H guarantees
  /// uniqueness); duplicates would occupy two heap slots.
  void offer(VertexId s, VertexId d, float score);

  [[nodiscard]] VertexId num_users() const noexcept {
    return static_cast<VertexId>(heaps_.size());
  }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }

  /// Current candidate count for user s (<= k).
  [[nodiscard]] std::size_t count(VertexId s) const {
    return heaps_.at(s).size();
  }

  /// Freezes all accumulators into the next KNN graph G(t+1) and resets
  /// this accumulator. A non-null `pool` parallelises the per-user
  /// neighbour-list sorts (each user's list is independent); the result is
  /// identical either way.
  [[nodiscard]] KnnGraph build_graph(ThreadPool* pool = nullptr);

  /// Removes and returns one user's candidates (unsorted heap order).
  /// Used by the score-spilling path, which finalises users one partition
  /// at a time.
  [[nodiscard]] std::vector<Neighbor> take(VertexId s);

 private:
  std::uint32_t k_;
  std::vector<std::vector<Neighbor>> heaps_;  // min-heap on score
};

}  // namespace knnpc
