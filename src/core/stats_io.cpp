#include "core/stats_io.h"

#include <cstring>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "storage/block_file.h"
#include "util/serde.h"

namespace knnpc {

void write_iteration_json(std::ostream& out, const IterationStats& s) {
  out << "{\"iteration\":" << s.iteration
      << ",\"partition_s\":" << s.timings.partition_s
      << ",\"hash_s\":" << s.timings.hash_s
      << ",\"pi_graph_s\":" << s.timings.pi_graph_s
      << ",\"knn_s\":" << s.timings.knn_s
      << ",\"update_s\":" << s.timings.update_s
      << ",\"total_s\":" << s.timings.total()
      << ",\"candidate_tuples\":" << s.candidate_tuples
      << ",\"unique_tuples\":" << s.unique_tuples
      << ",\"pi_pairs\":" << s.pi_pairs
      << ",\"partition_loads\":" << s.partition_loads
      << ",\"partition_unloads\":" << s.partition_unloads
      << ",\"bytes_read\":" << s.io.bytes_read
      << ",\"bytes_written\":" << s.io.bytes_written
      << ",\"read_ops\":" << s.io.read_ops
      << ",\"write_ops\":" << s.io.write_ops
      << ",\"modeled_io_us\":" << s.modeled_io_us
      << ",\"change_rate\":" << s.change_rate
      << ",\"profile_updates_applied\":" << s.profile_updates_applied;
  if (s.partition_cost_total) {
    out << ",\"partition_cost_total\":" << *s.partition_cost_total;
  }
  if (s.sampled_recall) {
    out << ",\"sampled_recall\":" << *s.sampled_recall;
  }
  out << "}";
}

void write_run_json(std::ostream& out, const RunStats& run) {
  out << "{\"converged\":" << (run.converged ? "true" : "false")
      << ",\"total_seconds\":" << run.total_seconds
      << ",\"iterations\":[\n";
  for (std::size_t i = 0; i < run.iterations.size(); ++i) {
    if (i > 0) out << ",\n";
    write_iteration_json(out, run.iterations[i]);
  }
  out << "\n]}\n";
}

std::string run_to_json(const RunStats& run) {
  std::ostringstream out;
  write_run_json(out, run);
  return out.str();
}

void write_shard_workers_json(
    std::ostream& out, const std::vector<ShardedIterationStats>& iterations) {
  out << "{\"iterations\":[\n";
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    if (i > 0) out << ",\n";
    const ShardedIterationStats& it = iterations[i];
    out << "{\"iteration\":" << it.merged.iteration << ",\"workers\":[";
    for (std::size_t w = 0; w < it.workers.size(); ++w) {
      if (w > 0) out << ",";
      const ShardWorkerStats& s = it.workers[w];
      out << "{\"shard\":" << s.shard << ",\"users\":" << s.users
          << ",\"produce_s\":" << s.produce_s
          << ",\"consume_s\":" << s.consume_s
          << ",\"spooled_tuples\":" << s.spooled_tuples
          << ",\"spawn_count\":" << s.spawn_count
          << ",\"resync_count\":" << s.resync_count
          << ",\"bytes_tx\":" << s.bytes_tx
          << ",\"bytes_rx\":" << s.bytes_rx
          << ",\"round_trips\":" << s.round_trips
          << ",\"partitions_touched\":" << s.partitions_touched
          << ",\"profile_reads\":" << s.profile_reads
          << ",\"profile_rows_rx\":" << s.profile_rows_rx
          << ",\"sync_files_tx\":" << s.sync_files_tx
          << ",\"sync_bytes_tx\":" << s.sync_bytes_tx
          << ",\"sync_files_skipped\":" << s.sync_files_skipped
          << ",\"sync_bytes_skipped\":" << s.sync_bytes_skipped << "}";
    }
    out << "]}";
  }
  out << "\n]}\n";
}

namespace {

constexpr char kStatsMagic[4] = {'K', 'W', 'S', 'T'};
// v2: ShardWorkerStats grew the persistent-mode spawn_count/resync_count
// counters. The version gate (not just the size check) is what turns a
// stale sidecar from an older binary into a typed error.
// v3: round-trip accounting — bytes_tx/bytes_rx/round_trips plus the
// partitions_touched/profile_reads/profile_rows_rx data-movement counters.
// v4: distributed-mode content-addressed sync accounting —
// sync_files_tx/sync_bytes_tx/sync_files_skipped/sync_bytes_skipped.
constexpr std::uint32_t kStatsVersion = 4;

// The raw-record sidecar only works while the stats structs stay
// trivially copyable; a std::string member added later must come with a
// real serialiser.
static_assert(std::is_trivially_copyable_v<IterationStats>);
static_assert(std::is_trivially_copyable_v<ShardWorkerStats>);

}  // namespace

void save_worker_stats_file(const std::filesystem::path& path,
                            const ShardWorkerStats& stats) {
  std::vector<std::byte> bytes;
  bytes.reserve(sizeof(kStatsMagic) + sizeof(kStatsVersion) +
                sizeof(ShardWorkerStats));
  for (const char c : kStatsMagic) append_record(bytes, c);
  append_record(bytes, kStatsVersion);
  append_record(bytes, stats);
  IoCounters counters;  // write_file = atomic tmp + rename
  write_file(path, bytes, counters);
}

ShardWorkerStats load_worker_stats_file(const std::filesystem::path& path) {
  IoCounters counters;
  const std::vector<std::byte> bytes = read_file(path, counters);
  std::size_t offset = 0;
  char magic[4];
  for (char& c : magic) {
    if (!read_record(bytes, offset, c)) {
      throw std::runtime_error("load_worker_stats_file: truncated " +
                               path.string());
    }
  }
  if (std::memcmp(magic, kStatsMagic, sizeof(kStatsMagic)) != 0) {
    throw std::runtime_error("load_worker_stats_file: bad magic in " +
                             path.string());
  }
  std::uint32_t version = 0;
  ShardWorkerStats stats;
  if (!read_record(bytes, offset, version) ||
      !read_record(bytes, offset, stats) || offset != bytes.size()) {
    throw std::runtime_error("load_worker_stats_file: truncated or oversized "
                             + path.string());
  }
  if (version != kStatsVersion) {
    throw std::runtime_error("load_worker_stats_file: unsupported version " +
                             std::to_string(version));
  }
  return stats;
}

}  // namespace knnpc
