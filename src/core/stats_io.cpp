#include "core/stats_io.h"

#include <ostream>
#include <sstream>

namespace knnpc {

void write_iteration_json(std::ostream& out, const IterationStats& s) {
  out << "{\"iteration\":" << s.iteration
      << ",\"partition_s\":" << s.timings.partition_s
      << ",\"hash_s\":" << s.timings.hash_s
      << ",\"pi_graph_s\":" << s.timings.pi_graph_s
      << ",\"knn_s\":" << s.timings.knn_s
      << ",\"update_s\":" << s.timings.update_s
      << ",\"total_s\":" << s.timings.total()
      << ",\"candidate_tuples\":" << s.candidate_tuples
      << ",\"unique_tuples\":" << s.unique_tuples
      << ",\"pi_pairs\":" << s.pi_pairs
      << ",\"partition_loads\":" << s.partition_loads
      << ",\"partition_unloads\":" << s.partition_unloads
      << ",\"bytes_read\":" << s.io.bytes_read
      << ",\"bytes_written\":" << s.io.bytes_written
      << ",\"read_ops\":" << s.io.read_ops
      << ",\"write_ops\":" << s.io.write_ops
      << ",\"modeled_io_us\":" << s.modeled_io_us
      << ",\"change_rate\":" << s.change_rate
      << ",\"profile_updates_applied\":" << s.profile_updates_applied;
  if (s.partition_cost_total) {
    out << ",\"partition_cost_total\":" << *s.partition_cost_total;
  }
  if (s.sampled_recall) {
    out << ",\"sampled_recall\":" << *s.sampled_recall;
  }
  out << "}";
}

void write_run_json(std::ostream& out, const RunStats& run) {
  out << "{\"converged\":" << (run.converged ? "true" : "false")
      << ",\"total_seconds\":" << run.total_seconds
      << ",\"iterations\":[\n";
  for (std::size_t i = 0; i < run.iterations.size(); ++i) {
    if (i > 0) out << ",\n";
    write_iteration_json(out, run.iterations[i]);
  }
  out << "\n]}\n";
}

std::string run_to_json(const RunStats& run) {
  std::ostringstream out;
  write_run_json(out, run);
  return out.str();
}

}  // namespace knnpc
