#include "core/engine.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "core/convergence.h"
#include "core/topk.h"
#include "core/tuple_generation.h"
#include "core/tuple_table.h"
#include "graph/digraph.h"
#include "graph/knn_graph_io.h"
#include "partition/cost.h"
#include "partition/partitioner.h"
#include "pigraph/heuristics.h"
#include "pigraph/pi_graph.h"
#include "profiles/flat_profile.h"
#include "profiles/similarity_kernels.h"
#include "storage/partition_store.h"
#include "storage/shard_writer.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace knnpc {
namespace fs = std::filesystem;

namespace {

/// Shared slot layout (core/tuple_generation.h) under the old local name.
inline std::size_t pair_slot(PartitionId a, PartitionId b, PartitionId m) {
  return pi_pair_slot(a, b, m);
}

/// Below this many candidates in a bundle the parallel merge's shard
/// scans cost more than they save; offer serially.
constexpr std::size_t kParallelMergeMinTuples = 1024;

}  // namespace

struct KnnEngine::Impl {
  std::unique_ptr<ScratchDir> scratch;
  fs::path work_dir;
  /// config.threads resolved against the workload (0 = auto).
  std::uint32_t threads = 1;
  std::unique_ptr<ThreadPool> pool;
  IoAccountant shard_io;
  /// Previous phase-1 assignment (reused when repartition_every > 1).
  std::optional<PartitionAssignment> last_assignment;

  Impl(const EngineConfig& config, VertexId num_users)
      : shard_io(config.io_model) {
    if (config.work_dir.empty()) {
      scratch = std::make_unique<ScratchDir>("engine");
      work_dir = scratch->path();
    } else {
      work_dir = config.work_dir;
      fs::create_directories(work_dir);
    }
    threads = resolve_thread_count(
        config.threads,
        static_cast<std::uint64_t>(num_users) * std::max(config.k, 1u),
        kPhase4WorkPerThread);
    if (threads > 1) {
      // The thread issuing a parallel loop participates in it, so spawn
      // one fewer worker than the target total to avoid oversubscribing.
      pool = std::make_unique<ThreadPool>(threads - 1);
    }
  }
};

KnnEngine::KnnEngine(EngineConfig config, std::vector<SparseProfile> profiles)
    : config_(std::move(config)),
      profiles_(std::move(profiles)),
      impl_(std::make_unique<Impl>(config_, profiles_.num_users())) {
  if (config_.num_partitions == 0) {
    throw std::invalid_argument("KnnEngine: num_partitions must be > 0");
  }
  if (config_.memory_slots < 2) {
    throw std::invalid_argument(
        "KnnEngine: memory_slots must be >= 2 (a PI pair needs both "
        "partitions resident)");
  }
  Rng rng(config_.seed);
  graph_ = random_knn_graph(profiles_.num_users(), config_.k, rng);
}

KnnEngine::~KnnEngine() = default;

void KnnEngine::set_initial_graph(KnnGraph graph) {
  if (graph.num_vertices() != profiles_.num_users()) {
    throw std::invalid_argument(
        "KnnEngine::set_initial_graph: vertex count mismatch");
  }
  graph_ = std::move(graph);
}

IterationStats KnnEngine::run_iteration() {
  IterationStats stats;
  stats.iteration = iteration_;
  const VertexId n = profiles_.num_users();
  const PartitionId m = config_.num_partitions;
  PartitionStore store(impl_->work_dir / "partitions", config_.io_model,
                       config_.storage_mode);
  impl_->shard_io.reset();

  // ---- Phase 1: partition G(t) and write partition files. -------------
  PartitionAssignment assignment;
  {
    ScopedAccumulator timing(&stats.timings.partition_s);
    const EdgeList edge_list = graph_.to_edge_list();
    const Digraph digraph(edge_list);
    const bool reuse =
        config_.repartition_every > 1 &&
        iteration_ % config_.repartition_every != 0 &&
        impl_->last_assignment.has_value() &&
        impl_->last_assignment->num_vertices() == n &&
        impl_->last_assignment->num_partitions() == m;
    if (reuse) {
      assignment = *impl_->last_assignment;
    } else {
      assignment = make_partitioner(config_.partitioner)->assign(digraph, m);
      impl_->last_assignment = assignment;
    }
    store.write_all(edge_list, assignment, profiles_);
    if (config_.record_partition_cost) {
      stats.partition_cost_total = partition_cost(digraph, assignment).total;
    }
  }

  // ---- Phase 2: populate H with unique tuples, shard them by pair. ----
  // Shards stream to disk through a bounded buffer; phase 4 reads each
  // pair's bundle back sequentially when its turn in the schedule comes.
  const std::size_t num_slots = pair_slot(m - 1, m - 1, m) + 1;
  TupleShardWriter shard_writer(impl_->work_dir, "tuples", num_slots,
                                config_.shard_buffer_bytes,
                                &impl_->shard_io);
  {
    ScopedAccumulator timing(&stats.timings.hash_s);
    TupleTable table(static_cast<std::size_t>(n) * config_.k * 2);
    auto admit = [&](Tuple t) {
      if (table.insert(t)) {
        shard_writer.add(
            pair_slot(assignment.owner(t.s), assignment.owner(t.d), m), t);
      }
      if (config_.include_reverse) {
        const Tuple rev{t.d, t.s};
        if (table.insert(rev)) {
          shard_writer.add(
              pair_slot(assignment.owner(rev.s), assignment.owner(rev.d), m),
              rev);
        }
      }
    };
    const bool sampling = config_.sample_rate < 1.0;
    for (PartitionId p = 0; p < m; ++p) {
      const PartitionData part = store.load_edges(p);
      // Neighbours' neighbours via the sorted merge-join (optionally
      // subsampled at rate rho, NN-Descent style). The sampling stream is
      // derived per partition so the decisions don't depend on which
      // executor processes p (the shard-count determinism contract).
      Rng sample_rng = candidate_sample_rng(config_.seed, iteration_, p);
      stats.candidate_tuples += merge_join_tuples(
          part.in_edges, part.out_edges, [&](Tuple t) {
            if (sampling && !sample_rng.next_bool(config_.sample_rate)) {
              return;
            }
            admit(t);
          });
      // ...plus the direct edges of G(t) ("as well as directed edges from
      // the graph G(t)"); never sampled — the current KNN edges must keep
      // competing or the graph forgets what it already knows.
      for (const Edge& e : part.out_edges) {
        ++stats.candidate_tuples;
        admit(Tuple{e.src, e.dst});
      }
    }
    // NN-Descent-style random restarts (see EngineConfig docs): a trickle
    // of uniform candidates so users remain reachable after profile drift.
    // One derived stream per user, so the values are independent of which
    // worker generates them.
    if (config_.random_candidates > 0 && n > 1) {
      for (VertexId s = 0; s < n; ++s) {
        Rng restart_rng = random_restart_rng(config_.seed, iteration_, s);
        for (std::uint32_t r = 0; r < config_.random_candidates; ++r) {
          const auto d = static_cast<VertexId>(restart_rng.next_below(n));
          if (d == s) continue;
          ++stats.candidate_tuples;
          admit(Tuple{s, d});
        }
      }
    }
    stats.unique_tuples = table.size();
    shard_writer.finish();
  }

  // ---- Phase 3: PI graph + traversal schedule. -------------------------
  PiGraph pi(m);
  Schedule schedule;
  {
    ScopedAccumulator timing(&stats.timings.pi_graph_s);
    for (PartitionId a = 0; a < m; ++a) {
      for (PartitionId b = a; b < m; ++b) {
        const auto count = shard_writer.shard_records(pair_slot(a, b, m));
        if (count > 0) pi.add_edge(a, b, count);
      }
    }
    pi.finalize();
    stats.pi_pairs = pi.num_pairs();
    schedule = make_heuristic(config_.heuristic)->schedule(pi);
  }

  // ---- Phase 4: stream partition pairs, compute sims, keep top-K. -----
  stats.threads_used = impl_->threads;
  {
    ScopedAccumulator timing(&stats.timings.knn_s);
    TopKAccumulator acc(n, config_.k);
    // Score-spilling mode: candidates go to per-partition score files
    // instead of the live accumulator, bounding resident phase-4 state.
    std::optional<RecordShardWriter<ScoredTuple>> score_writer;
    if (config_.spill_scores) {
      score_writer.emplace(impl_->work_dir, "scores", m,
                           config_.shard_buffer_bytes, &impl_->shard_io);
    }
    // Parallel top-K merge: users are sharded across workers by id, so no
    // two workers ever touch the same heap and no locks are needed. A
    // parallel_reduce buckets candidate indices by shard first (one O(n)
    // pass; the chunk-ordered combine keeps every bucket ascending), then
    // each shard offers its bucket. Per-user offers therefore keep their
    // sequential order and G(t+1) is bit-identical to a serial merge
    // regardless of thread count.
    auto parallel_offers = [&](std::size_t count, auto&& user_of,
                               auto&& offer_one) {
      if (!impl_->pool || count < kParallelMergeMinTuples) {
        for (std::size_t i = 0; i < count; ++i) offer_one(i);
        return;
      }
      const std::size_t shards = impl_->pool->size() + 1;
      using Buckets = std::vector<std::vector<std::size_t>>;
      Buckets buckets = impl_->pool->parallel_reduce(
          0, count, Buckets(shards),
          [&](std::size_t lo, std::size_t hi) {
            Buckets part(shards);
            for (std::size_t i = lo; i < hi; ++i) {
              part[user_of(i) % shards].push_back(i);
            }
            return part;
          },
          [&](Buckets acc, Buckets part) {
            for (std::size_t s = 0; s < shards; ++s) {
              acc[s].insert(acc[s].end(), part[s].begin(), part[s].end());
            }
            return acc;
          },
          /*min_chunk=*/2048);
      impl_->pool->parallel_for(
          0, shards,
          [&](std::size_t shard_lo, std::size_t shard_hi) {
            for (std::size_t s = shard_lo; s < shard_hi; ++s) {
              for (std::size_t i : buckets[s]) offer_one(i);
            }
          },
          /*min_chunk=*/1);
    };
    auto offer_scored = [&](TopKAccumulator& into,
                            const std::vector<Tuple>& tuples,
                            const std::vector<float>& scores) {
      parallel_offers(
          tuples.size(), [&](std::size_t i) { return tuples[i].s; },
          [&](std::size_t i) {
            into.offer(tuples[i].s, tuples[i].d, scores[i]);
          });
    };
    PartitionCache cache(store, config_.memory_slots);
    // Flat (SoA) copies of the loaded partitions for the batched kernels,
    // cached alongside the PartitionCache slots so each partition is
    // packed once per load, not once per PI pair.
    const KernelBackend backend = resolve_kernel_backend(config_.kernel);
    FlatSetCache flat_cache(config_.memory_slots, config_.quantize_profiles);
    std::vector<float> scores;
    for (PairIndex idx : schedule) {
      const PiPair& pair = pi.pair(idx);
      const std::size_t slot = pair_slot(pair.a, pair.b, m);
      const std::vector<Tuple> tuples =
          read_record_shard<Tuple>(shard_writer.shard_path(slot),
                                   &impl_->shard_io);
      const PartitionData& pa = cache.get(pair.a);
      const PartitionData& pb =
          pair.b == pair.a ? pa : cache.get(pair.b);
      const FlatProfileSet& fa =
          flat_cache.get(pair.a, pa.vertices, pa.profiles);
      const FlatProfileSet* fb =
          pair.b == pair.a ? nullptr
                           : &flat_cache.get(pair.b, pb.vertices, pb.profiles);
      scores.assign(tuples.size(), 0.0f);
      {
        ScopedAccumulator score_timing(&stats.knn_score_s);
        // Tuple shards are grouped by source user (phase-2 emission
        // order), so runs of equal s batch naturally: one source-profile
        // lookup and one warm source row per run. Each (i, score) pairing
        // is independent of chunking, so the parallel split cannot change
        // results.
        auto score_range = [&](std::size_t lo, std::size_t hi) {
          KernelScratch scratch;
          std::vector<VertexId> cands;
          std::size_t i = lo;
          while (i < hi) {
            std::size_t run_end = i + 1;
            while (run_end < hi && tuples[run_end].s == tuples[i].s) {
              ++run_end;
            }
            cands.clear();
            for (std::size_t t = i; t < run_end; ++t) {
              cands.push_back(tuples[t].d);
            }
            score_batch(fa, fb, tuples[i].s, cands, config_.measure, backend,
                        scores.data() + i, scratch);
            i = run_end;
          }
        };
        if (impl_->pool) {
          impl_->pool->parallel_for(0, tuples.size(), score_range,
                                    /*min_chunk=*/256);
        } else {
          score_range(0, tuples.size());
        }
      }
      if (score_writer) {
        for (std::size_t i = 0; i < tuples.size(); ++i) {
          score_writer->add(assignment.owner(tuples[i].s),
                            {tuples[i].s, tuples[i].d, scores[i]});
        }
      } else {
        ScopedAccumulator merge_timing(&stats.knn_merge_s);
        offer_scored(acc, tuples, scores);
      }
    }
    cache.flush();  // count the final unloads, as in the simulator
    stats.partition_loads = cache.loads();
    stats.partition_unloads = cache.unloads();

    KnnGraph next(n, config_.k);
    {
      ScopedAccumulator merge_timing(&stats.knn_merge_s);
      if (score_writer) {
        // Finalise one partition's users at a time from its score file.
        score_writer->finish();
        for (PartitionId p = 0; p < m; ++p) {
          const auto spilled = read_record_shard<ScoredTuple>(
              score_writer->shard_path(p), &impl_->shard_io);
          parallel_offers(
              spilled.size(), [&](std::size_t i) { return spilled[i].s; },
              [&](std::size_t i) {
                acc.offer(spilled[i].s, spilled[i].d, spilled[i].score);
              });
          const auto members = assignment.members(p);
          auto finalise = [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              next.set_neighbors(members[i], acc.take(members[i]));
            }
          };
          if (impl_->pool) {
            impl_->pool->parallel_for(0, members.size(), finalise,
                                      /*min_chunk=*/1024);
          } else {
            finalise(0, members.size());
          }
        }
      } else {
        next = acc.build_graph(impl_->pool.get());
      }
    }
    // change_count is an exact integer per vertex range, so reducing it
    // over the pool reproduces the serial change rate bit-for-bit.
    const std::size_t differing =
        impl_->pool
            ? impl_->pool->parallel_reduce(
                  0, n, std::size_t{0},
                  [&](std::size_t lo, std::size_t hi) {
                    return KnnGraph::change_count(
                        graph_, next, static_cast<VertexId>(lo),
                        static_cast<VertexId>(hi));
                  },
                  [](std::size_t a, std::size_t b) { return a + b; },
                  /*min_chunk=*/4096)
            : KnnGraph::change_count(graph_, next, 0, n);
    stats.change_rate =
        n == 0 ? 0.0
               : static_cast<double>(differing) /
                     (static_cast<double>(n) *
                      std::max<std::uint32_t>(config_.k, 1));
    graph_ = std::move(next);
  }

  // ---- Phase 5: apply queued profile updates (P(t) -> P(t+1)). --------
  {
    ScopedAccumulator timing(&stats.timings.update_s);
    stats.profile_updates_applied = queue_.apply_to(profiles_);
  }

  if (config_.checkpoint) {
    save_knn_graph_file(impl_->work_dir / "checkpoint_latest.knng", graph_);
  }

  if (config_.recall_samples > 0) {
    stats.sampled_recall =
        sampled_recall(graph_, profiles_, config_.measure,
                       config_.recall_samples, config_.seed,
                       impl_->pool.get())
            .recall;
  }

  stats.io = store.io().counters();
  stats.io += impl_->shard_io.counters();
  stats.modeled_io_us =
      store.io().modeled_us() + impl_->shard_io.modeled_us();

  KNNPC_LOG(Info) << "iteration " << iteration_ << ": "
                  << stats.unique_tuples << " tuples, " << stats.pi_pairs
                  << " PI pairs, " << stats.partition_loads << " loads, "
                  << "change rate " << stats.change_rate;
  if (sink_ != nullptr) {
    sink_->publish(graph_, profiles_, assignment.owners(), iteration_);
  }
  ++iteration_;
  return stats;
}

IterationStats sum_iteration_stats(const std::vector<IterationStats>& parts) {
  IterationStats total;
  if (parts.empty()) return total;
  total.iteration = parts.front().iteration;
  total.threads_used = 0;  // default is 1; the sum must count parts only
  for (const IterationStats& p : parts) {
    total.timings.partition_s += p.timings.partition_s;
    total.timings.hash_s += p.timings.hash_s;
    total.timings.pi_graph_s += p.timings.pi_graph_s;
    total.timings.knn_s += p.timings.knn_s;
    total.timings.update_s += p.timings.update_s;
    total.candidate_tuples += p.candidate_tuples;
    total.unique_tuples += p.unique_tuples;
    total.pi_pairs += p.pi_pairs;
    total.partition_loads += p.partition_loads;
    total.partition_unloads += p.partition_unloads;
    total.io += p.io;
    total.modeled_io_us += p.modeled_io_us;
    total.knn_score_s += p.knn_score_s;
    total.knn_merge_s += p.knn_merge_s;
    total.threads_used += p.threads_used;
    total.profile_updates_applied += p.profile_updates_applied;
  }
  return total;
}

PartitionId suggest_partition_count(std::uint64_t total_data_bytes,
                                    std::uint64_t memory_budget_bytes,
                                    std::size_t slots, VertexId num_users) {
  if (memory_budget_bytes == 0) {
    throw std::invalid_argument("suggest_partition_count: zero budget");
  }
  slots = std::max<std::size_t>(slots, 2);
  // Each resident partition holds ~ total/m bytes; we need `slots` of them
  // under the budget: m >= slots * total / budget.
  const double needed = static_cast<double>(slots) *
                        static_cast<double>(total_data_bytes) /
                        static_cast<double>(memory_budget_bytes);
  auto m = static_cast<PartitionId>(needed) + 1;
  m = std::max<PartitionId>(m, 1);
  if (num_users > 0) m = std::min<PartitionId>(m, num_users);
  return m;
}

std::uint64_t estimate_data_bytes(const std::vector<SparseProfile>& profiles,
                                  std::uint32_t k) {
  std::uint64_t bytes = 0;
  for (const auto& p : profiles) {
    bytes += sizeof(std::uint32_t) + p.size() * sizeof(ProfileEntry);
  }
  // Each of the n*k edges is stored once in an .in file and once in .out.
  bytes += 2ULL * profiles.size() * k * sizeof(Edge);
  return bytes;
}

RunStats KnnEngine::run(std::uint32_t max_iterations,
                        double convergence_delta) {
  RunStats run_stats;
  Timer total;
  for (std::uint32_t i = 0; i < max_iterations; ++i) {
    IterationStats stats = run_iteration();
    const double change = stats.change_rate;
    run_stats.iterations.push_back(std::move(stats));
    if (change < convergence_delta) {
      run_stats.converged = true;
      break;
    }
  }
  run_stats.total_seconds = total.elapsed_seconds();
  return run_stats;
}

}  // namespace knnpc
