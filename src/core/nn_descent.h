// In-memory NN-Descent (Dong, Moses, Li — WWW 2011), the algorithm the
// paper scales out of core (its reference [1]) and our quality/time
// comparator baseline.
//
// Full algorithm with the paper's refinements: new/old neighbour flags,
// reverse neighbourhoods, and sample rate rho.
#pragma once

#include <cstdint>

#include "graph/knn_graph.h"
#include "profiles/profile_store.h"
#include "profiles/similarity.h"
#include "util/rng.h"

namespace knnpc {

struct NnDescentConfig {
  std::uint32_t k = 10;
  SimilarityMeasure measure = SimilarityMeasure::Cosine;
  /// Sample rate rho: fraction of new neighbours joined per round.
  double rho = 1.0;
  /// Stop when the fraction of updated edges drops below this.
  double delta = 0.001;
  std::uint32_t max_iterations = 30;
  std::uint64_t seed = 42;
  /// Worker threads for similarity scoring inside the local joins.
  /// 0 = auto (hardware concurrency clamped by n*k); 1 = serial. Candidate
  /// generation and heap updates stay sequential, so the result is
  /// bit-identical across thread counts.
  std::uint32_t threads = 1;
};

struct NnDescentStats {
  std::uint32_t iterations = 0;
  std::uint64_t similarity_evaluations = 0;
  /// Edge updates in the final iteration / (n*k).
  double final_update_rate = 0.0;
};

/// Runs NN-Descent to convergence; returns the KNN graph (and stats via
/// out-param when non-null).
KnnGraph nn_descent(const ProfileStore& profiles, const NnDescentConfig& config,
                    NnDescentStats* stats = nullptr);

}  // namespace knnpc
