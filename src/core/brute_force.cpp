#include "core/brute_force.h"

#include <mutex>

#include "core/topk.h"
#include "util/thread_pool.h"

namespace knnpc {

KnnGraph brute_force_knn(const ProfileStore& profiles, std::uint32_t k,
                         SimilarityMeasure measure, std::uint32_t threads) {
  const VertexId n = profiles.num_users();
  KnnGraph graph(n, k);
  auto compute_user = [&](VertexId s) {
    std::vector<Neighbor> best;
    TopKAccumulator acc(1, k);
    const SparseProfile& ps = profiles.get(s);
    for (VertexId d = 0; d < n; ++d) {
      if (d == s) continue;
      acc.offer(0, d, similarity(measure, ps, profiles.get(d)));
    }
    return acc.build_graph();
  };
  if (threads <= 1) {
    for (VertexId s = 0; s < n; ++s) {
      auto single = compute_user(s);
      graph.set_neighbors(
          s, {single.neighbors(0).begin(), single.neighbors(0).end()});
    }
    return graph;
  }
  ThreadPool pool(threads);
  std::mutex graph_mutex;
  pool.parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      auto single = compute_user(static_cast<VertexId>(s));
      std::vector<Neighbor> list(single.neighbors(0).begin(),
                                 single.neighbors(0).end());
      std::lock_guard<std::mutex> lock(graph_mutex);
      graph.set_neighbors(static_cast<VertexId>(s), std::move(list));
    }
  }, /*min_chunk=*/16);
  return graph;
}

}  // namespace knnpc
