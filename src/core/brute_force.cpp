#include "core/brute_force.h"

#include "core/topk.h"
#include "util/thread_pool.h"

namespace knnpc {

KnnGraph brute_force_knn(const ProfileStore& profiles, std::uint32_t k,
                         SimilarityMeasure measure, std::uint32_t threads) {
  const VertexId n = profiles.num_users();
  KnnGraph graph(n, k);
  // Each chunk owns a disjoint user range and writes disjoint graph slots,
  // so no lock is needed and the output is identical across thread counts.
  auto compute_range = [&](std::size_t lo, std::size_t hi) {
    TopKAccumulator acc(1, k);
    for (std::size_t s = lo; s < hi; ++s) {
      const SparseProfile& ps = profiles.get(static_cast<VertexId>(s));
      for (VertexId d = 0; d < n; ++d) {
        if (d == s) continue;
        acc.offer(0, d, similarity(measure, ps, profiles.get(d)));
      }
      graph.set_neighbors(static_cast<VertexId>(s), acc.take(0));
    }
  };
  // Each user costs O(n) similarities, so a handful of users already
  // justifies a worker in auto mode (threads == 0).
  const std::uint32_t resolved =
      resolve_thread_count(threads, n, /*work_per_thread=*/64);
  if (resolved <= 1) {
    compute_range(0, n);
    return graph;
  }
  // The calling thread joins the loop, so spawn one fewer worker.
  ThreadPool pool(resolved - 1);
  pool.parallel_for(0, n, compute_range, /*min_chunk=*/8);
  return graph;
}

}  // namespace knnpc
