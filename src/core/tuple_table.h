// Phase 2: the hash table H of unique candidate tuples.
//
// Duplicates arise from cycles (a->b->a) and from multiple bridge paths
// (a->b->d and a->c->d); H keeps one instance of each (s, d). Open
// addressing over packed 64-bit keys, linear probing, power-of-two
// capacity — roughly 3x faster and 4x smaller than unordered_set for this
// key shape.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace knnpc {

class TupleTable {
 public:
  /// `expected` pre-sizes the table for about that many inserts.
  explicit TupleTable(std::size_t expected = 1024);

  /// Inserts tuple (s, d); returns true when it was new.
  bool insert(Tuple t);

  /// True when (s, d) is present.
  [[nodiscard]] bool contains(Tuple t) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Total insert() calls, including duplicates — the phase-2 dedup ratio
  /// is size() / attempts().
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

  /// Visits every stored tuple (unspecified order).
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (std::uint64_t key : slots_) {
      if (key != kEmpty) visit(tuple_from_key(key));
    }
  }

  void clear();

 private:
  static constexpr std::uint64_t kEmpty = ~0ULL;

  void grow();
  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const noexcept;

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  std::uint64_t attempts_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace knnpc
