#include "core/datasets.h"

#include <stdexcept>

#include "graph/generators.h"
#include "util/rng.h"

namespace knnpc {

const std::vector<Table1Dataset>& table1_datasets() {
  // Node/edge counts and the three op counts are transcribed from Table 1.
  static const std::vector<Table1Dataset> kDatasets = {
      {"wiki-vote", "wiki-Vote", 7115, 100762, 211856, 204706, 202290},
      {"gen-rel", "ca-GrQc", 5241, 14484, 34506, 32220, 31256},
      {"high-energy", "ca-HepPh", 12006, 118489, 252754, 242132, 240872},
      {"astro-phys", "ca-AstroPh", 18771, 198050, 420442, 400050, 401770},
      {"email", "email-Enron", 36692, 183831, 399604, 382928, 379312},
      {"gnutella", "p2p-Gnutella24", 26518, 65369, 157040, 144072, 132710},
  };
  return kDatasets;
}

const Table1Dataset& table1_dataset(std::string_view name) {
  for (const auto& d : table1_datasets()) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("unknown Table-1 dataset: " +
                              std::string(name));
}

EdgeList generate_table1_graph(const Table1Dataset& dataset,
                               std::uint64_t seed, double gamma) {
  Rng rng(seed ^ (dataset.nodes * 0x9e3779b97f4a7c15ULL));
  return chung_lu_directed(dataset.nodes, dataset.edges, gamma, rng);
}

}  // namespace knnpc
