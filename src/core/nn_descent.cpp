#include "core/nn_descent.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace knnpc {
namespace {

/// Local-join pairs accumulate here and are scored in parallel batches;
/// bounded so a dense join round doesn't buffer every pair at once.
constexpr std::size_t kScoreBatch = 1u << 16;

/// Heap entry with the "new" flag from the NN-Descent paper.
struct Entry {
  VertexId id;
  float score;
  bool is_new;
};

/// Keeps B[v] as a sorted-by-score vector of size <= k with unique ids.
/// Returns true when the candidate entered the list (an "update").
bool heap_insert(std::vector<Entry>& heap, std::uint32_t k, VertexId id,
                 float score) {
  for (const Entry& e : heap) {
    if (e.id == id) return false;
  }
  if (heap.size() < k) {
    heap.push_back({id, score, true});
  } else {
    // Find the worst entry.
    auto worst = std::min_element(heap.begin(), heap.end(),
                                  [](const Entry& a, const Entry& b) {
                                    if (a.score != b.score) {
                                      return a.score < b.score;
                                    }
                                    return a.id > b.id;
                                  });
    if (score <= worst->score) return false;
    *worst = {id, score, true};
  }
  return true;
}

}  // namespace

KnnGraph nn_descent(const ProfileStore& profiles,
                    const NnDescentConfig& config, NnDescentStats* stats) {
  const VertexId n = profiles.num_users();
  const std::uint32_t k = config.k;
  Rng rng(config.seed);
  std::uint64_t sim_evals = 0;

  // Scoring pool for the bootstrap and the local joins. Which pairs get
  // scored is decided before any of their similarities are consumed, so
  // batches can be scored out of order while heap updates replay in the
  // exact serial order — the graph is bit-identical to a single-threaded
  // run.
  const std::uint32_t threads = resolve_thread_count(
      config.threads, static_cast<std::uint64_t>(n) * std::max(k, 1u),
      /*work_per_thread=*/16384);
  // The calling thread joins each scoring loop; spawn one fewer worker.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);

  auto score_pairs = [&](const std::vector<std::pair<VertexId, VertexId>>&
                             pairs,
                         std::vector<float>& out) {
    out.resize(pairs.size());
    sim_evals += pairs.size();
    auto score_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        out[i] = similarity(config.measure, profiles.get(pairs[i].first),
                            profiles.get(pairs[i].second));
      }
    };
    if (pool) {
      pool->parallel_for(0, pairs.size(), score_range, /*min_chunk=*/256);
    } else {
      score_range(0, pairs.size());
    }
  };

  std::vector<std::pair<VertexId, VertexId>> batch;
  std::vector<float> batch_scores;
  batch.reserve(kScoreBatch);
  std::uint64_t updates = 0;
  auto flush_batch = [&](std::vector<std::vector<Entry>>& heaps) {
    if (batch.empty()) return;
    score_pairs(batch, batch_scores);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto [u1, u2] = batch[i];
      const float s = batch_scores[i];
      if (heap_insert(heaps[u1], k, u2, s)) ++updates;
      if (heap_insert(heaps[u2], k, u1, s)) ++updates;
    }
    batch.clear();
  };

  // B[v] <- k random entries with *measured* similarity (flagged new).
  // Candidate selection touches only the RNG and the already-chosen ids,
  // so ids are drawn first (serial, RNG order unchanged) and the n*k seed
  // similarities are scored through the pool afterwards.
  std::vector<std::vector<Entry>> b(n);
  if (n > 1) {
    std::vector<std::pair<VertexId, VertexId>> seeds;
    seeds.reserve(static_cast<std::size_t>(n) *
                  std::min<std::size_t>(k, n - 1));
    for (VertexId v = 0; v < n; ++v) {
      while (b[v].size() < std::min<std::size_t>(k, n - 1)) {
        const auto cand = static_cast<VertexId>(rng.next_below(n));
        if (cand == v) continue;
        bool dup = false;
        for (const Entry& e : b[v]) dup = dup || e.id == cand;
        if (dup) continue;
        b[v].push_back({cand, 0.0f, true});
        seeds.emplace_back(v, cand);
      }
    }
    std::vector<float> seed_scores;
    score_pairs(seeds, seed_scores);
    std::vector<std::size_t> cursor(n, 0);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      const VertexId v = seeds[i].first;
      b[v][cursor[v]++].score = seed_scores[i];
    }
  }

  std::uint32_t iteration = 0;
  double update_rate = 1.0;
  for (; iteration < config.max_iterations; ++iteration) {
    // Sample "new" neighbours at rate rho; the rest of the joins use olds.
    std::vector<std::vector<VertexId>> new_fwd(n);
    std::vector<std::vector<VertexId>> old_fwd(n);
    for (VertexId v = 0; v < n; ++v) {
      for (Entry& e : b[v]) {
        if (e.is_new && rng.next_bool(config.rho)) {
          new_fwd[v].push_back(e.id);
          e.is_new = false;  // consumed
        } else if (!e.is_new) {
          old_fwd[v].push_back(e.id);
        }
      }
    }
    // Reverse neighbourhoods.
    std::vector<std::vector<VertexId>> new_rev(n);
    std::vector<std::vector<VertexId>> old_rev(n);
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId u : new_fwd[v]) new_rev[u].push_back(v);
      for (VertexId u : old_fwd[v]) old_rev[u].push_back(v);
    }

    updates = 0;
    std::vector<VertexId> new_set;
    std::vector<VertexId> old_set;
    for (VertexId v = 0; v < n; ++v) {
      new_set = new_fwd[v];
      old_set = old_fwd[v];
      // Union with (sampled) reverse sets, as in the paper.
      for (VertexId u : new_rev[v]) {
        if (rng.next_bool(config.rho)) new_set.push_back(u);
      }
      for (VertexId u : old_rev[v]) {
        if (rng.next_bool(config.rho)) old_set.push_back(u);
      }
      std::sort(new_set.begin(), new_set.end());
      new_set.erase(std::unique(new_set.begin(), new_set.end()),
                    new_set.end());
      std::sort(old_set.begin(), old_set.end());
      old_set.erase(std::unique(old_set.begin(), old_set.end()),
                    old_set.end());

      // Local join: new x new, new x old. Pairs queue into the scoring
      // batch; overflowing batches flush mid-join, which is safe because
      // the join sets were frozen above and heap updates replay in order.
      for (std::size_t i = 0; i < new_set.size(); ++i) {
        for (std::size_t j = i + 1; j < new_set.size(); ++j) {
          batch.emplace_back(new_set[i], new_set[j]);
          if (batch.size() >= kScoreBatch) flush_batch(b);
        }
        for (VertexId u2 : old_set) {
          const VertexId u1 = new_set[i];
          if (u1 == u2) continue;
          batch.emplace_back(u1, u2);
          if (batch.size() >= kScoreBatch) flush_batch(b);
        }
      }
    }
    flush_batch(b);

    update_rate = n == 0 ? 0.0
                         : static_cast<double>(updates) /
                               (static_cast<double>(n) * std::max(k, 1u));
    if (update_rate < config.delta) {
      ++iteration;
      break;
    }
  }

  KnnGraph graph(n, k);
  for (VertexId v = 0; v < n; ++v) {
    std::vector<Neighbor> list;
    list.reserve(b[v].size());
    for (const Entry& e : b[v]) list.push_back({e.id, e.score});
    graph.set_neighbors(v, std::move(list));
  }
  if (stats != nullptr) {
    stats->iterations = iteration;
    stats->similarity_evaluations = sim_evals;
    stats->final_update_rate = update_rate;
  }
  return graph;
}

}  // namespace knnpc
