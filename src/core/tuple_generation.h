// Phase 1's payoff: sequential merge-join of a partition's sorted in-edge
// and out-edge lists to emit neighbours-of-neighbours tuples.
//
// In-edges {(s, v)} and out-edges {(v, d)} are sorted by the bridge v, so
// one linear pass pairs every in-source s with every out-destination d of
// the same bridge: "the vertex v acts as a bridge between s and d".
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "graph/digraph.h"
#include "util/types.h"

namespace knnpc {

/// Calls `emit(Tuple{s, d})` for every bridge pairing; skips s == d
/// (a user is not its own KNN candidate). Inputs MUST be sorted by
/// bridge: in_edges by .dst, out_edges by .src (the partition-store file
/// order). Returns the number of emitted tuples.
template <typename Emit>
std::uint64_t merge_join_tuples(std::span<const Edge> in_edges,
                                std::span<const Edge> out_edges,
                                Emit&& emit) {
  std::uint64_t emitted = 0;
  std::size_t i = 0;
  std::size_t o = 0;
  while (i < in_edges.size() && o < out_edges.size()) {
    const VertexId bridge_in = in_edges[i].dst;
    const VertexId bridge_out = out_edges[o].src;
    if (bridge_in < bridge_out) {
      ++i;
      continue;
    }
    if (bridge_out < bridge_in) {
      ++o;
      continue;
    }
    // Runs with equal bridge: cross product.
    const VertexId bridge = bridge_in;
    std::size_t i_end = i;
    while (i_end < in_edges.size() && in_edges[i_end].dst == bridge) ++i_end;
    std::size_t o_end = o;
    while (o_end < out_edges.size() && out_edges[o_end].src == bridge) {
      ++o_end;
    }
    for (std::size_t x = i; x < i_end; ++x) {
      for (std::size_t y = o; y < o_end; ++y) {
        const VertexId s = in_edges[x].src;
        const VertexId d = out_edges[y].dst;
        if (s == d) continue;
        emit(Tuple{s, d});
        ++emitted;
      }
    }
    i = i_end;
    o = o_end;
  }
  return emitted;
}

/// Reference tuple generator for tests: all (s, d) with d a
/// neighbour's-neighbour of s (s -> v -> d, s != d), via plain adjacency
/// walks on the whole graph. O(sum over v of in(v)*out(v)).
std::uint64_t all_bridge_tuples(const Digraph& graph,
                                const std::function<void(Tuple)>& emit);

}  // namespace knnpc
