// Phase 1's payoff: sequential merge-join of a partition's sorted in-edge
// and out-edge lists to emit neighbours-of-neighbours tuples.
//
// In-edges {(s, v)} and out-edges {(v, d)} are sorted by the bridge v, so
// one linear pass pairs every in-source s with every out-destination d of
// the same bridge: "the vertex v acts as a bridge between s and d".
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "graph/digraph.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/types.h"

namespace knnpc {

/// Triangular index of the unordered PI pair (a, b), a <= b < m — the
/// slot layout of the per-pair tuple shard files, shared by the engine
/// and the shard driver so both bucket tuples identically.
inline std::size_t pi_pair_slot(PartitionId a, PartitionId b,
                                PartitionId m) {
  if (a > b) std::swap(a, b);
  // Row a starts after a*m - a*(a-1)/2 slots.
  return static_cast<std::size_t>(a) * m -
         static_cast<std::size_t>(a) * (a > 0 ? a - 1 : 0) / 2 + (b - a);
}

/// RNG stream for subsampling partition `p`'s merge-join candidates (the
/// NN-Descent rho knob) in iteration `t`. The stream is derived from
/// (seed, iteration, partition) alone — no cross-partition state — so any
/// executor that processes partition p reproduces the same sampling
/// decisions: the serial engine and every shard-driver worker draw
/// identical streams, which is what makes the KNN output independent of
/// the shard count (see core/shard_driver.h).
inline Rng candidate_sample_rng(std::uint64_t seed, std::uint32_t iteration,
                                PartitionId p) {
  return Rng(mix64(seed + 1) ^
             mix64(0xda942042e4dd58b5ULL * (iteration + 1)) ^
             mix64(0x510e527fade682d1ULL + p));
}

/// RNG stream for user `s`'s random-restart candidates in iteration `t`.
/// Per-user derivation (not one sequential stream over all users) for the
/// same reason as candidate_sample_rng: whichever worker generates user
/// s's restarts draws the same values.
inline Rng random_restart_rng(std::uint64_t seed, std::uint32_t iteration,
                              VertexId s) {
  return Rng(mix64(seed) ^ mix64(0x9e3779b97f4a7c15ULL * (iteration + 1)) ^
             mix64(0x6a09e667f3bcc909ULL + s));
}

/// Calls `emit(Tuple{s, d})` for every bridge pairing; skips s == d
/// (a user is not its own KNN candidate). Inputs MUST be sorted by
/// bridge: in_edges by .dst, out_edges by .src (the partition-store file
/// order). Returns the number of emitted tuples.
template <typename Emit>
std::uint64_t merge_join_tuples(std::span<const Edge> in_edges,
                                std::span<const Edge> out_edges,
                                Emit&& emit) {
  std::uint64_t emitted = 0;
  std::size_t i = 0;
  std::size_t o = 0;
  while (i < in_edges.size() && o < out_edges.size()) {
    const VertexId bridge_in = in_edges[i].dst;
    const VertexId bridge_out = out_edges[o].src;
    if (bridge_in < bridge_out) {
      ++i;
      continue;
    }
    if (bridge_out < bridge_in) {
      ++o;
      continue;
    }
    // Runs with equal bridge: cross product.
    const VertexId bridge = bridge_in;
    std::size_t i_end = i;
    while (i_end < in_edges.size() && in_edges[i_end].dst == bridge) ++i_end;
    std::size_t o_end = o;
    while (o_end < out_edges.size() && out_edges[o_end].src == bridge) {
      ++o_end;
    }
    for (std::size_t x = i; x < i_end; ++x) {
      for (std::size_t y = o; y < o_end; ++y) {
        const VertexId s = in_edges[x].src;
        const VertexId d = out_edges[y].dst;
        if (s == d) continue;
        emit(Tuple{s, d});
        ++emitted;
      }
    }
    i = i_end;
    o = o_end;
  }
  return emitted;
}

/// Reference tuple generator for tests: all (s, d) with d a
/// neighbour's-neighbour of s (s -> v -> d, s != d), via plain adjacency
/// walks on the whole graph. O(sum over v of in(v)*out(v)).
std::uint64_t all_bridge_tuples(const Digraph& graph,
                                const std::function<void(Tuple)>& emit);

}  // namespace knnpc
