// Quality metrics for KNN graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/knn_graph.h"

namespace knnpc {

/// recall@K: mean over users of |approx ∩ exact| / |exact|. Both graphs
/// must have the same vertex count. Users with an empty exact list are
/// skipped.
double recall_at_k(const KnnGraph& approx, const KnnGraph& exact);

/// Fraction of KNN edges whose endpoints share a planted cluster label.
/// With clustered profiles this approaches 1 as the KNN graph converges.
double cluster_purity(const KnnGraph& graph,
                      const std::vector<std::uint32_t>& cluster_of);

/// Mean similarity score over all edges (scores stored on the edges).
double mean_edge_score(const KnnGraph& graph);

}  // namespace knnpc
