// JSON export of engine run statistics — the machine-readable face of
// EXPERIMENTS.md. No external JSON dependency: the schema is flat enough
// to emit directly.
#pragma once

#include <iosfwd>
#include <string>

#include "core/engine.h"

namespace knnpc {

/// Writes one iteration's stats as a JSON object (single line).
void write_iteration_json(std::ostream& out, const IterationStats& stats);

/// Writes a whole run as {"converged":..., "total_seconds":...,
/// "iterations":[...]} (pretty-printed, one iteration per line).
void write_run_json(std::ostream& out, const RunStats& run);

/// Convenience: render a run to a string.
std::string run_to_json(const RunStats& run);

}  // namespace knnpc
