// JSON export of engine run statistics — the machine-readable face of
// EXPERIMENTS.md. No external JSON dependency: the schema is flat enough
// to emit directly.
//
// Also home to the process-mode stats sidecar: the binary file a shard
// worker process writes next to its outputs so the driver can fold the
// worker's ShardWorkerStats into the merged iteration stats.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/shard_driver.h"

namespace knnpc {

/// Writes one iteration's stats as a JSON object (single line).
void write_iteration_json(std::ostream& out, const IterationStats& stats);

/// Writes a whole run as {"converged":..., "total_seconds":...,
/// "iterations":[...]} (pretty-printed, one iteration per line).
void write_run_json(std::ostream& out, const RunStats& run);

/// Convenience: render a run to a string.
std::string run_to_json(const RunStats& run);

/// Writes per-shard worker observability for a sequence of sharded
/// iterations: {"iterations":[{"iteration":..,"workers":[{...}]}]} with
/// one object per ShardWorkerStats — supervision (spawn/resync), channel
/// traffic, and the distributed sync_* transfer counters. The CI
/// distributed-smoke job asserts on this (e.g. "a converged partition
/// store re-transfers zero bytes").
void write_shard_workers_json(
    std::ostream& out, const std::vector<ShardedIterationStats>& iterations);

/// Stats sidecar ("KWST"): magic, u32 version, then the raw
/// ShardWorkerStats record. Same-build producer and consumer only (the
/// driver and its re-executed workers are by construction the same
/// binary), which is why the raw trivially-copyable layout is acceptable.
/// Written atomically (tmp + rename) — the sidecar doubles as the
/// worker's completion marker, so it must never exist half-written.
void save_worker_stats_file(const std::filesystem::path& path,
                            const ShardWorkerStats& stats);

/// Throws std::runtime_error on bad magic, version, or size.
ShardWorkerStats load_worker_stats_file(const std::filesystem::path& path);

}  // namespace knnpc
