// Registry of the paper's Table-1 datasets and their synthetic stand-ins.
//
// The originals are SNAP graphs (not redistributable offline — DESIGN.md
// §4). Each stand-in is a directed Chung-Lu power-law graph with the
// paper's exact node and edge counts and a fixed seed, preserving the
// degree skew the heuristic comparison depends on.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "graph/edge_list.h"

namespace knnpc {

struct Table1Dataset {
  std::string name;        // paper's row label
  std::string snap_name;   // the SNAP graph the row corresponds to
  VertexId nodes = 0;
  std::size_t edges = 0;   // directed edge count, as in the paper
  /// Paper-reported load/unload operations (for EXPERIMENTS.md deltas).
  std::size_t paper_seq = 0;
  std::size_t paper_high_low = 0;
  std::size_t paper_low_high = 0;
};

/// All six Table-1 rows, in the paper's order.
const std::vector<Table1Dataset>& table1_datasets();

/// Row by name ("wiki-vote", "gen-rel", "high-energy", "astro-phys",
/// "email", "gnutella"); throws std::invalid_argument on unknown names.
const Table1Dataset& table1_dataset(std::string_view name);

/// Generates the stand-in graph for a row (deterministic per `seed`).
/// `gamma` is the power-law exponent; ~2.0 reproduces the degree-1 mass
/// of the SNAP originals that drives the Table-1 heuristic gaps.
EdgeList generate_table1_graph(const Table1Dataset& dataset,
                               std::uint64_t seed = 2014,
                               double gamma = 2.01);

}  // namespace knnpc
