#include "core/convergence.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/topk.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace knnpc {

SampledRecall sampled_recall(const KnnGraph& graph,
                             const ProfileStore& profiles,
                             SimilarityMeasure measure, std::size_t samples,
                             std::uint64_t seed, std::uint32_t threads) {
  // 0 = auto, sized on the loop's actual work items (the sampled users,
  // each costing O(n) similarities).
  threads = resolve_thread_count(threads, samples, /*work_per_thread=*/2);
  if (threads > 1) {
    // The calling thread participates in the pool's loops; spawn one
    // fewer worker so `threads` is the total compute-thread count.
    ThreadPool pool(threads - 1);
    return sampled_recall(graph, profiles, measure, samples, seed, &pool);
  }
  return sampled_recall(graph, profiles, measure, samples, seed,
                        static_cast<ThreadPool*>(nullptr));
}

SampledRecall sampled_recall(const KnnGraph& graph,
                             const ProfileStore& profiles,
                             SimilarityMeasure measure, std::size_t samples,
                             std::uint64_t seed, ThreadPool* pool) {
  SampledRecall result;
  const VertexId n = profiles.num_users();
  if (n < 2 || samples == 0 || graph.k() == 0) return result;
  samples = std::min<std::size_t>(samples, n);

  // Sample without replacement.
  Rng rng(seed);
  std::unordered_set<VertexId> chosen;
  std::vector<VertexId> users;
  users.reserve(samples);
  while (users.size() < samples) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    if (chosen.insert(u).second) users.push_back(u);
  }

  std::vector<double> recalls(users.size(), 0.0);
  auto evaluate = [&](std::size_t lo, std::size_t hi) {
    std::unordered_set<VertexId> truth;
    for (std::size_t i = lo; i < hi; ++i) {
      const VertexId u = users[i];
      // Exact top-K for this user only.
      TopKAccumulator acc(1, graph.k());
      const SparseProfile& pu = profiles.get(u);
      for (VertexId d = 0; d < n; ++d) {
        if (d == u) continue;
        acc.offer(0, d, similarity(measure, pu, profiles.get(d)));
      }
      const KnnGraph exact_one = acc.build_graph();
      const auto exact_list = exact_one.neighbors(0);
      if (exact_list.empty()) continue;
      truth.clear();
      for (const Neighbor& e : exact_list) truth.insert(e.id);
      std::size_t hits = 0;
      for (const Neighbor& got : graph.neighbors(u)) {
        if (truth.contains(got.id)) ++hits;
      }
      recalls[i] =
          static_cast<double>(hits) / static_cast<double>(truth.size());
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, users.size(), evaluate, /*min_chunk=*/2);
  } else {
    evaluate(0, users.size());
  }

  double sum = 0.0;
  for (double r : recalls) sum += r;
  const auto count = static_cast<double>(recalls.size());
  result.recall = sum / count;
  result.sampled_users = recalls.size();
  double sq = 0.0;
  for (double r : recalls) sq += (r - result.recall) * (r - result.recall);
  const double stddev = count > 1 ? std::sqrt(sq / (count - 1)) : 0.0;
  result.margin95 = 1.96 * stddev / std::sqrt(count);
  return result;
}

double mean_kth_score(const KnnGraph& graph) {
  double sum = 0.0;
  std::size_t counted = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto list = graph.neighbors(v);
    if (list.empty()) continue;
    sum += list.back().score;  // sorted descending: back() is the worst
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace knnpc
