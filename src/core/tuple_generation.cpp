#include "core/tuple_generation.h"

namespace knnpc {

std::uint64_t all_bridge_tuples(const Digraph& graph,
                                const std::function<void(Tuple)>& emit) {
  std::uint64_t emitted = 0;
  for (VertexId bridge = 0; bridge < graph.num_vertices(); ++bridge) {
    for (VertexId s : graph.in_neighbors(bridge)) {
      for (VertexId d : graph.out_neighbors(bridge)) {
        if (s == d) continue;
        emit(Tuple{s, d});
        ++emitted;
      }
    }
  }
  return emitted;
}

}  // namespace knnpc
