#include "core/metrics.h"

#include <stdexcept>
#include <unordered_set>

namespace knnpc {

double recall_at_k(const KnnGraph& approx, const KnnGraph& exact) {
  if (approx.num_vertices() != exact.num_vertices()) {
    throw std::invalid_argument("recall_at_k: vertex counts differ");
  }
  double sum = 0.0;
  std::size_t counted = 0;
  std::unordered_set<VertexId> truth;
  for (VertexId v = 0; v < exact.num_vertices(); ++v) {
    const auto exact_list = exact.neighbors(v);
    if (exact_list.empty()) continue;
    truth.clear();
    for (const Neighbor& n : exact_list) truth.insert(n.id);
    std::size_t hit = 0;
    for (const Neighbor& n : approx.neighbors(v)) {
      if (truth.contains(n.id)) ++hit;
    }
    sum += static_cast<double>(hit) / static_cast<double>(truth.size());
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double cluster_purity(const KnnGraph& graph,
                      const std::vector<std::uint32_t>& cluster_of) {
  if (cluster_of.size() < graph.num_vertices()) {
    throw std::invalid_argument("cluster_purity: label vector too short");
  }
  std::size_t edges = 0;
  std::size_t intra = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const Neighbor& n : graph.neighbors(v)) {
      ++edges;
      if (cluster_of[v] == cluster_of[n.id]) ++intra;
    }
  }
  return edges == 0 ? 0.0
                    : static_cast<double>(intra) / static_cast<double>(edges);
}

double mean_edge_score(const KnnGraph& graph) {
  double sum = 0.0;
  std::size_t edges = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const Neighbor& n : graph.neighbors(v)) {
      sum += n.score;
      ++edges;
    }
  }
  return edges == 0 ? 0.0 : sum / static_cast<double>(edges);
}

}  // namespace knnpc
