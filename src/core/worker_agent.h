// Remote worker agent: the process that hosts persistent shard workers
// on another machine (or, in tests and the CI smoke job, behind loopback
// TCP on this one).
//
// One agent serves one machine. The driver (core/shard_driver.h with
// ShardConfig::worker_endpoints set) opens two kinds of connections to
// it, both framed IpcChannel streams (util/ipc_channel.h):
//
//   * One CONTROL connection per agent, held for the whole run. Over it
//     the driver ships the run's files content-addressed (manifest of
//     FNV-1a checksums -> the agent answers which it lacks -> only those
//     transfer; storage/file_sync.h owns the formats), relays spool
//     files between agents, and kills remote workers by shard id when
//     supervision demands it.
//   * One WORKER connection per shard. After a short hello the agent
//     spawns `<worker_exe> --shard-worker --wave=serve` with the
//     accepted socket as the child's stdin AND stdout — the persistent
//     worker's existing stdio protocol then runs driver <-> worker over
//     TCP unchanged, byte for byte. The agent keeps only the process
//     handle, for supervision (kill, zombie reaping).
//
// Every connection opens with a hello frame carrying the protocol
// version and the driver's run token; the token names the run directory
// under the agent's work root, so one agent can serve runs from several
// drivers without them trampling each other's files. A control
// connection dropping (driver death included) kills that run's workers —
// the remote mirror of PDEATHSIG.
//
// The agent is single-threaded: one poll loop over the listener and the
// control connections, reaping dead workers each tick. Strict
// request/reply per connection keeps that sufficient — the driver never
// pipelines control commands.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/file_sync.h"
#include "util/ipc_channel.h"

namespace knnpc {

/// Frame vocabulary of the agent protocol. Hello payloads carry the
/// protocol version first; a version the agent does not speak is
/// answered with ERR and the connection dropped.
namespace agent_frame {
constexpr std::uint32_t kProtocolVersion = 1;
/// Driver -> agent, first frame on a control connection:
/// u32 version, string run token.
constexpr std::uint32_t kHelloControl = 200;
/// Driver -> agent, first frame on a worker connection:
/// u32 version, string run token, u32 shard. The agent answers OK and
/// then hands the socket to the spawned worker as its stdio.
constexpr std::uint32_t kHelloWorker = 201;
/// Driver -> agent (control): serialized sync manifest
/// (storage/file_sync.h). The agent answers NEED.
constexpr std::uint32_t kSyncManifest = 202;
/// Driver -> agent (control): one FileBlob to place under the run dir.
/// The agent answers OK.
constexpr std::uint32_t kFilePut = 203;
/// Driver -> agent (control): string relpath to fetch. The agent
/// answers FILE_DATA (exists = 0 for a missing file).
constexpr std::uint32_t kFileGet = 204;
/// Driver -> agent (control): u32 shard to SIGKILL. The agent answers
/// OK whose payload is the dead worker's status description — the
/// remote stand-in for Subprocess::status().describe().
constexpr std::uint32_t kKillWorker = 205;
/// Agent -> driver: success; payload depends on the request.
constexpr std::uint32_t kOk = 210;
/// Agent -> driver: failure; payload is the error message.
constexpr std::uint32_t kErr = 211;
/// Agent -> driver, reply to SyncManifest: u32 count, then count u32
/// indices into the manifest the agent wants transferred (everything
/// else already matches by checksum and is skipped).
constexpr std::uint32_t kNeed = 212;
/// Agent -> driver, reply to FileGet: a FileBlob.
constexpr std::uint32_t kFileData = 213;
}  // namespace agent_frame

struct WorkerAgentConfig {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; WorkerAgent::port() reports the bound one.
  std::uint16_t port = 0;
  /// Root under which each run token gets its own directory.
  std::filesystem::path work_root;
  /// Binary to spawn as --shard-worker; empty = this executable.
  std::string worker_exe;
  std::uint32_t max_frame_bytes = IpcChannel::kDefaultMaxFrameBytes;
};

/// The agent itself. Construction binds and listens (so a port-0 caller
/// can read the resolved port before run()); run() blocks in the poll
/// loop until stop() — callable from any thread or a signal-driven
/// flag — is observed, then kills and reaps every worker it spawned.
class WorkerAgent {
 public:
  explicit WorkerAgent(WorkerAgentConfig config);
  ~WorkerAgent();
  WorkerAgent(const WorkerAgent&) = delete;
  WorkerAgent& operator=(const WorkerAgent&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept;
  void run();
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

 private:
  struct State;
  WorkerAgentConfig config_;
  IpcListener listener_;
  std::unique_ptr<State> state_;
  std::atomic<bool> stop_{false};
};

/// `knnpc_run --worker-agent` entry: runs an agent until SIGINT/SIGTERM.
/// `port_file`, when non-empty, receives the bound port (written
/// atomically, so a launcher polling for the file never reads half a
/// number — how the CI smoke job learns an ephemeral port).
int worker_agent_main(const WorkerAgentConfig& config,
                      const std::filesystem::path& port_file);

// ------------------------------------------------- driver-side client --
// Thin request/reply helpers the shard driver composes; each call is one
// (or, for the sync push, a few) control round-trips. All throw IpcError
// on transport failure and std::runtime_error when the agent answers ERR.

/// Opens a control connection: connect, hello, OK.
IpcChannel agent_connect_control(const std::string& host, std::uint16_t port,
                                 const std::string& token, double timeout_s);

/// Opens a worker connection for `shard`: connect, hello, OK. The
/// returned channel talks directly to the freshly spawned worker.
IpcChannel agent_connect_worker(const std::string& host, std::uint16_t port,
                                const std::string& token, std::uint32_t shard,
                                double timeout_s);

/// What a sync push actually moved — the source of the
/// ShardWorkerStats::sync_* counters.
struct AgentTransferCounters {
  std::uint64_t files_tx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t files_skipped = 0;
  std::uint64_t bytes_skipped = 0;

  AgentTransferCounters& operator+=(const AgentTransferCounters& o) {
    files_tx += o.files_tx;
    bytes_tx += o.bytes_tx;
    files_skipped += o.files_skipped;
    bytes_skipped += o.bytes_skipped;
    return *this;
  }
};

/// Pushes `manifest` over `control`: sends the manifest, transfers
/// exactly the entries the agent asked for (bytes supplied by `load`,
/// called once per needed relpath), and accounts the rest as skipped.
AgentTransferCounters agent_sync_push(
    IpcChannel& control, const std::vector<SyncFileEntry>& manifest,
    const std::function<std::vector<std::byte>(const std::string&)>& load,
    double timeout_s);

/// Fetches one file from the agent's run dir (exists = false when absent).
FileBlob agent_fetch_file(IpcChannel& control, const std::string& relpath,
                          double timeout_s);

/// SIGKILLs remote worker `shard`; returns its status description.
std::string agent_kill_worker(IpcChannel& control, std::uint32_t shard,
                              double timeout_s);

}  // namespace knnpc
