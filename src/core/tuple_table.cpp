#include "core/tuple_table.h"

#include "util/hash.h"

namespace knnpc {

TupleTable::TupleTable(std::size_t expected) {
  // Keep the load factor under ~0.7.
  const std::size_t capacity = next_pow2(expected * 3 / 2 + 16);
  slots_.assign(capacity, kEmpty);
  mask_ = capacity - 1;
}

std::size_t TupleTable::probe_start(std::uint64_t key) const noexcept {
  return static_cast<std::size_t>(mix64(key)) & mask_;
}

bool TupleTable::insert(Tuple t) {
  ++attempts_;
  const std::uint64_t key = tuple_key(t);
  std::size_t slot = probe_start(key);
  for (;;) {
    if (slots_[slot] == key) return false;
    if (slots_[slot] == kEmpty) break;
    slot = (slot + 1) & mask_;
  }
  slots_[slot] = key;
  ++size_;
  if (size_ * 3 > slots_.size() * 2) grow();
  return true;
}

bool TupleTable::contains(Tuple t) const {
  const std::uint64_t key = tuple_key(t);
  std::size_t slot = probe_start(key);
  for (;;) {
    if (slots_[slot] == key) return true;
    if (slots_[slot] == kEmpty) return false;
    slot = (slot + 1) & mask_;
  }
}

void TupleTable::grow() {
  std::vector<std::uint64_t> old;
  old.swap(slots_);
  slots_.assign(old.size() * 2, kEmpty);
  mask_ = slots_.size() - 1;
  for (std::uint64_t key : old) {
    if (key == kEmpty) continue;
    std::size_t slot = probe_start(key);
    while (slots_[slot] != kEmpty) slot = (slot + 1) & mask_;
    slots_[slot] = key;
  }
}

void TupleTable::clear() {
  std::fill(slots_.begin(), slots_.end(), kEmpty);
  size_ = 0;
  attempts_ = 0;
}

}  // namespace knnpc
