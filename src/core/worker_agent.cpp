#include "core/worker_agent.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "storage/block_file.h"
#include "util/fnv.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/subprocess.h"

namespace knnpc {
namespace fs = std::filesystem;

namespace {

using namespace agent_frame;

// Hello/control payloads are tiny and ad hoc — length-prefixed strings
// and raw scalars, same little-endian conventions as file_sync's wire
// formats.
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  append_record(out, v);
}

void put_string(std::vector<std::byte>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  const std::size_t offset = out.size();
  out.resize(offset + s.size());
  std::memcpy(out.data() + offset, s.data(), s.size());
}

std::uint32_t get_u32(std::span<const std::byte> bytes, std::size_t& offset,
                      const char* what) {
  std::uint32_t v = 0;
  if (!read_record(bytes, offset, v)) {
    throw std::runtime_error(std::string("worker_agent: truncated ") + what);
  }
  return v;
}

std::string get_string(std::span<const std::byte> bytes, std::size_t& offset,
                       const char* what) {
  const std::uint32_t len = get_u32(bytes, offset, what);
  if (offset + len > bytes.size()) {
    throw std::runtime_error(std::string("worker_agent: truncated ") + what);
  }
  std::string s(reinterpret_cast<const char*>(bytes.data() + offset), len);
  offset += len;
  return s;
}

std::string payload_as_string(const IpcFrame& frame) {
  return std::string(reinterpret_cast<const char*>(frame.payload.data()),
                     frame.payload.size());
}

/// A run token becomes a directory name; anything shell- or
/// path-hostile is flattened so a malicious driver cannot escape the
/// work root (is_safe_relpath guards the files *inside* it).
std::string sanitize_token(const std::string& token) {
  std::string out;
  out.reserve(token.size());
  for (const char c : token) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "run";
  return out;
}

/// Inner timeout for the frames of an already-initiated exchange. Long
/// enough for a partition blob over a congested link, short enough that
/// a half-connected peer cannot wedge the single-threaded agent forever.
constexpr double kAgentFrameTimeoutS = 60.0;

}  // namespace

// ------------------------------------------------------------- the agent --

struct WorkerAgent::State {
  struct Run {
    fs::path run_dir;
    /// relpath -> FNV-1a of the content last placed there; the answer to
    /// "which manifest entries do you need".
    std::unordered_map<std::string, std::uint64_t> files;
    std::map<std::uint32_t, Subprocess> workers;
  };
  struct Control {
    IpcChannel channel;
    std::string token;
  };
  std::unordered_map<std::string, Run> runs;
  std::vector<Control> controls;
};

WorkerAgent::WorkerAgent(WorkerAgentConfig config)
    : config_(std::move(config)),
      listener_(config_.host, config_.port, config_.max_frame_bytes),
      state_(std::make_unique<State>()) {
  if (config_.work_root.empty()) {
    throw std::invalid_argument("WorkerAgent: work_root must be set");
  }
  fs::create_directories(config_.work_root);
}

WorkerAgent::~WorkerAgent() = default;

std::uint16_t WorkerAgent::port() const noexcept { return listener_.port(); }

namespace {

void send_err(IpcChannel& channel, const std::string& message) {
  std::vector<std::byte> payload;
  payload.resize(message.size());
  std::memcpy(payload.data(), message.data(), message.size());
  channel.send(kErr, payload, kAgentFrameTimeoutS);
}

void send_ok(IpcChannel& channel, const std::string& message = {}) {
  std::vector<std::byte> payload;
  payload.resize(message.size());
  std::memcpy(payload.data(), message.data(), message.size());
  channel.send(kOk, payload, kAgentFrameTimeoutS);
}

}  // namespace

void WorkerAgent::run() {
  State& st = *state_;
  const std::string exe = config_.worker_exe.empty()
                              ? current_executable().string()
                              : config_.worker_exe;

  auto run_for = [&](const std::string& token) -> State::Run& {
    auto [it, inserted] =
        st.runs.try_emplace(token, State::Run{
            config_.work_root / sanitize_token(token), {}, {}});
    if (inserted) fs::create_directories(it->second.run_dir);
    return it->second;
  };

  // A fresh connection's hello, then either a one-shot worker spawn or
  // enrollment as a control connection.
  auto handle_new_connection = [&] {
    IpcChannel channel = listener_.accept(kAgentFrameTimeoutS);
    try {
      const IpcFrame hello = channel.recv(kAgentFrameTimeoutS);
      const std::span<const std::byte> payload(hello.payload);
      std::size_t offset = 0;
      const std::uint32_t version = get_u32(payload, offset, "hello");
      if (version != kProtocolVersion) {
        send_err(channel, "agent speaks protocol version " +
                              std::to_string(kProtocolVersion) + ", driver "
                              "sent " + std::to_string(version));
        return;
      }
      const std::string token = get_string(payload, offset, "hello token");
      if (hello.type == kHelloControl) {
        send_ok(channel);
        st.controls.push_back({std::move(channel), token});
        KNNPC_LOG(Info) << "worker agent: control connection for run '"
                        << token << "'";
        return;
      }
      if (hello.type != kHelloWorker) {
        send_err(channel, "expected a hello frame, got type " +
                              std::to_string(hello.type));
        return;
      }
      const std::uint32_t shard = get_u32(payload, offset, "hello shard");
      State::Run& run = run_for(token);
      // OK must go out before the socket is handed to the child — after
      // the spawn the parent's fds are gone. A spawn failure past this
      // point surfaces to the driver as EOF where READY belongs, which
      // its supervision already treats as a worker death.
      send_ok(channel);
      const auto [read_fd, write_fd] = channel.release();
      const int child_stdout = ::dup(write_fd);
      if (child_stdout < 0) {
        ::close(read_fd);
        KNNPC_LOG(Warn) << "worker agent: dup failed for shard " << shard;
        return;
      }
      try {
        // Replacing a previous incarnation kills it first (Subprocess
        // move-assign) — the driver only respawns what it gave up on.
        run.workers[shard] = Subprocess(
            std::vector<std::string>{
                exe, "--shard-worker",
                "--plan=" + (run.run_dir / "plan.bin").string(),
                "--wave=serve", "--shard=" + std::to_string(shard)},
            read_fd, child_stdout);
        KNNPC_LOG(Info) << "worker agent: spawned shard " << shard
                        << " for run '" << token << "'";
      } catch (const std::exception& e) {
        KNNPC_LOG(Warn) << "worker agent: spawn failed for shard " << shard
                        << ": " << e.what();
      }
    } catch (const std::exception& e) {
      KNNPC_LOG(Warn) << "worker agent: dropping connection: " << e.what();
    }
  };

  // One control request/reply. Returns false when the connection is done
  // (EOF or a hard transport error) — the caller then kills the run's
  // workers, the remote mirror of PDEATHSIG.
  auto handle_control_frame = [&](State::Control& control) -> bool {
    IpcFrame frame;
    try {
      frame = control.channel.recv(kAgentFrameTimeoutS);
    } catch (const IpcError& e) {
      if (e.kind() != IpcErrorKind::Eof) {
        KNNPC_LOG(Warn) << "worker agent: control connection for run '"
                        << control.token << "' failed: " << e.what();
      }
      return false;
    }
    State::Run& run = run_for(control.token);
    try {
      switch (frame.type) {
        case kSyncManifest: {
          const std::vector<SyncFileEntry> entries =
              parse_manifest(frame.payload);
          std::vector<std::byte> reply;
          std::vector<std::uint32_t> need;
          for (std::uint32_t i = 0; i < entries.size(); ++i) {
            const auto it = run.files.find(entries[i].relpath);
            if (it == run.files.end() ||
                it->second != entries[i].checksum) {
              need.push_back(i);
            }
          }
          put_u32(reply, static_cast<std::uint32_t>(need.size()));
          for (const std::uint32_t i : need) put_u32(reply, i);
          control.channel.send(kNeed, reply, kAgentFrameTimeoutS);
          break;
        }
        case kFilePut: {
          const FileBlob blob = parse_file_blob(frame.payload);
          sync_place_file(run.run_dir, blob.relpath, blob.bytes);
          run.files[blob.relpath] = fnv1a_bytes(blob.bytes);
          send_ok(control.channel);
          break;
        }
        case kFileGet: {
          std::size_t offset = 0;
          const std::string relpath =
              get_string(frame.payload, offset, "FileGet relpath");
          if (!is_safe_relpath(relpath)) {
            throw std::runtime_error("unsafe relpath \"" + relpath + "\"");
          }
          FileBlob blob;
          blob.relpath = relpath;
          const fs::path path = run.run_dir / fs::path(relpath);
          std::error_code ec;
          if (fs::is_regular_file(path, ec)) {
            IoCounters counters;
            blob.bytes = read_file(path, counters);
            blob.exists = true;
          }
          control.channel.send(kFileData, serialize_file_blob(blob),
                               kAgentFrameTimeoutS);
          break;
        }
        case kKillWorker: {
          std::size_t offset = 0;
          const std::uint32_t shard =
              get_u32(frame.payload, offset, "KillWorker shard");
          const auto it = run.workers.find(shard);
          if (it == run.workers.end()) {
            throw std::runtime_error("no worker for shard " +
                                     std::to_string(shard));
          }
          it->second.kill_now();
          const std::string describe = it->second.wait().describe();
          send_ok(control.channel, describe);
          break;
        }
        default:
          throw std::runtime_error("unexpected control frame type " +
                                   std::to_string(frame.type));
      }
    } catch (const std::exception& e) {
      try {
        send_err(control.channel, e.what());
      } catch (...) {
        return false;
      }
    }
    return true;
  };

  KNNPC_LOG(Info) << "worker agent listening on " << config_.host << ":"
                  << listener_.port() << " (work root "
                  << config_.work_root.string() << ")";
  while (!stop_.load(std::memory_order_relaxed)) {
    // handle_new_connection() below can append to st.controls; fds only
    // covers the first `polled` controls, so the dispatch loop must not
    // index past them.
    const std::size_t polled = st.controls.size();
    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const State::Control& c : st.controls) {
      fds.push_back({c.channel.read_fd(), POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(), /*ms=*/200);
    if (rc < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("worker agent: poll failed: ") +
                               std::strerror(errno));
    }
    // Reap finished workers every tick so a crashed one never lingers as
    // a zombie between supervision events.
    for (auto& [token, run] : st.runs) {
      for (auto& [shard, proc] : run.workers) {
        if (proc.valid()) (void)proc.poll();
      }
    }
    if (rc <= 0) continue;
    if ((fds[0].revents & POLLIN) != 0) handle_new_connection();
    for (std::size_t i = polled; i-- > 0;) {
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!handle_control_frame(st.controls[i])) {
        const std::string token = st.controls[i].token;
        st.controls.erase(st.controls.begin() +
                          static_cast<std::ptrdiff_t>(i));
        // Last control link for the run gone -> the driver is gone; its
        // workers must not outlive it.
        bool still_linked = false;
        for (const State::Control& c : st.controls) {
          if (c.token == token) still_linked = true;
        }
        if (!still_linked) {
          const auto it = st.runs.find(token);
          if (it != st.runs.end()) {
            KNNPC_LOG(Info) << "worker agent: run '" << token
                            << "' control gone; reaping its workers";
            it->second.workers.clear();  // Subprocess dtor kills + reaps
          }
        }
      }
    }
  }
  // Orderly shutdown: every spawned worker dies with the agent.
  for (auto& [token, run] : st.runs) run.workers.clear();
  st.controls.clear();
}

namespace {

std::sig_atomic_t g_agent_stop = 0;
WorkerAgent* g_agent = nullptr;

void agent_signal_handler(int) {
  g_agent_stop = 1;
  if (g_agent != nullptr) g_agent->stop();
}

}  // namespace

int worker_agent_main(const WorkerAgentConfig& config,
                      const fs::path& port_file) try {
  WorkerAgent agent(config);
  g_agent = &agent;
  std::signal(SIGINT, agent_signal_handler);
  std::signal(SIGTERM, agent_signal_handler);
  if (!port_file.empty()) {
    const std::string text = std::to_string(agent.port()) + "\n";
    std::vector<std::byte> bytes(text.size());
    std::memcpy(bytes.data(), text.data(), text.size());
    IoCounters counters;
    write_file(port_file, bytes, counters);  // atomic: pollers never read
                                             // a half-written port
  }
  std::fprintf(stderr, "knnpc worker agent listening on %s:%u\n",
               config.host.c_str(), agent.port());
  agent.run();
  g_agent = nullptr;
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "knnpc_run --worker-agent: %s\n", e.what());
  return 1;
}

// ------------------------------------------------- driver-side client --

namespace {

IpcChannel connect_and_hello(const std::string& host, std::uint16_t port,
                             std::uint32_t hello_type,
                             const std::vector<std::byte>& hello,
                             double timeout_s) {
  IpcChannel channel = IpcChannel::connect_tcp(host, port, timeout_s);
  channel.send(hello_type, hello, timeout_s);
  const IpcFrame reply = channel.recv(timeout_s);
  if (reply.type != kOk) {
    throw std::runtime_error("worker agent at " + host + ":" +
                             std::to_string(port) + " refused: " +
                             payload_as_string(reply));
  }
  return channel;
}

/// One request, one reply; an ERR answer becomes a runtime_error.
IpcFrame control_round_trip(IpcChannel& control, std::uint32_t type,
                            const std::vector<std::byte>& payload,
                            std::uint32_t expected_reply, double timeout_s) {
  control.send(type, payload, timeout_s);
  IpcFrame reply = control.recv(timeout_s);
  if (reply.type == kErr) {
    throw std::runtime_error("worker agent error: " +
                             payload_as_string(reply));
  }
  if (reply.type != expected_reply) {
    throw std::runtime_error("worker agent: unexpected reply type " +
                             std::to_string(reply.type));
  }
  return reply;
}

}  // namespace

IpcChannel agent_connect_control(const std::string& host, std::uint16_t port,
                                 const std::string& token, double timeout_s) {
  std::vector<std::byte> hello;
  put_u32(hello, kProtocolVersion);
  put_string(hello, token);
  return connect_and_hello(host, port, kHelloControl, hello, timeout_s);
}

IpcChannel agent_connect_worker(const std::string& host, std::uint16_t port,
                                const std::string& token, std::uint32_t shard,
                                double timeout_s) {
  std::vector<std::byte> hello;
  put_u32(hello, kProtocolVersion);
  put_string(hello, token);
  put_u32(hello, shard);
  return connect_and_hello(host, port, kHelloWorker, hello, timeout_s);
}

AgentTransferCounters agent_sync_push(
    IpcChannel& control, const std::vector<SyncFileEntry>& manifest,
    const std::function<std::vector<std::byte>(const std::string&)>& load,
    double timeout_s) {
  AgentTransferCounters counters;
  const IpcFrame need_reply =
      control_round_trip(control, kSyncManifest, serialize_manifest(manifest),
                         kNeed, timeout_s);
  std::size_t offset = 0;
  const std::uint32_t count =
      get_u32(need_reply.payload, offset, "NEED reply");
  std::vector<bool> needed(manifest.size(), false);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t index =
        get_u32(need_reply.payload, offset, "NEED index");
    if (index >= manifest.size()) {
      throw std::runtime_error("worker agent: NEED index out of range");
    }
    needed[index] = true;
  }
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    const SyncFileEntry& entry = manifest[i];
    if (!needed[i]) {
      ++counters.files_skipped;
      counters.bytes_skipped += entry.size;
      continue;
    }
    FileBlob blob;
    blob.relpath = entry.relpath;
    blob.exists = true;
    blob.bytes = load(entry.relpath);
    control_round_trip(control, kFilePut, serialize_file_blob(blob), kOk,
                       timeout_s);
    ++counters.files_tx;
    counters.bytes_tx += blob.bytes.size();
  }
  return counters;
}

FileBlob agent_fetch_file(IpcChannel& control, const std::string& relpath,
                          double timeout_s) {
  std::vector<std::byte> payload;
  put_string(payload, relpath);
  const IpcFrame reply =
      control_round_trip(control, kFileGet, payload, kFileData, timeout_s);
  return parse_file_blob(reply.payload);
}

std::string agent_kill_worker(IpcChannel& control, std::uint32_t shard,
                              double timeout_s) {
  std::vector<std::byte> payload;
  put_u32(payload, shard);
  const IpcFrame reply =
      control_round_trip(control, kKillWorker, payload, kOk, timeout_s);
  return payload_as_string(reply);
}

}  // namespace knnpc
