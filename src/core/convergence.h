// Convergence diagnostics that don't require the full O(n^2) ground truth.
//
// Brute-force recall is exact but quadratic; at the scales the paper
// targets it is unusable. These estimators sample users, compute *their*
// exact neighbour lists only, and report recall with a confidence margin —
// the practical way to monitor a production run's quality.
#pragma once

#include <cstdint>

#include "graph/knn_graph.h"
#include "profiles/profile_store.h"
#include "profiles/similarity.h"

namespace knnpc {

class ThreadPool;

struct SampledRecall {
  double recall = 0.0;
  /// Half-width of the normal-approximation 95% confidence interval.
  double margin95 = 0.0;
  std::size_t sampled_users = 0;
};

/// Exact-per-sampled-user recall@K of `graph` against brute force over the
/// full profile set. Cost: O(samples * n) similarities instead of O(n^2).
/// Deterministic per seed (and per thread count); samples are drawn
/// without replacement. `threads` 0 = auto, clamped by the sample count.
SampledRecall sampled_recall(const KnnGraph& graph,
                             const ProfileStore& profiles,
                             SimilarityMeasure measure, std::size_t samples,
                             std::uint64_t seed = 23,
                             std::uint32_t threads = 1);

/// Same estimator, but runs on an existing pool (nullptr = serial) so the
/// engine can reuse its phase-4 workers instead of spawning a pool per
/// iteration. The `threads` overload above delegates here.
SampledRecall sampled_recall(const KnnGraph& graph,
                             const ProfileStore& profiles,
                             SimilarityMeasure measure, std::size_t samples,
                             std::uint64_t seed, ThreadPool* pool);

/// Mean similarity of each user's *worst* kept neighbour — a cheap
/// convergence signal that rises monotonically-ish as the graph improves
/// and needs no ground truth at all.
double mean_kth_score(const KnnGraph& graph);

}  // namespace knnpc
