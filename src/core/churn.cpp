#include "core/churn.h"

#include <stdexcept>

namespace knnpc {

ChurnDriver::ChurnDriver(ChurnConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.generator.num_clusters == 0) {
    throw std::invalid_argument("ChurnDriver: num_clusters must be > 0");
  }
}

SparseProfile ChurnDriver::fresh_profile_for_cluster(std::uint32_t cluster) {
  return clustered_profile_for(config_.generator, cluster, rng_);
}

std::size_t ChurnDriver::tick(KnnEngine& engine) {
  return tick(engine.update_queue(), engine.profiles().num_users());
}

std::size_t ChurnDriver::tick(UpdateQueue& queue, VertexId n) {
  if (n == 0) return 0;
  std::size_t pushed = 0;
  const std::uint32_t clusters = config_.generator.num_clusters;
  const ItemId items = config_.generator.base.num_items;

  // 1. Plain rating updates: random user bumps a random in-cluster item.
  for (std::uint32_t i = 0; i < config_.rating_updates_per_iteration; ++i) {
    ProfileUpdate update;
    update.kind = ProfileUpdate::Kind::SetItem;
    update.user = static_cast<VertexId>(rng_.next_below(n));
    update.item = static_cast<ItemId>(rng_.next_below(items));
    update.value = static_cast<float>(1.0 - rng_.next_double() * 0.999);
    queue.push(std::move(update));
    ++pushed;
  }

  // 2. Drifting users: full replacement with another cluster's profile.
  for (std::uint32_t i = 0; i < config_.drifting_users_per_iteration; ++i) {
    const auto user = static_cast<VertexId>(rng_.next_below(n));
    const auto current = static_cast<std::uint32_t>(user % clusters);
    const auto target = static_cast<std::uint32_t>(
        (current + 1 + rng_.next_below(clusters - 1 > 0 ? clusters - 1 : 1)) %
        clusters);
    ProfileUpdate update;
    update.kind = ProfileUpdate::Kind::Replace;
    update.user = user;
    update.profile = fresh_profile_for_cluster(target);
    queue.push(std::move(update));
    drift_log_.push_back({user, target});
    ++pushed;
  }

  // 3. Cold-start resets within the user's own cluster.
  for (std::uint32_t i = 0; i < config_.reset_users_per_iteration; ++i) {
    const auto user = static_cast<VertexId>(rng_.next_below(n));
    ProfileUpdate update;
    update.kind = ProfileUpdate::Kind::Replace;
    update.user = user;
    update.profile =
        fresh_profile_for_cluster(static_cast<std::uint32_t>(user % clusters));
    queue.push(std::move(update));
    ++pushed;
  }
  return pushed;
}

}  // namespace knnpc
