// Exact KNN by exhaustive pairwise comparison — the ground truth for
// recall@K and the quality bench (Abl-4). O(n^2) similarities;
// parallelised over users.
#pragma once

#include <cstdint>

#include "graph/knn_graph.h"
#include "profiles/profile_store.h"
#include "profiles/similarity.h"

namespace knnpc {

/// Computes each user's exact top-K most similar other users.
/// `threads` > 1 parallelises the outer loop; 0 = auto (hardware
/// concurrency clamped by user count). Output is identical across thread
/// counts.
KnnGraph brute_force_knn(const ProfileStore& profiles, std::uint32_t k,
                         SimilarityMeasure measure, std::uint32_t threads = 1);

}  // namespace knnpc
