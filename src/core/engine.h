// The paper's system: out-of-core iterative KNN over partitioned graph +
// profiles, five phases per iteration (Figure 1):
//   1. partition G(t) (+ profiles) into m partitions on disk
//   2. populate the hash table H with unique candidate tuples
//   3. build the PI graph and schedule its traversal
//   4. stream partition pairs through `memory_slots` slots, compute
//      similarities, keep per-user top-K  =>  G(t+1)
//   5. apply the queued profile updates  =>  P(t+1)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/knn_graph.h"
#include "profiles/profile_store.h"
#include "profiles/similarity.h"
#include "profiles/update_queue.h"
#include "serve/snapshot_sink.h"
#include "storage/block_file.h"
#include "storage/io_model.h"
#include "storage/partition_store.h"
#include "util/types.h"

namespace knnpc {

/// Auto thread mode (EngineConfig::threads == 0): one worker per this many
/// candidate edges (n * k). At k=10 a run crosses into multi-threading
/// around 5k users and saturates hardware concurrency near 200k edges.
/// Shared with the shard driver so both resolve the same total budget.
inline constexpr std::uint64_t kPhase4WorkPerThread = 25000;

struct EngineConfig {
  std::uint32_t k = 10;
  PartitionId num_partitions = 8;
  /// Phase-3 traversal heuristic (see pigraph/heuristics.h).
  std::string heuristic = "low-high";
  /// Phase-1 strategy: "range" | "hash" | "greedy".
  std::string partitioner = "range";
  SimilarityMeasure measure = SimilarityMeasure::Cosine;
  /// Resident partition slots in phase 4 (the paper uses 2).
  std::size_t memory_slots = 2;
  /// Worker threads for phase-4 similarity computation and top-K merging
  /// (also reused by the sampled_recall estimator). 0 = auto: hardware
  /// concurrency clamped by workload size, so large runs multi-thread by
  /// default while small runs stay serial. 1 = always serial. The KNN
  /// output is bit-identical across thread counts.
  std::uint32_t threads = 0;
  /// Where partition and tuple-shard files live; empty = fresh scratch dir.
  std::string work_dir;
  /// Device model for I/O time accounting (storage/io_model.h).
  IoModel io_model = IoModel::none();
  /// Evaluate the phase-1 objective each iteration (costs one extra graph
  /// pass; enable for the partitioner benches).
  bool record_partition_cost = false;
  /// Extra uniformly-random candidates injected per user per iteration
  /// (NN-Descent-style restarts). Pure neighbour-of-neighbour expansion
  /// cannot re-discover a user whose profile changed away from its whole
  /// current neighbourhood (phase 5 dynamics); a trickle of random tuples
  /// restores reachability. 0 disables.
  std::uint32_t random_candidates = 2;
  /// Also admit the reverse (d, s) of every candidate tuple — NN-Descent's
  /// reverse-neighbourhood trick [Dong'11]. Roughly doubles phase-4 work
  /// and speeds convergence; off by default (the paper's pipeline as
  /// described is forward-only).
  bool include_reverse = false;
  /// Keep each bridge candidate with this probability (NN-Descent's rho).
  /// Trades recall per iteration for tuple volume. 1.0 = keep all.
  double sample_rate = 1.0;
  /// Run the phase-1 partitioner only every N iterations, reusing the
  /// previous assignment in between (partition files are still rewritten —
  /// G(t) changed — but placement is reused). 1 = repartition always.
  std::uint32_t repartition_every = 1;
  /// Write the KNN graph to <work_dir>/checkpoint_latest.knng after every
  /// iteration (crash-resumable via graph/knn_graph_io.h).
  bool checkpoint = false;
  /// How partition files are read back (read() vs mmap).
  PartitionStore::Mode storage_mode = PartitionStore::Mode::Read;
  /// Memory budget for the phase-2 tuple-shard buffers (and the phase-4
  /// score spill, when enabled); buffers flush to disk beyond this.
  std::size_t shard_buffer_bytes = 16u << 20;
  /// Spill phase-4 candidate scores to per-partition files and finalise
  /// top-K one partition at a time, instead of keeping every user's
  /// accumulator live. Bounds phase-4 state to one partition's users at
  /// the price of one extra write+read of each score.
  bool spill_scores = false;
  /// When > 0, estimate recall@K after every iteration by exact search
  /// over this many sampled users (core/convergence.h). Costs
  /// O(samples * n) similarities per iteration — observability, not part
  /// of the pipeline itself.
  std::size_t recall_samples = 0;
  /// Phase-4 similarity kernel backend: "auto" | "scalar" | "simd"
  /// (profiles/similarity_kernels.h; the KNNPC_KERNEL env var overrides
  /// "auto"). Scores are bit-identical across backends, so this is a pure
  /// speed knob — golden checksums hold either way.
  std::string kernel = "auto";
  /// Score phase 4 over u16-quantized profile weights
  /// (profiles/flat_profile.h): halves the flat weight payload but is NOT
  /// bit-identical to f32 scoring — leave off for golden-checksum runs.
  bool quantize_profiles = false;
  std::uint64_t seed = 42;
};

struct PhaseTimings {
  double partition_s = 0.0;   // phase 1
  double hash_s = 0.0;        // phase 2
  double pi_graph_s = 0.0;    // phase 3
  double knn_s = 0.0;         // phase 4
  double update_s = 0.0;      // phase 5

  [[nodiscard]] double total() const noexcept {
    return partition_s + hash_s + pi_graph_s + knn_s + update_s;
  }
};

struct IterationStats {
  std::uint32_t iteration = 0;
  PhaseTimings timings;
  /// Tuples emitted by the phase-2 generators (before dedup).
  std::uint64_t candidate_tuples = 0;
  /// Unique tuples in H (== similarity evaluations in phase 4).
  std::uint64_t unique_tuples = 0;
  std::uint64_t pi_pairs = 0;
  std::uint64_t partition_loads = 0;
  std::uint64_t partition_unloads = 0;
  /// Raw file-level byte/op counters for the iteration.
  IoCounters io;
  /// Modelled device time for the iteration's I/O, microseconds.
  double modeled_io_us = 0.0;
  /// Phase-4 sub-timings (both contained in timings.knn_s): similarity
  /// scoring over tuple bundles vs the per-user top-K merge.
  double knn_score_s = 0.0;
  double knn_merge_s = 0.0;
  /// Worker threads phase 4 actually ran with (config.threads resolved;
  /// != config.threads only in auto mode).
  std::uint32_t threads_used = 1;
  /// KnnGraph::change_rate(G(t), G(t+1)); converged when small.
  double change_rate = 1.0;
  std::size_t profile_updates_applied = 0;
  /// Phase-1 objective value (only when record_partition_cost).
  std::optional<std::size_t> partition_cost_total;
  /// Sampled recall@K after this iteration (only when recall_samples > 0).
  std::optional<double> sampled_recall;
};

struct RunStats {
  std::vector<IterationStats> iterations;
  bool converged = false;
  double total_seconds = 0.0;
};

/// Element-wise sum of per-worker iteration stats (counters, timings, I/O
/// and phase-4 sub-timings add; `threads_used` adds — it becomes "total
/// workers applied"). `iteration` is taken from the first element;
/// `change_rate`, `partition_cost_total` and `sampled_recall` are NOT
/// summable and are left at their defaults for the caller to fill (the
/// shard driver recomputes change_rate from summed change counts).
/// Returns a default IterationStats for an empty input.
IterationStats sum_iteration_stats(const std::vector<IterationStats>& parts);

/// Suggests a partition count m such that two resident partitions (the
/// paper's slot budget) plus working state fit in `memory_budget_bytes`:
/// m = ceil(slots * total_data_bytes / budget), clamped to [1, n].
/// `total_data_bytes` should approximate profiles + edge lists; use
/// estimate_data_bytes() for the standard estimate.
PartitionId suggest_partition_count(std::uint64_t total_data_bytes,
                                    std::uint64_t memory_budget_bytes,
                                    std::size_t slots, VertexId num_users);

/// Approximate on-disk bytes of one iteration's partition data: packed
/// profiles plus both edge files at out-degree k.
std::uint64_t estimate_data_bytes(const std::vector<SparseProfile>& profiles,
                                  std::uint32_t k);

/// The single-process five-phase pipeline (one iteration = phases 1-5 of
/// Figure 1). This is the *serial reference implementation* whose output
/// every parallel execution mode must reproduce bit-for-bit: phase 4 may
/// run on an internal thread pool (EngineConfig::threads), and the sharded
/// driver (core/shard_driver.h) runs S of these pipelines side by side —
/// as threads in this process or as supervised worker processes
/// (ShardWorkerMode). All three contracts are tested against this class
/// (engine_test, shard_driver_test, shard_process_test) and pinned by the
/// golden-checksum corpus (golden_test, tests/golden/).
///
/// Thread-safety: a KnnEngine is single-owner. No member function may be
/// called concurrently with another on the same instance; run_iteration()
/// internally fans out to its own pool and joins before returning.
/// Distinct instances are fully independent (separate scratch dirs, pools
/// and RNG streams) and may run on different threads — that is exactly
/// what the shard driver does.
///
/// Ownership: the constructor takes the profile set by value and owns it
/// for the engine's lifetime; P(t) evolves in place via phase 5.
/// update_queue() returns a reference into the engine — push updates at
/// any time between iterations, never during run_iteration().
class KnnEngine {
 public:
  /// Takes ownership of the profiles; the KNN graph starts random
  /// (NN-Descent bootstrap) unless set_initial_graph() is called.
  KnnEngine(EngineConfig config, std::vector<SparseProfile> profiles);
  ~KnnEngine();
  KnnEngine(const KnnEngine&) = delete;
  KnnEngine& operator=(const KnnEngine&) = delete;

  /// Replaces the current graph G(t) (vertex count must match).
  void set_initial_graph(KnnGraph graph);

  /// Runs one full five-phase iteration: G(t) -> G(t+1), P(t) -> P(t+1).
  IterationStats run_iteration();

  /// Iterates until change_rate < `convergence_delta` or `max_iterations`.
  RunStats run(std::uint32_t max_iterations, double convergence_delta = 0.01);

  [[nodiscard]] const KnnGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const InMemoryProfileStore& profiles() const noexcept {
    return profiles_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// Queue profile changes here at any time; they take effect in phase 5
  /// of the *next* run_iteration() call (lazy, as per the paper).
  UpdateQueue& update_queue() noexcept { return queue_; }

  /// Optional serving-layer hook: when set, every run_iteration() ends by
  /// publishing (G(t+1), P(t+1), phase-1 owner map) to the sink. The sink
  /// is borrowed — it must outlive the engine or be reset to nullptr.
  void set_snapshot_sink(SnapshotSink* sink) noexcept { sink_ = sink; }

 private:
  struct Impl;

  EngineConfig config_;
  InMemoryProfileStore profiles_;
  KnnGraph graph_;
  UpdateQueue queue_;
  SnapshotSink* sink_ = nullptr;
  std::uint32_t iteration_ = 0;
  std::unique_ptr<Impl> impl_;  // scratch dir, thread pool
};

}  // namespace knnpc
