// The workload zoo: scripted scenario definitions shared by tests,
// benches and the golden corpus.
//
// Every bench and golden row used to run the same synthetic clustered
// generator, so the engine's auto-tuning defaults (resolve_shard_count,
// heuristic choice) and its bit-identity contract were only ever
// exercised on one data shape. A WorkloadSpec packages one *named*
// scenario — an initial profile set P(0) plus an optional per-iteration
// update script — behind a registry, so the differential harness
// (bench_workloads, golden_test's wl-* rows, the workloads test suite)
// replays the exact same scenario definitions everywhere. Two calls to
// make_workload() with the same (name, params) produce bit-identical
// profiles and bit-identical update streams, whichever engine or
// execution mode consumes them — that is what turns the five-mode
// determinism contract from a single-corpus claim into a property checked
// across adversarial data shapes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/churn.h"
#include "profiles/generators.h"
#include "profiles/profile.h"
#include "profiles/update_queue.h"
#include "util/types.h"

namespace knnpc {

/// Scale knobs of one workload instance. The *shape* lives in the spec;
/// these only size it, so a tiny CI grid and a large bench sweep replay
/// the same scenario.
struct WorkloadParams {
  VertexId users = 400;
  ItemId items = 400;
  /// Planted communities (where the scenario has any).
  std::uint32_t clusters = 4;
  /// Seeds both P(0) generation and the update script.
  std::uint64_t seed = 1007;
};

/// Engine-agnostic per-iteration update script, the generalisation of
/// ChurnDriver::tick(UpdateQueue&, VertexId): call once per iteration
/// *before* run_iteration() so the updates land in that iteration's
/// phase 5. Same script state + same call sequence => identical update
/// stream, regardless of which engine or execution mode consumes it.
class WorkloadScript {
 public:
  virtual ~WorkloadScript() = default;

  /// Pushes this iteration's updates; returns the number pushed.
  virtual std::size_t tick(UpdateQueue& queue, VertexId num_users) = 0;
};

/// ChurnDriver behind the WorkloadScript interface (the steady-churn
/// scenarios are exactly the scripted churn the tests always ran).
class ChurnScript final : public WorkloadScript {
 public:
  explicit ChurnScript(ChurnConfig config) : driver_(std::move(config)) {}

  std::size_t tick(UpdateQueue& queue, VertexId num_users) override {
    return driver_.tick(queue, num_users);
  }

  [[nodiscard]] ChurnDriver& driver() noexcept { return driver_; }

 private:
  ChurnDriver driver_;
};

/// One instantiated workload: P(0) plus the (possibly null) script.
struct Workload {
  std::string name;
  std::vector<SparseProfile> profiles;
  /// Null for static scenarios (no profile churn).
  std::unique_ptr<WorkloadScript> script;

  /// Convenience: ticks the script if present, else returns 0.
  std::size_t tick(UpdateQueue& queue, VertexId num_users) {
    return script ? script->tick(queue, num_users) : 0;
  }
};

/// One registered scenario definition.
struct WorkloadSpec {
  std::string name;
  std::string summary;
  Workload (*make)(const WorkloadParams&);
};

/// The zoo. Current scenarios (see ARCHITECTURE.md "Workload zoo"):
///   steady-trickle      clustered profiles + proportional churn trickle
///   zipf-tail           heavy-tailed (Zipf) item popularity + rating drip
///   flash-crowd         1% of users rewrite 50% of their profile in one
///                       scripted iteration, trickle otherwise
///   cold-start          waves of brand-new users onboarded from stub
///                       profiles, one wave per iteration
///   adversarial-pair    partitioner-hostile: similarity mass concentrated
///                       between the two extreme user ranges, so a range
///                       partitioner funnels nearly all candidate pairs
///                       through one partition pair
///   movielens-synthetic star-rating profiles from synthetic_ratings plus
///                       a live rating stream
const std::vector<WorkloadSpec>& workload_zoo();

/// Names of every registered workload, in registry order.
std::vector<std::string> workload_names();

/// Instantiates `name` at `params`; throws std::invalid_argument for an
/// unknown name. Each call returns fresh state (profiles + script), so a
/// differential run instantiates once per engine under test.
Workload make_workload(std::string_view name, const WorkloadParams& params);

// ---------------------------------------------------------------------------
// Shared churn scripting (the scenario definitions golden_test,
// shard_process_test and bench_churn used to duplicate inline).

/// The pinned clustered-generator shape of the scripted scenarios:
/// 15-25 items per user, in-cluster probability 0.9. Golden checksums
/// depend on these knobs — change them only with a corpus regeneration.
ClusteredGenConfig scripted_generator(VertexId users, ItemId items,
                                      std::uint32_t clusters);

/// Named churn intensities, one vocabulary for every ChurnDriver user:
///   Trickle       the ChurnConfig defaults (50 ratings / 2 drifts /
///                 1 reset per iteration) — golden churn rows,
///                 shard_process_test
///   Heavy         the delta-heavy regime (120 / 15 / 10) — the
///                 "churn-heavy" golden row
///   Proportional  scales with n (n/20 ratings, n/200+1 drifts,
///                 n/400+1 resets) — bench_churn, steady-trickle
enum class ChurnScenario { Trickle, Heavy, Proportional };

/// Builds the ChurnConfig of a named scenario over `generator`.
ChurnConfig scripted_churn(ChurnScenario scenario,
                           ClusteredGenConfig generator, std::uint64_t seed);

}  // namespace knnpc
