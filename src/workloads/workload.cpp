#include "workloads/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "profiles/ratings_io.h"
#include "util/rng.h"

namespace knnpc {
namespace {

/// Independent deterministic stream per (seed, role), so e.g. the profile
/// generator and the update script of one workload never share state.
std::uint64_t substream(std::uint64_t seed, std::uint64_t role) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (role + 1)));
  return sm.next();
}

void check_params(const WorkloadParams& p) {
  if (p.users < 8 || p.items < 16 || p.clusters == 0) {
    throw std::invalid_argument(
        "make_workload: need users >= 8, items >= 16, clusters >= 1");
  }
}

// ---------------------------------------------------------------- scripts

/// Heavy-tailed rating drip: single-item updates whose items follow the
/// same Zipf popularity as the zipf-tail profile generator, so the hot
/// head keeps absorbing most of the update mass.
class ZipfDripScript final : public WorkloadScript {
 public:
  ZipfDripScript(ItemId items, double alpha, std::uint64_t seed)
      : rng_(seed), cdf_(items) {
    double acc = 0.0;
    for (ItemId i = 0; i < items; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cdf_[i] = acc;
    }
  }

  std::size_t tick(UpdateQueue& queue, VertexId n) override {
    if (n == 0) return 0;
    const std::size_t updates = std::max<std::size_t>(n / 50, 1);
    for (std::size_t i = 0; i < updates; ++i) {
      ProfileUpdate update;
      update.kind = ProfileUpdate::Kind::SetItem;
      update.user = static_cast<VertexId>(rng_.next_below(n));
      const double r = rng_.next_double() * cdf_.back();
      update.item = static_cast<ItemId>(
          std::lower_bound(cdf_.begin(), cdf_.end(), r) - cdf_.begin());
      update.value = static_cast<float>(1.0 - rng_.next_double() * 0.999);
      queue.push(std::move(update));
    }
    return updates;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

/// Flash crowd: a steady in-cluster trickle, except at iteration
/// `kFlashIteration` where 1% of the users (>= 1) each rewrite 50% of
/// their profile in one shot. The script keeps a shadow copy of P(t) so
/// the rewrites are real partial rewrites (half the entries survive),
/// without ever reading engine state — the update stream stays a pure
/// function of (params, call sequence).
class FlashCrowdScript final : public WorkloadScript {
 public:
  static constexpr std::uint32_t kFlashIteration = 1;

  FlashCrowdScript(ClusteredGenConfig gen, std::vector<SparseProfile> shadow,
                   std::uint64_t seed)
      : gen_(std::move(gen)), shadow_(std::move(shadow)), rng_(seed) {}

  std::size_t tick(UpdateQueue& queue, VertexId n) override {
    if (n == 0) return 0;
    const std::uint32_t iteration = iteration_++;
    if (iteration == kFlashIteration) return flash(queue, n);
    return trickle(queue, n);
  }

 private:
  std::size_t trickle(UpdateQueue& queue, VertexId n) {
    const ItemId block = gen_.base.num_items / gen_.num_clusters;
    const std::size_t updates = std::max<std::size_t>(n / 50, 1);
    for (std::size_t i = 0; i < updates; ++i) {
      ProfileUpdate update;
      update.kind = ProfileUpdate::Kind::SetItem;
      update.user = static_cast<VertexId>(rng_.next_below(n));
      const auto cluster =
          static_cast<std::uint32_t>(update.user % gen_.num_clusters);
      update.item = cluster * block +
                    static_cast<ItemId>(rng_.next_below(block));
      update.value = static_cast<float>(1.0 - rng_.next_double() * 0.999);
      if (update.user < shadow_.size()) {
        shadow_[update.user].set(update.item, update.value);
      }
      queue.push(std::move(update));
    }
    return updates;
  }

  std::size_t flash(UpdateQueue& queue, VertexId n) {
    const ItemId block = gen_.base.num_items / gen_.num_clusters;
    const auto crowd = static_cast<VertexId>(
        std::max<VertexId>(n / 100, 1));
    std::unordered_set<VertexId> picked;
    std::size_t pushed = 0;
    while (picked.size() < crowd) {
      const auto user = static_cast<VertexId>(rng_.next_below(n));
      if (!picked.insert(user).second) continue;
      if (user >= shadow_.size()) continue;
      const auto cluster =
          static_cast<std::uint32_t>(user % gen_.num_clusters);
      const auto old = shadow_[user].entries();
      // Keep the upper half of the sorted entry list, regenerate the rest
      // as fresh in-cluster picks — a 50% rewrite of the profile.
      std::vector<ProfileEntry> next(old.begin() + old.size() / 2,
                                     old.end());
      const std::size_t fresh = old.size() - old.size() / 2;
      for (std::size_t i = 0; i < fresh; ++i) {
        const ItemId item = cluster * block +
                            static_cast<ItemId>(rng_.next_below(block));
        next.push_back(
            {item, static_cast<float>(1.0 - rng_.next_double() * 0.999)});
      }
      ProfileUpdate update;
      update.kind = ProfileUpdate::Kind::Replace;
      update.user = user;
      update.profile = SparseProfile(std::move(next));
      shadow_[user] = update.profile;
      queue.push(std::move(update));
      ++pushed;
    }
    return pushed;
  }

  ClusteredGenConfig gen_;
  std::vector<SparseProfile> shadow_;
  Rng rng_;
  std::uint32_t iteration_ = 0;
};

/// Cold-start waves: the tail of the user universe starts with stub
/// profiles (2 entries); each iteration the next wave of them is
/// onboarded with a full fresh in-cluster profile (wholesale Replace).
/// Waves cycle once every cold user has been onboarded — re-onboarding is
/// the "brand-new user takes over a recycled id" case.
class ColdStartScript final : public WorkloadScript {
 public:
  ColdStartScript(ClusteredGenConfig gen, VertexId first_cold,
                  VertexId wave_size, std::uint64_t seed)
      : gen_(std::move(gen)), first_cold_(first_cold),
        wave_size_(std::max<VertexId>(wave_size, 1)), rng_(seed) {}

  std::size_t tick(UpdateQueue& queue, VertexId n) override {
    if (n <= first_cold_) return 0;
    const VertexId cold = n - first_cold_;
    std::size_t pushed = 0;
    for (VertexId i = 0; i < wave_size_; ++i) {
      const VertexId user = first_cold_ + (next_ + i) % cold;
      ProfileUpdate update;
      update.kind = ProfileUpdate::Kind::Replace;
      update.user = user;
      update.profile = clustered_profile_for(
          gen_, static_cast<std::uint32_t>(user % gen_.num_clusters), rng_);
      queue.push(std::move(update));
      ++pushed;
    }
    next_ = (next_ + wave_size_) % cold;
    return pushed;
  }

 private:
  ClusteredGenConfig gen_;
  VertexId first_cold_;
  VertexId wave_size_;
  Rng rng_;
  VertexId next_ = 0;
};

/// Adversarial trickle: every update lands on a pole user and a hot-block
/// item, so the update stream keeps reinforcing the one partition pair
/// the initial profiles already concentrate mass in.
class AdversarialScript final : public WorkloadScript {
 public:
  AdversarialScript(ItemId hot_items, VertexId pole, std::uint64_t seed)
      : hot_items_(hot_items), pole_(pole), rng_(seed) {}

  std::size_t tick(UpdateQueue& queue, VertexId n) override {
    if (n == 0) return 0;
    const VertexId pole = std::min<VertexId>(pole_, n / 2);
    if (pole == 0) return 0;
    const std::size_t updates = std::max<std::size_t>(n / 50, 1);
    for (std::size_t i = 0; i < updates; ++i) {
      const auto slot = static_cast<VertexId>(rng_.next_below(2 * pole));
      ProfileUpdate update;
      update.kind = ProfileUpdate::Kind::SetItem;
      update.user = slot < pole ? slot : n - 1 - (slot - pole);
      update.item = static_cast<ItemId>(rng_.next_below(hot_items_));
      update.value = static_cast<float>(1.0 - rng_.next_double() * 0.5);
      queue.push(std::move(update));
    }
    return updates;
  }

 private:
  ItemId hot_items_;
  VertexId pole_;
  Rng rng_;
};

/// Live star-rating stream over the movielens-shaped profiles: new
/// ratings arrive as SetItem updates with Zipf item popularity and
/// 1..5-star values, the shape of a production rating log.
class RatingStreamScript final : public WorkloadScript {
 public:
  RatingStreamScript(ItemId items, double alpha, std::uint32_t levels,
                     std::uint64_t seed)
      : rng_(seed), levels_(levels), cdf_(items) {
    double acc = 0.0;
    for (ItemId i = 0; i < items; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cdf_[i] = acc;
    }
  }

  std::size_t tick(UpdateQueue& queue, VertexId n) override {
    if (n == 0) return 0;
    const std::size_t updates = std::max<std::size_t>(n / 40, 1);
    for (std::size_t i = 0; i < updates; ++i) {
      ProfileUpdate update;
      update.kind = ProfileUpdate::Kind::SetItem;
      update.user = static_cast<VertexId>(rng_.next_below(n));
      const double r = rng_.next_double() * cdf_.back();
      update.item = static_cast<ItemId>(
          std::lower_bound(cdf_.begin(), cdf_.end(), r) - cdf_.begin());
      update.value =
          static_cast<float>(1 + rng_.next_below(levels_));
      queue.push(std::move(update));
    }
    return updates;
  }

 private:
  Rng rng_;
  std::uint32_t levels_;
  std::vector<double> cdf_;
};

// --------------------------------------------------------------- factories

Workload make_steady_trickle(const WorkloadParams& p) {
  const ClusteredGenConfig gen =
      scripted_generator(p.users, p.items, p.clusters);
  Rng rng(substream(p.seed, 1));
  Workload w;
  w.name = "steady-trickle";
  w.profiles = clustered_profiles(gen, rng);
  w.script = std::make_unique<ChurnScript>(
      scripted_churn(ChurnScenario::Proportional, gen, p.seed));
  return w;
}

Workload make_zipf_tail(const WorkloadParams& p) {
  ProfileGenConfig gen;
  gen.num_users = p.users;
  gen.num_items = p.items;
  gen.min_items = 8;
  gen.max_items = 40;
  constexpr double kAlpha = 1.2;
  Rng rng(substream(p.seed, 2));
  Workload w;
  w.name = "zipf-tail";
  w.profiles = zipf_profiles(gen, kAlpha, rng);
  w.script = std::make_unique<ZipfDripScript>(p.items, kAlpha,
                                              substream(p.seed, 3));
  return w;
}

Workload make_flash_crowd(const WorkloadParams& p) {
  const ClusteredGenConfig gen =
      scripted_generator(p.users, p.items, p.clusters);
  Rng rng(substream(p.seed, 4));
  Workload w;
  w.name = "flash-crowd";
  w.profiles = clustered_profiles(gen, rng);
  w.script = std::make_unique<FlashCrowdScript>(gen, w.profiles,
                                                substream(p.seed, 5));
  return w;
}

Workload make_cold_start(const WorkloadParams& p) {
  const ClusteredGenConfig gen =
      scripted_generator(p.users, p.items, p.clusters);
  Rng rng(substream(p.seed, 6));
  Workload w;
  w.name = "cold-start";
  w.profiles = clustered_profiles(gen, rng);
  // The last 20% of users are brand-new: stub profiles of 2 entries until
  // their onboarding wave arrives (never empty — cosine needs a norm).
  const VertexId cold = std::max<VertexId>(p.users / 5, 1);
  const VertexId first_cold = p.users - cold;
  for (VertexId u = first_cold; u < p.users; ++u) {
    const auto old = w.profiles[u].entries();
    std::vector<ProfileEntry> stub(
        old.begin(), old.begin() + std::min<std::size_t>(old.size(), 2));
    w.profiles[u] = SparseProfile(std::move(stub));
  }
  w.script = std::make_unique<ColdStartScript>(
      gen, first_cold, std::max<VertexId>(cold / 4, 1),
      substream(p.seed, 7));
  return w;
}

Workload make_adversarial_pair(const WorkloadParams& p) {
  Rng rng(substream(p.seed, 8));
  // Two poles — the first and last n/8 users — share one small hot item
  // block, so nearly all similarity mass (and with it phase-2 candidate
  // tuples) crosses between the extreme user ranges. Under the range
  // partitioner that funnels the work of phase 4 through the single
  // partition pair (0, m-1): the load-balance worst case for the shard
  // scheduler and the pair-affinity split. Middle users rate uniformly
  // over the cold tail and stay mutually dissimilar.
  const VertexId pole = std::max<VertexId>(p.users / 8, 1);
  const ItemId hot =
      std::max<ItemId>(std::min<ItemId>(p.items / 16, p.items), 8);
  Workload w;
  w.name = "adversarial-pair";
  w.profiles.reserve(p.users);
  std::unordered_set<ItemId> picked;
  for (VertexId u = 0; u < p.users; ++u) {
    const bool is_pole = u < pole || u >= p.users - pole;
    const ItemId lo = is_pole ? 0 : hot;
    const ItemId span = is_pole ? hot : std::max<ItemId>(p.items - hot, 1);
    const std::uint32_t want = std::min<std::uint32_t>(
        is_pole ? 12 + static_cast<std::uint32_t>(rng.next_below(9))
                : 8 + static_cast<std::uint32_t>(rng.next_below(9)),
        span);
    picked.clear();
    std::vector<ProfileEntry> entries;
    entries.reserve(want);
    while (entries.size() < want) {
      const ItemId item = lo + static_cast<ItemId>(rng.next_below(span));
      if (!picked.insert(item).second) continue;
      entries.push_back(
          {item, static_cast<float>(1.0 - rng.next_double() * 0.999)});
    }
    w.profiles.emplace_back(std::move(entries));
  }
  w.script = std::make_unique<AdversarialScript>(hot, pole,
                                                 substream(p.seed, 9));
  return w;
}

Workload make_movielens_synthetic(const WorkloadParams& p) {
  SyntheticRatingsConfig config;
  config.num_users = p.users;
  config.num_items = p.items;
  config.min_ratings = 5;
  config.max_ratings = 30;
  config.popularity_alpha = 1.1;
  Rng rng(substream(p.seed, 10));
  Workload w;
  w.name = "movielens-synthetic";
  w.profiles = synthetic_ratings(config, rng).profiles;
  w.script = std::make_unique<RatingStreamScript>(
      p.items, config.popularity_alpha, config.rating_levels,
      substream(p.seed, 11));
  return w;
}

}  // namespace

const std::vector<WorkloadSpec>& workload_zoo() {
  static const std::vector<WorkloadSpec> zoo = {
      {"steady-trickle",
       "clustered profiles under a proportional churn trickle",
       &make_steady_trickle},
      {"zipf-tail",
       "heavy-tailed (Zipf) item popularity with a matching rating drip",
       &make_zipf_tail},
      {"flash-crowd",
       "1% of users rewrite 50% of their profile in one iteration",
       &make_flash_crowd},
      {"cold-start",
       "waves of brand-new users onboarded from stub profiles",
       &make_cold_start},
      {"adversarial-pair",
       "partitioner-hostile: mass concentrated in one partition pair",
       &make_adversarial_pair},
      {"movielens-synthetic",
       "star-rating profiles plus a live Zipf rating stream",
       &make_movielens_synthetic},
  };
  return zoo;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(workload_zoo().size());
  for (const WorkloadSpec& spec : workload_zoo()) {
    names.push_back(spec.name);
  }
  return names;
}

Workload make_workload(std::string_view name, const WorkloadParams& params) {
  check_params(params);
  for (const WorkloadSpec& spec : workload_zoo()) {
    if (spec.name == name) return spec.make(params);
  }
  std::string known;
  for (const WorkloadSpec& spec : workload_zoo()) {
    known += known.empty() ? spec.name : ", " + spec.name;
  }
  throw std::invalid_argument("make_workload: unknown workload '" +
                              std::string(name) + "' (known: " + known +
                              ")");
}

ClusteredGenConfig scripted_generator(VertexId users, ItemId items,
                                      std::uint32_t clusters) {
  ClusteredGenConfig gen;
  gen.base.num_users = users;
  gen.base.num_items = items;
  gen.base.min_items = 15;
  gen.base.max_items = 25;
  gen.num_clusters = clusters;
  gen.in_cluster_prob = 0.9;
  return gen;
}

ChurnConfig scripted_churn(ChurnScenario scenario,
                           ClusteredGenConfig generator,
                           std::uint64_t seed) {
  ChurnConfig churn;
  churn.generator = std::move(generator);
  churn.seed = seed;
  switch (scenario) {
    case ChurnScenario::Trickle:
      break;  // the ChurnConfig defaults: 50 / 2 / 1
    case ChurnScenario::Heavy:
      churn.rating_updates_per_iteration = 120;
      churn.drifting_users_per_iteration = 15;
      churn.reset_users_per_iteration = 10;
      break;
    case ChurnScenario::Proportional: {
      const VertexId n = churn.generator.base.num_users;
      churn.rating_updates_per_iteration = n / 20;
      churn.drifting_users_per_iteration = n / 200 + 1;
      churn.reset_users_per_iteration = n / 400 + 1;
      break;
    }
  }
  return churn;
}

}  // namespace knnpc
