// Batched phase-4 similarity kernels over the flat profile layout.
//
// Two backends, selected at runtime:
//
//  * Scalar — portable sorted-merge / galloping intersection; the
//    reference implementation, always available.
//  * Simd   — AVX2 (x86-64, detected via cpuid at runtime) or NEON
//    (aarch64) accelerated sorted-array intersection, with galloping for
//    skewed length ratios. On CPUs without AVX2/NEON a "simd" request
//    quietly degrades to Scalar.
//
// The bit-identity contract: only the *intersection* — integer item-id
// matching — is vectorized. All floating-point accumulation runs in
// shared baseline-ISA code that replays the exact operation sequence of
// the scalar measures in profiles/similarity.cpp (same double-precision
// accumulators, same order over the common items). Any correct
// intersection finds the same match list, so every measure scores
// bit-identically across backends and the golden checksums in
// tests/golden/checksums.tsv hold with either. InverseEuclid accumulates
// over the *union* in merged item order, which a match list cannot
// replay, so its kernel is the flat scalar merge under both backends —
// it still gains the contiguous layout.
//
// Degenerate-input conventions are inherited from profiles/similarity.h
// (the per-measure table there is the contract both paths implement).
//
// Backend selection, in priority order:
//   1. the explicit request string ("scalar" | "simd"),
//   2. for "auto": the KNNPC_KERNEL environment variable (same values —
//      how the kernels-smoke CI job forces each path end to end),
//   3. CPU support (SIMD when available).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "profiles/flat_profile.h"
#include "profiles/similarity.h"
#include "util/types.h"

namespace knnpc {

enum class KernelBackend {
  Scalar,
  Simd,
};

/// "scalar", or the compiled SIMD ISA: "avx2" / "neon".
const char* kernel_backend_name(KernelBackend backend);

/// True when this binary carries a SIMD intersection for this CPU.
bool simd_backend_available();

/// Resolves "auto" | "scalar" | "simd" (see selection order above);
/// throws std::invalid_argument on anything else.
KernelBackend resolve_kernel_backend(std::string_view request = "auto");

/// Reusable per-thread match buffers (kernels never allocate after the
/// first pairs at a given profile size).
struct KernelScratch {
  std::vector<std::uint32_t> match_a;  // indices into a's arrays
  std::vector<std::uint32_t> match_b;  // indices into b's arrays
};

/// Sorted-array intersection of two item-id lists: fills
/// scratch.match_a/match_b with the matching index pairs in ascending
/// item order and returns the match count. Exposed for the differential
/// tests; backend only changes speed, never the result.
std::uint32_t intersect_items(const ItemId* a, std::uint32_t na,
                              const ItemId* b, std::uint32_t nb,
                              KernelBackend backend, KernelScratch& scratch);

/// One pair through the kernel for `measure`. Bit-identical to
/// similarity(measure, a, b) on the profiles the views were packed from
/// (when the set is unquantized).
float score_pair(const FlatProfileSet::View& a,
                 const FlatProfileSet::View& b, SimilarityMeasure measure,
                 KernelBackend backend, KernelScratch& scratch);

/// Batched phase-4 entry point: scores `src` against each candidate,
/// writing out[i] = sim(src, candidates[i]). Profiles are looked up in
/// `primary` first, then `secondary` (the second partition of a PI pair;
/// may be null). Throws std::logic_error when an endpoint is in neither —
/// the same "tuple endpoint outside loaded pair" condition the engines
/// previously raised per pair.
void score_batch(const FlatProfileSet& primary,
                 const FlatProfileSet* secondary, VertexId src,
                 std::span<const VertexId> candidates,
                 SimilarityMeasure measure, KernelBackend backend,
                 float* out, KernelScratch& scratch);

}  // namespace knnpc
