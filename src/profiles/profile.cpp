#include "profiles/profile.h"

#include <algorithm>
#include <cmath>

namespace knnpc {

SparseProfile::SparseProfile(std::vector<ProfileEntry> entries)
    : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.item < b.item;
            });
  // Merge duplicates by summing.
  std::size_t write = 0;
  for (std::size_t read = 0; read < entries_.size();) {
    ProfileEntry merged = entries_[read++];
    while (read < entries_.size() && entries_[read].item == merged.item) {
      merged.weight += entries_[read++].weight;
    }
    if (merged.weight != 0.0f) entries_[write++] = merged;
  }
  entries_.resize(write);
}

float SparseProfile::weight(ItemId item) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), item,
      [](const ProfileEntry& e, ItemId id) { return e.item < id; });
  return (it != entries_.end() && it->item == item) ? it->weight : 0.0f;
}

void SparseProfile::set(ItemId item, float w) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), item,
      [](const ProfileEntry& e, ItemId id) { return e.item < id; });
  if (it != entries_.end() && it->item == item) {
    if (w == 0.0f) {
      entries_.erase(it);
    } else {
      it->weight = w;
    }
  } else if (w != 0.0f) {
    entries_.insert(it, ProfileEntry{item, w});
  }
  invalidate_norm();
}

void SparseProfile::add(ItemId item, float delta) {
  set(item, weight(item) + delta);
}

double SparseProfile::norm() const {
  if (!norm_valid_) {
    double sq = 0.0;
    for (const ProfileEntry& e : entries_) {
      sq += static_cast<double>(e.weight) * e.weight;
    }
    norm_ = std::sqrt(sq);
    norm_valid_ = true;
  }
  return norm_;
}

}  // namespace knnpc
