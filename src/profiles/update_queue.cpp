#include "profiles/update_queue.h"

#include <stdexcept>

namespace knnpc {

std::size_t UpdateQueue::apply_to(InMemoryProfileStore& store,
                                  std::vector<VertexId>* touched) {
  std::size_t applied = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    ProfileUpdate& u = queue_[i];
    if (u.user >= store.num_users()) {
      // Keep the unapplied tail so the caller can inspect it.
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(i));
      throw std::out_of_range("UpdateQueue: user id out of range");
    }
    switch (u.kind) {
      case ProfileUpdate::Kind::Replace:
        store.set(u.user, std::move(u.profile));
        break;
      case ProfileUpdate::Kind::SetItem:
        store.mutable_get(u.user).set(u.item, u.value);
        break;
      case ProfileUpdate::Kind::AddDelta:
        store.mutable_get(u.user).add(u.item, u.value);
        break;
    }
    if (touched != nullptr) touched->push_back(u.user);
    ++applied;
  }
  queue_.clear();
  return applied;
}

}  // namespace knnpc
