#include "profiles/compact.h"

#include <algorithm>
#include <unordered_map>

namespace knnpc {

CompactionResult compact_profiles(const std::vector<SparseProfile>& profiles,
                                  const CompactionConfig& config) {
  CompactionResult result;

  // Pass 1: item support counts.
  std::unordered_map<ItemId, std::uint32_t> support;
  for (const auto& p : profiles) {
    for (const ProfileEntry& e : p.entries()) ++support[e.item];
  }

  // Dense renumbering for surviving items, in ascending original-id order
  // (deterministic).
  std::vector<ItemId> surviving;
  surviving.reserve(support.size());
  for (const auto& [item, count] : support) {
    if (count >= config.min_item_support) surviving.push_back(item);
  }
  std::sort(surviving.begin(), surviving.end());
  std::unordered_map<ItemId, ItemId> remap;
  remap.reserve(surviving.size());
  for (ItemId new_id = 0; new_id < surviving.size(); ++new_id) {
    remap[surviving[new_id]] = new_id;
  }
  result.kept_items = std::move(surviving);
  result.dropped_items = support.size() - result.kept_items.size();

  // Pass 2: rebuild profiles, dropping under-supported items and then
  // under-sized users.
  for (VertexId u = 0; u < profiles.size(); ++u) {
    std::vector<ProfileEntry> entries;
    entries.reserve(profiles[u].size());
    for (const ProfileEntry& e : profiles[u].entries()) {
      const auto it = remap.find(e.item);
      if (it != remap.end()) entries.push_back({it->second, e.weight});
    }
    if (entries.size() <
        static_cast<std::size_t>(config.min_profile_size)) {
      ++result.dropped_users;
      continue;
    }
    result.profiles.emplace_back(std::move(entries));
    result.kept_users.push_back(u);
  }
  return result;
}

}  // namespace knnpc
