#include "profiles/compact.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

namespace knnpc {
namespace {

/// Support counts over `profiles`, restricted to active users (empty
/// `active_users` = all users) and counting every item seen.
std::unordered_map<ItemId, std::uint32_t> item_support(
    const std::vector<SparseProfile>& profiles,
    const std::vector<bool>& active_users) {
  std::unordered_map<ItemId, std::uint32_t> support;
  for (VertexId u = 0; u < profiles.size(); ++u) {
    if (!active_users.empty() && !active_users[u]) continue;
    for (const ProfileEntry& e : profiles[u].entries()) ++support[e.item];
  }
  return support;
}

}  // namespace

CompactionResult compact_profiles(const std::vector<SparseProfile>& profiles,
                                  const CompactionConfig& config) {
  CompactionResult result;

  // Distinct items of the whole input — the denominator for the exact
  // dropped_items count under either semantics.
  const std::unordered_map<ItemId, std::uint32_t> initial_support =
      item_support(profiles, {});
  const std::size_t distinct_items = initial_support.size();

  std::vector<bool> user_active(profiles.size(), true);
  std::unordered_set<ItemId> active_items;
  active_items.reserve(distinct_items);
  for (const auto& [item, count] : initial_support) {
    if (count >= config.min_item_support) active_items.insert(item);
  }

  // One user-filter pass against the current active item set. Returns
  // true when any user was deactivated.
  auto filter_users = [&]() {
    bool changed = false;
    for (VertexId u = 0; u < profiles.size(); ++u) {
      if (!user_active[u]) continue;
      std::size_t kept = 0;
      for (const ProfileEntry& e : profiles[u].entries()) {
        if (active_items.contains(e.item)) ++kept;
      }
      if (kept < static_cast<std::size_t>(config.min_profile_size)) {
        user_active[u] = false;
        changed = true;
      }
    }
    return changed;
  };

  filter_users();
  if (config.cascade) {
    // Alternate the two filters to a fixpoint. Each round either drops
    // at least one item or user or terminates, so this ends after at
    // most (items + users) rounds.
    for (;;) {
      const auto support = item_support(profiles, user_active);
      bool item_changed = false;
      for (auto it = active_items.begin(); it != active_items.end();) {
        const auto found = support.find(*it);
        const std::uint32_t count =
            found == support.end() ? 0 : found->second;
        if (count < config.min_item_support) {
          it = active_items.erase(it);
          item_changed = true;
        } else {
          ++it;
        }
      }
      if (!item_changed) break;
      if (!filter_users()) break;
    }
  }

  // Dense renumbering for surviving items, in ascending original-id order
  // (deterministic).
  std::vector<ItemId> surviving(active_items.begin(), active_items.end());
  std::sort(surviving.begin(), surviving.end());
  std::unordered_map<ItemId, ItemId> remap;
  remap.reserve(surviving.size());
  for (ItemId new_id = 0; new_id < surviving.size(); ++new_id) {
    remap[surviving[new_id]] = new_id;
  }
  result.kept_items = std::move(surviving);
  result.dropped_items = distinct_items - result.kept_items.size();

  // Rebuild the surviving users' profiles over the surviving items.
  for (VertexId u = 0; u < profiles.size(); ++u) {
    if (!user_active[u]) {
      ++result.dropped_users;
      continue;
    }
    std::vector<ProfileEntry> entries;
    entries.reserve(profiles[u].size());
    for (const ProfileEntry& e : profiles[u].entries()) {
      const auto it = remap.find(e.item);
      if (it != remap.end()) entries.push_back({it->second, e.weight});
    }
    result.profiles.emplace_back(std::move(entries));
    result.kept_users.push_back(u);
  }
  return result;
}

QuantizedWeights quantize_weights_u16(std::span<const ProfileEntry> entries) {
  QuantizedWeights out;
  out.codes.reserve(entries.size());
  float max_abs = 0.0f;
  for (const ProfileEntry& e : entries) {
    max_abs = std::max(max_abs, std::abs(e.weight));
  }
  out.scale = max_abs > 0.0f ? max_abs / 32767.0f : 1.0f;
  for (const ProfileEntry& e : entries) {
    const auto code = static_cast<int>(
        std::lround(static_cast<double>(e.weight) / out.scale));
    out.codes.push_back(
        static_cast<std::uint16_t>(std::clamp(code, -32767, 32767) + 32768));
  }
  return out;
}

}  // namespace knnpc
