// User profiles P(t): sparse (item, weight) vectors sorted by item id.
//
// A profile is the unit the storage layer ships between disk and memory;
// similarity (phase 4) runs on two profile views via sorted merge.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.h"

namespace knnpc {

/// One (item, weight) entry of a sparse profile.
struct ProfileEntry {
  ItemId item = 0;
  float weight = 0.0f;

  friend bool operator==(const ProfileEntry&, const ProfileEntry&) = default;
};

/// Sorted sparse vector. The class enforces the sorted-unique invariant on
/// mutation so similarity can always merge in O(|a| + |b|).
class SparseProfile {
 public:
  SparseProfile() = default;

  /// Builds from arbitrary entries: sorts, merges duplicate items by
  /// summing weights, drops zero-weight entries.
  explicit SparseProfile(std::vector<ProfileEntry> entries);

  [[nodiscard]] std::span<const ProfileEntry> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Weight of `item` (0 if absent). O(log n).
  [[nodiscard]] float weight(ItemId item) const;

  /// Sets the weight of `item` (inserts, updates, or erases when w == 0).
  void set(ItemId item, float w);

  /// Adds `delta` to the weight of `item` (erases if the result is 0).
  void add(ItemId item, float delta);

  /// L2 norm; cached and recomputed lazily after mutation.
  [[nodiscard]] double norm() const;

  friend bool operator==(const SparseProfile& a, const SparseProfile& b) {
    return a.entries_ == b.entries_;
  }

 private:
  void invalidate_norm() noexcept { norm_valid_ = false; }

  std::vector<ProfileEntry> entries_;
  mutable double norm_ = 0.0;
  mutable bool norm_valid_ = false;
};

}  // namespace knnpc
