// Synthetic profile generators (DESIGN.md §4: the paper fixes no profile
// dataset, so we plant structure ourselves).
#pragma once

#include <cstdint>
#include <vector>

#include "profiles/profile.h"
#include "util/rng.h"
#include "util/types.h"

namespace knnpc {

struct ProfileGenConfig {
  VertexId num_users = 0;
  ItemId num_items = 1000;
  /// Items per user drawn uniformly from [min_items, max_items].
  std::uint32_t min_items = 5;
  std::uint32_t max_items = 30;
};

/// Uniform item choice, uniform weights in (0, 1]. No planted structure —
/// the "hard" case where all similarities are small and noisy.
std::vector<SparseProfile> uniform_profiles(const ProfileGenConfig& config,
                                            Rng& rng);

struct ClusteredGenConfig {
  ProfileGenConfig base;
  /// Users are split round-robin across this many planted communities.
  std::uint32_t num_clusters = 10;
  /// Probability that an item pick comes from the user's own cluster's
  /// item block (vs. uniform noise). Higher = cleaner ground truth.
  double in_cluster_prob = 0.8;
};

/// Planted-communities profiles: cluster c owns the item block
/// [c * num_items / num_clusters, (c+1) * ...). Users of one cluster are
/// strongly similar, so brute-force KNN has an unambiguous answer —
/// the recall metric in core/metrics.h depends on this.
std::vector<SparseProfile> clustered_profiles(
    const ClusteredGenConfig& config, Rng& rng);

/// Returns the planted cluster of each user for the clustered generator
/// (user u belongs to cluster u % num_clusters).
std::vector<std::uint32_t> planted_clusters(VertexId num_users,
                                            std::uint32_t num_clusters);

/// One fresh profile "as a user of `cluster`": generates a single-user
/// clustered profile (which lands in cluster 0) and shifts its item block
/// to the target cluster. Shared by the churn driver's drift/reset updates
/// and the workload zoo's onboarding scripts so every scripted scenario
/// manufactures replacement profiles the same way.
SparseProfile clustered_profile_for(const ClusteredGenConfig& config,
                                    std::uint32_t cluster, Rng& rng);

/// Zipf-popular items: item popularity ~ 1/rank^alpha; models real
/// recommender catalogues where few items dominate.
std::vector<SparseProfile> zipf_profiles(const ProfileGenConfig& config,
                                         double alpha, Rng& rng);

}  // namespace knnpc
