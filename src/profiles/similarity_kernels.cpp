#include "profiles/similarity_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define KNNPC_KERNELS_HAVE_AVX2 1
#elif defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#define KNNPC_KERNELS_HAVE_NEON 1
#endif

namespace knnpc {
namespace {

// When one list is this many times longer than the other, per-element
// galloping search in the long list beats any linear merge (vectorized or
// not). Both backends share the cutoff and the galloping code: the match
// list is a property of the inputs, so how it is found can differ per
// backend without affecting scores.
constexpr std::uint32_t kGallopSkew = 32;

void push_match(KernelScratch& scratch, std::uint32_t ia, std::uint32_t ib) {
  scratch.match_a.push_back(ia);
  scratch.match_b.push_back(ib);
}

/// Portable two-pointer merge intersection.
void intersect_merge(const ItemId* a, std::uint32_t na, const ItemId* b,
                     std::uint32_t nb, KernelScratch& scratch) {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      push_match(scratch, i, j);
      ++i;
      ++j;
    }
  }
}

/// First index p in [lo, n) with hay[p] >= needle, found by doubling then
/// binary search — O(log distance) instead of O(distance).
std::uint32_t gallop_lower_bound(const ItemId* hay, std::uint32_t n,
                                 std::uint32_t lo, ItemId needle) {
  std::uint32_t step = 1;
  std::uint32_t hi = lo;
  while (hi < n && hay[hi] < needle) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > n) hi = n;
  const ItemId* first = hay + lo;
  const ItemId* last = hay + hi;
  return static_cast<std::uint32_t>(
      std::lower_bound(first, last, needle) - hay);
}

/// Intersection for heavily skewed lengths: walk the short list, gallop
/// in the long one. `a_is_short` keeps the (a-index, b-index) orientation
/// of the output stable.
void intersect_gallop(const ItemId* shrt, std::uint32_t ns, const ItemId* lng,
                      std::uint32_t nl, bool a_is_short,
                      KernelScratch& scratch) {
  std::uint32_t lo = 0;
  for (std::uint32_t s = 0; s < ns && lo < nl; ++s) {
    const std::uint32_t p = gallop_lower_bound(lng, nl, lo, shrt[s]);
    if (p == nl) break;
    if (lng[p] == shrt[s]) {
      if (a_is_short) {
        push_match(scratch, s, p);
      } else {
        push_match(scratch, p, s);
      }
      lo = p + 1;
    } else {
      lo = p;
    }
  }
}

#if defined(KNNPC_KERNELS_HAVE_AVX2)

/// AVX2 merge intersection: broadcast a[i] and compare it against an
/// 8-wide unaligned window of b in one instruction. Item ids within a
/// profile are unique, so at most one lane matches. Integer work only —
/// no floating point happens under the avx2 target attribute, which is
/// what keeps scores bit-identical to the scalar backend (no risk of
/// FMA-contracted accumulation).
__attribute__((target("avx2"))) void intersect_avx2(const ItemId* a,
                                                    std::uint32_t na,
                                                    const ItemId* b,
                                                    std::uint32_t nb,
                                                    KernelScratch& scratch) {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  while (i < na && j + 8 <= nb) {
    const __m256i va = _mm256_set1_epi32(static_cast<int>(a[i]));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const int mask =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb)));
    if (mask != 0) {
      const std::uint32_t k =
          j + static_cast<std::uint32_t>(__builtin_ctz(
                  static_cast<unsigned>(mask)));
      push_match(scratch, i, k);
      ++i;
      j = k + 1;
    } else if (b[j + 7] < a[i]) {
      j += 8;  // whole window below a[i]
    } else {
      ++i;  // a[i] absent from b (window brackets it)
    }
  }
  // Tail: fewer than 8 ids left in b.
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      push_match(scratch, i, j);
      ++i;
      ++j;
    }
  }
}

#elif defined(KNNPC_KERNELS_HAVE_NEON)

/// NEON merge intersection, 4-wide windows; same scheme as the AVX2 path.
void intersect_neon(const ItemId* a, std::uint32_t na, const ItemId* b,
                    std::uint32_t nb, KernelScratch& scratch) {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  while (i < na && j + 4 <= nb) {
    const uint32x4_t va = vdupq_n_u32(a[i]);
    const uint32x4_t vb = vld1q_u32(b + j);
    const uint32x4_t eq = vceqq_u32(va, vb);
    if (vmaxvq_u32(eq) != 0) {
      std::uint32_t lanes[4];
      vst1q_u32(lanes, eq);
      std::uint32_t k = j;
      while (lanes[k - j] == 0) ++k;
      push_match(scratch, i, k);
      ++i;
      j = k + 1;
    } else if (b[j + 3] < a[i]) {
      j += 4;
    } else {
      ++i;
    }
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      push_match(scratch, i, j);
      ++i;
      ++j;
    }
  }
}

#endif

// ------------------------------------------------- measure accumulation
//
// Everything below is compiled for the baseline ISA and replays the exact
// double-precision operation sequence of profiles/similarity.cpp, reading
// matched weights through the scratch index lists. Comments cite the
// scalar function each block mirrors.

using View = FlatProfileSet::View;

/// merge_counts().dot — Σ a_i b_i over common items, in ascending item
/// order (the order the match lists are produced in).
double dot_over_matches(const View& a, const View& b,
                        const KernelScratch& scratch) {
  double dot = 0.0;
  for (std::size_t k = 0; k < scratch.match_a.size(); ++k) {
    dot += static_cast<double>(a.weights[scratch.match_a[k]]) *
           b.weights[scratch.match_b[k]];
  }
  return dot;
}

float kernel_cosine(const View& a, const View& b,
                    const KernelScratch& scratch) {
  if (a.size == 0 || b.size == 0) return 0.0f;
  const double denom = a.norm * b.norm;
  if (denom == 0.0) return 0.0f;
  return static_cast<float>(dot_over_matches(a, b, scratch) / denom);
}

float kernel_jaccard(const View& a, const View& b, std::size_t common) {
  if (a.size == 0 && b.size == 0) return 0.0f;
  const std::size_t uni = static_cast<std::size_t>(a.size) + b.size - common;
  return uni == 0 ? 0.0f
                  : static_cast<float>(static_cast<double>(common) /
                                       static_cast<double>(uni));
}

float kernel_dice(const View& a, const View& b, std::size_t common) {
  if (a.size == 0 && b.size == 0) return 0.0f;
  return static_cast<float>(
      2.0 * static_cast<double>(common) /
      static_cast<double>(static_cast<std::size_t>(a.size) + b.size));
}

float kernel_overlap(const View& a, const View& b, std::size_t common) {
  if (a.size == 0 || b.size == 0) return 0.0f;
  return static_cast<float>(static_cast<double>(common) /
                            static_cast<double>(std::min(a.size, b.size)));
}

/// centered_cosine(..., common_only=true) over the match lists: the
/// Pearson / adjusted-cosine core. `mean_a`/`mean_b` are whichever
/// offsets the caller derived (common-item means for Pearson, whole-
/// profile means for adjusted cosine).
float kernel_centered_cosine(const View& a, const View& b, double mean_a,
                             double mean_b, const KernelScratch& scratch) {
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (std::size_t k = 0; k < scratch.match_a.size(); ++k) {
    const double xa = a.weights[scratch.match_a[k]] - mean_a;
    const double xb = b.weights[scratch.match_b[k]] - mean_b;
    dot += xa * xb;
    norm_a += xa * xa;
    norm_b += xb * xb;
  }
  if (scratch.match_a.size() < 2 || norm_a == 0.0 || norm_b == 0.0) {
    return 0.5f;  // no evidence either way
  }
  const double correlation = dot / std::sqrt(norm_a * norm_b);
  return static_cast<float>((correlation + 1.0) / 2.0);
}

float kernel_pearson(const View& a, const View& b,
                     const KernelScratch& scratch) {
  // pearson_similarity(): means over the *common* items.
  const std::size_t common = scratch.match_a.size();
  if (common < 2) return 0.5f;
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (std::size_t k = 0; k < common; ++k) {
    sum_a += a.weights[scratch.match_a[k]];
    sum_b += b.weights[scratch.match_b[k]];
  }
  return kernel_centered_cosine(a, b, sum_a / static_cast<double>(common),
                                sum_b / static_cast<double>(common), scratch);
}

/// inverse_euclidean(): Σ (a_i - b_i)² over the *union* in merged item
/// order. The match list cannot replay union order, so this is a direct
/// flat merge — identical under both backends by construction.
float kernel_inverse_euclidean(const View& a, const View& b) {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  double sq_diff = 0.0;
  while (i < a.size && j < b.size) {
    if (a.items[i] < b.items[j]) {
      sq_diff += static_cast<double>(a.weights[i]) * a.weights[i];
      ++i;
    } else if (b.items[j] < a.items[i]) {
      sq_diff += static_cast<double>(b.weights[j]) * b.weights[j];
      ++j;
    } else {
      const double d = static_cast<double>(a.weights[i]) - b.weights[j];
      sq_diff += d * d;
      ++i;
      ++j;
    }
  }
  for (; i < a.size; ++i) {
    sq_diff += static_cast<double>(a.weights[i]) * a.weights[i];
  }
  for (; j < b.size; ++j) {
    sq_diff += static_cast<double>(b.weights[j]) * b.weights[j];
  }
  const double dist = std::sqrt(sq_diff);
  return static_cast<float>(1.0 / (1.0 + dist));
}

}  // namespace

const char* kernel_backend_name(KernelBackend backend) {
  if (backend == KernelBackend::Scalar) return "scalar";
#if defined(KNNPC_KERNELS_HAVE_AVX2)
  return "avx2";
#elif defined(KNNPC_KERNELS_HAVE_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

bool simd_backend_available() {
#if defined(KNNPC_KERNELS_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#elif defined(KNNPC_KERNELS_HAVE_NEON)
  return true;  // NEON is architectural on aarch64
#else
  return false;
#endif
}

KernelBackend resolve_kernel_backend(std::string_view request) {
  std::string_view effective = request;
  if (effective == "auto") {
    if (const char* env = std::getenv("KNNPC_KERNEL")) effective = env;
  }
  if (effective == "auto") {
    return simd_backend_available() ? KernelBackend::Simd
                                    : KernelBackend::Scalar;
  }
  if (effective == "scalar") return KernelBackend::Scalar;
  if (effective == "simd") {
    return simd_backend_available() ? KernelBackend::Simd
                                    : KernelBackend::Scalar;
  }
  throw std::invalid_argument("unknown kernel backend: " +
                              std::string(effective) +
                              " (expected auto|scalar|simd)");
}

std::uint32_t intersect_items(const ItemId* a, std::uint32_t na,
                              const ItemId* b, std::uint32_t nb,
                              KernelBackend backend, KernelScratch& scratch) {
  scratch.match_a.clear();
  scratch.match_b.clear();
  if (na == 0 || nb == 0) return 0;
  if (na > static_cast<std::uint64_t>(nb) * kGallopSkew) {
    intersect_gallop(b, nb, a, na, /*a_is_short=*/false, scratch);
  } else if (nb > static_cast<std::uint64_t>(na) * kGallopSkew) {
    intersect_gallop(a, na, b, nb, /*a_is_short=*/true, scratch);
  } else if (backend == KernelBackend::Simd) {
#if defined(KNNPC_KERNELS_HAVE_AVX2)
    intersect_avx2(a, na, b, nb, scratch);
#elif defined(KNNPC_KERNELS_HAVE_NEON)
    intersect_neon(a, na, b, nb, scratch);
#else
    intersect_merge(a, na, b, nb, scratch);
#endif
  } else {
    intersect_merge(a, na, b, nb, scratch);
  }
  return static_cast<std::uint32_t>(scratch.match_a.size());
}

float score_pair(const FlatProfileSet::View& a, const FlatProfileSet::View& b,
                 SimilarityMeasure measure, KernelBackend backend,
                 KernelScratch& scratch) {
  // InverseEuclid never needs the match list; everything else shares one
  // intersection per pair.
  if (measure == SimilarityMeasure::InverseEuclid) {
    return kernel_inverse_euclidean(a, b);
  }
  const std::uint32_t common =
      intersect_items(a.items, a.size, b.items, b.size, backend, scratch);
  switch (measure) {
    case SimilarityMeasure::Cosine:
      return kernel_cosine(a, b, scratch);
    case SimilarityMeasure::Jaccard:
      return kernel_jaccard(a, b, common);
    case SimilarityMeasure::Dice:
      return kernel_dice(a, b, common);
    case SimilarityMeasure::Overlap:
      return kernel_overlap(a, b, common);
    case SimilarityMeasure::CommonItems:
      return static_cast<float>(common);
    case SimilarityMeasure::Pearson:
      return kernel_pearson(a, b, scratch);
    case SimilarityMeasure::AdjustedCosine:
      return kernel_centered_cosine(a, b, a.mean, b.mean, scratch);
    case SimilarityMeasure::InverseEuclid:
      break;  // handled above
  }
  return 0.0f;
}

namespace {

FlatProfileSet::View view_in_pair(const FlatProfileSet& primary,
                                  const FlatProfileSet* secondary,
                                  VertexId v) {
  FlatProfileSet::View out;
  if (primary.find(v, out)) return out;
  if (secondary != nullptr && secondary->find(v, out)) return out;
  throw std::logic_error(
      "similarity_kernels: tuple endpoint outside loaded pair");
}

}  // namespace

void score_batch(const FlatProfileSet& primary,
                 const FlatProfileSet* secondary, VertexId src,
                 std::span<const VertexId> candidates,
                 SimilarityMeasure measure, KernelBackend backend, float* out,
                 KernelScratch& scratch) {
  const FlatProfileSet::View sv = view_in_pair(primary, secondary, src);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const FlatProfileSet::View dv =
        view_in_pair(primary, secondary, candidates[c]);
    out[c] = score_pair(sv, dv, measure, backend, scratch);
  }
}

}  // namespace knnpc
