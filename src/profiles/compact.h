// Profile-set compaction: the preprocessing pass real rating logs need
// before KNN makes sense.
//
//  * drop items that fewer than `min_item_support` users have (they can
//    never contribute to a meaningful similarity),
//  * drop users left with fewer than `min_profile_size` items (cold
//    users whose neighbourhoods would be noise),
//  * renumber the surviving items densely.
#pragma once

#include <cstdint>
#include <vector>

#include "profiles/profile.h"
#include "util/types.h"

namespace knnpc {

struct CompactionConfig {
  /// An item survives when at least this many users have it.
  std::uint32_t min_item_support = 2;
  /// A user survives when, after item filtering, they still have at least
  /// this many items.
  std::uint32_t min_profile_size = 1;
};

struct CompactionResult {
  std::vector<SparseProfile> profiles;  // surviving users, renumbered items
  /// new user index -> original user index.
  std::vector<VertexId> kept_users;
  /// new item id -> original item id.
  std::vector<ItemId> kept_items;
  std::size_t dropped_items = 0;
  std::size_t dropped_users = 0;
};

/// Applies the config; deterministic (order-preserving) renumbering.
CompactionResult compact_profiles(const std::vector<SparseProfile>& profiles,
                                  const CompactionConfig& config);

}  // namespace knnpc
