// Profile-set compaction: the preprocessing pass real rating logs need
// before KNN makes sense.
//
//  * drop items that fewer than `min_item_support` users have (they can
//    never contribute to a meaningful similarity),
//  * drop users left with fewer than `min_profile_size` items (cold
//    users whose neighbourhoods would be noise),
//  * renumber the surviving items densely.
//
// Item filtering and user filtering interact: dropping an under-sized
// user lowers the support of every item they rated, which can push more
// items under the threshold, which can shrink more users below
// `min_profile_size`, and so on. `CompactionConfig::cascade` picks which
// semantics you get — see its docs below. Either way the drop counters
// are exact: `dropped_items + kept_items.size()` equals the number of
// distinct items in the input, and `dropped_users + kept_users.size()`
// equals the number of input users.
//
// This header also hosts the u16 scaled-weight quantization used by the
// phase-4 flat profile layout (profiles/flat_profile.h): quantization is
// a compaction of the weight payload the same way item/user filtering is
// a compaction of the entry set, and the two are applied together when
// shrinking partition files.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "profiles/profile.h"
#include "util/types.h"

namespace knnpc {

struct CompactionConfig {
  /// An item survives when at least this many users have it.
  std::uint32_t min_item_support = 2;
  /// A user survives when, after item filtering, they still have at least
  /// this many items.
  std::uint32_t min_profile_size = 1;
  /// Filtering semantics for the item/user cascade:
  ///
  ///  * false (default) — single pass: item support is counted once over
  ///    the *original* user set, items are filtered, then users are
  ///    filtered once against the surviving items. Kept items may end up
  ///    with fewer than `min_item_support` supporters among the kept
  ///    users (the supporters that pushed them over the bar may have been
  ///    dropped). Cheap, order-independent, and what most rating-log
  ///    pipelines mean by "min support".
  ///  * true — iterate the two filters to a fixpoint: on output, every
  ///    kept item has >= `min_item_support` supporters *among the kept
  ///    users* and every kept user has >= `min_profile_size` *kept*
  ///    items, simultaneously. This is the standard core decomposition;
  ///    note that aggressive thresholds can legitimately cascade to an
  ///    empty result.
  bool cascade = false;
};

struct CompactionResult {
  std::vector<SparseProfile> profiles;  // surviving users, renumbered items
  /// new user index -> original user index.
  std::vector<VertexId> kept_users;
  /// new item id -> original item id.
  std::vector<ItemId> kept_items;
  /// Distinct input items minus kept items (exact under both semantics).
  std::size_t dropped_items = 0;
  /// Input users minus kept users (exact under both semantics).
  std::size_t dropped_users = 0;
};

/// Applies the config; deterministic (order-preserving) renumbering.
CompactionResult compact_profiles(const std::vector<SparseProfile>& profiles,
                                  const CompactionConfig& config);

// ----------------------------------------------------- weight quantization

/// u16 scaled-weight code for one profile. Symmetric affine quantization
/// around zero: scale = max|w| / 32767 (1.0 when the profile is empty),
/// code = round(w / scale) + 32768, so exact zero always round-trips to
/// exact zero and the worst-case absolute error is scale / 2.
struct QuantizedWeights {
  std::vector<std::uint16_t> codes;  // one per entry, entry order
  float scale = 1.0f;
};

/// Quantizes one profile's weights (entry order preserved).
QuantizedWeights quantize_weights_u16(std::span<const ProfileEntry> entries);

/// Inverse of quantize_weights_u16 for one code.
inline float dequantize_weight_u16(std::uint16_t code, float scale) {
  return static_cast<float>(static_cast<int>(code) - 32768) * scale;
}

}  // namespace knnpc
