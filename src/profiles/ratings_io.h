// Rating-triple I/O: the standard interchange format of recommender
// datasets (MovieLens & friends):
//
//   user,item,rating            (or tab/space separated; an optional
//                                trailing column — e.g. a timestamp — is
//                                ignored)
//   # comments and blank lines ignored; CRLF line endings accepted
//
// Two ingestion paths share one hardened line parser (parse_rating_line,
// every rejection a typed RatingsError — never UB on hostile bytes):
//
//   load_ratings        in-memory: ids remapped to [0, n) preserving
//                       first appearance (like graph/snap_io.h).
//   ingest_ratings_file out-of-core: a streaming chunk reader with a
//                       fixed memory budget parses the file into sorted
//                       spill runs, and an external merge folds them into
//                       a packed on-disk profile store ("KPRS"), so a
//                       ratings file much larger than RAM builds from a
//                       cold start with bounded RSS. User ids densify in
//                       ascending-raw-id order (no remap table is ever
//                       held); item ids stay raw and must fit ItemId.
//
// This is the realistic on-ramp for feeding production rating logs into
// KnnEngine.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "profiles/profile.h"
#include "util/rng.h"
#include "util/types.h"

namespace knnpc {

/// Typed parse/ingest failure. Derives std::runtime_error so legacy
/// catch sites keep working; new code switches on kind().
class RatingsError : public std::runtime_error {
 public:
  enum class Kind {
    /// File cannot be opened / read / written.
    Io,
    /// A data line does not parse as "user item rating" (missing fields,
    /// non-numeric tokens, signs on ids, overflow).
    MalformedLine,
    /// An id exceeds what the requested ingestion path can represent
    /// (out-of-core keeps raw item ids, which must fit ItemId).
    OutOfRangeId,
    /// A rating value that parses but is not a finite float.
    BadWeight,
    /// A single line exceeds the parser's line-length bound (the chunk
    /// reader's carry buffer must stay within the memory budget).
    LineTooLong,
    /// A profile-store file ends mid-record.
    Truncated,
    /// A profile-store file fails its magic/version/checksum validation.
    Corrupt,
  };

  RatingsError(Kind kind, std::size_t line, const std::string& message)
      : std::runtime_error(message), kind_(kind), line_(line) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  /// 1-based source line; 0 when the error is not tied to a line.
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  Kind kind_;
  std::size_t line_;
};

/// One parsed rating triple (raw ids, before any remapping).
struct ParsedRating {
  std::uint64_t user = 0;
  std::uint64_t item = 0;
  float rating = 0.0f;
};

/// Hard bound on one text line (CR/LF excluded). Beyond it the parser
/// throws Kind::LineTooLong instead of growing an unbounded carry buffer.
inline constexpr std::size_t kMaxRatingLineBytes = 4096;

/// Parses one line: returns nullopt for blank lines and '#'/'%' comments,
/// the triple otherwise. Accepts ','/'\t'/' ' separators (runs collapse),
/// a trailing '\r' (CRLF files) and at most one extra trailing field
/// (MovieLens timestamps). Throws RatingsError{MalformedLine|BadWeight|
/// LineTooLong} on anything else — never UB, whatever the bytes.
std::optional<ParsedRating> parse_rating_line(std::string_view line,
                                              std::size_t lineno);

struct RatingsData {
  std::vector<SparseProfile> profiles;  // one per (remapped) user
  /// remapped user id -> raw id from the file.
  std::vector<std::uint64_t> user_ids;
  /// remapped item id -> raw id from the file.
  std::vector<std::uint64_t> item_ids;
  std::size_t num_ratings = 0;
};

/// Parses rating triples; accepts ',', '\t' or ' ' separators. Repeated
/// (user, item) pairs keep the *last* rating. Throws RatingsError on
/// malformed lines.
RatingsData load_ratings(std::istream& in);
RatingsData load_ratings_file(const std::string& path);

/// Writes profiles back as rating triples (raw ids when provided).
void save_ratings(std::ostream& out, const RatingsData& data);
void save_ratings_file(const std::string& path, const RatingsData& data);

// ---------------------------------------------------------------------------
// Out-of-core ingestion: text ratings -> packed profile store ("KPRS").

struct OutOfCoreIngestConfig {
  /// Working-memory budget for the whole ingest (chunk buffer + sorted
  /// run buffer + merge state). Values below kMinIngestBudgetBytes are
  /// clamped up — below that the run/merge machinery cannot function.
  std::size_t memory_budget_bytes = 8u << 20;
  /// Where sorted spill runs live; empty = next to the output store.
  std::string work_dir;
};

inline constexpr std::size_t kMinIngestBudgetBytes = 1u << 20;

struct OutOfCoreIngestStats {
  /// Data lines parsed (comments/blanks excluded).
  std::size_t lines = 0;
  /// Ratings surviving last-wins dedup (== entries in the store).
  std::size_t ratings = 0;
  /// (user, item) pairs overwritten by a later rating.
  std::size_t duplicates = 0;
  VertexId users = 0;
  /// max raw item id + 1 (0 for an empty file).
  std::uint64_t num_items = 0;
  /// Sorted spill runs merged (1 = the whole file fit one run).
  std::size_t runs = 0;
  std::uint64_t bytes_spilled = 0;
  /// Instrumented high-water mark of the ingester's own working set.
  /// The bounded-RSS contract (asserted in ratings_ingest_test) is
  /// peak_memory_bytes <= the configured budget.
  std::size_t peak_memory_bytes = 0;
};

/// Streams `ratings_path` (text triples) into the packed profile store
/// `store_path` under `config`'s memory budget. Duplicate (user, item)
/// pairs keep the last rating, exactly like load_ratings. Differences
/// from load_ratings, both forced by the bounded-memory contract: users
/// densify in ascending-raw-id order (not first appearance), and item
/// ids are kept raw — a raw item id that does not fit ItemId throws
/// Kind::OutOfRangeId instead of being remapped.
OutOfCoreIngestStats ingest_ratings_file(
    const std::string& ratings_path, const std::string& store_path,
    const OutOfCoreIngestConfig& config = {});

/// Footer counters of a packed profile store.
struct ProfileStoreInfo {
  VertexId users = 0;
  std::uint64_t num_items = 0;
  std::uint64_t ratings = 0;
  std::uint64_t duplicates = 0;
};

/// Streams a "KPRS" store: `fn(dense_user, raw_user_id, profile)` per
/// user in dense-id order, holding one profile in memory at a time.
/// Validates magic, version and the body checksum; throws RatingsError
/// {Io|Truncated|Corrupt}.
ProfileStoreInfo read_profile_store(
    const std::string& store_path,
    const std::function<void(VertexId, std::uint64_t, SparseProfile)>& fn);

/// Loads a store fully into RatingsData (item_ids become the identity
/// mapping [0, num_items) — items were never remapped).
RatingsData load_profile_store(const std::string& store_path);

// ---------------------------------------------------------------------------

struct SyntheticRatingsConfig {
  VertexId num_users = 1000;
  ItemId num_items = 500;
  std::uint32_t min_ratings = 5;
  std::uint32_t max_ratings = 40;
  /// Zipf exponent of item popularity.
  double popularity_alpha = 1.1;
  /// Rating values are drawn from {1..5} like classic star ratings.
  std::uint32_t rating_levels = 5;
};

/// Generates a MovieLens-shaped synthetic rating set (for examples, tests
/// and benches when no real log is available).
RatingsData synthetic_ratings(const SyntheticRatingsConfig& config, Rng& rng);

}  // namespace knnpc
