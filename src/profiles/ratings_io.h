// Rating-triple I/O: the standard interchange format of recommender
// datasets (MovieLens & friends):
//
//   user,item,rating            (or tab/space separated)
//   # comments and blank lines ignored
//
// Users and items keep their raw ids when dense, or are compacted to
// [0, n) preserving first appearance (like graph/snap_io.h). This is the
// realistic on-ramp for feeding production rating logs into KnnEngine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "profiles/profile.h"
#include "util/rng.h"
#include "util/types.h"

namespace knnpc {

struct RatingsData {
  std::vector<SparseProfile> profiles;  // one per (remapped) user
  /// remapped user id -> raw id from the file.
  std::vector<std::uint64_t> user_ids;
  /// remapped item id -> raw id from the file.
  std::vector<std::uint64_t> item_ids;
  std::size_t num_ratings = 0;
};

/// Parses rating triples; accepts ',', '\t' or ' ' separators. Repeated
/// (user, item) pairs keep the *last* rating. Throws std::runtime_error
/// on malformed lines.
RatingsData load_ratings(std::istream& in);
RatingsData load_ratings_file(const std::string& path);

/// Writes profiles back as rating triples (raw ids when provided).
void save_ratings(std::ostream& out, const RatingsData& data);
void save_ratings_file(const std::string& path, const RatingsData& data);

struct SyntheticRatingsConfig {
  VertexId num_users = 1000;
  ItemId num_items = 500;
  std::uint32_t min_ratings = 5;
  std::uint32_t max_ratings = 40;
  /// Zipf exponent of item popularity.
  double popularity_alpha = 1.1;
  /// Rating values are drawn from {1..5} like classic star ratings.
  std::uint32_t rating_levels = 5;
};

/// Generates a MovieLens-shaped synthetic rating set (for examples, tests
/// and benches when no real log is available).
RatingsData synthetic_ratings(const SyntheticRatingsConfig& config, Rng& rng);

}  // namespace knnpc
