#include "profiles/profile_store.h"

#include <cstring>
#include <stdexcept>

#include "util/serde.h"

namespace knnpc {

std::vector<std::byte> pack_profiles(const std::vector<SparseProfile>& ps) {
  std::vector<std::byte> out;
  // Size estimate: header + per-profile header + entries.
  std::size_t bytes = sizeof(std::uint32_t);
  for (const auto& p : ps) {
    bytes += sizeof(std::uint32_t) + p.size() * sizeof(ProfileEntry);
  }
  out.reserve(bytes);
  append_record(out, static_cast<std::uint32_t>(ps.size()));
  for (const auto& p : ps) {
    append_record(out, static_cast<std::uint32_t>(p.size()));
    for (const ProfileEntry& e : p.entries()) {
      append_record(out, e);
    }
  }
  return out;
}

std::vector<SparseProfile> unpack_profiles(
    const std::vector<std::byte>& bytes) {
  std::span<const std::byte> view(bytes);
  std::size_t offset = 0;
  std::uint32_t count = 0;
  if (!read_record(view, offset, count)) {
    throw std::runtime_error("unpack_profiles: truncated header");
  }
  std::vector<SparseProfile> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t entries = 0;
    if (!read_record(view, offset, entries)) {
      throw std::runtime_error("unpack_profiles: truncated profile header");
    }
    std::vector<ProfileEntry> list(entries);
    for (std::uint32_t j = 0; j < entries; ++j) {
      if (!read_record(view, offset, list[j])) {
        throw std::runtime_error("unpack_profiles: truncated entry");
      }
    }
    out.emplace_back(std::move(list));
  }
  return out;
}

}  // namespace knnpc
