// Profile stores: where P(t) lives.
//
// InMemoryProfileStore backs tests, baselines and the NN-Descent
// comparator. The *partitioned on-disk* store used by the engine proper
// lives in storage/partition_store.h (profiles are packed per partition
// there so a partition load brings exactly its users' profiles).
#pragma once

#include <cstddef>
#include <vector>

#include "profiles/profile.h"
#include "util/types.h"

namespace knnpc {

/// Abstract read access to the profile set. Vertex ids are dense [0, n).
class ProfileStore {
 public:
  virtual ~ProfileStore() = default;

  [[nodiscard]] virtual VertexId num_users() const = 0;
  /// Profile of `user`; reference valid until the next mutation.
  [[nodiscard]] virtual const SparseProfile& get(VertexId user) const = 0;
};

/// Simple vector-backed store.
class InMemoryProfileStore final : public ProfileStore {
 public:
  InMemoryProfileStore() = default;
  explicit InMemoryProfileStore(std::vector<SparseProfile> profiles)
      : profiles_(std::move(profiles)) {}

  [[nodiscard]] VertexId num_users() const override {
    return static_cast<VertexId>(profiles_.size());
  }
  [[nodiscard]] const SparseProfile& get(VertexId user) const override {
    return profiles_.at(user);
  }

  /// Mutable access (phase 5 applies queued updates through this).
  SparseProfile& mutable_get(VertexId user) { return profiles_.at(user); }

  void set(VertexId user, SparseProfile profile) {
    profiles_.at(user) = std::move(profile);
  }

  void push_back(SparseProfile profile) {
    profiles_.push_back(std::move(profile));
  }

 private:
  std::vector<SparseProfile> profiles_;
};

/// Serialises profiles into a packed byte buffer and back. Layout:
///   u32 count, then per profile: u32 entry_count, entries (u32 item,
///   f32 weight)...
/// Used by the partition store to write per-partition profile files.
std::vector<std::byte> pack_profiles(const std::vector<SparseProfile>& ps);
std::vector<SparseProfile> unpack_profiles(
    const std::vector<std::byte>& bytes);

}  // namespace knnpc
