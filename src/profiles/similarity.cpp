#include "profiles/similarity.h"

#include <cmath>
#include <stdexcept>

namespace knnpc {
namespace {

/// Sorted-merge statistics shared by the set-based measures.
struct MergeCounts {
  std::size_t common = 0;     // |A ∩ B|
  double dot = 0.0;           // Σ a_i b_i over common items
  double sq_diff = 0.0;       // Σ (a_i - b_i)^2 over the union
};

MergeCounts merge_counts(const SparseProfile& a, const SparseProfile& b) {
  MergeCounts c;
  auto ea = a.entries();
  auto eb = b.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].item < eb[j].item) {
      c.sq_diff += static_cast<double>(ea[i].weight) * ea[i].weight;
      ++i;
    } else if (eb[j].item < ea[i].item) {
      c.sq_diff += static_cast<double>(eb[j].weight) * eb[j].weight;
      ++j;
    } else {
      ++c.common;
      c.dot += static_cast<double>(ea[i].weight) * eb[j].weight;
      const double d = static_cast<double>(ea[i].weight) - eb[j].weight;
      c.sq_diff += d * d;
      ++i;
      ++j;
    }
  }
  for (; i < ea.size(); ++i) {
    c.sq_diff += static_cast<double>(ea[i].weight) * ea[i].weight;
  }
  for (; j < eb.size(); ++j) {
    c.sq_diff += static_cast<double>(eb[j].weight) * eb[j].weight;
  }
  return c;
}

}  // namespace

SimilarityMeasure parse_similarity(std::string_view name) {
  if (name == "cosine") return SimilarityMeasure::Cosine;
  if (name == "jaccard") return SimilarityMeasure::Jaccard;
  if (name == "dice") return SimilarityMeasure::Dice;
  if (name == "overlap") return SimilarityMeasure::Overlap;
  if (name == "common") return SimilarityMeasure::CommonItems;
  if (name == "inv-euclid") return SimilarityMeasure::InverseEuclid;
  if (name == "pearson") return SimilarityMeasure::Pearson;
  if (name == "adj-cosine") return SimilarityMeasure::AdjustedCosine;
  throw std::invalid_argument("unknown similarity measure: " +
                              std::string(name));
}

std::string similarity_name(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::Cosine: return "cosine";
    case SimilarityMeasure::Jaccard: return "jaccard";
    case SimilarityMeasure::Dice: return "dice";
    case SimilarityMeasure::Overlap: return "overlap";
    case SimilarityMeasure::CommonItems: return "common";
    case SimilarityMeasure::InverseEuclid: return "inv-euclid";
    case SimilarityMeasure::Pearson: return "pearson";
    case SimilarityMeasure::AdjustedCosine: return "adj-cosine";
  }
  return "?";
}

float similarity(SimilarityMeasure measure, const SparseProfile& a,
                 const SparseProfile& b) {
  switch (measure) {
    case SimilarityMeasure::Cosine: return cosine_similarity(a, b);
    case SimilarityMeasure::Jaccard: return jaccard_similarity(a, b);
    case SimilarityMeasure::Dice: return dice_similarity(a, b);
    case SimilarityMeasure::Overlap: return overlap_similarity(a, b);
    case SimilarityMeasure::CommonItems: return common_items(a, b);
    case SimilarityMeasure::InverseEuclid: return inverse_euclidean(a, b);
    case SimilarityMeasure::Pearson: return pearson_similarity(a, b);
    case SimilarityMeasure::AdjustedCosine: return adjusted_cosine(a, b);
  }
  return 0.0f;
}

float cosine_similarity(const SparseProfile& a, const SparseProfile& b) {
  if (a.empty() || b.empty()) return 0.0f;
  const double denom = a.norm() * b.norm();
  if (denom == 0.0) return 0.0f;
  return static_cast<float>(merge_counts(a, b).dot / denom);
}

float jaccard_similarity(const SparseProfile& a, const SparseProfile& b) {
  if (a.empty() && b.empty()) return 0.0f;
  const std::size_t common = merge_counts(a, b).common;
  const std::size_t uni = a.size() + b.size() - common;
  return uni == 0 ? 0.0f
                  : static_cast<float>(static_cast<double>(common) /
                                       static_cast<double>(uni));
}

float dice_similarity(const SparseProfile& a, const SparseProfile& b) {
  if (a.empty() && b.empty()) return 0.0f;
  const std::size_t common = merge_counts(a, b).common;
  return static_cast<float>(2.0 * static_cast<double>(common) /
                            static_cast<double>(a.size() + b.size()));
}

float overlap_similarity(const SparseProfile& a, const SparseProfile& b) {
  if (a.empty() || b.empty()) return 0.0f;
  const std::size_t common = merge_counts(a, b).common;
  return static_cast<float>(static_cast<double>(common) /
                            static_cast<double>(std::min(a.size(), b.size())));
}

float common_items(const SparseProfile& a, const SparseProfile& b) {
  return static_cast<float>(merge_counts(a, b).common);
}

namespace {

/// Mean weight of a profile's own entries (0 for empty).
double mean_weight(const SparseProfile& p) {
  if (p.empty()) return 0.0;
  double sum = 0.0;
  for (const ProfileEntry& e : p.entries()) sum += e.weight;
  return sum / static_cast<double>(p.size());
}

/// Cosine of the two profiles after subtracting the given per-profile
/// offsets, computed over the common items (`common_only`, what both
/// callers use) or the union; mapped from [-1, 1] to [0, 1]. Fewer than 2
/// common items or a zero centred norm yield 0.5 — see the degenerate-
/// convention table in similarity.h.
float centered_cosine(const SparseProfile& a, const SparseProfile& b,
                      double mean_a, double mean_b, bool common_only) {
  auto ea = a.entries();
  auto eb = b.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  std::size_t common = 0;
  auto account_a = [&](double x) { norm_a += x * x; };
  auto account_b = [&](double x) { norm_b += x * x; };
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].item < eb[j].item) {
      if (!common_only) account_a(ea[i].weight - mean_a);
      ++i;
    } else if (eb[j].item < ea[i].item) {
      if (!common_only) account_b(eb[j].weight - mean_b);
      ++j;
    } else {
      const double xa = ea[i].weight - mean_a;
      const double xb = eb[j].weight - mean_b;
      dot += xa * xb;
      account_a(xa);
      account_b(xb);
      ++common;
      ++i;
      ++j;
    }
  }
  if (!common_only) {
    for (; i < ea.size(); ++i) account_a(ea[i].weight - mean_a);
    for (; j < eb.size(); ++j) account_b(eb[j].weight - mean_b);
  }
  if (common < 2 || norm_a == 0.0 || norm_b == 0.0) {
    return 0.5f;  // no evidence either way
  }
  const double correlation = dot / std::sqrt(norm_a * norm_b);
  return static_cast<float>((correlation + 1.0) / 2.0);
}

}  // namespace

float pearson_similarity(const SparseProfile& a, const SparseProfile& b) {
  // Means over the *common* items (the textbook user-CF definition), and
  // correlation over common items only.
  auto ea = a.entries();
  auto eb = b.entries();
  std::size_t i = 0;
  std::size_t j = 0;
  double sum_a = 0.0;
  double sum_b = 0.0;
  std::size_t common = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].item < eb[j].item) {
      ++i;
    } else if (eb[j].item < ea[i].item) {
      ++j;
    } else {
      sum_a += ea[i].weight;
      sum_b += eb[j].weight;
      ++common;
      ++i;
      ++j;
    }
  }
  if (common < 2) return 0.5f;
  return centered_cosine(a, b, sum_a / static_cast<double>(common),
                         sum_b / static_cast<double>(common),
                         /*common_only=*/true);
}

float adjusted_cosine(const SparseProfile& a, const SparseProfile& b) {
  return centered_cosine(a, b, mean_weight(a), mean_weight(b),
                         /*common_only=*/true);
}

float inverse_euclidean(const SparseProfile& a, const SparseProfile& b) {
  // Two empty profiles have distance 0 => similarity 1; this is consistent
  // ("identical profiles are maximally similar"), unlike cosine which is
  // undefined there.
  const double dist = std::sqrt(merge_counts(a, b).sq_diff);
  return static_cast<float>(1.0 / (1.0 + dist));
}

}  // namespace knnpc
