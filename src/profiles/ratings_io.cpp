#include "profiles/ratings_io.h"

#include <algorithm>
#include <array>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "util/fnv.h"

namespace knnpc {

namespace {

using Kind = RatingsError::Kind;

[[nodiscard]] RatingsError err(Kind kind, std::size_t line, std::string msg) {
  if (line != 0) msg += " (line " + std::to_string(line) + ")";
  return RatingsError(kind, line, msg);
}

bool is_sep(char c) { return c == ',' || c == '\t' || c == ' '; }

std::uint64_t parse_id(std::string_view token, std::size_t lineno,
                       const char* what) {
  std::uint64_t value = 0;
  // from_chars on an unsigned type rejects signs, spaces and non-digits;
  // requiring full consumption rejects "12abc".
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw err(Kind::MalformedLine, lineno,
              std::string("ratings: ") + what + " id overflows 64 bits: " +
                  std::string(token));
  }
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    throw err(Kind::MalformedLine, lineno,
              std::string("ratings: bad ") + what + " id: " +
                  std::string(token));
  }
  return value;
}

float parse_weight(std::string_view token, std::size_t lineno) {
  float value = 0.0f;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw err(Kind::BadWeight, lineno,
              "ratings: rating out of float range: " + std::string(token));
  }
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    throw err(Kind::MalformedLine, lineno,
              "ratings: bad rating value: " + std::string(token));
  }
  if (!std::isfinite(value)) {
    throw err(Kind::BadWeight, lineno,
              "ratings: non-finite rating: " + std::string(token));
  }
  return value;
}

}  // namespace

std::optional<ParsedRating> parse_rating_line(std::string_view line,
                                              std::size_t lineno) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.size() > kMaxRatingLineBytes) {
    throw err(Kind::LineTooLong, lineno,
              "ratings: line exceeds " + std::to_string(kMaxRatingLineBytes) +
                  " bytes");
  }
  std::size_t pos = 0;
  while (pos < line.size() && is_sep(line[pos])) ++pos;
  if (pos == line.size()) return std::nullopt;
  if (line[pos] == '#' || line[pos] == '%') return std::nullopt;

  std::array<std::string_view, 4> tokens;
  std::size_t count = 0;
  while (pos < line.size()) {
    const std::size_t start = pos;
    while (pos < line.size() && !is_sep(line[pos])) ++pos;
    if (count < tokens.size()) tokens[count] = line.substr(start, pos - start);
    ++count;
    while (pos < line.size() && is_sep(line[pos])) ++pos;
  }
  if (count < 3 || count > 4) {
    throw err(Kind::MalformedLine, lineno,
              "ratings: expected 'user item rating [extra]', got " +
                  std::to_string(count) + " fields");
  }
  ParsedRating parsed;
  parsed.user = parse_id(tokens[0], lineno, "user");
  parsed.item = parse_id(tokens[1], lineno, "item");
  parsed.rating = parse_weight(tokens[2], lineno);
  return parsed;
}

RatingsData load_ratings(std::istream& in) {
  RatingsData data;
  std::unordered_map<std::uint64_t, VertexId> user_remap;
  std::unordered_map<std::uint64_t, ItemId> item_remap;
  // Entries per user, merged into profiles at the end (last rating wins,
  // implemented by overwriting in a per-user map).
  std::vector<std::unordered_map<ItemId, float>> entries;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto parsed = parse_rating_line(line, lineno);
    if (!parsed) continue;
    auto [user_it, new_user] = user_remap.try_emplace(
        parsed->user, static_cast<VertexId>(user_remap.size()));
    if (new_user) {
      data.user_ids.push_back(parsed->user);
      entries.emplace_back();
    }
    auto [item_it, new_item] = item_remap.try_emplace(
        parsed->item, static_cast<ItemId>(item_remap.size()));
    if (new_item) data.item_ids.push_back(parsed->item);
    entries[user_it->second][item_it->second] = parsed->rating;
    ++data.num_ratings;
  }

  data.profiles.reserve(entries.size());
  for (const auto& user_entries : entries) {
    std::vector<ProfileEntry> list;
    list.reserve(user_entries.size());
    for (const auto& [item, rating] : user_entries) {
      list.push_back({item, rating});
    }
    data.profiles.emplace_back(std::move(list));
  }
  return data;
}

RatingsData load_ratings_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw err(Kind::Io, 0, "load_ratings_file: cannot open " + path);
  }
  return load_ratings(in);
}

void save_ratings(std::ostream& out, const RatingsData& data) {
  out << "# knnpc ratings: " << data.profiles.size() << " users\n";
  for (VertexId u = 0; u < data.profiles.size(); ++u) {
    const std::uint64_t raw_user =
        u < data.user_ids.size() ? data.user_ids[u] : u;
    for (const ProfileEntry& e : data.profiles[u].entries()) {
      const std::uint64_t raw_item =
          e.item < data.item_ids.size() ? data.item_ids[e.item] : e.item;
      out << raw_user << ',' << raw_item << ',' << e.weight << '\n';
    }
  }
}

void save_ratings_file(const std::string& path, const RatingsData& data) {
  std::ofstream out(path);
  if (!out) {
    throw err(Kind::Io, 0, "save_ratings_file: cannot open " + path);
  }
  save_ratings(out, data);
}

// ---------------------------------------------------------------------------
// Out-of-core ingestion.

namespace {

// One parsed rating in spill-run form. `seq` is the global data-line
// ordinal: runs sort by (user, item, seq), so after the merge the records
// of one (user, item) pair are adjacent in arrival order and last-wins
// dedup is "keep the final record of each equal group".
struct RawRecord {
  std::uint64_t user = 0;
  std::uint64_t seq = 0;
  ItemId item = 0;
  float weight = 0.0f;
};

inline constexpr std::size_t kRecordBytes = 8 + 8 + 4 + 4;

bool record_less(const RawRecord& a, const RawRecord& b) {
  return std::tie(a.user, a.item, a.seq) < std::tie(b.user, b.item, b.seq);
}

// Explicit little-endian (de)serialisation, matching the library's other
// wire formats: byte layout is pinned, not host-dependent.
void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_f32(std::string& buf, float v) {
  put_u32(buf, std::bit_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

float get_f32(const char* p) { return std::bit_cast<float>(get_u32(p)); }

std::uint64_t fnv1a_string(std::uint64_t h, const std::string& buf) {
  for (const char c : buf) {
    h = (h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c))) *
        kFnv1aPrime;
  }
  return h;
}

inline constexpr std::uint32_t kStoreMagic = 0x5352504bu;  // "KPRS"
inline constexpr std::uint32_t kStoreVersion = 1;
inline constexpr std::size_t kStoreHeaderBytes = 4 + 4;
// users, num_items, ratings, duplicates, body checksum, trailing magic.
inline constexpr std::size_t kStoreFooterBytes = 5 * 8 + 4;

void read_exact(std::istream& in, char* dst, std::size_t n,
                const std::string& path) {
  in.read(dst, static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n) {
    throw err(in.bad() ? Kind::Io : Kind::Truncated, 0,
              "profile store " + path + ": unexpected end of file");
  }
}

// Streams spill-run records back out of the shared runs file, with a
// bounded refill buffer per run.
class RunCursor {
 public:
  RunCursor(const std::string& path, std::uint64_t offset,
            std::uint64_t records, std::size_t buffer_records)
      : in_(path, std::ios::binary),
        remaining_(records),
        buffer_records_(std::max<std::size_t>(buffer_records, 16)) {
    if (!in_) throw err(Kind::Io, 0, "ingest: cannot reopen run file " + path);
    in_.seekg(static_cast<std::streamoff>(offset));
    refill();
  }

  [[nodiscard]] bool empty() const { return pos_ == buffer_.size(); }
  [[nodiscard]] const RawRecord& head() const { return buffer_[pos_]; }

  void pop() {
    ++pos_;
    if (pos_ == buffer_.size()) refill();
  }

 private:
  void refill() {
    buffer_.clear();
    pos_ = 0;
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            remaining_, static_cast<std::uint64_t>(buffer_records_)));
    if (want == 0) return;
    raw_.resize(want * kRecordBytes);
    in_.read(raw_.data(), static_cast<std::streamsize>(raw_.size()));
    if (static_cast<std::size_t>(in_.gcount()) != raw_.size()) {
      throw err(Kind::Io, 0, "ingest: short read from run file");
    }
    buffer_.resize(want);
    for (std::size_t i = 0; i < want; ++i) {
      const char* p = raw_.data() + i * kRecordBytes;
      buffer_[i].user = get_u64(p);
      buffer_[i].seq = get_u64(p + 8);
      buffer_[i].item = get_u32(p + 16);
      buffer_[i].weight = get_f32(p + 20);
    }
    remaining_ -= want;
  }

  std::ifstream in_;
  std::uint64_t remaining_;
  std::size_t buffer_records_;
  std::vector<char> raw_;
  std::vector<RawRecord> buffer_;
  std::size_t pos_ = 0;
};

// Writes the packed profile store, grouping the already-sorted,
// already-deduped record stream by user and keeping a running FNV-1a over
// the body so the footer checksum costs no second pass.
class StoreWriter {
 public:
  explicit StoreWriter(const std::string& path) : path_(path) {
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) throw err(Kind::Io, 0, "ingest: cannot open store " + path);
    std::string header;
    put_u32(header, kStoreMagic);
    put_u32(header, kStoreVersion);
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  }

  void add(const RawRecord& record) {
    if (!has_user_ || record.user != current_user_) {
      flush_user();
      current_user_ = record.user;
      has_user_ = true;
    }
    entries_.emplace_back(record.item, record.weight);
  }

  /// Largest per-user entry buffer held so far, for peak accounting.
  [[nodiscard]] std::size_t max_user_bytes() const {
    return max_user_entries_ * sizeof(std::pair<ItemId, float>);
  }

  ProfileStoreInfo finish(std::uint64_t num_items, std::uint64_t duplicates) {
    flush_user();
    std::string footer;
    put_u64(footer, users_);
    put_u64(footer, num_items);
    put_u64(footer, ratings_);
    put_u64(footer, duplicates);
    put_u64(footer, body_fnv_);
    put_u32(footer, kStoreMagic);
    out_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
    out_.flush();
    if (!out_) throw err(Kind::Io, 0, "ingest: write failed on " + path_);
    ProfileStoreInfo info;
    info.users = static_cast<VertexId>(users_);
    info.num_items = num_items;
    info.ratings = ratings_;
    info.duplicates = duplicates;
    return info;
  }

 private:
  void flush_user() {
    if (!has_user_) return;
    buf_.clear();
    put_u64(buf_, current_user_);
    put_u32(buf_, static_cast<std::uint32_t>(entries_.size()));
    for (const auto& [item, weight] : entries_) {
      put_u32(buf_, item);
      put_f32(buf_, weight);
    }
    body_fnv_ = fnv1a_string(body_fnv_, buf_);
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    ++users_;
    ratings_ += entries_.size();
    max_user_entries_ = std::max(max_user_entries_, entries_.size());
    entries_.clear();
  }

  std::string path_;
  std::ofstream out_;
  std::string buf_;
  std::vector<std::pair<ItemId, float>> entries_;
  std::uint64_t current_user_ = 0;
  bool has_user_ = false;
  std::uint64_t users_ = 0;
  std::uint64_t ratings_ = 0;
  std::uint64_t body_fnv_ = kFnv1aOffset;
  std::size_t max_user_entries_ = 0;
};

// Feeds the sorted merged stream through last-wins dedup into the writer.
class DedupSink {
 public:
  explicit DedupSink(StoreWriter& writer) : writer_(writer) {}

  void add(const RawRecord& record) {
    if (has_pending_ && pending_.user == record.user &&
        pending_.item == record.item) {
      ++duplicates_;  // later seq supersedes the pending rating
    } else if (has_pending_) {
      writer_.add(pending_);
    }
    pending_ = record;
    has_pending_ = true;
  }

  [[nodiscard]] std::uint64_t finish() {
    if (has_pending_) writer_.add(pending_);
    has_pending_ = false;
    return duplicates_;
  }

 private:
  StoreWriter& writer_;
  RawRecord pending_;
  bool has_pending_ = false;
  std::uint64_t duplicates_ = 0;
};

}  // namespace

OutOfCoreIngestStats ingest_ratings_file(const std::string& ratings_path,
                                         const std::string& store_path,
                                         const OutOfCoreIngestConfig& config) {
  const std::size_t budget =
      std::max(config.memory_budget_bytes, kMinIngestBudgetBytes);
  std::ifstream in(ratings_path, std::ios::binary);
  if (!in) throw err(Kind::Io, 0, "ingest: cannot open " + ratings_path);

  OutOfCoreIngestStats stats;

  // Budget split: a chunk read buffer, the sorted-run record buffer, and a
  // slack eighth kept back for the merge phase's per-run refill buffers and
  // the store writer's per-user scratch.
  const std::size_t read_buf_bytes =
      std::clamp<std::size_t>(budget / 16, std::size_t{64} << 10,
                              std::size_t{1} << 20);
  const std::size_t slack_bytes = budget / 8;
  const std::size_t record_capacity = std::max<std::size_t>(
      (budget - read_buf_bytes - slack_bytes) / kRecordBytes, 1024);

  const std::string runs_path =
      config.work_dir.empty() ? store_path + ".runs"
                              : config.work_dir + "/knnpc_ingest.runs";

  std::vector<RawRecord> records;
  records.reserve(record_capacity);

  std::ofstream runs_out;
  struct RunExtent {
    std::uint64_t offset = 0;
    std::uint64_t records = 0;
  };
  std::vector<RunExtent> run_index;
  std::uint64_t runs_bytes = 0;
  std::string spill_buf;

  const auto note_peak = [&](std::size_t phase_bytes) {
    stats.peak_memory_bytes = std::max(stats.peak_memory_bytes, phase_bytes);
  };
  // Parse-phase working set: fixed chunk buffer + fixed record buffer +
  // the bounded line-carry scratch + the bounded spill batch buffer.
  note_peak(read_buf_bytes + record_capacity * sizeof(RawRecord) +
            kMaxRatingLineBytes + 4096 * kRecordBytes);

  // Spill serialisation happens in bounded batches: a whole-run staging
  // buffer would double the record buffer's footprint and bust the budget.
  constexpr std::size_t kSpillBatchRecords = 4096;
  const auto spill_run = [&]() {
    if (records.empty()) return;
    std::sort(records.begin(), records.end(), record_less);
    if (!runs_out.is_open()) {
      runs_out.open(runs_path, std::ios::binary | std::ios::trunc);
      if (!runs_out) {
        throw err(Kind::Io, 0, "ingest: cannot open run file " + runs_path);
      }
    }
    std::uint64_t written = 0;
    for (std::size_t base = 0; base < records.size();
         base += kSpillBatchRecords) {
      const std::size_t end =
          std::min(records.size(), base + kSpillBatchRecords);
      spill_buf.clear();
      for (std::size_t i = base; i < end; ++i) {
        const RawRecord& r = records[i];
        put_u64(spill_buf, r.user);
        put_u64(spill_buf, r.seq);
        put_u32(spill_buf, r.item);
        put_f32(spill_buf, r.weight);
      }
      runs_out.write(spill_buf.data(),
                     static_cast<std::streamsize>(spill_buf.size()));
      written += spill_buf.size();
    }
    if (!runs_out) {
      throw err(Kind::Io, 0, "ingest: write failed on " + runs_path);
    }
    run_index.push_back({runs_bytes,
                         static_cast<std::uint64_t>(records.size())});
    runs_bytes += written;
    stats.bytes_spilled += written;
    records.clear();
  };

  std::uint64_t max_item_plus_one = 0;
  std::size_t lineno = 0;
  std::uint64_t seq = 0;

  const auto process_line = [&](std::string_view line) {
    ++lineno;
    const auto parsed = parse_rating_line(line, lineno);
    if (!parsed) return;
    ++stats.lines;
    if (parsed->item > std::numeric_limits<ItemId>::max()) {
      throw err(Kind::OutOfRangeId, lineno,
                "ingest: item id " + std::to_string(parsed->item) +
                    " does not fit ItemId (out-of-core keeps raw item ids)");
    }
    RawRecord record;
    record.user = parsed->user;
    record.seq = seq++;
    record.item = static_cast<ItemId>(parsed->item);
    record.weight = parsed->rating;
    max_item_plus_one =
        std::max(max_item_plus_one, static_cast<std::uint64_t>(record.item) + 1);
    records.push_back(record);
    if (records.size() >= record_capacity) spill_run();
  };

  // Chunked line reader: fixed-size reads, a carry buffer for the line
  // fragment spanning a chunk boundary, bounded by kMaxRatingLineBytes.
  std::vector<char> chunk(read_buf_bytes);
  std::string carry;
  for (;;) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    std::string_view view(chunk.data(), got);
    std::size_t start = 0;
    while (start < view.size()) {
      const std::size_t nl = view.find('\n', start);
      if (nl == std::string_view::npos) {
        carry.append(view.substr(start));
        if (carry.size() > kMaxRatingLineBytes + 2) {
          throw err(Kind::LineTooLong, lineno + 1,
                    "ingest: line exceeds " +
                        std::to_string(kMaxRatingLineBytes) + " bytes");
        }
        break;
      }
      if (carry.empty()) {
        process_line(view.substr(start, nl - start));
      } else {
        carry.append(view.substr(start, nl - start));
        process_line(carry);
        carry.clear();
      }
      start = nl + 1;
    }
    if (!in) break;
  }
  if (in.bad()) throw err(Kind::Io, 0, "ingest: read failed on " + ratings_path);
  if (!carry.empty()) {
    process_line(carry);
    carry.clear();
  }

  stats.num_items = max_item_plus_one;
  StoreWriter writer(store_path);
  DedupSink sink(writer);

  if (run_index.empty()) {
    // The whole file fit in one in-memory run: sort and stream it straight
    // into the store, no spill round-trip.
    std::sort(records.begin(), records.end(), record_less);
    for (const RawRecord& r : records) sink.add(r);
    stats.runs = records.empty() ? 0 : 1;
  } else {
    spill_run();
    runs_out.close();
    stats.runs = run_index.size();
    // Free the parse-phase record buffer before standing up merge cursors.
    records.clear();
    records.shrink_to_fit();

    // Each cursor holds both a raw byte buffer and the parsed records, so
    // size them on the combined per-record footprint to keep the merge
    // phase's total refill memory within half the budget.
    const std::size_t per_run_records = std::max<std::size_t>(
        (budget / 2) /
            (run_index.size() * (sizeof(RawRecord) + kRecordBytes)),
        16);
    std::vector<std::unique_ptr<RunCursor>> cursors;
    cursors.reserve(run_index.size());
    for (const RunExtent& extent : run_index) {
      cursors.push_back(std::make_unique<RunCursor>(
          runs_path, extent.offset, extent.records, per_run_records));
    }
    note_peak(run_index.size() * per_run_records *
                  (sizeof(RawRecord) + kRecordBytes) +
              writer.max_user_bytes());

    const auto cursor_greater = [&](std::size_t a, std::size_t b) {
      return record_less(cursors[b]->head(), cursors[a]->head());
    };
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        decltype(cursor_greater)>
        heap(cursor_greater);
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (!cursors[i]->empty()) heap.push(i);
    }
    while (!heap.empty()) {
      const std::size_t idx = heap.top();
      heap.pop();
      sink.add(cursors[idx]->head());
      cursors[idx]->pop();
      if (!cursors[idx]->empty()) heap.push(idx);
    }
    std::remove(runs_path.c_str());
  }

  stats.duplicates = sink.finish();
  const ProfileStoreInfo info =
      writer.finish(stats.num_items, stats.duplicates);
  stats.ratings = info.ratings;
  stats.users = info.users;
  note_peak(writer.max_user_bytes() + read_buf_bytes);
  return stats;
}

ProfileStoreInfo read_profile_store(
    const std::string& store_path,
    const std::function<void(VertexId, std::uint64_t, SparseProfile)>& fn) {
  std::ifstream in(store_path, std::ios::binary);
  if (!in) throw err(Kind::Io, 0, "profile store: cannot open " + store_path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  if (file_size < kStoreHeaderBytes + kStoreFooterBytes) {
    throw err(Kind::Truncated, 0,
              "profile store " + store_path + ": too short for header+footer");
  }
  in.seekg(0);
  std::array<char, kStoreHeaderBytes> header{};
  read_exact(in, header.data(), header.size(), store_path);
  if (get_u32(header.data()) != kStoreMagic) {
    throw err(Kind::Corrupt, 0,
              "profile store " + store_path + ": bad magic");
  }
  if (get_u32(header.data() + 4) != kStoreVersion) {
    throw err(Kind::Corrupt, 0,
              "profile store " + store_path + ": unsupported version");
  }

  in.seekg(static_cast<std::streamoff>(file_size - kStoreFooterBytes));
  std::array<char, kStoreFooterBytes> footer{};
  read_exact(in, footer.data(), footer.size(), store_path);
  if (get_u32(footer.data() + 40) != kStoreMagic) {
    throw err(Kind::Corrupt, 0,
              "profile store " + store_path + ": bad trailing magic");
  }
  ProfileStoreInfo info;
  const std::uint64_t footer_users = get_u64(footer.data());
  if (footer_users > std::numeric_limits<VertexId>::max()) {
    throw err(Kind::Corrupt, 0,
              "profile store " + store_path + ": user count overflows");
  }
  info.users = static_cast<VertexId>(footer_users);
  info.num_items = get_u64(footer.data() + 8);
  info.ratings = get_u64(footer.data() + 16);
  info.duplicates = get_u64(footer.data() + 24);
  const std::uint64_t expect_fnv = get_u64(footer.data() + 32);

  in.seekg(kStoreHeaderBytes);
  std::uint64_t remaining = file_size - kStoreHeaderBytes - kStoreFooterBytes;
  std::uint64_t fnv = kFnv1aOffset;
  std::vector<char> buf;
  VertexId dense = 0;
  while (remaining > 0) {
    if (remaining < 12) {
      throw err(Kind::Truncated, 0,
                "profile store " + store_path + ": record header cut short");
    }
    std::array<char, 12> rec_header{};
    read_exact(in, rec_header.data(), rec_header.size(), store_path);
    const std::uint64_t raw_user = get_u64(rec_header.data());
    const std::uint32_t count = get_u32(rec_header.data() + 8);
    remaining -= 12;
    const std::uint64_t entry_bytes = static_cast<std::uint64_t>(count) * 8;
    if (entry_bytes > remaining) {
      throw err(Kind::Truncated, 0,
                "profile store " + store_path + ": entries cut short");
    }
    buf.resize(static_cast<std::size_t>(entry_bytes));
    read_exact(in, buf.data(), buf.size(), store_path);
    remaining -= entry_bytes;
    for (const char c : rec_header) {
      fnv = (fnv ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c))) *
            kFnv1aPrime;
    }
    for (const char c : buf) {
      fnv = (fnv ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c))) *
            kFnv1aPrime;
    }
    std::vector<ProfileEntry> entries;
    entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const char* p = buf.data() + static_cast<std::size_t>(i) * 8;
      entries.push_back({get_u32(p), get_f32(p + 4)});
    }
    if (fn) fn(dense, raw_user, SparseProfile(std::move(entries)));
    ++dense;
  }
  if (dense != info.users) {
    throw err(Kind::Corrupt, 0,
              "profile store " + store_path + ": footer claims " +
                  std::to_string(info.users) + " users, body holds " +
                  std::to_string(dense));
  }
  if (fnv != expect_fnv) {
    throw err(Kind::Corrupt, 0,
              "profile store " + store_path + ": body checksum mismatch");
  }
  return info;
}

RatingsData load_profile_store(const std::string& store_path) {
  RatingsData data;
  const ProfileStoreInfo info = read_profile_store(
      store_path,
      [&](VertexId, std::uint64_t raw_user, SparseProfile profile) {
        data.user_ids.push_back(raw_user);
        data.profiles.push_back(std::move(profile));
      });
  data.item_ids.resize(static_cast<std::size_t>(info.num_items));
  for (std::size_t i = 0; i < data.item_ids.size(); ++i) data.item_ids[i] = i;
  data.num_ratings = static_cast<std::size_t>(info.ratings);
  return data;
}

RatingsData synthetic_ratings(const SyntheticRatingsConfig& config,
                              Rng& rng) {
  if (config.num_items == 0 || config.rating_levels == 0) {
    throw std::invalid_argument("synthetic_ratings: bad config");
  }
  if (config.min_ratings > config.max_ratings) {
    throw std::invalid_argument("synthetic_ratings: min > max ratings");
  }
  // Zipf CDF over items.
  std::vector<double> cdf(config.num_items);
  double acc = 0.0;
  for (ItemId i = 0; i < config.num_items; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1),
                          config.popularity_alpha);
    cdf[i] = acc;
  }
  RatingsData data;
  data.profiles.reserve(config.num_users);
  data.user_ids.resize(config.num_users);
  data.item_ids.resize(config.num_items);
  for (VertexId u = 0; u < config.num_users; ++u) data.user_ids[u] = u;
  for (ItemId i = 0; i < config.num_items; ++i) data.item_ids[i] = i;

  std::unordered_set<ItemId> picked;
  for (VertexId u = 0; u < config.num_users; ++u) {
    const std::uint32_t span = config.max_ratings - config.min_ratings + 1;
    const std::uint32_t want = std::min<std::uint32_t>(
        config.min_ratings + static_cast<std::uint32_t>(rng.next_below(span)),
        config.num_items);
    picked.clear();
    std::vector<ProfileEntry> list;
    list.reserve(want);
    std::size_t guard = 0;
    while (list.size() < want && guard++ < 100000) {
      const double r = rng.next_double() * acc;
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
      const auto item = static_cast<ItemId>(it - cdf.begin());
      if (!picked.insert(item).second) continue;
      const float stars = static_cast<float>(
          1 + rng.next_below(config.rating_levels));
      list.push_back({item, stars});
      ++data.num_ratings;
    }
    data.profiles.emplace_back(std::move(list));
  }
  return data;
}

}  // namespace knnpc
