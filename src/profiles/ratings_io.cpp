#include "profiles/ratings_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace knnpc {

RatingsData load_ratings(std::istream& in) {
  RatingsData data;
  std::unordered_map<std::uint64_t, VertexId> user_remap;
  std::unordered_map<std::uint64_t, ItemId> item_remap;
  // Entries per user, merged into profiles at the end (last rating wins,
  // implemented by overwriting in a per-user map).
  std::vector<std::unordered_map<ItemId, float>> entries;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::replace(line.begin(), line.end(), ',', ' ');
    std::replace(line.begin(), line.end(), '\t', ' ');
    std::istringstream fields(line);
    std::uint64_t raw_user = 0;
    std::uint64_t raw_item = 0;
    float rating = 0.0f;
    if (!(fields >> raw_user >> raw_item >> rating)) {
      throw std::runtime_error("load_ratings: malformed line " +
                               std::to_string(lineno) + ": " + line);
    }
    auto [user_it, new_user] =
        user_remap.try_emplace(raw_user,
                               static_cast<VertexId>(user_remap.size()));
    if (new_user) {
      data.user_ids.push_back(raw_user);
      entries.emplace_back();
    }
    auto [item_it, new_item] =
        item_remap.try_emplace(raw_item,
                               static_cast<ItemId>(item_remap.size()));
    if (new_item) data.item_ids.push_back(raw_item);
    entries[user_it->second][item_it->second] = rating;
    ++data.num_ratings;
  }

  data.profiles.reserve(entries.size());
  for (const auto& user_entries : entries) {
    std::vector<ProfileEntry> list;
    list.reserve(user_entries.size());
    for (const auto& [item, rating] : user_entries) {
      list.push_back({item, rating});
    }
    data.profiles.emplace_back(std::move(list));
  }
  return data;
}

RatingsData load_ratings_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_ratings_file: cannot open " + path);
  }
  return load_ratings(in);
}

void save_ratings(std::ostream& out, const RatingsData& data) {
  out << "# knnpc ratings: " << data.profiles.size() << " users\n";
  for (VertexId u = 0; u < data.profiles.size(); ++u) {
    const std::uint64_t raw_user =
        u < data.user_ids.size() ? data.user_ids[u] : u;
    for (const ProfileEntry& e : data.profiles[u].entries()) {
      const std::uint64_t raw_item =
          e.item < data.item_ids.size() ? data.item_ids[e.item] : e.item;
      out << raw_user << ',' << raw_item << ',' << e.weight << '\n';
    }
  }
}

void save_ratings_file(const std::string& path, const RatingsData& data) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_ratings_file: cannot open " + path);
  }
  save_ratings(out, data);
}

RatingsData synthetic_ratings(const SyntheticRatingsConfig& config,
                              Rng& rng) {
  if (config.num_items == 0 || config.rating_levels == 0) {
    throw std::invalid_argument("synthetic_ratings: bad config");
  }
  if (config.min_ratings > config.max_ratings) {
    throw std::invalid_argument("synthetic_ratings: min > max ratings");
  }
  // Zipf CDF over items.
  std::vector<double> cdf(config.num_items);
  double acc = 0.0;
  for (ItemId i = 0; i < config.num_items; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1),
                          config.popularity_alpha);
    cdf[i] = acc;
  }
  RatingsData data;
  data.profiles.reserve(config.num_users);
  data.user_ids.resize(config.num_users);
  data.item_ids.resize(config.num_items);
  for (VertexId u = 0; u < config.num_users; ++u) data.user_ids[u] = u;
  for (ItemId i = 0; i < config.num_items; ++i) data.item_ids[i] = i;

  std::unordered_set<ItemId> picked;
  for (VertexId u = 0; u < config.num_users; ++u) {
    const std::uint32_t span = config.max_ratings - config.min_ratings + 1;
    const std::uint32_t want = std::min<std::uint32_t>(
        config.min_ratings + static_cast<std::uint32_t>(rng.next_below(span)),
        config.num_items);
    picked.clear();
    std::vector<ProfileEntry> list;
    list.reserve(want);
    std::size_t guard = 0;
    while (list.size() < want && guard++ < 100000) {
      const double r = rng.next_double() * acc;
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
      const auto item = static_cast<ItemId>(it - cdf.begin());
      if (!picked.insert(item).second) continue;
      const float stars = static_cast<float>(
          1 + rng.next_below(config.rating_levels));
      list.push_back({item, stars});
      ++data.num_ratings;
    }
    data.profiles.emplace_back(std::move(list));
  }
  return data;
}

}  // namespace knnpc
