// SIMD-friendly flat profile layout for the phase-4 similarity kernels.
//
// SparseProfile stores {item, weight} pairs interleaved (AoS), one heap
// allocation per user. The batched kernels in
// profiles/similarity_kernels.h want the opposite: structure-of-arrays —
// every profile's item ids contiguous (so the sorted-array intersection
// can compare a whole register of ids per instruction) and its weights
// contiguous, with the per-profile L2 norm and mean precomputed once
// instead of once per scored pair (the scalar adjusted-cosine recomputes
// the mean per pair — O(|p|) work the flat layout pays exactly once).
//
// A FlatProfileSet is a packed copy of a group of profiles — a loaded
// partition pair in the streaming engines, or the whole resident P(t) in
// persistent workers — built in O(total entries), which is noise next to
// the O(tuples x profile length) scoring it feeds. The precomputed norm
// and mean use the exact accumulation order of SparseProfile::norm() and
// the scalar measures in profiles/similarity.cpp, so kernel scores are
// bit-identical to the per-pair scalar path (the golden-checksum
// contract; see ARCHITECTURE.md "Phase-4 similarity kernels").
//
// Optional u16 scaled-weight quantization (profiles/compact.h) halves the
// weight payload; scoring then runs on the dequantized values, which is
// NOT bit-identical to f32 scoring — it is opt-in
// (EngineConfig::quantize_profiles, off by default) and outside the
// golden contract. Quantized scoring is still deterministic and
// bit-identical across kernel backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "profiles/profile.h"
#include "util/types.h"

namespace knnpc {

class FlatProfileSet {
 public:
  /// Borrowed view of one packed profile. `items`/`weights` point into
  /// the set's arrays and stay valid for the set's lifetime (views are
  /// materialised on lookup, after all add() calls).
  struct View {
    const ItemId* items = nullptr;
    const float* weights = nullptr;
    std::uint32_t size = 0;
    double norm = 0.0;  ///< L2 norm of the stored weights.
    double mean = 0.0;  ///< Mean stored weight (0 when empty).
  };

  explicit FlatProfileSet(bool quantize = false) : quantize_(quantize) {}

  void reserve(std::size_t users, std::size_t entries);

  /// Packs `p` under vertex id `v` (each id at most once).
  void add(VertexId v, const SparseProfile& p);

  /// Returns true and fills `out` when v is in the set; false (out
  /// untouched) otherwise.
  [[nodiscard]] bool find(VertexId v, View& out) const;

  /// View of `v`'s profile; throws std::out_of_range when absent.
  [[nodiscard]] View view(VertexId v) const;

  [[nodiscard]] std::size_t num_profiles() const { return norms_.size(); }
  [[nodiscard]] std::size_t total_entries() const { return items_.size(); }
  [[nodiscard]] bool quantized() const { return quantize_; }

  /// Bytes the weight payload occupies in this layout's wire/disk form:
  /// u16 codes + per-profile f32 scale when quantized, f32 otherwise.
  [[nodiscard]] std::size_t weight_payload_bytes() const;

  /// Per-profile quantization scale (1.0 when not quantized or empty).
  [[nodiscard]] float scale_of(VertexId v) const;

 private:
  [[nodiscard]] View view_of_row(std::uint32_t row) const;

  bool quantize_ = false;
  std::unordered_map<VertexId, std::uint32_t> row_of_;
  std::vector<std::uint32_t> offsets_{0};  // rows + 1
  std::vector<ItemId> items_;
  std::vector<float> weights_;  // dequantized copies when quantize_
  std::vector<std::uint16_t> qcodes_;
  std::vector<float> qscales_;
  std::vector<double> norms_;
  std::vector<double> means_;
};

/// Tiny MRU cache of FlatProfileSets keyed by partition id, sized to the
/// engine's resident-slot budget so a partition's flat layout lives
/// exactly as long as the partition itself stays loaded in the
/// PartitionCache (rebuilding per PI pair would re-copy each partition
/// once per pair instead of once per load).
class FlatSetCache {
 public:
  /// `capacity` is clamped to at least 2 so both halves of a PI pair can
  /// be referenced simultaneously (inserting the second must never evict
  /// the first).
  FlatSetCache(std::size_t capacity, bool quantize)
      : capacity_(capacity < 2 ? 2 : capacity), quantize_(quantize) {}

  /// Flat layout of partition `id`, built from the parallel
  /// vertices/profiles arrays on first use.
  const FlatProfileSet& get(PartitionId id,
                            std::span<const VertexId> vertices,
                            std::span<const SparseProfile> profiles);

 private:
  std::size_t capacity_;
  bool quantize_;
  std::list<std::pair<PartitionId, FlatProfileSet>> entries_;  // MRU first
};

}  // namespace knnpc
