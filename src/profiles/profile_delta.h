// Row-level deltas between two profile sets P_a -> P_b.
//
// The persistent-worker protocol (core/shard_driver.h) keeps each worker
// process's copy of P(t) in sync across iterations by shipping only the
// users phase 5 actually touched — on a churn workload that is a handful
// of rows per iteration instead of all n, and it is what lets persistent
// workers stop re-reading partition profile files from the shared store
// after the first sync. A delta with every row present doubles as the
// full-snapshot resync after a worker respawn.
//
// Serialised format ("KPRD", little endian, util/serde.h layout):
//   magic "KPRD" (4 bytes), u32 version, u32 num_users, u32 row count,
//   then per row (ascending user order): u32 user, u32 entry count,
//   count x {u32 item, f32 weight} (ascending item order, no zero
//   weights), and finally the u64 FNV-1a checksum of everything before
//   it.
// The serialisation is checksum-stable: the same delta always produces
// the same bytes (rows and entries are sorted by construction), so the
// trailing checksum both detects corruption and lets two sides compare
// deltas without exchanging them. This mirrors graph/knn_graph_delta
// ("KDLT") — the two formats are the complete iteration-sync vocabulary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "profiles/profile.h"
#include "profiles/profile_store.h"
#include "util/types.h"

namespace knnpc {

struct ProfileDelta {
  /// User count of BOTH endpoint stores (a delta never resizes).
  VertexId num_users = 0;
  /// (user, their complete new profile), ascending user order.
  std::vector<std::pair<VertexId, SparseProfile>> rows;

  [[nodiscard]] bool empty() const noexcept { return rows.empty(); }
};

/// Rows whose profiles differ between `from` and `to` (each row carries
/// `to`'s complete profile). Store sizes must match; throws
/// std::invalid_argument otherwise. delta(P, P) is empty — the fast path
/// costs one profile-compare pass and no row allocations.
ProfileDelta profile_delta(const ProfileStore& from, const ProfileStore& to);

/// Every row of `to` as a delta — the full-snapshot resync payload.
/// apply()ing it reproduces `to` from ANY same-size base store.
ProfileDelta full_profile_delta(const ProfileStore& to);

/// Rows for exactly the listed users (duplicates and ordering in `users`
/// are forgiven; the result is sorted and deduplicated). The driver uses
/// this to turn phase 5's touched-user list into the next iteration's
/// delta without diffing all n profiles. Throws std::invalid_argument on
/// out-of-range users.
ProfileDelta profile_delta_for_users(const ProfileStore& to,
                                     std::span<const VertexId> users);

/// Replaces the listed rows in `store`. Invariant (tested): for same-size
/// stores, apply(profile_delta(a, b), a) == b bit-for-bit. Throws
/// std::invalid_argument on size mismatch or out-of-range users.
void apply_profile_delta(InMemoryProfileStore& store,
                         const ProfileDelta& delta);

/// Serialises to the "KPRD" byte format documented above.
std::vector<std::byte> profile_delta_to_bytes(const ProfileDelta& delta);

/// Parses "KPRD" bytes. Throws std::runtime_error on bad magic/version,
/// truncation, trailing bytes, unsorted or out-of-range rows, unsorted or
/// zero-weight entries, or a checksum mismatch — corrupt input is always
/// a typed failure, never a silently wrong profile set.
ProfileDelta profile_delta_from_bytes(std::span<const std::byte> bytes);

/// FNV-1a checksum over the serialised header + rows (the value stored in
/// the trailing 8 bytes of the byte format). Equal deltas have equal
/// checksums; stable across serialise/parse round-trips.
std::uint64_t profile_delta_checksum(const ProfileDelta& delta);

}  // namespace knnpc
