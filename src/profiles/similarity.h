// Similarity measures sim(s, d) for phase 4.
//
// All measures return values where *larger is more similar* so the top-K
// selector needs no per-measure special-casing. All run in O(|a| + |b|)
// over the sorted entry lists.
#pragma once

#include <string>
#include <string_view>

#include "profiles/profile.h"

namespace knnpc {

enum class SimilarityMeasure {
  Cosine,          // dot / (|a| |b|)
  Jaccard,         // |A ∩ B| / |A ∪ B| over item *sets*
  Dice,            // 2|A ∩ B| / (|A| + |B|)
  Overlap,         // |A ∩ B| / min(|A|, |B|)
  CommonItems,     // |A ∩ B| (raw count; the simplest recommender signal)
  InverseEuclid,   // 1 / (1 + ||a - b||_2)
  Pearson,         // correlation over common items, mapped to [0, 1]
  AdjustedCosine,  // cosine after subtracting each user's mean rating
};

/// Parses "cosine" / "jaccard" / "dice" / "overlap" / "common" /
/// "inv-euclid" (case-sensitive); throws std::invalid_argument otherwise.
SimilarityMeasure parse_similarity(std::string_view name);

/// Human-readable name (inverse of parse_similarity).
std::string similarity_name(SimilarityMeasure measure);

/// Dispatches on `measure`. Both profiles may be empty (similarity 0, or
/// 1 for InverseEuclid of two empties — documented per measure below).
float similarity(SimilarityMeasure measure, const SparseProfile& a,
                 const SparseProfile& b);

// Direct entry points (used by tests and perf-critical inner loops).
float cosine_similarity(const SparseProfile& a, const SparseProfile& b);
float jaccard_similarity(const SparseProfile& a, const SparseProfile& b);
float dice_similarity(const SparseProfile& a, const SparseProfile& b);
float overlap_similarity(const SparseProfile& a, const SparseProfile& b);
float common_items(const SparseProfile& a, const SparseProfile& b);
float inverse_euclidean(const SparseProfile& a, const SparseProfile& b);
/// Pearson correlation of ratings over the common items, linearly mapped
/// from [-1, 1] to [0, 1] so that "larger is more similar" holds and the
/// top-K machinery stays measure-agnostic. Fewer than 2 common items (or
/// zero variance) yield 0.5 ("no evidence either way").
float pearson_similarity(const SparseProfile& a, const SparseProfile& b);
/// Cosine over mean-centred ratings (each user's mean over their own
/// items subtracted — the item-CF classic), mapped to [0, 1] like Pearson.
float adjusted_cosine(const SparseProfile& a, const SparseProfile& b);

}  // namespace knnpc
