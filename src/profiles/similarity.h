// Similarity measures sim(s, d) for phase 4.
//
// All measures return values where *larger is more similar* so the top-K
// selector needs no per-measure special-casing. All run in O(|a| + |b|)
// over the sorted entry lists. The batched phase-4 kernels
// (profiles/similarity_kernels.h) reimplement every measure over the flat
// profile layout and are bit-identical to these reference functions.
//
// Degenerate-input conventions (asserted by similarity_test):
//
//   measure        empty vs empty   empty vs non-empty   other edge cases
//   ------------   --------------   ------------------   -------------------
//   Cosine         0                0                    zero-norm side -> 0
//   Jaccard        0                0                    —
//   Dice           0                0                    —
//   Overlap        0                0                    —
//   CommonItems    0                0                    —
//   InverseEuclid  1 (distance 0)   1/(1+||other||)      —
//   Pearson        0.5              0.5                  <2 common or zero
//                                                        variance -> 0.5
//   AdjustedCosine 0.5              0.5                  <2 common or zero
//                                                        centred norm -> 0.5
//
// The set measures treat "nothing shared" as minimal similarity (0); the
// correlation measures cannot distinguish agreement from disagreement
// without >= 2 common items or nonzero variance, so they return the
// midpoint 0.5 ("no evidence either way") — returning 0 there would
// actively *penalise* unknown pairs below genuinely anti-correlated ones.
// InverseEuclid maps distance 0 to similarity 1: two empty profiles are
// identical, and identical profiles are maximally similar.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "profiles/profile.h"

namespace knnpc {

enum class SimilarityMeasure {
  Cosine,          // dot / (|a| |b|)
  Jaccard,         // |A ∩ B| / |A ∪ B| over item *sets*
  Dice,            // 2|A ∩ B| / (|A| + |B|)
  Overlap,         // |A ∩ B| / min(|A|, |B|)
  CommonItems,     // |A ∩ B| (raw count; the simplest recommender signal)
  InverseEuclid,   // 1 / (1 + ||a - b||_2)
  Pearson,         // correlation over common items, mapped to [0, 1]
  AdjustedCosine,  // cosine after subtracting each user's mean rating
};

/// Every measure, in enum order — for tests and benches that sweep all
/// measures without hand-maintaining a second list.
inline constexpr std::array<SimilarityMeasure, 8> kAllSimilarityMeasures = {
    SimilarityMeasure::Cosine,        SimilarityMeasure::Jaccard,
    SimilarityMeasure::Dice,          SimilarityMeasure::Overlap,
    SimilarityMeasure::CommonItems,   SimilarityMeasure::InverseEuclid,
    SimilarityMeasure::Pearson,       SimilarityMeasure::AdjustedCosine,
};

/// Parses "cosine" / "jaccard" / "dice" / "overlap" / "common" /
/// "inv-euclid" / "pearson" / "adj-cosine" (case-sensitive — exactly the
/// names similarity_name() emits); throws std::invalid_argument otherwise.
SimilarityMeasure parse_similarity(std::string_view name);

/// Human-readable name (inverse of parse_similarity).
std::string similarity_name(SimilarityMeasure measure);

/// Dispatches on `measure`. Degenerate inputs follow the per-measure
/// conventions in the table at the top of this header.
float similarity(SimilarityMeasure measure, const SparseProfile& a,
                 const SparseProfile& b);

// Direct entry points (used by tests and perf-critical inner loops).
float cosine_similarity(const SparseProfile& a, const SparseProfile& b);
float jaccard_similarity(const SparseProfile& a, const SparseProfile& b);
float dice_similarity(const SparseProfile& a, const SparseProfile& b);
float overlap_similarity(const SparseProfile& a, const SparseProfile& b);
float common_items(const SparseProfile& a, const SparseProfile& b);
float inverse_euclidean(const SparseProfile& a, const SparseProfile& b);
/// Pearson correlation of ratings over the common items (means taken over
/// the common items — the textbook user-CF definition), linearly mapped
/// from [-1, 1] to [0, 1] so that "larger is more similar" holds and the
/// top-K machinery stays measure-agnostic. Fewer than 2 common items or
/// zero variance over them yield 0.5 ("no evidence either way").
float pearson_similarity(const SparseProfile& a, const SparseProfile& b);
/// Cosine over mean-centred ratings (each user's mean over their own
/// items subtracted — the item-CF classic), computed over the *common*
/// items and mapped to [0, 1] like Pearson, with the same 0.5 degenerate
/// convention (<2 common items, or either centred norm zero — e.g. a
/// constant-rating profile whose common items all sit at its own mean).
float adjusted_cosine(const SparseProfile& a, const SparseProfile& b);

}  // namespace knnpc
