#include "profiles/flat_profile.h"

#include <cmath>
#include <stdexcept>

#include "profiles/compact.h"

namespace knnpc {

void FlatProfileSet::reserve(std::size_t users, std::size_t entries) {
  row_of_.reserve(users);
  offsets_.reserve(users + 1);
  norms_.reserve(users);
  means_.reserve(users);
  items_.reserve(entries);
  weights_.reserve(entries);
  if (quantize_) {
    qcodes_.reserve(entries);
    qscales_.reserve(users);
  }
}

void FlatProfileSet::add(VertexId v, const SparseProfile& p) {
  const auto row = static_cast<std::uint32_t>(norms_.size());
  if (!row_of_.emplace(v, row).second) {
    throw std::invalid_argument("FlatProfileSet::add: duplicate vertex");
  }
  float scale = 1.0f;
  if (quantize_) {
    const QuantizedWeights q = quantize_weights_u16(p.entries());
    scale = q.scale;
    for (const std::uint16_t code : q.codes) {
      weights_.push_back(dequantize_weight_u16(code, scale));
    }
    qcodes_.insert(qcodes_.end(), q.codes.begin(), q.codes.end());
    qscales_.push_back(scale);
  } else {
    for (const ProfileEntry& e : p.entries()) weights_.push_back(e.weight);
  }
  for (const ProfileEntry& e : p.entries()) items_.push_back(e.item);

  // Norm and mean over the *stored* weights, in entry order — the same
  // accumulation sequence as SparseProfile::norm() and the scalar
  // mean_weight() in similarity.cpp, so unquantized scores match the
  // scalar path bit-for-bit.
  const std::uint32_t begin = offsets_.back();
  const auto size = static_cast<std::uint32_t>(p.size());
  double sq = 0.0;
  double sum = 0.0;
  for (std::uint32_t i = begin; i < begin + size; ++i) {
    sq += static_cast<double>(weights_[i]) * weights_[i];
    sum += weights_[i];
  }
  norms_.push_back(std::sqrt(sq));
  means_.push_back(size == 0 ? 0.0 : sum / static_cast<double>(size));
  offsets_.push_back(begin + size);
}

FlatProfileSet::View FlatProfileSet::view_of_row(std::uint32_t row) const {
  View v;
  const std::uint32_t begin = offsets_[row];
  v.items = items_.data() + begin;
  v.weights = weights_.data() + begin;
  v.size = offsets_[row + 1] - begin;
  v.norm = norms_[row];
  v.mean = means_[row];
  return v;
}

bool FlatProfileSet::find(VertexId v, View& out) const {
  const auto it = row_of_.find(v);
  if (it == row_of_.end()) return false;
  out = view_of_row(it->second);
  return true;
}

FlatProfileSet::View FlatProfileSet::view(VertexId v) const {
  View out;
  if (!find(v, out)) {
    throw std::out_of_range("FlatProfileSet: vertex not in set");
  }
  return out;
}

std::size_t FlatProfileSet::weight_payload_bytes() const {
  if (quantize_) {
    return qcodes_.size() * sizeof(std::uint16_t) +
           qscales_.size() * sizeof(float);
  }
  return weights_.size() * sizeof(float);
}

float FlatProfileSet::scale_of(VertexId v) const {
  if (!quantize_) return 1.0f;
  const auto it = row_of_.find(v);
  if (it == row_of_.end()) {
    throw std::out_of_range("FlatProfileSet: vertex not in set");
  }
  return qscales_[it->second];
}

const FlatProfileSet& FlatSetCache::get(
    PartitionId id, std::span<const VertexId> vertices,
    std::span<const SparseProfile> profiles) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == id) {
      entries_.splice(entries_.begin(), entries_, it);  // mark MRU
      return entries_.front().second;
    }
  }
  while (entries_.size() >= capacity_) entries_.pop_back();
  entries_.emplace_front(id, FlatProfileSet(quantize_));
  FlatProfileSet& set = entries_.front().second;
  std::size_t total = 0;
  for (const SparseProfile& p : profiles) total += p.size();
  set.reserve(vertices.size(), total);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    set.add(vertices[i], profiles[i]);
  }
  return set;
}

}  // namespace knnpc
