#include "profiles/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace knnpc {
namespace {

std::uint32_t items_for_user(const ProfileGenConfig& config, Rng& rng) {
  if (config.min_items > config.max_items) {
    throw std::invalid_argument("profile gen: min_items > max_items");
  }
  const std::uint32_t span = config.max_items - config.min_items + 1;
  return config.min_items + static_cast<std::uint32_t>(rng.next_below(span));
}

SparseProfile make_profile(const std::vector<ItemId>& items, Rng& rng) {
  std::vector<ProfileEntry> entries;
  entries.reserve(items.size());
  for (ItemId item : items) {
    // Weight in (0, 1]: never zero, so entries are never dropped.
    entries.push_back(
        {item, static_cast<float>(1.0 - rng.next_double() * 0.999)});
  }
  return SparseProfile(std::move(entries));
}

}  // namespace

std::vector<SparseProfile> uniform_profiles(const ProfileGenConfig& config,
                                            Rng& rng) {
  if (config.num_items == 0) {
    throw std::invalid_argument("profile gen: num_items must be > 0");
  }
  std::vector<SparseProfile> out;
  out.reserve(config.num_users);
  std::unordered_set<ItemId> picked;
  for (VertexId u = 0; u < config.num_users; ++u) {
    const std::uint32_t want =
        std::min<std::uint32_t>(items_for_user(config, rng),
                                config.num_items);
    picked.clear();
    std::vector<ItemId> items;
    items.reserve(want);
    while (items.size() < want) {
      const auto item = static_cast<ItemId>(rng.next_below(config.num_items));
      if (picked.insert(item).second) items.push_back(item);
    }
    out.push_back(make_profile(items, rng));
  }
  return out;
}

std::vector<SparseProfile> clustered_profiles(
    const ClusteredGenConfig& config, Rng& rng) {
  const auto& base = config.base;
  if (config.num_clusters == 0) {
    throw std::invalid_argument("clustered gen: num_clusters must be > 0");
  }
  if (base.num_items < config.num_clusters) {
    throw std::invalid_argument("clustered gen: need num_items >= clusters");
  }
  const ItemId block = base.num_items / config.num_clusters;
  std::vector<SparseProfile> out;
  out.reserve(base.num_users);
  std::unordered_set<ItemId> picked;
  for (VertexId u = 0; u < base.num_users; ++u) {
    const std::uint32_t cluster = u % config.num_clusters;
    const ItemId block_lo = cluster * block;
    const std::uint32_t want =
        std::min<std::uint32_t>(items_for_user(base, rng), base.num_items);
    picked.clear();
    std::vector<ItemId> items;
    items.reserve(want);
    std::size_t guard = 0;
    while (items.size() < want && guard++ < 100000) {
      ItemId item;
      if (rng.next_bool(config.in_cluster_prob)) {
        item = block_lo + static_cast<ItemId>(rng.next_below(block));
      } else {
        item = static_cast<ItemId>(rng.next_below(base.num_items));
      }
      if (picked.insert(item).second) items.push_back(item);
    }
    out.push_back(make_profile(items, rng));
  }
  return out;
}

std::vector<std::uint32_t> planted_clusters(VertexId num_users,
                                            std::uint32_t num_clusters) {
  std::vector<std::uint32_t> out(num_users);
  for (VertexId u = 0; u < num_users; ++u) out[u] = u % num_clusters;
  return out;
}

SparseProfile clustered_profile_for(const ClusteredGenConfig& config,
                                    std::uint32_t cluster, Rng& rng) {
  // A single-user run of the clustered generator lands in cluster 0 (the
  // generator assigns clusters round-robin by user index); shift its item
  // block to the target cluster. The RNG consumption here is pinned: the
  // golden churn checksums depend on it.
  ClusteredGenConfig single = config;
  single.base.num_users = 1;
  const auto generated = clustered_profiles(single, rng);
  const ItemId block = config.base.num_items / config.num_clusters;
  SparseProfile shifted;
  for (const ProfileEntry& e : generated[0].entries()) {
    shifted.set((e.item + cluster * block) % config.base.num_items, e.weight);
  }
  return shifted;
}

std::vector<SparseProfile> zipf_profiles(const ProfileGenConfig& config,
                                         double alpha, Rng& rng) {
  if (config.num_items == 0) {
    throw std::invalid_argument("profile gen: num_items must be > 0");
  }
  // Precompute the Zipf CDF once.
  std::vector<double> cdf(config.num_items);
  double acc = 0.0;
  for (ItemId i = 0; i < config.num_items; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf[i] = acc;
  }
  auto sample_item = [&]() -> ItemId {
    const double r = rng.next_double() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    return static_cast<ItemId>(it - cdf.begin());
  };
  std::vector<SparseProfile> out;
  out.reserve(config.num_users);
  std::unordered_set<ItemId> picked;
  for (VertexId u = 0; u < config.num_users; ++u) {
    const std::uint32_t want =
        std::min<std::uint32_t>(items_for_user(config, rng),
                                config.num_items);
    picked.clear();
    std::vector<ItemId> items;
    items.reserve(want);
    std::size_t guard = 0;
    while (items.size() < want && guard++ < 100000) {
      const ItemId item = sample_item();
      if (picked.insert(item).second) items.push_back(item);
    }
    out.push_back(make_profile(items, rng));
  }
  return out;
}

}  // namespace knnpc
