// Phase 5: the lazy profile-update queue.
//
// "Throughout the iteration t, any changes in the profiles of the users are
// stored in a queue q but not incorporated into P(t). In this phase, the
// queue is read to update the profiles to P(t+1)."
#pragma once

#include <cstddef>
#include <vector>

#include "profiles/profile.h"
#include "profiles/profile_store.h"
#include "util/types.h"

namespace knnpc {

/// One queued change. Replace swaps the whole profile; SetItem / AddDelta
/// touch one entry (RemoveItem is SetItem with weight 0).
struct ProfileUpdate {
  enum class Kind { Replace, SetItem, AddDelta };

  Kind kind = Kind::SetItem;
  VertexId user = kInvalidVertex;
  ItemId item = 0;          // SetItem / AddDelta
  float value = 0.0f;       // SetItem weight or AddDelta delta
  SparseProfile profile;    // Replace payload
};

/// FIFO queue of profile changes, applied in arrival order (later updates
/// to the same user win — the paper's queue semantics).
class UpdateQueue {
 public:
  void push(ProfileUpdate update) { queue_.push_back(std::move(update)); }

  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  /// Read-only view of the queued updates in arrival order (workload
  /// shape tests and diagnostics inspect the stream without draining it).
  [[nodiscard]] const std::vector<ProfileUpdate>& updates() const noexcept {
    return queue_;
  }

  /// Applies every queued update to `store` in FIFO order and clears the
  /// queue. Returns the number of updates applied. Updates addressed to
  /// out-of-range users throw std::out_of_range (and the queue keeps the
  /// unapplied tail).
  ///
  /// When `touched` is non-null, the user id of every applied update is
  /// appended to it (duplicates preserved, appended as each update lands —
  /// so the list is complete even when a later update throws). The sharded
  /// driver turns this list into the next iteration's profile delta
  /// (profiles/profile_delta.h) instead of diffing all n profiles.
  std::size_t apply_to(InMemoryProfileStore& store,
                       std::vector<VertexId>* touched = nullptr);

  void clear() noexcept { queue_.clear(); }

 private:
  std::vector<ProfileUpdate> queue_;
};

}  // namespace knnpc
