#include "profiles/profile_delta.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "util/fnv.h"
#include "util/serde.h"

namespace knnpc {
namespace {

constexpr char kDeltaMagic[4] = {'K', 'P', 'R', 'D'};
constexpr std::uint32_t kDeltaVersion = 1;

void check_same_size(const ProfileStore& from, const ProfileStore& to) {
  if (from.num_users() != to.num_users()) {
    throw std::invalid_argument(
        "profile_delta: store sizes differ (" +
        std::to_string(from.num_users()) + " vs " +
        std::to_string(to.num_users()) + " users)");
  }
}

/// Serialises header + rows (everything the trailing checksum covers).
std::vector<std::byte> body_bytes(const ProfileDelta& delta) {
  std::vector<std::byte> bytes;
  std::size_t payload = 0;
  for (const auto& [user, profile] : delta.rows) {
    payload +=
        2 * sizeof(std::uint32_t) + profile.size() * sizeof(ProfileEntry);
  }
  bytes.reserve(16 + payload);
  for (const char c : kDeltaMagic) append_record(bytes, c);
  append_record(bytes, kDeltaVersion);
  append_record(bytes, delta.num_users);
  append_record(bytes, static_cast<std::uint32_t>(delta.rows.size()));
  for (const auto& [user, profile] : delta.rows) {
    append_record(bytes, user);
    append_record(bytes, static_cast<std::uint32_t>(profile.size()));
    for (const ProfileEntry& e : profile.entries()) {
      append_record(bytes, e.item);
      append_record(bytes, e.weight);
    }
  }
  return bytes;
}

}  // namespace

ProfileDelta profile_delta(const ProfileStore& from, const ProfileStore& to) {
  check_same_size(from, to);
  ProfileDelta delta;
  delta.num_users = to.num_users();
  for (VertexId u = 0; u < to.num_users(); ++u) {
    const SparseProfile& b = to.get(u);
    if (from.get(u) == b) continue;
    delta.rows.emplace_back(u, b);
  }
  return delta;
}

ProfileDelta full_profile_delta(const ProfileStore& to) {
  ProfileDelta delta;
  delta.num_users = to.num_users();
  delta.rows.reserve(to.num_users());
  for (VertexId u = 0; u < to.num_users(); ++u) {
    delta.rows.emplace_back(u, to.get(u));
  }
  return delta;
}

ProfileDelta profile_delta_for_users(const ProfileStore& to,
                                     std::span<const VertexId> users) {
  std::vector<VertexId> sorted(users.begin(), users.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  ProfileDelta delta;
  delta.num_users = to.num_users();
  delta.rows.reserve(sorted.size());
  for (const VertexId u : sorted) {
    if (u >= to.num_users()) {
      throw std::invalid_argument(
          "profile_delta_for_users: user " + std::to_string(u) +
          " out of range (store holds " + std::to_string(to.num_users()) +
          ")");
    }
    delta.rows.emplace_back(u, to.get(u));
  }
  return delta;
}

void apply_profile_delta(InMemoryProfileStore& store,
                         const ProfileDelta& delta) {
  if (store.num_users() != delta.num_users) {
    throw std::invalid_argument(
        "apply_profile_delta: delta size (" +
        std::to_string(delta.num_users) +
        " users) does not match the store (" +
        std::to_string(store.num_users()) + ")");
  }
  for (const auto& [user, profile] : delta.rows) {
    if (user >= store.num_users()) {
      throw std::invalid_argument(
          "apply_profile_delta: row user out of range");
    }
    store.set(user, profile);
  }
}

std::vector<std::byte> profile_delta_to_bytes(const ProfileDelta& delta) {
  std::vector<std::byte> bytes = body_bytes(delta);
  append_record(bytes, fnv1a_bytes(bytes));
  return bytes;
}

ProfileDelta profile_delta_from_bytes(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  auto fail = [](const std::string& what) -> std::runtime_error {
    return std::runtime_error("profile_delta_from_bytes: " + what);
  };
  auto read = [&]<typename T>(T& out) {
    if (!read_record(bytes, offset, out)) throw fail("truncated delta");
  };
  char magic[4];
  for (char& c : magic) read(c);
  if (std::memcmp(magic, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    throw fail("bad magic");
  }
  std::uint32_t version = 0;
  read(version);
  if (version != kDeltaVersion) {
    throw fail("unsupported version " + std::to_string(version));
  }
  ProfileDelta delta;
  read(delta.num_users);
  std::uint32_t rows = 0;
  read(rows);
  if (rows > delta.num_users) throw fail("row count exceeds user count");
  // Each row takes at least 8 bytes — reject a corrupt count before it
  // can drive the reserve below.
  if (bytes.size() < offset || rows > (bytes.size() - offset) / 8) {
    throw fail("row count exceeds input size");
  }
  delta.rows.reserve(rows);
  VertexId prev = 0;
  for (std::uint32_t i = 0; i < rows; ++i) {
    VertexId user = 0;
    std::uint32_t count = 0;
    read(user);
    read(count);
    if (user >= delta.num_users) throw fail("row user out of range");
    if (i > 0 && user <= prev) throw fail("rows not strictly ascending");
    prev = user;
    // The count is untrusted: bound it by the bytes actually present
    // before it drives the reserve — corrupt input must be a typed
    // failure, never a multi-gigabyte allocation.
    if (count > (bytes.size() - offset) / sizeof(ProfileEntry)) {
      throw fail("entry count exceeds input size");
    }
    std::vector<ProfileEntry> entries;
    entries.reserve(count);
    ItemId prev_item = 0;
    for (std::uint32_t j = 0; j < count; ++j) {
      ProfileEntry e;
      read(e.item);
      read(e.weight);
      // The SparseProfile invariant (sorted-unique, no zero weights) is
      // part of the wire contract: anything else would re-serialise to
      // different bytes and break checksum stability.
      if (j > 0 && e.item <= prev_item) {
        throw fail("entries not strictly ascending");
      }
      prev_item = e.item;
      if (e.weight == 0.0f) throw fail("zero-weight entry");
      entries.push_back(e);
    }
    delta.rows.emplace_back(user, SparseProfile(std::move(entries)));
  }
  std::uint64_t stored = 0;
  read(stored);
  if (offset != bytes.size()) throw fail("trailing bytes");
  const std::uint64_t actual =
      fnv1a_bytes(bytes.subspan(0, bytes.size() - 8));
  if (stored != actual) throw fail("checksum mismatch");
  return delta;
}

std::uint64_t profile_delta_checksum(const ProfileDelta& delta) {
  return fnv1a_bytes(body_bytes(delta));
}

}  // namespace knnpc
