// Whole-file binary read/write with byte accounting.
//
// Partition files are always consumed sequentially and whole (that is the
// paper's point: no random access), so the primitive is deliberately
// "read the whole file" / "write the whole file".
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace knnpc {

/// Cumulative I/O byte/op counters. Cheap to copy; subtract two snapshots
/// to get a delta.
struct IoCounters {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;

  IoCounters& operator+=(const IoCounters& other) noexcept {
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    read_ops += other.read_ops;
    write_ops += other.write_ops;
    return *this;
  }

  friend IoCounters operator-(IoCounters a, const IoCounters& b) noexcept {
    a.bytes_read -= b.bytes_read;
    a.bytes_written -= b.bytes_written;
    a.read_ops -= b.read_ops;
    a.write_ops -= b.write_ops;
    return a;
  }

  friend bool operator==(const IoCounters&, const IoCounters&) = default;
};

/// Writes `bytes` to `path` atomically (tmp file + rename), creating parent
/// directories. Throws std::runtime_error on failure. Updates `counters`.
void write_file(const std::filesystem::path& path,
                const std::vector<std::byte>& bytes, IoCounters& counters);

/// Reads the whole file. Throws std::runtime_error when missing/unreadable.
std::vector<std::byte> read_file(const std::filesystem::path& path,
                                 IoCounters& counters);

/// File size in bytes; 0 when the file does not exist.
std::uint64_t file_size(const std::filesystem::path& path);

/// A process-unique scratch directory under the system temp dir; removed
/// by the destructor. Used by tests and the engine's default work dir.
class ScratchDir {
 public:
  /// `tag` becomes part of the directory name for debuggability.
  explicit ScratchDir(const std::string& tag);
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;
  ~ScratchDir();

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace knnpc
