// External-memory sort of packed record files.
//
// Phase 1 must deliver edge files *sorted by bridge vertex*; at the scale
// the paper targets, a partition's edge list may not fit the memory
// budget, so we sort the classic way: bounded in-memory runs spilled to
// disk, then a k-way merge. PartitionStore uses this in low-memory mode;
// it is also a reusable substrate utility.
#pragma once

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "storage/block_file.h"
#include "util/serde.h"

namespace knnpc {

/// Statistics from one external sort.
struct ExternalSortStats {
  std::size_t records = 0;
  std::size_t runs = 0;           // spilled sorted runs (1 = fit in memory)
  std::uint64_t bytes_spilled = 0;
};

namespace detail {

template <TrivialRecord T>
std::vector<T> read_records_file(const std::filesystem::path& path) {
  IoCounters counters;
  return from_bytes<T>(read_file(path, counters));
}

}  // namespace detail

/// Sorts the packed records of `input` by `less` into `output` using at
/// most ~`memory_budget_bytes` of record memory at a time (minimum one
/// record per run; the merge holds one record per run). `input` and
/// `output` may be the same path. Stable within runs, not overall.
template <TrivialRecord T, typename Less>
ExternalSortStats external_sort_file(const std::filesystem::path& input,
                                     const std::filesystem::path& output,
                                     std::size_t memory_budget_bytes,
                                     Less less) {
  ExternalSortStats stats;
  const std::size_t run_records =
      std::max<std::size_t>(memory_budget_bytes / sizeof(T), 1);

  std::ifstream in(input, std::ios::binary);
  if (!in) {
    throw std::runtime_error("external_sort_file: cannot open " +
                             input.string());
  }

  // Pass 1: cut into sorted runs.
  const std::filesystem::path run_prefix = output.string() + ".run";
  std::vector<std::filesystem::path> run_paths;
  std::vector<T> buffer;
  buffer.reserve(run_records);
  IoCounters counters;
  for (;;) {
    buffer.resize(run_records);
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(run_records * sizeof(T)));
    const auto got = static_cast<std::size_t>(in.gcount()) / sizeof(T);
    buffer.resize(got);
    if (buffer.empty()) break;
    stats.records += buffer.size();
    std::sort(buffer.begin(), buffer.end(), less);
    if (run_paths.empty() && !in) {
      // Single run that fits in memory: write the output directly.
      write_file(output, to_bytes(buffer), counters);
      stats.runs = 1;
      return stats;
    }
    const auto run_path =
        run_prefix.string() + std::to_string(run_paths.size());
    write_file(run_path, to_bytes(buffer), counters);
    stats.bytes_spilled += buffer.size() * sizeof(T);
    run_paths.emplace_back(run_path);
    if (!in) break;
  }
  stats.runs = std::max<std::size_t>(run_paths.size(), 1);
  if (run_paths.empty()) {  // empty input
    write_file(output, {}, counters);
    return stats;
  }

  // Pass 2: k-way merge of the runs.
  struct Cursor {
    std::ifstream stream;
    T current;
    bool valid = false;

    explicit Cursor(const std::filesystem::path& path)
        : stream(path, std::ios::binary) {
      advance();
    }
    void advance() {
      stream.read(reinterpret_cast<char*>(&current), sizeof(T));
      valid = static_cast<std::size_t>(stream.gcount()) == sizeof(T);
    }
  };
  std::vector<std::unique_ptr<Cursor>> cursors;
  cursors.reserve(run_paths.size());
  for (const auto& path : run_paths) {
    cursors.push_back(std::make_unique<Cursor>(path));
  }
  auto heap_greater = [&less, &cursors](std::size_t a, std::size_t b) {
    // min-heap over cursor heads
    return less(cursors[b]->current, cursors[a]->current);
  };
  std::vector<std::size_t> heap;
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i]->valid) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), heap_greater);

  const std::filesystem::path tmp = output.string() + ".merged";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("external_sort_file: cannot open " +
                               tmp.string());
    }
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      const std::size_t idx = heap.back();
      out.write(reinterpret_cast<const char*>(&cursors[idx]->current),
                sizeof(T));
      cursors[idx]->advance();
      if (cursors[idx]->valid) {
        std::push_heap(heap.begin(), heap.end(), heap_greater);
      } else {
        heap.pop_back();
      }
    }
    if (!out) {
      throw std::runtime_error("external_sort_file: merge write failed");
    }
  }
  std::filesystem::rename(tmp, output);
  for (const auto& path : run_paths) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  return stats;
}

}  // namespace knnpc
