#include "storage/block_file.h"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <stdexcept>
#include <system_error>

namespace knnpc {
namespace fs = std::filesystem;

void write_file(const fs::path& path, const std::vector<std::byte>& bytes,
                IoCounters& counters) {
  if (path.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);  // ok if it exists
  }
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_file: cannot open " + tmp.string());
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("write_file: short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("write_file: rename failed: " + ec.message());
  }
  counters.bytes_written += bytes.size();
  ++counters.write_ops;
}

std::vector<std::byte> read_file(const fs::path& path, IoCounters& counters) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("read_file: cannot open " + path.string());
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) {
      throw std::runtime_error("read_file: short read from " + path.string());
    }
  }
  counters.bytes_read += bytes.size();
  ++counters.read_ops;
  return bytes;
}

std::uint64_t file_size(const fs::path& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

ScratchDir::ScratchDir(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const auto id = counter.fetch_add(1, std::memory_order_relaxed);
  path_ = fs::temp_directory_path() /
          ("knnpc-" + tag + "-" + std::to_string(::getpid()) + "-" +
           std::to_string(id));
  fs::create_directories(path_);
}

ScratchDir::~ScratchDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort
}

}  // namespace knnpc
