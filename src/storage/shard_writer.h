// Bounded-memory record shard writers (phase 2's tuple spill and phase
// 4's score spill).
//
// H's unique tuples are bucketed by PI pair; phase 4's candidate scores
// can be bucketed by owning partition. Holding every bucket in memory
// until its phase ends would defeat the memory budget on large graphs, so
// the writer keeps a small buffer per shard and appends the largest
// buffer to its file whenever the global budget is exceeded — peak memory
// stays at ~`buffer_budget_bytes` regardless of record volume.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "storage/io_model.h"
#include "util/serde.h"
#include "util/types.h"

namespace knnpc {

/// Thread-safety: a RecordShardWriter is single-writer — add()/finish()
/// must come from one thread at a time (the engine calls it from the
/// phase-2 loop; the shard driver gives each producer its own instance via
/// RoutedShardWriter below). The optional IoAccountant MAY be shared
/// across writers on different threads — its charges are atomic.
///
/// Ownership: the writer owns its buffers and the files under <dir>; it
/// does NOT own the accountant, which must outlive the writer.
template <TrivialRecord T>
class RecordShardWriter {
 public:
  /// Shard `s` lives at <dir>/<stem>_<s>.bin (stale files from a previous
  /// run are removed on construction).
  RecordShardWriter(std::filesystem::path dir, std::string stem,
                    std::size_t num_shards, std::size_t buffer_budget_bytes,
                    IoAccountant* accountant = nullptr)
      : dir_(std::move(dir)), stem_(std::move(stem)), buffers_(num_shards),
        counts_(num_shards, 0),
        budget_records_(std::max<std::size_t>(
            buffer_budget_bytes / sizeof(T), num_shards)),
        accountant_(accountant) {
    std::filesystem::create_directories(dir_);
    for (std::size_t s = 0; s < num_shards; ++s) {
      std::error_code ec;
      std::filesystem::remove(shard_path(s), ec);
    }
  }

  void add(std::size_t shard, const T& record) {
    if (finished_) {
      throw std::logic_error("RecordShardWriter: add after finish");
    }
    buffers_.at(shard).push_back(record);
    ++counts_[shard];
    ++buffered_;
    if (buffered_ > budget_records_) flush_largest();
  }

  /// Flushes all remaining buffers. Must be called before reading shards.
  void finish() {
    if (finished_) return;
    for (std::size_t s = 0; s < buffers_.size(); ++s) flush_shard(s);
    finished_ = true;
  }

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return counts_.size();
  }
  /// Records routed to shard `s` so far (buffered + flushed).
  [[nodiscard]] std::uint64_t shard_records(std::size_t shard) const {
    return counts_.at(shard);
  }
  /// Path of shard `s` (exists only once something was flushed to it).
  [[nodiscard]] std::filesystem::path shard_path(std::size_t shard) const {
    return dir_ / (stem_ + "_" + std::to_string(shard) + ".bin");
  }

 private:
  void flush_largest() {
    std::size_t largest = 0;
    for (std::size_t s = 1; s < buffers_.size(); ++s) {
      if (buffers_[s].size() > buffers_[largest].size()) largest = s;
    }
    flush_shard(largest);
  }

  void flush_shard(std::size_t shard) {
    auto& buffer = buffers_[shard];
    if (buffer.empty()) return;
    std::ofstream out(shard_path(shard), std::ios::binary | std::ios::app);
    if (!out) {
      throw std::runtime_error("RecordShardWriter: cannot open " +
                               shard_path(shard).string());
    }
    const auto bytes = to_bytes(buffer);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("RecordShardWriter: short append to " +
                               shard_path(shard).string());
    }
    if (accountant_ != nullptr) accountant_->charge_write(bytes.size());
    buffered_ -= buffer.size();
    buffer.clear();
    buffer.shrink_to_fit();
  }

  std::filesystem::path dir_;
  std::string stem_;
  std::vector<std::vector<T>> buffers_;
  std::vector<std::uint64_t> counts_;
  std::size_t budget_records_;
  std::size_t buffered_ = 0;
  bool finished_ = false;
  IoAccountant* accountant_;
};

/// Reads back a whole shard. Missing files (never-flushed shards) return
/// an empty vector; truncated trailing records are dropped by from_bytes.
template <TrivialRecord T>
std::vector<T> read_record_shard(const std::filesystem::path& path,
                                 IoAccountant* accountant = nullptr) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (!in) {
      throw std::runtime_error("read_record_shard: short read from " +
                               path.string());
    }
  }
  if (accountant != nullptr) accountant->charge_read(bytes.size());
  return from_bytes<T>(bytes);
}

/// Phase-2 specialisation: tuple shards keyed by PI pair.
using TupleShardWriter = RecordShardWriter<Tuple>;

/// Stem of producer `p`'s private writer inside a routed spool: spool
/// (p, c) lives at <dir>/<stem>_p<p>_<c>.bin. Exposed so a process-mode
/// shard worker (core/shard_driver.h) can reconstruct its producer sink
/// in its own process with the exact on-disk layout RoutedShardWriter
/// uses — the layout is defined here and nowhere else.
inline std::string routed_producer_stem(const std::string& stem,
                                        std::size_t p) {
  return stem + "_p" + std::to_string(p);
}

/// Path of routed spool (p, c) without a RoutedShardWriter instance (the
/// consumer side of the cross-process exchange).
inline std::filesystem::path routed_spool_path(
    const std::filesystem::path& dir, const std::string& stem, std::size_t p,
    std::size_t c) {
  return dir / (routed_producer_stem(stem, p) + "_" + std::to_string(c) +
                ".bin");
}

/// Routed multi-sink spool: the shard driver's cross-shard exchange.
///
/// `producers` writer threads route records to `consumers` logical sinks;
/// spool (p, c) lives at <dir>/<stem>_p<p>_<c>.bin, so there is one file
/// per (producer-shard, consumer-shard) pair and NO shared mutable state
/// between producer threads — producer p appends only through its own
/// RecordShardWriter. Consumer c's record stream is the concatenation of
/// spools (0..P-1, c) in ascending producer order, which makes the read
/// order deterministic (the KNN pipeline additionally doesn't depend on
/// it: the top-K kept set is offer-order-independent).
///
/// Thread-safety: producer(p) hands out an independent single-writer
/// sink; distinct producers may add() concurrently. finish() and the
/// consumer-side reads must happen after every producer thread has been
/// joined (the driver's phase barrier). A shared IoAccountant is safe —
/// charges are atomic.
template <TrivialRecord T>
class RoutedShardWriter {
 public:
  /// Total buffered memory across all producers stays near
  /// `buffer_budget_bytes` (each producer gets an equal slice).
  RoutedShardWriter(const std::filesystem::path& dir, const std::string& stem,
                    std::size_t producers, std::size_t consumers,
                    std::size_t buffer_budget_bytes,
                    IoAccountant* accountant = nullptr)
      : consumers_(consumers) {
    if (producers == 0 || consumers == 0) {
      throw std::invalid_argument(
          "RoutedShardWriter: producers and consumers must be > 0");
    }
    writers_.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      writers_.emplace_back(dir, routed_producer_stem(stem, p), consumers,
                            std::max<std::size_t>(
                                buffer_budget_bytes / producers, sizeof(T)),
                            accountant);
    }
  }

  [[nodiscard]] std::size_t num_producers() const noexcept {
    return writers_.size();
  }
  [[nodiscard]] std::size_t num_consumers() const noexcept {
    return consumers_;
  }

  /// Producer `p`'s private sink; route records with
  /// `producer(p).add(consumer, record)`. Thread-confined to p's thread.
  [[nodiscard]] RecordShardWriter<T>& producer(std::size_t p) {
    return writers_.at(p);
  }

  /// Flushes every producer. Call once, after producer threads joined.
  void finish() {
    for (auto& w : writers_) w.finish();
  }

  /// Records routed to consumer `c` so far, across all producers.
  [[nodiscard]] std::uint64_t consumer_records(std::size_t c) const {
    std::uint64_t total = 0;
    for (const auto& w : writers_) total += w.shard_records(c);
    return total;
  }

  /// Path of spool (p, c) — lets a consumer stream its input one
  /// producer at a time (read_record_shard per path) instead of
  /// materialising the whole read_consumer() concatenation.
  [[nodiscard]] std::filesystem::path spool_path(std::size_t p,
                                                 std::size_t c) const {
    return writers_.at(p).shard_path(c);
  }

  /// Reads back consumer `c`'s full stream (producers in ascending order).
  /// Requires finish() to have been called.
  [[nodiscard]] std::vector<T> read_consumer(
      std::size_t c, IoAccountant* accountant = nullptr) const {
    std::vector<T> out;
    out.reserve(consumer_records(c));
    for (const auto& w : writers_) {
      const std::vector<T> part = read_record_shard<T>(w.shard_path(c),
                                                       accountant);
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

 private:
  std::size_t consumers_;
  std::vector<RecordShardWriter<T>> writers_;
};

/// Phase-4 spill record: a scored candidate pair.
struct ScoredTuple {
  VertexId s = kInvalidVertex;
  VertexId d = kInvalidVertex;
  float score = 0.0f;

  friend bool operator==(const ScoredTuple&, const ScoredTuple&) = default;
};

}  // namespace knnpc
