// Bounded-memory record shard writers (phase 2's tuple spill and phase
// 4's score spill).
//
// H's unique tuples are bucketed by PI pair; phase 4's candidate scores
// can be bucketed by owning partition. Holding every bucket in memory
// until its phase ends would defeat the memory budget on large graphs, so
// the writer keeps a small buffer per shard and appends the largest
// buffer to its file whenever the global budget is exceeded — peak memory
// stays at ~`buffer_budget_bytes` regardless of record volume.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "storage/io_model.h"
#include "util/serde.h"
#include "util/types.h"

namespace knnpc {

template <TrivialRecord T>
class RecordShardWriter {
 public:
  /// Shard `s` lives at <dir>/<stem>_<s>.bin (stale files from a previous
  /// run are removed on construction).
  RecordShardWriter(std::filesystem::path dir, std::string stem,
                    std::size_t num_shards, std::size_t buffer_budget_bytes,
                    IoAccountant* accountant = nullptr)
      : dir_(std::move(dir)), stem_(std::move(stem)), buffers_(num_shards),
        counts_(num_shards, 0),
        budget_records_(std::max<std::size_t>(
            buffer_budget_bytes / sizeof(T), num_shards)),
        accountant_(accountant) {
    std::filesystem::create_directories(dir_);
    for (std::size_t s = 0; s < num_shards; ++s) {
      std::error_code ec;
      std::filesystem::remove(shard_path(s), ec);
    }
  }

  void add(std::size_t shard, const T& record) {
    if (finished_) {
      throw std::logic_error("RecordShardWriter: add after finish");
    }
    buffers_.at(shard).push_back(record);
    ++counts_[shard];
    ++buffered_;
    if (buffered_ > budget_records_) flush_largest();
  }

  /// Flushes all remaining buffers. Must be called before reading shards.
  void finish() {
    if (finished_) return;
    for (std::size_t s = 0; s < buffers_.size(); ++s) flush_shard(s);
    finished_ = true;
  }

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return counts_.size();
  }
  /// Records routed to shard `s` so far (buffered + flushed).
  [[nodiscard]] std::uint64_t shard_records(std::size_t shard) const {
    return counts_.at(shard);
  }
  /// Path of shard `s` (exists only once something was flushed to it).
  [[nodiscard]] std::filesystem::path shard_path(std::size_t shard) const {
    return dir_ / (stem_ + "_" + std::to_string(shard) + ".bin");
  }

 private:
  void flush_largest() {
    std::size_t largest = 0;
    for (std::size_t s = 1; s < buffers_.size(); ++s) {
      if (buffers_[s].size() > buffers_[largest].size()) largest = s;
    }
    flush_shard(largest);
  }

  void flush_shard(std::size_t shard) {
    auto& buffer = buffers_[shard];
    if (buffer.empty()) return;
    std::ofstream out(shard_path(shard), std::ios::binary | std::ios::app);
    if (!out) {
      throw std::runtime_error("RecordShardWriter: cannot open " +
                               shard_path(shard).string());
    }
    const auto bytes = to_bytes(buffer);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error("RecordShardWriter: short append to " +
                               shard_path(shard).string());
    }
    if (accountant_ != nullptr) accountant_->charge_write(bytes.size());
    buffered_ -= buffer.size();
    buffer.clear();
    buffer.shrink_to_fit();
  }

  std::filesystem::path dir_;
  std::string stem_;
  std::vector<std::vector<T>> buffers_;
  std::vector<std::uint64_t> counts_;
  std::size_t budget_records_;
  std::size_t buffered_ = 0;
  bool finished_ = false;
  IoAccountant* accountant_;
};

/// Reads back a whole shard. Missing files (never-flushed shards) return
/// an empty vector; truncated trailing records are dropped by from_bytes.
template <TrivialRecord T>
std::vector<T> read_record_shard(const std::filesystem::path& path,
                                 IoAccountant* accountant = nullptr) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (!in) {
      throw std::runtime_error("read_record_shard: short read from " +
                               path.string());
    }
  }
  if (accountant != nullptr) accountant->charge_read(bytes.size());
  return from_bytes<T>(bytes);
}

/// Phase-2 specialisation: tuple shards keyed by PI pair.
using TupleShardWriter = RecordShardWriter<Tuple>;

/// Phase-4 spill record: a scored candidate pair.
struct ScoredTuple {
  VertexId s = kInvalidVertex;
  VertexId d = kInvalidVertex;
  float score = 0.0f;

  friend bool operator==(const ScoredTuple&, const ScoredTuple&) = default;
};

}  // namespace knnpc
