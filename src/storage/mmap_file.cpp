#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

namespace knnpc {

MmapFile::MmapFile(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("MmapFile: cannot open " + path.string());
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("MmapFile: fstat failed for " + path.string());
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;  // empty file: empty span, nothing mapped
  }
  void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) {
    throw std::runtime_error("MmapFile: mmap failed for " + path.string());
  }
  data_ = mapping;
  mapped_ = true;
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

MmapFile::~MmapFile() { reset(); }

void MmapFile::advise_sequential() const noexcept {
  if (mapped_) {
    ::madvise(data_, size_, MADV_SEQUENTIAL);
  }
}

void MmapFile::reset() noexcept {
  if (mapped_) {
    ::munmap(data_, size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

}  // namespace knnpc
