#include "storage/partition_store.h"

#include <algorithm>
#include <stdexcept>

#include "storage/external_sort.h"
#include "storage/mmap_file.h"
#include "storage/shard_writer.h"
#include "util/serde.h"

namespace knnpc {
namespace fs = std::filesystem;

const SparseProfile* PartitionData::profile_of(VertexId v) const {
  const auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return nullptr;
  const auto idx = static_cast<std::size_t>(it - vertices.begin());
  return &profiles[idx];
}

std::uint64_t PartitionData::approx_bytes() const {
  std::uint64_t bytes = vertices.size() * sizeof(VertexId) +
                        (in_edges.size() + out_edges.size()) * sizeof(Edge);
  for (const auto& p : profiles) bytes += p.size() * sizeof(ProfileEntry);
  return bytes;
}

PartitionStore::PartitionStore(fs::path dir, IoModel model, Mode mode)
    : dir_(std::move(dir)), io_(std::move(model)), mode_(mode) {
  fs::create_directories(dir_);
}

fs::path PartitionStore::file(PartitionId id, const char* suffix) const {
  return dir_ / ("part_" + std::to_string(id) + suffix);
}

std::vector<std::byte> PartitionStore::fetch(const fs::path& path) const {
  if (mode_ == Mode::Mmap) {
    const MmapFile mapping(path);
    mapping.advise_sequential();
    const auto view = mapping.bytes();
    std::vector<std::byte> bytes(view.begin(), view.end());
    io_.charge_read(bytes.size());
    return bytes;
  }
  IoCounters raw;
  auto bytes = read_file(path, raw);
  io_.charge_read(bytes.size());
  return bytes;
}

void PartitionStore::write_all(const EdgeList& graph,
                               const PartitionAssignment& assignment,
                               const ProfileStore& profiles,
                               bool include_profiles) {
  if (graph.num_vertices != assignment.num_vertices()) {
    throw std::invalid_argument(
        "PartitionStore::write_all: graph/assignment size mismatch");
  }
  if (!assignment.fully_assigned()) {
    throw std::invalid_argument(
        "PartitionStore::write_all: assignment incomplete");
  }
  m_ = assignment.num_partitions();

  // Bucket edges by the partition of their bridge vertex. Edge (s, d) acts
  // as an in-edge of owner(d) (bridge d) and as an out-edge of owner(s)
  // (bridge s).
  std::vector<std::vector<Edge>> in_bucket(m_);
  std::vector<std::vector<Edge>> out_bucket(m_);
  for (const Edge& e : graph.edges) {
    in_bucket[assignment.owner(e.dst)].push_back(e);
    out_bucket[assignment.owner(e.src)].push_back(e);
  }

  IoCounters raw;  // write_file wants a counter; we fold into io_ below.
  for (PartitionId p = 0; p < m_; ++p) {
    // Sort by bridge: in-edges (s, v) by v = dst (then s); out-edges
    // (v, d) by v = src (then d).
    std::sort(in_bucket[p].begin(), in_bucket[p].end(),
              [](const Edge& a, const Edge& b) {
                return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
              });
    std::sort(out_bucket[p].begin(), out_bucket[p].end());

    const auto members = assignment.members(p);
    const auto in_bytes = to_bytes(in_bucket[p]);
    const auto out_bytes = to_bytes(out_bucket[p]);
    write_file(file(p, ".in"), in_bytes, raw);
    write_file(file(p, ".out"), out_bytes, raw);
    io_.charge_write(in_bytes.size());
    io_.charge_write(out_bytes.size());
    if (include_profiles) {
      std::vector<SparseProfile> member_profiles;
      member_profiles.reserve(members.size());
      for (VertexId v : members) member_profiles.push_back(profiles.get(v));
      const auto prof_bytes = pack_profiles(member_profiles);
      write_file(file(p, ".prof"), prof_bytes, raw);
      io_.charge_write(prof_bytes.size());
    }

    // Vertex membership file (ascending ids).
    const auto member_bytes = to_bytes(members);
    write_file(file(p, ".vtx"), member_bytes, raw);
    io_.charge_write(member_bytes.size());
  }
}

void PartitionStore::write_all_streaming(
    const EdgeList& graph, const PartitionAssignment& assignment,
    const ProfileStore& profiles, std::size_t sort_buffer_bytes,
    bool include_profiles) {
  if (graph.num_vertices != assignment.num_vertices()) {
    throw std::invalid_argument(
        "PartitionStore::write_all_streaming: size mismatch");
  }
  if (!assignment.fully_assigned()) {
    throw std::invalid_argument(
        "PartitionStore::write_all_streaming: assignment incomplete");
  }
  m_ = assignment.num_partitions();

  // Stream edges to unsorted per-partition spill files under a bounded
  // buffer, then external-sort each by its bridge.
  {
    RecordShardWriter<Edge> in_writer(dir_, "unsorted_in", m_,
                                      sort_buffer_bytes / 2, &io_);
    RecordShardWriter<Edge> out_writer(dir_, "unsorted_out", m_,
                                       sort_buffer_bytes / 2, &io_);
    for (const Edge& e : graph.edges) {
      in_writer.add(assignment.owner(e.dst), e);
      out_writer.add(assignment.owner(e.src), e);
    }
    in_writer.finish();
    out_writer.finish();
    for (PartitionId p = 0; p < m_; ++p) {
      // Missing spill files (empty partitions) become empty edge files.
      const fs::path in_spill = in_writer.shard_path(p);
      const fs::path out_spill = out_writer.shard_path(p);
      IoCounters raw;
      if (!fs::exists(in_spill)) write_file(in_spill, {}, raw);
      if (!fs::exists(out_spill)) write_file(out_spill, {}, raw);
      external_sort_file<Edge>(
          in_spill, file(p, ".in"), sort_buffer_bytes,
          [](const Edge& a, const Edge& b) {
            return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
          });
      external_sort_file<Edge>(out_spill, file(p, ".out"),
                               sort_buffer_bytes, std::less<Edge>{});
      io_.charge_write(knnpc::file_size(file(p, ".in")));
      io_.charge_write(knnpc::file_size(file(p, ".out")));
      std::error_code ec;
      fs::remove(in_spill, ec);
      fs::remove(out_spill, ec);
    }
  }

  // Profiles and membership, one partition at a time.
  IoCounters raw;
  for (PartitionId p = 0; p < m_; ++p) {
    const auto members = assignment.members(p);
    if (include_profiles) {
      std::vector<SparseProfile> member_profiles;
      member_profiles.reserve(members.size());
      for (VertexId v : members) member_profiles.push_back(profiles.get(v));
      const auto prof_bytes = pack_profiles(member_profiles);
      write_file(file(p, ".prof"), prof_bytes, raw);
      io_.charge_write(prof_bytes.size());
    }
    const auto member_bytes = to_bytes(members);
    write_file(file(p, ".vtx"), member_bytes, raw);
    io_.charge_write(member_bytes.size());
  }
}

PartitionData PartitionStore::load(PartitionId id) const {
  PartitionData data;
  data.id = id;
  const auto vtx_bytes = fetch(file(id, ".vtx"));
  const auto in_bytes = fetch(file(id, ".in"));
  const auto out_bytes = fetch(file(id, ".out"));
  const auto prof_bytes = fetch(file(id, ".prof"));

  data.vertices = from_bytes<VertexId>(vtx_bytes);
  data.in_edges = from_bytes<Edge>(in_bytes);
  data.out_edges = from_bytes<Edge>(out_bytes);
  data.profiles = unpack_profiles(prof_bytes);
  if (data.profiles.size() != data.vertices.size()) {
    throw std::runtime_error("PartitionStore::load: profile count mismatch");
  }
  return data;
}

PartitionData PartitionStore::load_edges(PartitionId id) const {
  PartitionData data;
  data.id = id;
  const auto vtx_bytes = fetch(file(id, ".vtx"));
  const auto in_bytes = fetch(file(id, ".in"));
  const auto out_bytes = fetch(file(id, ".out"));
  data.vertices = from_bytes<VertexId>(vtx_bytes);
  data.in_edges = from_bytes<Edge>(in_bytes);
  data.out_edges = from_bytes<Edge>(out_bytes);
  return data;
}

void PartitionStore::write_profiles(
    PartitionId id, const std::vector<VertexId>& vertices,
    const std::vector<SparseProfile>& profiles) {
  if (vertices.size() != profiles.size()) {
    throw std::invalid_argument(
        "PartitionStore::write_profiles: size mismatch");
  }
  IoCounters raw;
  const auto prof_bytes = pack_profiles(profiles);
  write_file(file(id, ".prof"), prof_bytes, raw);
  io_.charge_write(prof_bytes.size());
  const auto member_bytes = to_bytes(vertices);
  write_file(file(id, ".vtx"), member_bytes, raw);
  io_.charge_write(member_bytes.size());
}

PartitionCache::PartitionCache(const PartitionStore& store, std::size_t slots,
                               bool edges_only)
    : store_(store),
      slots_(std::max<std::size_t>(slots, 1)),
      edges_only_(edges_only) {}

const PartitionData& PartitionCache::get(PartitionId id) {
  if (auto it = resident_.find(id); it != resident_.end()) {
    lru_.remove(id);
    lru_.push_front(id);
    return it->second;
  }
  if (resident_.size() >= slots_) {
    const PartitionId victim = lru_.back();
    lru_.pop_back();
    resident_.erase(victim);
    ++unloads_;
  }
  auto [it, inserted] = resident_.emplace(
      id, edges_only_ ? store_.load_edges(id) : store_.load(id));
  lru_.push_front(id);
  ++loads_;
  return it->second;
}

bool PartitionCache::resident(PartitionId id) const {
  return resident_.contains(id);
}

void PartitionCache::flush() {
  unloads_ += resident_.size();
  resident_.clear();
  lru_.clear();
}

}  // namespace knnpc
