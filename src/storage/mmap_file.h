// Read-only memory-mapped files.
//
// The GraphChi lineage the paper builds on relies on the page cache doing
// the heavy lifting for sequential scans; mapping partition files instead
// of copying them through read() halves the memory traffic for the
// edge-file scans of phase 2. PartitionStore can run in either mode
// (see PartitionStore::Mode).
#pragma once

#include <cstddef>
#include <filesystem>
#include <span>

namespace knnpc {

/// RAII mmap(PROT_READ) of an entire file. Move-only.
class MmapFile {
 public:
  MmapFile() = default;
  /// Maps the whole file; throws std::runtime_error when the file cannot
  /// be opened or mapped. Empty files map to an empty span.
  explicit MmapFile(const std::filesystem::path& path);
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr || size_ == 0; }

  /// Advises the kernel that the mapping will be read sequentially.
  void advise_sequential() const noexcept;

 private:
  void reset() noexcept;

  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace knnpc
