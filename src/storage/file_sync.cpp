#include "storage/file_sync.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "storage/block_file.h"
#include "util/fnv.h"

namespace knnpc {
namespace {

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(v));
  std::memcpy(out.data() + offset, &v, sizeof(v));
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(v));
  std::memcpy(out.data() + offset, &v, sizeof(v));
}

void append_string(std::vector<std::byte>& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  const std::size_t offset = out.size();
  out.resize(offset + s.size());
  std::memcpy(out.data() + offset, s.data(), s.size());
}

template <typename T>
T take_scalar(std::span<const std::byte> bytes, std::size_t& offset,
              const char* what) {
  if (offset + sizeof(T) > bytes.size()) {
    throw std::runtime_error(std::string("file_sync: truncated ") + what);
  }
  T v{};
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return v;
}

std::string take_string(std::span<const std::byte> bytes, std::size_t& offset,
                        const char* what) {
  const auto len = take_scalar<std::uint32_t>(bytes, offset, what);
  if (offset + len > bytes.size()) {
    throw std::runtime_error(std::string("file_sync: truncated ") + what);
  }
  std::string s(reinterpret_cast<const char*>(bytes.data() + offset), len);
  offset += len;
  return s;
}

}  // namespace

std::uint64_t file_checksum(const std::filesystem::path& path) {
  IoCounters counters;
  return fnv1a_bytes(read_file(path, counters));
}

std::vector<SyncFileEntry> scan_sync_root(const std::filesystem::path& root) {
  std::vector<SyncFileEntry> entries;
  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec)) return entries;
  IoCounters counters;
  for (const auto& item :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!item.is_regular_file()) continue;
    SyncFileEntry entry;
    entry.relpath = item.path().lexically_relative(root).generic_string();
    const std::vector<std::byte> bytes = read_file(item.path(), counters);
    entry.size = bytes.size();
    entry.checksum = fnv1a_bytes(bytes);
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const SyncFileEntry& a, const SyncFileEntry& b) {
              return a.relpath < b.relpath;
            });
  return entries;
}

std::vector<std::byte> serialize_manifest(
    const std::vector<SyncFileEntry>& entries) {
  std::vector<std::byte> out;
  append_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const SyncFileEntry& entry : entries) {
    append_string(out, entry.relpath);
    append_u64(out, entry.size);
    append_u64(out, entry.checksum);
  }
  return out;
}

std::vector<SyncFileEntry> parse_manifest(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  const auto count = take_scalar<std::uint32_t>(bytes, offset, "manifest");
  std::vector<SyncFileEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SyncFileEntry entry;
    entry.relpath = take_string(bytes, offset, "manifest entry");
    entry.size = take_scalar<std::uint64_t>(bytes, offset, "manifest entry");
    entry.checksum =
        take_scalar<std::uint64_t>(bytes, offset, "manifest entry");
    entries.push_back(std::move(entry));
  }
  if (offset != bytes.size()) {
    throw std::runtime_error("file_sync: trailing bytes after manifest");
  }
  return entries;
}

std::vector<std::byte> serialize_file_blob(const FileBlob& blob) {
  std::vector<std::byte> out;
  append_string(out, blob.relpath);
  out.push_back(static_cast<std::byte>(blob.exists ? 1 : 0));
  out.insert(out.end(), blob.bytes.begin(), blob.bytes.end());
  return out;
}

FileBlob parse_file_blob(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  FileBlob blob;
  blob.relpath = take_string(bytes, offset, "file blob");
  blob.exists = take_scalar<std::uint8_t>(bytes, offset, "file blob") != 0;
  blob.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                    bytes.end());
  return blob;
}

bool is_safe_relpath(const std::string& relpath) {
  if (relpath.empty()) return false;
  const std::filesystem::path path(relpath);
  if (path.is_absolute()) return false;
  for (const auto& component : path) {
    if (component == "..") return false;
  }
  return true;
}

void sync_place_file(const std::filesystem::path& root,
                     const std::string& relpath,
                     std::span<const std::byte> bytes) {
  if (!is_safe_relpath(relpath)) {
    throw std::runtime_error("file_sync: unsafe relpath \"" + relpath +
                             "\"");
  }
  IoCounters counters;
  write_file(root / std::filesystem::path(relpath),
             std::vector<std::byte>(bytes.begin(), bytes.end()), counters);
}

}  // namespace knnpc
