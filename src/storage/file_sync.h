// Content-addressed file shipping for distributed shard execution.
//
// The driver and a remote worker agent (core/worker_agent.h) reconcile a
// directory tree by exchanging a *manifest* — relative path, size and
// FNV-1a checksum per file — and transferring only the files whose
// checksum the receiver does not already hold. The checksums are the same
// FNV-1a the engine uses everywhere else (util/fnv.h), so an unchanged
// partition file never re-transfers: its bytes hash identically on both
// sides and the receiver answers "already have it".
//
// Nothing here owns a socket; the agent protocol moves these blobs as
// IpcChannel frame payloads. This module owns the byte formats and the
// filesystem side (scan, checksum, safe atomic placement).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace knnpc {

/// One file in a sync manifest.
struct SyncFileEntry {
  /// Path relative to the synced root, '/'-separated.
  std::string relpath;
  std::uint64_t size = 0;
  /// FNV-1a over the file's bytes.
  std::uint64_t checksum = 0;
};

/// FNV-1a checksum of a file's content. Throws std::runtime_error when
/// the file cannot be read.
std::uint64_t file_checksum(const std::filesystem::path& path);

/// Scans `root` recursively and returns one entry per regular file,
/// sorted by relpath (deterministic manifests make transfer accounting
/// reproducible). A missing root yields an empty manifest.
std::vector<SyncFileEntry> scan_sync_root(const std::filesystem::path& root);

/// Manifest wire format: u32 count, then per entry u32 relpath length,
/// relpath bytes, u64 size, u64 checksum.
std::vector<std::byte> serialize_manifest(
    const std::vector<SyncFileEntry>& entries);
/// Throws std::runtime_error on a malformed manifest payload.
std::vector<SyncFileEntry> parse_manifest(std::span<const std::byte> bytes);

/// File blob wire format (FilePut / FileData payloads): u32 relpath
/// length, relpath bytes, u8 exists flag, content bytes. `exists = 0`
/// (an empty blob) lets a file-fetch report "no such file" in-band —
/// spool relays treat a missing spool as legitimately empty.
struct FileBlob {
  std::string relpath;
  bool exists = false;
  std::vector<std::byte> bytes;
};

std::vector<std::byte> serialize_file_blob(const FileBlob& blob);
/// Throws std::runtime_error on a malformed blob payload.
FileBlob parse_file_blob(std::span<const std::byte> bytes);

/// Guards the receiving side: a synced relpath must stay inside the sync
/// root. Rejects absolute paths and any ".." component.
bool is_safe_relpath(const std::string& relpath);

/// Atomically places `bytes` at `root / relpath` (tmp + rename, parent
/// directories created). Throws std::runtime_error on unsafe relpaths or
/// write failure.
void sync_place_file(const std::filesystem::path& root,
                     const std::string& relpath,
                     std::span<const std::byte> bytes);

}  // namespace knnpc
