// On-disk partition layout (phase 1 output, phase 4 input).
//
// Partition R_i owns a vertex subset V_i and is stored as three files:
//   part_<i>.in    in-edges  (s, v), v ∈ V_i, sorted by the bridge v
//   part_<i>.out   out-edges (v, d), v ∈ V_i, sorted by the bridge v
//   part_<i>.prof  profiles of V_i, packed in ascending vertex order
//
// Sorting both edge files by the *bridge* vertex v is the paper's phase-1
// trick: a sequential merge-join of the two files emits all
// neighbours-of-neighbours tuples (s, d) without random access.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/edge_list.h"
#include "partition/assignment.h"
#include "profiles/profile.h"
#include "profiles/profile_store.h"
#include "storage/io_model.h"
#include "util/types.h"

namespace knnpc {

/// One partition fully materialised in memory.
struct PartitionData {
  PartitionId id = kInvalidPartition;
  std::vector<VertexId> vertices;   // ascending
  std::vector<Edge> in_edges;       // (s, v), sorted by v then s
  std::vector<Edge> out_edges;      // (v, d), sorted by v then d
  std::vector<SparseProfile> profiles;  // profiles[i] belongs to vertices[i]

  /// Profile of `v`; nullptr when v is not in this partition. O(log n).
  [[nodiscard]] const SparseProfile* profile_of(VertexId v) const;

  /// Approximate in-memory footprint, bytes (for memory-budget benches).
  [[nodiscard]] std::uint64_t approx_bytes() const;
};

/// Writes and reads partitions under a work directory.
///
/// Thread-safety: the write side (write_all / write_all_streaming /
/// write_profiles) is single-writer and must not overlap any other call.
/// The read side is concurrent-reader safe: once the partition files for
/// an iteration are on disk, any number of threads may call load() /
/// load_edges() simultaneously — each call reads into its own buffers and
/// the only shared mutable state, the IoAccountant, is atomic. The shard
/// driver relies on this: one store, written once per iteration by the
/// driver, is streamed by every shard worker's PartitionCache in parallel.
///
/// Ownership: the store owns nothing in memory between calls — load()
/// returns PartitionData by value and the caller owns it (PartitionCache
/// is the standard bounded owner). The store does own the directory
/// layout; two stores over one directory must not write concurrently.
class PartitionStore {
 public:
  /// How partition files are brought into memory.
  enum class Mode {
    Read,  // read() the whole file into a buffer
    Mmap,  // mmap + MADV_SEQUENTIAL, copy out of the mapping
  };

  PartitionStore(std::filesystem::path dir, IoModel model = IoModel::none(),
                 Mode mode = Mode::Read);

  /// Splits graph + profiles by `assignment` and writes all partition
  /// files. Profiles indexed by vertex id; edges of G(t) are routed to the
  /// partition owning their *bridge* role: (s,v) to owner(v) as in-edge,
  /// (v,d) to owner(v) as out-edge — i.e. every partition holds both edge
  /// directions of its own vertices, as the paper specifies.
  ///
  /// `include_profiles = false` skips the .prof files entirely: the
  /// persistent-worker driver syncs profiles over the command channel
  /// (profiles/profile_delta.h) instead, so writing them here would be
  /// bytes nobody reads. load() throws on such a store; load_edges() is
  /// the supported read path.
  void write_all(const EdgeList& graph, const PartitionAssignment& assignment,
                 const ProfileStore& profiles, bool include_profiles = true);

  /// Low-memory variant of write_all: edges stream to per-partition files
  /// through a bounded buffer (storage/shard_writer.h) and each edge file
  /// is then external-sorted by its bridge vertex with at most
  /// `sort_buffer_bytes` of sort memory (storage/external_sort.h). The
  /// resulting files are byte-identical in content to write_all's.
  void write_all_streaming(const EdgeList& graph,
                           const PartitionAssignment& assignment,
                           const ProfileStore& profiles,
                           std::size_t sort_buffer_bytes = 4u << 20,
                           bool include_profiles = true);

  /// Loads one partition from disk (three file reads, charged to the
  /// accountant). Throws when the partition was never written.
  [[nodiscard]] PartitionData load(PartitionId id) const;

  /// Loads only the vertex list and sorted edge files (phase 2 streams
  /// these to merge-join tuples; profiles are not needed there).
  [[nodiscard]] PartitionData load_edges(PartitionId id) const;

  /// Rewrites one partition's profile file (phase 5 flushes updates).
  void write_profiles(PartitionId id,
                      const std::vector<VertexId>& vertices,
                      const std::vector<SparseProfile>& profiles);

  [[nodiscard]] PartitionId num_partitions() const noexcept { return m_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  [[nodiscard]] const IoAccountant& io() const noexcept { return io_; }
  void reset_io() noexcept { io_.reset(); }

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

 private:
  [[nodiscard]] std::filesystem::path file(PartitionId id,
                                           const char* suffix) const;
  /// Reads a partition file honouring mode_, charging the accountant.
  [[nodiscard]] std::vector<std::byte> fetch(
      const std::filesystem::path& path) const;

  std::filesystem::path dir_;
  mutable IoAccountant io_;
  PartitionId m_ = 0;
  Mode mode_ = Mode::Read;
};

/// Bounded partition cache for phase 4: at most `slots` partitions resident
/// (the paper uses 2). Counts loads and unloads — Table 1's metric.
///
/// Thread-safety: single-owner (one cache per engine / shard worker); the
/// underlying store may be shared across caches on different threads.
class PartitionCache {
 public:
  /// `edges_only = true` loads partitions via load_edges() (no .prof
  /// reads): the persistent-worker path, where profiles live in a
  /// worker-local store kept current by KPRD deltas.
  PartitionCache(const PartitionStore& store, std::size_t slots,
                 bool edges_only = false);

  /// Returns the resident partition, loading (and possibly evicting LRU)
  /// as needed. References are invalidated by subsequent get() calls that
  /// evict; phase 4 pins at most `slots` partitions at a time by
  /// construction.
  const PartitionData& get(PartitionId id);

  [[nodiscard]] bool resident(PartitionId id) const;
  [[nodiscard]] std::uint64_t loads() const noexcept { return loads_; }
  [[nodiscard]] std::uint64_t unloads() const noexcept { return unloads_; }
  /// loads + unloads: the Table-1 "operations" metric.
  [[nodiscard]] std::uint64_t operations() const noexcept {
    return loads_ + unloads_;
  }

  /// Drops everything, counting the unloads.
  void flush();

 private:
  const PartitionStore& store_;
  std::size_t slots_;
  bool edges_only_ = false;
  std::list<PartitionId> lru_;  // front = most recent
  std::unordered_map<PartitionId, PartitionData> resident_;
  std::uint64_t loads_ = 0;
  std::uint64_t unloads_ = 0;
};

}  // namespace knnpc
