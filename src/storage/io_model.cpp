#include "storage/io_model.h"

#include <stdexcept>

namespace knnpc {

IoModel IoModel::none() { return IoModel{"none", 0.0, 1e18}; }

IoModel IoModel::hdd() {
  // 7200 rpm disk: ~8 ms average seek+rotational latency, ~120 MB/s
  // sequential throughput.
  return IoModel{"hdd", 8000.0, 120.0};
}

IoModel IoModel::ssd() {
  // SATA SSD: ~80 us access, ~450 MB/s.
  return IoModel{"ssd", 80.0, 450.0};
}

IoModel IoModel::nvme() {
  // NVMe: ~15 us access, ~2.5 GB/s.
  return IoModel{"nvme", 15.0, 2500.0};
}

IoModel IoModel::parse(std::string_view name) {
  if (name == "none") return none();
  if (name == "hdd") return hdd();
  if (name == "ssd") return ssd();
  if (name == "nvme") return nvme();
  throw std::invalid_argument("unknown IO model: " + std::string(name));
}

}  // namespace knnpc
