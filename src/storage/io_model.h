// Storage-device cost model (DESIGN.md §4, experiment Ext-C).
//
// The paper's future work compares HDD vs SSD. Real files are still read
// and written; the model additionally *accounts* what each operation would
// cost on a given device (seek latency + transfer time), so device
// comparisons are deterministic and hardware-independent. Nothing sleeps —
// the model only produces numbers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "storage/block_file.h"

namespace knnpc {

struct IoModel {
  std::string name = "none";
  /// Cost added per operation (the seek / command overhead), microseconds.
  double seek_us = 0.0;
  /// Sequential transfer rate, bytes per microsecond (== MB/s).
  double bytes_per_us = 1e18;  // "free" by default

  /// Modelled cost of transferring `bytes` in one sequential operation.
  [[nodiscard]] double op_cost_us(std::uint64_t bytes) const {
    return seek_us + static_cast<double>(bytes) / bytes_per_us;
  }

  // Calibrated presets (typical 2014-era commodity devices, matching the
  // paper's setting):
  static IoModel none();   // pure counting, zero cost
  static IoModel hdd();    // 7200rpm: ~8ms seek, ~120 MB/s
  static IoModel ssd();    // SATA SSD: ~80us, ~450 MB/s
  static IoModel nvme();   // modern NVMe: ~15us, ~2.5 GB/s

  /// Parses "none" / "hdd" / "ssd" / "nvme"; throws std::invalid_argument.
  static IoModel parse(std::string_view name);
};

/// Accumulates modelled device time next to the raw byte counters.
///
/// Thread-safety: charge_read()/charge_write() are lock-free and safe to
/// call from any number of threads concurrently (the shard driver's
/// workers share one accountant per PartitionStore). counters() /
/// modeled_us() take relaxed snapshots: each field is exact, but a
/// snapshot taken *while* charges are in flight may mix fields from
/// different moments — read stats after workers have joined for totals
/// that add up.
class IoAccountant {
 public:
  explicit IoAccountant(IoModel model = IoModel::none())
      : model_(std::move(model)) {}

  /// Charges one sequential read/write of `bytes`.
  void charge_read(std::uint64_t bytes) noexcept {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(1, std::memory_order_relaxed);
    modeled_us_.fetch_add(model_.op_cost_us(bytes),
                          std::memory_order_relaxed);
  }
  void charge_write(std::uint64_t bytes) noexcept {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
    modeled_us_.fetch_add(model_.op_cost_us(bytes),
                          std::memory_order_relaxed);
  }

  /// Snapshot of the raw counters (see the class comment for concurrent
  /// -read semantics).
  [[nodiscard]] IoCounters counters() const noexcept {
    return {bytes_read_.load(std::memory_order_relaxed),
            bytes_written_.load(std::memory_order_relaxed),
            read_ops_.load(std::memory_order_relaxed),
            write_ops_.load(std::memory_order_relaxed)};
  }
  /// Total modelled device time, microseconds.
  [[nodiscard]] double modeled_us() const noexcept {
    return modeled_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const IoModel& model() const noexcept { return model_; }

  void reset() noexcept {
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    read_ops_.store(0, std::memory_order_relaxed);
    write_ops_.store(0, std::memory_order_relaxed);
    modeled_us_.store(0.0, std::memory_order_relaxed);
  }

 private:
  IoModel model_;
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> read_ops_{0};
  std::atomic<std::uint64_t> write_ops_{0};
  std::atomic<double> modeled_us_{0.0};
};

}  // namespace knnpc
