// Storage-device cost model (DESIGN.md §4, experiment Ext-C).
//
// The paper's future work compares HDD vs SSD. Real files are still read
// and written; the model additionally *accounts* what each operation would
// cost on a given device (seek latency + transfer time), so device
// comparisons are deterministic and hardware-independent. Nothing sleeps —
// the model only produces numbers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/block_file.h"

namespace knnpc {

struct IoModel {
  std::string name = "none";
  /// Cost added per operation (the seek / command overhead), microseconds.
  double seek_us = 0.0;
  /// Sequential transfer rate, bytes per microsecond (== MB/s).
  double bytes_per_us = 1e18;  // "free" by default

  /// Modelled cost of transferring `bytes` in one sequential operation.
  [[nodiscard]] double op_cost_us(std::uint64_t bytes) const {
    return seek_us + static_cast<double>(bytes) / bytes_per_us;
  }

  // Calibrated presets (typical 2014-era commodity devices, matching the
  // paper's setting):
  static IoModel none();   // pure counting, zero cost
  static IoModel hdd();    // 7200rpm: ~8ms seek, ~120 MB/s
  static IoModel ssd();    // SATA SSD: ~80us, ~450 MB/s
  static IoModel nvme();   // modern NVMe: ~15us, ~2.5 GB/s

  /// Parses "none" / "hdd" / "ssd" / "nvme"; throws std::invalid_argument.
  static IoModel parse(std::string_view name);
};

/// Accumulates modelled device time next to the raw byte counters.
class IoAccountant {
 public:
  explicit IoAccountant(IoModel model = IoModel::none())
      : model_(std::move(model)) {}

  /// Charges one sequential read/write of `bytes`.
  void charge_read(std::uint64_t bytes) noexcept {
    counters_.bytes_read += bytes;
    ++counters_.read_ops;
    modeled_us_ += model_.op_cost_us(bytes);
  }
  void charge_write(std::uint64_t bytes) noexcept {
    counters_.bytes_written += bytes;
    ++counters_.write_ops;
    modeled_us_ += model_.op_cost_us(bytes);
  }

  [[nodiscard]] const IoCounters& counters() const noexcept {
    return counters_;
  }
  /// Total modelled device time, microseconds.
  [[nodiscard]] double modeled_us() const noexcept { return modeled_us_; }
  [[nodiscard]] const IoModel& model() const noexcept { return model_; }

  void reset() noexcept {
    counters_ = IoCounters{};
    modeled_us_ = 0.0;
  }

 private:
  IoModel model_;
  IoCounters counters_;
  double modeled_us_ = 0.0;
};

}  // namespace knnpc
