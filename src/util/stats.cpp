#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace knnpc {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const auto n = samples.size();
  // Nearest-rank: ceil(q/100 * n), 1-based.
  auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   samples.end());
  return samples[rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0) throw std::invalid_argument("Histogram: 0 buckets");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
}

void Histogram::add(double x) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return counts_.at(i);
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double b_lo = lo_ + width_ * static_cast<double>(i);
    out << b_lo << ".." << (b_lo + width_) << ": " << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace knnpc
