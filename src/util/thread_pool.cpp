#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <limits>

namespace knnpc {
namespace {

/// Set while a thread is executing inside a pool's worker loop; used to
/// detect nested parallel loops (which degrade to inline execution).
thread_local const ThreadPool* t_worker_of = nullptr;

}  // namespace

std::uint32_t resolve_thread_count(std::uint32_t requested,
                                   std::uint64_t work_items,
                                   std::uint64_t work_per_thread) {
  if (requested > 0) return requested;
  std::uint64_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  work_per_thread = std::max<std::uint64_t>(work_per_thread, 1);
  const std::uint64_t by_work =
      std::max<std::uint64_t>(work_items / work_per_thread, 1);
  return static_cast<std::uint32_t>(std::min(by_work, hw));
}

/// One published parallel loop. Lives on the heap behind shared_ptr so a
/// straggling worker that grabbed the job pointer right before the loop
/// drained can still touch `next` safely after run_chunks returned.
struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk_size = 0;
  std::size_t num_chunks = 0;
  ChunkFn fn = nullptr;
  void* ctx = nullptr;
  std::atomic<std::size_t> next{0};  // next chunk index to claim
  std::atomic<std::size_t> done{0};  // chunks finished (incl. thrown)
  std::mutex exc_mutex;
  std::size_t exc_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr exc;
};

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(threads, 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

ThreadPool::ChunkPlan ThreadPool::plan_chunks(std::size_t begin,
                                              std::size_t end,
                                              std::size_t min_chunk) const {
  ChunkPlan plan;
  if (begin >= end) return plan;
  const std::size_t total = end - begin;
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  // Over-decompose (~4 chunks per thread, calling thread included) so the
  // atomic work counter load-balances skewed bodies, but never drop a
  // chunk below min_chunk items.
  const std::size_t max_chunks = std::max<std::size_t>(total / min_chunk, 1);
  const std::size_t target = (workers_.size() + 1) * 4;
  plan.num_chunks = std::min(max_chunks, target);
  plan.chunk_size = (total + plan.num_chunks - 1) / plan.num_chunks;
  plan.num_chunks = (total + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

void ThreadPool::run_chunks(std::size_t begin, std::size_t end,
                            std::size_t min_chunk, ChunkFn fn, void* ctx) {
  if (begin >= end) return;
  const ChunkPlan plan = plan_chunks(begin, end, min_chunk);

  // Inline execution: single chunk, or nested call from one of this pool's
  // own workers (publishing a job from a worker would deadlock the loop
  // waiting on itself). Runs every chunk in order with the same
  // lowest-chunk-wins exception contract as the parallel path.
  if (plan.num_chunks <= 1 || t_worker_of == this || workers_.empty()) {
    std::exception_ptr first_exc;
    for (std::size_t c = 0; c < plan.num_chunks; ++c) {
      const std::size_t lo = begin + c * plan.chunk_size;
      const std::size_t hi = std::min(lo + plan.chunk_size, end);
      try {
        fn(ctx, c, lo, hi);
      } catch (...) {
        if (!first_exc) first_exc = std::current_exception();
      }
    }
    if (first_exc) std::rethrow_exception(first_exc);
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->chunk_size = plan.chunk_size;
  job->num_chunks = plan.num_chunks;
  job->fn = fn;
  job->ctx = ctx;

  // One loop at a time: the job slot is single-entry.
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_epoch_;
  }
  cv_.notify_all();
  {
    // The calling thread helps instead of blocking. Mark it as inside the
    // pool for the duration so a nested parallel loop issued from a chunk
    // it executes degrades to inline (re-locking run_mutex_ would be UB).
    const ThreadPool* const prev = t_worker_of;
    t_worker_of = this;
    work_on(*job);
    t_worker_of = prev;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) >= job->num_chunks;
    });
    if (job_ == job) job_.reset();
  }
  if (job->exc) std::rethrow_exception(job->exc);
}

void ThreadPool::work_on(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) return;
    const std::size_t lo = job.begin + c * job.chunk_size;
    const std::size_t hi = std::min(lo + job.chunk_size, job.end);
    try {
      job.fn(job.ctx, c, lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.exc_mutex);
      if (c < job.exc_chunk) {
        job.exc_chunk = c;
        job.exc = std::current_exception();
      }
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      // Last chunk: wake the thread blocked in run_chunks. Taking the lock
      // orders the notify after its wait() predicate check.
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return stop_ || !tasks_.empty() ||
               (job_ && job_epoch_ != seen_epoch);
      });
      if (job_ && job_epoch_ != seen_epoch) {
        job = job_;
        seen_epoch = job_epoch_;
      } else if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else {  // stop_, queue drained, no fresh job
        return;
      }
    }
    if (job) {
      work_on(*job);
    } else {
      task();  // packaged_task captures exceptions into the future
    }
  }
}

}  // namespace knnpc
