#include "util/options.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace knnpc {
namespace {

std::string kind_name(int kind) {
  switch (kind) {
    case 0: return "uint";
    case 1: return "double";
    case 2: return "string";
    default: return "flag";
  }
}

}  // namespace

void Options::add_uint(const std::string& name, const std::string& help,
                       std::uint64_t default_value) {
  specs_[name] = Spec{Kind::Uint, help, std::to_string(default_value)};
}

void Options::add_double(const std::string& name, const std::string& help,
                         double default_value) {
  std::ostringstream v;
  v << default_value;
  specs_[name] = Spec{Kind::Double, help, v.str()};
}

void Options::add_string(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  specs_[name] = Spec{Kind::String, help, default_value};
}

void Options::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{Kind::Flag, help, "0"};
}

bool Options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    auto it = specs_.find(arg);
    if (it == specs_.end()) {
      throw std::invalid_argument("unknown option --" + arg);
    }
    if (it->second.kind == Kind::Flag) {
      // Move-assign a temporary: GCC 12's -Wrestrict misfires on the
      // inlined char* assignment path at -O3.
      it->second.value = std::string("1");
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("option --" + arg + " needs a value");
      }
      value = argv[++i];
    }
    it->second.value = std::move(value);
  }
  return true;
}

std::uint64_t Options::get_uint(const std::string& name) const {
  const Spec& spec = find(name, Kind::Uint);
  try {
    return std::stoull(spec.value);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                ": not an unsigned integer: " + spec.value);
  }
}

double Options::get_double(const std::string& name) const {
  const Spec& spec = find(name, Kind::Double);
  try {
    return std::stod(spec.value);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                ": not a number: " + spec.value);
  }
}

const std::string& Options::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

bool Options::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).value == "1";
}

const Options::Spec& Options::find(const std::string& name, Kind kind) const {
  auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw std::invalid_argument("option --" + name + " was never declared");
  }
  if (it->second.kind != kind) {
    throw std::invalid_argument(
        "option --" + name + " is a " +
        kind_name(static_cast<int>(it->second.kind)) + ", requested " +
        kind_name(static_cast<int>(kind)));
  }
  return it->second;
}

std::string Options::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name;
    if (spec.kind != Kind::Flag) out << "=<" << kind_name(static_cast<int>(spec.kind)) << ">";
    out << "  " << spec.help;
    if (spec.kind != Kind::Flag) out << " (default: " << spec.value << ")";
    out << '\n';
  }
  return out.str();
}

}  // namespace knnpc
