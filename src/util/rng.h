// Deterministic pseudo-random number generation.
//
// All stochastic components (graph generators, profile generators, the
// greedy partitioner's tie-breaking) take an explicit seed so every
// experiment in EXPERIMENTS.md is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace knnpc {

/// SplitMix64: fast, high-quality 64-bit generator; also used to expand a
/// user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator. Satisfies (a subset of) the
/// UniformRandomBitGenerator requirements so it can also feed <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's nearly-divisionless method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift; the modulo bias is negligible for our bounds (< 2^33)
    // relative to a 64-bit state, but we still debias with rejection.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace knnpc
