// Wall-clock timers used for per-phase measurement (Figure 1 breakdown).
#pragma once

#include <chrono>
#include <cstdint>

namespace knnpc {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last reset.
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  [[nodiscard]] std::uint64_t elapsed_us() const {
    return static_cast<std::uint64_t>(elapsed_seconds() * 1e6);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed seconds into `*sink` on destruction.
/// Used by the engine to attribute time to pipeline phases.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double* sink) : sink_(sink) {}
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;
  ~ScopedAccumulator() {
    if (sink_ != nullptr) *sink_ += timer_.elapsed_seconds();
  }

 private:
  double* sink_;
  Timer timer_;
};

}  // namespace knnpc
