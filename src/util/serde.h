// Plain little-endian binary (de)serialisation helpers for POD-like records.
//
// Partition files (storage/) are written as packed arrays of fixed-size
// records; these helpers keep the byte-level code in one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace knnpc {

/// Trait gate: only trivially-copyable record types may be serialised raw.
template <typename T>
concept TrivialRecord = std::is_trivially_copyable_v<T>;

/// Appends the raw bytes of `value` to `out`.
template <TrivialRecord T>
void append_record(std::vector<std::byte>& out, const T& value) {
  // resize + memcpy instead of insert(range): GCC 12's -Wstringop-overflow
  // misfires on the inlined vector-growth memmove at -O3.
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

/// Reads one record at byte offset `offset`; advances `offset`.
/// Returns false when fewer than sizeof(T) bytes remain.
template <TrivialRecord T>
bool read_record(std::span<const std::byte> bytes, std::size_t& offset,
                 T& out) {
  if (offset + sizeof(T) > bytes.size()) return false;
  std::memcpy(&out, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return true;
}

/// Reinterprets a byte buffer as a span of records; the trailing partial
/// record (if the file is corrupt/truncated) is excluded.
template <TrivialRecord T>
std::span<const T> record_span(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const T*>(bytes.data()), bytes.size() / sizeof(T)};
}

/// Serialises a whole vector of records as packed bytes.
template <TrivialRecord T>
std::vector<std::byte> to_bytes(const std::vector<T>& records) {
  std::vector<std::byte> out(records.size() * sizeof(T));
  if (!records.empty()) {
    std::memcpy(out.data(), records.data(), out.size());
  }
  return out;
}

/// Deserialises packed bytes into a vector of records.
template <TrivialRecord T>
std::vector<T> from_bytes(std::span<const std::byte> bytes) {
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!out.empty()) {
    std::memcpy(out.data(), bytes.data(), out.size() * sizeof(T));
  }
  return out;
}

}  // namespace knnpc
