// FNV-1a, the library's one checksum primitive.
//
// Both graph checksums — the whole-graph `knn_graph_checksum`
// (graph/knn_graph_io.h, pinned by the golden corpus) and the delta
// trailer (graph/knn_graph_delta.h) — fold through these exact
// constants; keeping the loop in one place is what keeps their
// semantics from silently diverging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace knnpc {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// Folds the 8 little-endian bytes of `value` into `h`.
constexpr std::uint64_t fnv1a_mix(std::uint64_t h,
                                  std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h = (h ^ ((value >> (8 * byte)) & 0xffu)) * kFnv1aPrime;
  }
  return h;
}

/// FNV-1a over a raw byte span.
inline std::uint64_t fnv1a_bytes(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = kFnv1aOffset;
  for (const std::byte b : bytes) {
    h = (h ^ static_cast<std::uint64_t>(b)) * kFnv1aPrime;
  }
  return h;
}

}  // namespace knnpc
