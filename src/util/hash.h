// Hash mixers used by the tuple table H (phase 2) and the hash partitioner.
#pragma once

#include <cstddef>
#include <cstdint>

namespace knnpc {

/// Finalizer from MurmurHash3; a strong 64->64 bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// 32->32 bit mixer (Wang hash variant) for per-vertex hashing.
constexpr std::uint32_t mix32(std::uint32_t x) noexcept {
  x = (x ^ 61u) ^ (x >> 16);
  x *= 9u;
  x ^= x >> 4;
  x *= 0x27d4eb2du;
  x ^= x >> 15;
  return x;
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Rounds up to the next power of two (>= 1).
constexpr std::size_t next_pow2(std::size_t x) noexcept {
  if (x <= 1) return 1;
  --x;
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  if constexpr (sizeof(std::size_t) == 8) x |= x >> 32;
  return x + 1;
}

}  // namespace knnpc
