// Common scalar types used across the knnpc library.
#pragma once

#include <cstdint>
#include <limits>

namespace knnpc {

/// Identifier of a (user) vertex in the KNN graph. 32 bits suffices for the
/// single-PC scale the paper targets (tens of millions of users).
using VertexId = std::uint32_t;

/// Identifier of a graph partition R_i (phase 1 of the pipeline).
using PartitionId = std::uint32_t;

/// Identifier of a profile item (e.g. a rated movie, a document shingle).
using ItemId = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel for "no partition".
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

/// A directed edge (src -> dst) of the KNN graph G(t).
struct Edge {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A candidate pair (s, d) produced by phase 1/2: d is a neighbour or a
/// neighbour's neighbour of s, and sim(s, d) must be evaluated in phase 4.
struct Tuple {
  VertexId s = kInvalidVertex;
  VertexId d = kInvalidVertex;

  friend bool operator==(const Tuple&, const Tuple&) = default;
  friend auto operator<=>(const Tuple&, const Tuple&) = default;
};

/// Packs a tuple into one 64-bit key (used by the hash table H).
constexpr std::uint64_t tuple_key(Tuple t) noexcept {
  return (static_cast<std::uint64_t>(t.s) << 32) | t.d;
}

/// Inverse of tuple_key().
constexpr Tuple tuple_from_key(std::uint64_t key) noexcept {
  return Tuple{static_cast<VertexId>(key >> 32),
               static_cast<VertexId>(key & 0xffffffffu)};
}

}  // namespace knnpc
