// Small statistics helpers: running moments, percentiles, histograms.
// Used by benches to report distributions (degree, similarity cost, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace knnpc {

/// Online mean / variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile over a copied sample vector (nearest-rank definition).
/// q in [0, 100]. Returns 0 for an empty sample.
double percentile(std::vector<double> samples, double q);

/// Fixed-width histogram over [lo, hi) with `buckets` buckets; samples
/// outside the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Renders "lo..hi: count" lines, one per non-empty bucket.
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace knnpc
