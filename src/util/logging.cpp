#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace knnpc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info:  return "INFO ";
    case LogLevel::Warn:  return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off:   return "OFF  ";
  }
  return "?????";
}

/// Reads KNNPC_LOG_LEVEL once at startup.
LogLevel initial_level() {
  if (const char* env = std::getenv("KNNPC_LOG_LEVEL")) {
    return parse_log_level(env);
  }
  return LogLevel::Warn;
}

struct EnvInit {
  EnvInit() { g_level.store(initial_level(), std::memory_order_relaxed); }
};
const EnvInit g_env_init;

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return LogLevel::Warn;
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= log_level() && level != LogLevel::Off) {
  if (!enabled_) return;
  // Strip the directory part of __FILE__ for readable output.
  std::string_view path(file);
  if (auto pos = path.find_last_of('/'); pos != std::string_view::npos) {
    path.remove_prefix(pos + 1);
  }
  stream_ << "[" << level_name(level) << "] " << path << ":" << line << " ";
}

LogLine::~LogLine() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fputs(text.c_str(), stderr);
}

}  // namespace detail
}  // namespace knnpc
