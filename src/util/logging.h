// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Usage:
//   KNNPC_LOG(Info) << "loaded partition " << pid << " in " << ms << " ms";
//
// The global level defaults to Warn so tests and benches stay quiet; set
// KNNPC_LOG_LEVEL=debug|info|warn|error in the environment or call
// set_log_level() to change it.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace knnpc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold.
void set_log_level(LogLevel level) noexcept;

/// Returns the current global log threshold.
LogLevel log_level() noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Unrecognised strings yield Warn.
LogLevel parse_log_level(std::string_view name) noexcept;

namespace detail {

/// Accumulates one log line and emits it (with a lock) on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace knnpc

#define KNNPC_LOG(severity)                                      \
  ::knnpc::detail::LogLine(::knnpc::LogLevel::severity, __FILE__, \
                           __LINE__)
