#include "util/subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace knnpc {

std::string SubprocessStatus::describe() const {
  switch (state) {
    case State::Running:
      return "still running";
    case State::Exited:
      return exit_code == 0 ? "exited 0"
                            : "exited with code " + std::to_string(exit_code);
    case State::Signaled: {
      if (timed_out) return "timed out (killed with SIGKILL)";
      const char* name = strsignal(signal);
      return "killed by signal " + std::to_string(signal) + " (" +
             (name != nullptr ? name : "?") + ")";
    }
  }
  return "unknown";
}

Subprocess::Subprocess(std::vector<std::string> argv)
    : Subprocess(std::move(argv), -1, -1) {}

Subprocess::Subprocess(std::vector<std::string> argv, int child_stdin_fd,
                       int child_stdout_fd)
    : argv_(std::move(argv)) {
  // The child fds are owned by this constructor: close them in the parent
  // on every exit path (the child's dup2 copies survive the close).
  struct FdGuard {
    int fds[2];
    ~FdGuard() {
      for (const int fd : fds) {
        if (fd >= 0) ::close(fd);
      }
    }
  } guard{{child_stdin_fd, child_stdout_fd}};
  if (argv_.empty()) {
    throw std::invalid_argument("Subprocess: empty argv");
  }
  std::vector<char*> cargv;
  cargv.reserve(argv_.size() + 1);
  for (std::string& arg : argv_) cargv.push_back(arg.data());
  cargv.push_back(nullptr);
  // Hand-rolled fork+exec rather than posix_spawn: the child must run
  // prctl(PR_SET_PDEATHSIG) on its own side so a worker cannot outlive a
  // crashed driver, and that has no spawn-attribute equivalent. Between
  // fork and exec the child calls only async-signal-safe functions (the
  // driver holds live thread pools). Exec failures (missing binary) come
  // back through a CLOEXEC pipe so they throw here instead of surfacing
  // as a mysteriously-exiting child.
  int err_pipe[2];
  if (::pipe2(err_pipe, O_CLOEXEC) != 0) {
    throw std::runtime_error("Subprocess: pipe2 failed: " +
                             std::string(std::strerror(errno)));
  }
  const pid_t parent = ::getpid();
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    throw std::runtime_error("Subprocess: fork failed: " +
                             std::string(std::strerror(err)));
  }
  if (pid == 0) {
    // Child. Own process group so kill_now() takes down anything it
    // forks; die with the spawning thread so a dead driver leaves no
    // orphaned workers behind (PDEATHSIG is per forking *thread* — the
    // driver spawns from its supervising thread, which lives as long as
    // the run).
    ::close(err_pipe[0]);
    ::setpgid(0, 0);
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() != parent) _exit(127);  // parent died before prctl
    // Stdio wiring: dup2 clears O_CLOEXEC on the fd-0/1 copies, so pipe
    // ends created CLOEXEC (never leaked to unrelated children) still
    // survive the exec here. If a pipe end itself landed on fd 0-2 (the
    // parent ran with a std stream closed), lift it above 2 first:
    // dup2(fd, fd) would be a no-op that leaves O_CLOEXEC set, and the
    // stdin dup2 could clobber a stdout fd sitting at 0/1. F_DUPFD_CLOEXEC
    // keeps the lifted copy from leaking past exec (async-signal-safe).
    int stdin_src = child_stdin_fd;
    int stdout_src = child_stdout_fd;
    if (stdin_src >= 0 && stdin_src <= 2) {
      stdin_src = ::fcntl(stdin_src, F_DUPFD_CLOEXEC, 3);
      if (stdin_src < 0) _exit(127);
    }
    if (stdout_src >= 0 && stdout_src <= 2) {
      stdout_src = ::fcntl(stdout_src, F_DUPFD_CLOEXEC, 3);
      if (stdout_src < 0) _exit(127);
    }
    if (stdin_src >= 0 && ::dup2(stdin_src, STDIN_FILENO) < 0) {
      _exit(127);
    }
    if (stdout_src >= 0 && ::dup2(stdout_src, STDOUT_FILENO) < 0) {
      _exit(127);
    }
    ::execv(cargv[0], cargv.data());
    const int err = errno;
    [[maybe_unused]] const ssize_t written =
        ::write(err_pipe[1], &err, sizeof(err));
    _exit(127);
  }
  // Parent: mirror the setpgid so the group exists before any kill_now()
  // (ignore the benign races: child already exec'd or already exited).
  ::setpgid(pid, pid);
  ::close(err_pipe[1]);
  int exec_errno = 0;
  ssize_t got = -1;
  do {
    got = ::read(err_pipe[0], &exec_errno, sizeof(exec_errno));
  } while (got < 0 && errno == EINTR);
  ::close(err_pipe[0]);
  if (got == sizeof(exec_errno)) {
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);  // reap the exec-failed child
    throw std::runtime_error("Subprocess: cannot spawn " + argv_[0] + ": " +
                             std::strerror(exec_errno));
  }
  pid_ = pid;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)), status_(other.status_),
      argv_(std::move(other.argv_)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0 && !status_.finished()) {
      kill_now();
      wait();
    }
    pid_ = std::exchange(other.pid_, -1);
    status_ = other.status_;
    argv_ = std::move(other.argv_);
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (pid_ > 0 && !status_.finished()) {
    kill_now();
    wait();
  }
}

void Subprocess::reap(int wstatus) noexcept {
  if (WIFEXITED(wstatus)) {
    status_.state = SubprocessStatus::State::Exited;
    status_.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    status_.state = SubprocessStatus::State::Signaled;
    status_.signal = WTERMSIG(wstatus);
  }
}

const SubprocessStatus& Subprocess::poll() {
  if (pid_ <= 0 || status_.finished()) return status_;
  int wstatus = 0;
  const pid_t r = ::waitpid(pid_, &wstatus, WNOHANG);
  if (r == pid_) reap(wstatus);
  return status_;
}

const SubprocessStatus& Subprocess::wait() {
  if (pid_ <= 0 || status_.finished()) return status_;
  int wstatus = 0;
  pid_t r = -1;
  do {
    r = ::waitpid(pid_, &wstatus, 0);
  } while (r < 0 && errno == EINTR);
  if (r == pid_) reap(wstatus);
  return status_;
}

void Subprocess::kill_now() noexcept {
  if (pid_ > 0 && !status_.finished()) {
    // The child leads its own process group (see the constructor), so
    // the group kill reaps any processes it forked along with it.
    ::kill(-pid_, SIGKILL);
    ::kill(pid_, SIGKILL);  // belt-and-braces if the group is already gone
  }
}

std::vector<SubprocessStatus> wait_all(std::span<Subprocess> procs,
                                       double timeout_s) {
  using Clock = std::chrono::steady_clock;
  // Uniform timeout contract (matches IpcChannel): negative waits
  // forever, zero polls each child once and kills the stragglers.
  const bool bounded = timeout_s >= 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(bounded ? timeout_s
                                                              : 0.0));
  std::vector<bool> killed(procs.size(), false);
  for (;;) {
    bool all_done = true;
    for (Subprocess& p : procs) {
      if (p.valid() && !p.poll().finished()) all_done = false;
    }
    if (all_done) break;
    if (bounded && Clock::now() >= deadline) {
      for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].valid() && !procs[i].status().finished()) {
          killed[i] = true;
          procs[i].kill_now();
        }
      }
      for (Subprocess& p : procs) {
        if (p.valid()) p.wait();
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::vector<SubprocessStatus> out(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) {
    out[i] = procs[i].status();
    // Only a deadline kill that actually took the child down counts as a
    // timeout — a child that finished normally in the race keeps its
    // genuine status.
    out[i].timed_out =
        killed[i] && out[i].state == SubprocessStatus::State::Signaled;
  }
  return out;
}

std::filesystem::path current_executable() {
  char buffer[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) {
    throw std::runtime_error("current_executable: cannot readlink "
                             "/proc/self/exe");
  }
  buffer[len] = '\0';
  return std::filesystem::path(buffer);
}

}  // namespace knnpc
