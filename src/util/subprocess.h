// Minimal child-process plumbing for the process-mode shard driver.
//
// The driver re-executes its own binary in the hidden --shard-worker role
// (core/shard_driver.h), one process per shard per wave, and needs exactly
// four primitives: spawn an argv without a shell, poll/wait for the exit
// status, kill a wedged child, and tell "exited N" from "died on signal S"
// from "missed its deadline". This wraps that POSIX surface; nothing here
// knows about shards.
#pragma once

#include <sys/types.h>

#include <filesystem>
#include <span>
#include <string>
#include <vector>

namespace knnpc {

/// Observed state of a child process. `timed_out` is set by wait_all()
/// when the supervisor killed the child for exceeding its deadline — a
/// plain signal death (e.g. fault-injected SIGKILL) leaves it false.
struct SubprocessStatus {
  enum class State { Running, Exited, Signaled };

  State state = State::Running;
  int exit_code = 0;  // valid when state == Exited
  int signal = 0;     // valid when state == Signaled
  bool timed_out = false;

  [[nodiscard]] bool finished() const noexcept {
    return state != State::Running;
  }
  [[nodiscard]] bool success() const noexcept {
    return state == State::Exited && exit_code == 0;
  }
  /// Human-readable diagnosis: "exited 0", "exited with code 3",
  /// "killed by signal 9 (Killed)", "timed out (killed with SIGKILL)".
  [[nodiscard]] std::string describe() const;
};

/// One spawned child process.
///
/// Thread-safety: single-owner — poll()/wait()/kill_now() must not be
/// called concurrently on the same instance. Distinct instances are
/// independent (the shard driver supervises S of them from one thread).
///
/// Ownership: the object owns the child for its lifetime; the destructor
/// SIGKILLs and reaps a still-running child so no zombie or runaway
/// worker can outlive the driver.
class Subprocess {
 public:
  Subprocess() = default;

  /// Spawns `argv` directly (argv[0] = executable path, no shell, current
  /// environment inherited). The child becomes its own process-group
  /// leader and carries PR_SET_PDEATHSIG(SIGKILL), so it dies with the
  /// spawning thread instead of leaking as an orphan when the supervisor
  /// is killed. Throws std::runtime_error when the spawn fails (e.g. the
  /// executable does not exist).
  explicit Subprocess(std::vector<std::string> argv);

  /// Same, with the child's stdin/stdout redirected: `child_stdin_fd` is
  /// dup2()'d onto fd 0 and `child_stdout_fd` onto fd 1 before exec (-1
  /// leaves that stream inherited). Both fds are owned by this call and
  /// closed in the parent on every path — pass the child ends of pipes
  /// (e.g. IpcChannelPair's) and keep the parent ends. stderr is always
  /// inherited so worker diagnostics reach the supervisor's log.
  Subprocess(std::vector<std::string> argv, int child_stdin_fd,
             int child_stdout_fd);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  /// True once a child was spawned (also after it finished).
  [[nodiscard]] bool valid() const noexcept { return pid_ > 0; }
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }
  [[nodiscard]] const std::vector<std::string>& argv() const noexcept {
    return argv_;
  }

  /// Non-blocking reap: returns the current status, transitioning out of
  /// Running as soon as the child finished.
  const SubprocessStatus& poll();

  /// Blocking reap (EINTR-safe). Idempotent once finished.
  const SubprocessStatus& wait();

  /// SIGKILLs a still-running child and its whole process group — the
  /// child is spawned as its own group leader, so processes it forked go
  /// down with it (a wedged worker must not survive through a
  /// grandchild holding pipes open). No-op once finished; the status
  /// stays Running until the kill is observed via poll()/wait().
  void kill_now() noexcept;

  [[nodiscard]] const SubprocessStatus& status() const noexcept {
    return status_;
  }

 private:
  void reap(int wstatus) noexcept;

  pid_t pid_ = -1;
  SubprocessStatus status_;
  std::vector<std::string> argv_;
};

/// Waits for every process with one shared deadline, following the same
/// timeout contract as IpcChannel: `timeout_s < 0` waits forever,
/// `timeout_s == 0` polls each child exactly once, and `timeout_s > 0`
/// is a bounded deadline. Children still running when the deadline
/// expires (immediately, for a zero timeout) are SIGKILLed, reaped, and
/// reported with `timed_out = true` (a child that beat the kill to a
/// normal exit keeps its real status). Never hangs and never leaves a
/// zombie: every child is reaped.
std::vector<SubprocessStatus> wait_all(std::span<Subprocess> procs,
                                       double timeout_s);

/// Absolute path of the running executable (/proc/self/exe). Throws
/// std::runtime_error if the link cannot be resolved.
std::filesystem::path current_executable();

}  // namespace knnpc
