// Length-prefixed binary framing over POSIX byte streams — the
// persistent-worker command channel (core/shard_driver.h,
// ShardWorkerMode::Persistent) and, since the distributed mode, the
// driver <-> worker-agent transport (core/worker_agent.h).
//
// The driver keeps S worker processes alive across iterations and drives
// them through a strict request/reply protocol: every message is one
// frame, every frame is
//
//   u32 magic "KIPC" | u32 type | u32 payload length | payload bytes
//
// on a byte stream — a pipe pair, a socketpair, or a TCP socket. This
// header owns exactly the framing problems byte streams create — short
// reads and writes straddling the kernel buffer, EOF in the middle of a
// frame, garbage where a header should be, a peer that stops responding,
// a socket that applies backpressure — and turns every one of them into a
// *typed* error (IpcError) instead of a hang, a partial read or undefined
// behaviour. ipc_channel_test is the protocol-conformance suite, run over
// pipe, socketpair and loopback-TCP transports: malformed input of any
// shape must produce an IpcError, never a hang or UB.
//
// Nothing here knows about shards or waves; the command vocabulary lives
// with the shard driver (and the agent vocabulary with the worker agent).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace knnpc {

/// Why an IPC operation failed. Conformance tests assert on the kind, so
/// callers can distinguish "peer exited cleanly" (Eof at a frame
/// boundary) from "peer died mid-message" (TruncatedFrame) from "peer is
/// wedged" (Timeout).
enum class IpcErrorKind {
  /// Clean EOF exactly between frames — the peer closed its write end.
  Eof,
  /// EOF after a partial header or partial payload.
  TruncatedFrame,
  /// The 4 bytes where "KIPC" belongs hold something else.
  BadMagic,
  /// The length prefix exceeds the channel's max_frame_bytes bound. The
  /// payload is never allocated, so a corrupt length cannot drive a
  /// multi-gigabyte allocation. The message carries the frame type, the
  /// observed length and the bound, so a corrupt prefix on a remote link
  /// is diagnosable from the error string alone.
  OversizedFrame,
  /// The deadline passed before a complete frame arrived (recv) or before
  /// the peer drained enough buffer space to accept one (send under
  /// socket backpressure).
  Timeout,
  /// An underlying syscall failed (errno text in the message).
  SysError,
};

/// Human-readable kind name ("eof", "truncated-frame", ...).
const char* ipc_error_kind_name(IpcErrorKind kind) noexcept;

class IpcError : public std::runtime_error {
 public:
  IpcError(IpcErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(ipc_error_kind_name(kind)) + ": " +
                           what),
        kind_(kind) {}

  [[nodiscard]] IpcErrorKind kind() const noexcept { return kind_; }

 private:
  IpcErrorKind kind_;
};

/// One decoded frame.
struct IpcFrame {
  std::uint32_t type = 0;
  std::vector<std::byte> payload;
};

/// One end of a bidirectional framed channel over one or two stream fds.
///
/// Thread-safety: single-owner — send()/recv() must not be called
/// concurrently on the same instance. Distinct channels are independent
/// (the shard driver owns one per worker).
///
/// Ownership: the channel owns its fds and closes them on destruction.
/// When both directions share one fd (a socket), close_read/close_write
/// half-close with shutdown() and the last direction closes the fd.
/// Construction ignores SIGPIPE process-wide (once): a peer that died
/// must surface as an EPIPE SysError from send(), not kill the driver.
///
/// Timeout contract (uniform across send, recv and subprocess.h's
/// wait_all): `timeout_s < 0` blocks forever, `timeout_s == 0` polls
/// exactly once and then throws Timeout, `timeout_s > 0` is a deadline
/// for the whole operation. The zero case still makes progress on data
/// the kernel already buffered — a frame that fully arrived is drained,
/// not reported as a timeout.
class IpcChannel {
 public:
  /// Default bound on a single frame's payload. Generous — a ShardResult
  /// for tens of millions of users fits — while still rejecting a corrupt
  /// length prefix long before it can drive an absurd allocation.
  static constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 30;

  IpcChannel() = default;
  /// Takes ownership of `read_fd` and `write_fd` (either may be -1 for a
  /// half-open channel; using the missing direction throws SysError).
  /// Passing the same fd twice makes a socket channel: both directions
  /// ride the one fd and close_read/close_write become shutdown()s.
  IpcChannel(int read_fd, int write_fd,
             std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Connects to `host:port` over TCP and wraps the socket as a channel.
  /// The socket is O_NONBLOCK + O_CLOEXEC with TCP_NODELAY (the protocol
  /// is strict request/reply; Nagle would serialise every round-trip with
  /// the delayed-ACK timer) and SO_KEEPALIVE (a silently vanished peer
  /// must eventually surface as a SysError, not an eternal hang) set.
  /// `timeout_s` bounds the connect itself (same <0 / 0 / >0 contract);
  /// failure to connect throws IpcError{Timeout} or IpcError{SysError}.
  static IpcChannel connect_tcp(
      const std::string& host, std::uint16_t port, double timeout_s = -1.0,
      std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  IpcChannel(IpcChannel&& other) noexcept;
  IpcChannel& operator=(IpcChannel&& other) noexcept;
  IpcChannel(const IpcChannel&) = delete;
  IpcChannel& operator=(const IpcChannel&) = delete;
  ~IpcChannel();

  [[nodiscard]] bool valid() const noexcept {
    return read_fd_ >= 0 || write_fd_ >= 0;
  }
  [[nodiscard]] int read_fd() const noexcept { return read_fd_; }
  [[nodiscard]] int write_fd() const noexcept { return write_fd_; }

  /// Writes one complete frame, looping over short writes and EINTR (a
  /// payload larger than the kernel buffer legitimately takes several
  /// write() calls). On a non-blocking fd that reports EAGAIN — a socket
  /// whose peer applies backpressure — the loop polls for writability
  /// with the remaining deadline instead of spinning; `timeout_s`
  /// follows the channel-wide contract (< 0 forever, 0 poll-once, > 0
  /// deadline for the whole frame) and expiry throws IpcError{Timeout}.
  /// Throws IpcError{SysError} on write failure — including EPIPE when
  /// the peer is gone — and IpcError{OversizedFrame} when the payload
  /// exceeds max_frame_bytes (the peer would be required to reject it).
  void send(std::uint32_t type, std::span<const std::byte> payload,
            double timeout_s = -1.0);

  /// Reads one complete frame. `timeout_s` follows the channel-wide
  /// contract: < 0 blocks forever, 0 polls once (draining a frame the
  /// kernel already buffered) then throws Timeout, > 0 is a deadline for
  /// the whole frame (header and payload) — the caller decides whether
  /// Timeout means a wedged peer. All malformed-input cases throw the
  /// typed errors documented on IpcErrorKind; none of them hang,
  /// over-read or allocate from an untrusted length.
  IpcFrame recv(double timeout_s = -1.0);

  /// Closes one direction early (recv on the peer then sees clean Eof).
  /// On a shared-fd (socket) channel this is a shutdown() half-close;
  /// the fd itself is closed when the second direction goes.
  void close_read() noexcept;
  void close_write() noexcept;

  /// Disowns and returns {read_fd, write_fd} without closing them — for
  /// handing a socket to a spawned worker as its stdio. The channel is
  /// invalid afterwards.
  [[nodiscard]] std::pair<int, int> release() noexcept;

 private:
  /// Reads exactly `size` bytes before `deadline_ns` (monotonic; -1 =
  /// none). `header_done` selects the truncation kind for a mid-buffer
  /// EOF; an EOF with zero bytes read of the *header* is a clean Eof.
  void read_exact(std::byte* out, std::size_t size, std::int64_t deadline_ns,
                  bool header);

  int read_fd_ = -1;
  int write_fd_ = -1;
  std::uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

/// A listening TCP socket that accepts IpcChannel connections — the
/// worker-agent's front door. Binding port 0 picks an ephemeral port;
/// port() reports the bound one either way.
class IpcListener {
 public:
  IpcListener() = default;
  /// Binds and listens on `host:port`. Throws IpcError{SysError} when
  /// any step (resolve, socket, bind, listen) fails.
  IpcListener(const std::string& host, std::uint16_t port,
              std::uint32_t max_frame_bytes = IpcChannel::kDefaultMaxFrameBytes);

  IpcListener(IpcListener&& other) noexcept;
  IpcListener& operator=(IpcListener&& other) noexcept;
  IpcListener(const IpcListener&) = delete;
  IpcListener& operator=(const IpcListener&) = delete;
  ~IpcListener();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// The actually-bound port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accepts one connection as a channel with the same socket options as
  /// connect_tcp. `timeout_s` follows the channel-wide contract; expiry
  /// throws IpcError{Timeout}.
  IpcChannel accept(double timeout_s = -1.0);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint32_t max_frame_bytes_ = IpcChannel::kDefaultMaxFrameBytes;
};

/// A connected pair of unidirectional pipes wrapped as the two ends of a
/// parent/child channel: the parent keeps `parent`, the child ends are
/// passed as the child's stdin/stdout (util/subprocess's stdio wiring).
/// All four fds are O_CLOEXEC so unrelated children never inherit them;
/// dup2() onto fd 0/1 in the spawned child clears the flag on the copies.
struct IpcChannelPair {
  IpcChannel parent;
  /// Child's read end (its stdin) and write end (its stdout). The
  /// Subprocess stdio constructor closes them in the parent after fork.
  int child_read_fd = -1;
  int child_write_fd = -1;
};

/// Creates the two pipes. Throws IpcError{SysError} when pipe2 fails.
IpcChannelPair make_ipc_channel_pair(
    std::uint32_t max_frame_bytes = IpcChannel::kDefaultMaxFrameBytes);

/// Splits "host:port" into its parts ("127.0.0.1:7070" -> {"127.0.0.1",
/// 7070}). Throws IpcError{SysError} on a malformed endpoint (missing
/// colon, empty host, non-numeric or out-of-range port).
std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& endpoint);

}  // namespace knnpc
