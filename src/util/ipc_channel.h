// Length-prefixed binary framing over POSIX pipes — the persistent-worker
// command channel (core/shard_driver.h, ShardWorkerMode::Persistent).
//
// The driver keeps S worker processes alive across iterations and drives
// them through a strict request/reply protocol: every message is one
// frame, every frame is
//
//   u32 magic "KIPC" | u32 type | u32 payload length | payload bytes
//
// on a byte pipe. This header owns exactly the framing problems pipes
// create — short reads and writes straddling the pipe buffer, EOF in the
// middle of a frame, garbage where a header should be, a peer that stops
// responding — and turns every one of them into a *typed* error
// (IpcError) instead of a hang, a partial read or undefined behaviour.
// ipc_channel_test is the protocol-conformance suite: malformed input of
// any shape must produce an IpcError, never a hang or UB.
//
// Nothing here knows about shards or waves; the command vocabulary lives
// with the shard driver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace knnpc {

/// Why an IPC operation failed. Conformance tests assert on the kind, so
/// callers can distinguish "peer exited cleanly" (Eof at a frame
/// boundary) from "peer died mid-message" (TruncatedFrame) from "peer is
/// wedged" (Timeout).
enum class IpcErrorKind {
  /// Clean EOF exactly between frames — the peer closed its write end.
  Eof,
  /// EOF after a partial header or partial payload.
  TruncatedFrame,
  /// The 4 bytes where "KIPC" belongs hold something else.
  BadMagic,
  /// The length prefix exceeds the channel's max_frame_bytes bound. The
  /// payload is never allocated, so a corrupt length cannot drive a
  /// multi-gigabyte allocation.
  OversizedFrame,
  /// The deadline passed before a complete frame arrived.
  Timeout,
  /// An underlying syscall failed (errno text in the message).
  SysError,
};

/// Human-readable kind name ("eof", "truncated-frame", ...).
const char* ipc_error_kind_name(IpcErrorKind kind) noexcept;

class IpcError : public std::runtime_error {
 public:
  IpcError(IpcErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(ipc_error_kind_name(kind)) + ": " +
                           what),
        kind_(kind) {}

  [[nodiscard]] IpcErrorKind kind() const noexcept { return kind_; }

 private:
  IpcErrorKind kind_;
};

/// One decoded frame.
struct IpcFrame {
  std::uint32_t type = 0;
  std::vector<std::byte> payload;
};

/// One end of a bidirectional framed channel over two pipe fds.
///
/// Thread-safety: single-owner — send()/recv() must not be called
/// concurrently on the same instance. Distinct channels are independent
/// (the shard driver owns one per worker).
///
/// Ownership: the channel owns both fds and closes them on destruction.
/// Construction ignores SIGPIPE process-wide (once): a peer that died
/// must surface as an EPIPE SysError from send(), not kill the driver.
class IpcChannel {
 public:
  /// Default bound on a single frame's payload. Generous — a ShardResult
  /// for tens of millions of users fits — while still rejecting a corrupt
  /// length prefix long before it can drive an absurd allocation.
  static constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 30;

  IpcChannel() = default;
  /// Takes ownership of `read_fd` and `write_fd` (either may be -1 for a
  /// half-open channel; using the missing direction throws SysError).
  IpcChannel(int read_fd, int write_fd,
             std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  IpcChannel(IpcChannel&& other) noexcept;
  IpcChannel& operator=(IpcChannel&& other) noexcept;
  IpcChannel(const IpcChannel&) = delete;
  IpcChannel& operator=(const IpcChannel&) = delete;
  ~IpcChannel();

  [[nodiscard]] bool valid() const noexcept {
    return read_fd_ >= 0 || write_fd_ >= 0;
  }
  [[nodiscard]] int read_fd() const noexcept { return read_fd_; }
  [[nodiscard]] int write_fd() const noexcept { return write_fd_; }

  /// Writes one complete frame, looping over short writes and EINTR (a
  /// payload larger than the pipe buffer takes several write() calls).
  /// Throws IpcError{SysError} on write failure — including EPIPE when
  /// the peer is gone — and IpcError{OversizedFrame} when the payload
  /// exceeds max_frame_bytes (the peer would be required to reject it).
  void send(std::uint32_t type, std::span<const std::byte> payload);

  /// Reads one complete frame. `timeout_s` < 0 blocks forever; otherwise
  /// the whole frame (header and payload) must arrive before the
  /// deadline or IpcError{Timeout} is thrown — the caller decides whether
  /// that means a wedged peer. All malformed-input cases throw the typed
  /// errors documented on IpcErrorKind; none of them hang, over-read or
  /// allocate from an untrusted length.
  IpcFrame recv(double timeout_s = -1.0);

  /// Closes one direction early (recv on the peer then sees clean Eof).
  void close_read() noexcept;
  void close_write() noexcept;

 private:
  /// Reads exactly `size` bytes before `deadline_ns` (monotonic; -1 =
  /// none). `header_done` selects the truncation kind for a mid-buffer
  /// EOF; an EOF with zero bytes read of the *header* is a clean Eof.
  void read_exact(std::byte* out, std::size_t size, std::int64_t deadline_ns,
                  bool header);

  int read_fd_ = -1;
  int write_fd_ = -1;
  std::uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

/// A connected pair of unidirectional pipes wrapped as the two ends of a
/// parent/child channel: the parent keeps `parent`, the child ends are
/// passed as the child's stdin/stdout (util/subprocess's stdio wiring).
/// All four fds are O_CLOEXEC so unrelated children never inherit them;
/// dup2() onto fd 0/1 in the spawned child clears the flag on the copies.
struct IpcChannelPair {
  IpcChannel parent;
  /// Child's read end (its stdin) and write end (its stdout). The
  /// Subprocess stdio constructor closes them in the parent after fork.
  int child_read_fd = -1;
  int child_write_fd = -1;
};

/// Creates the two pipes. Throws IpcError{SysError} when pipe2 fails.
IpcChannelPair make_ipc_channel_pair(
    std::uint32_t max_frame_bytes = IpcChannel::kDefaultMaxFrameBytes);

}  // namespace knnpc
