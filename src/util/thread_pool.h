// Scalable fixed-size thread pool with chunked `parallel_for` /
// `parallel_reduce` helpers.
//
// Phase 4 parallelises similarity computation over the tuple bundle of the
// currently loaded PI edge (the paper's future-work "multiple threads");
// the same pool drives the brute-force baseline, NN-Descent scoring and the
// sampled-recall estimator.
//
// Design (vs the original mutex+condvar+std::queue<std::packaged_task>
// pool, which paid one std::function + future allocation and two lock
// round-trips per chunk):
//
//  - A `parallel_for`/`parallel_reduce` call publishes ONE heap-allocated
//    job; workers claim chunks from it with a single atomic fetch_add per
//    chunk (dynamic scheduling, no per-chunk allocation, no per-chunk
//    locking).
//  - The calling thread participates in chunk execution instead of
//    blocking, so a pool of T workers applies T+1 threads to each loop.
//  - Ranges are over-decomposed (~4 chunks per thread, each at least
//    `min_chunk` items) so skewed bodies load-balance.
//  - `submit` keeps the classic future-returning task queue for irregular
//    work; workers drain it between jobs, and tasks submitted from inside
//    a worker body are legal ("nested submit") — they run once a thread
//    is free, so wait on such futures only after the enclosing
//    parallel_for returned.
//  - Calling `parallel_for`/`parallel_reduce` from *inside* one of this
//    pool's workers does not deadlock: the nested call degrades to inline
//    serial execution on the calling worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace knnpc {

/// Resolves a user-facing thread-count knob: `requested > 0` is taken
/// verbatim; `requested == 0` means "auto" — hardware concurrency clamped
/// so that every thread gets at least `work_per_thread` of the
/// `work_items` workload (small runs stay serial, large runs multi-thread
/// by default). Always returns >= 1.
std::uint32_t resolve_thread_count(std::uint32_t requested,
                                   std::uint64_t work_items,
                                   std::uint64_t work_per_thread = 16384);

/// Thread-safety: submit() may be called from any thread, including from
/// inside worker bodies. parallel_for()/parallel_reduce() may be issued
/// from multiple threads concurrently — callers serialise on an internal
/// mutex (one published job at a time), and a call from *inside* a worker
/// degrades to inline serial execution instead of deadlocking. The shard
/// driver therefore gives each shard worker its OWN pool: per-shard loops
/// never queue behind another shard's work.
///
/// Ownership: the pool owns its worker threads; the destructor lets
/// workers drain the pending task queue, then joins them. Callers own the
/// data their bodies touch — a body must not outlive the objects it
/// captures by reference (parallel_for blocks until every chunk finished,
/// which is what makes stack captures safe).
class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion. May be called
  /// from inside a worker body (the task runs when a thread frees up).
  std::future<void> submit(std::function<void()> task);

  /// Splits [begin, end) into contiguous chunks of at least `min_chunk`
  /// items (except possibly the last) and runs `body(chunk_begin,
  /// chunk_end)` across the pool plus the calling thread. Blocks until all
  /// chunks are done.
  ///
  /// Exception contract: every chunk is attempted even when an earlier
  /// chunk throws; once all chunks finished, the exception thrown by the
  /// LOWEST chunk index (i.e. the smallest `chunk_begin`) is rethrown and
  /// the rest are discarded. This makes the observed exception
  /// deterministic regardless of thread scheduling.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t min_chunk = 1024) {
    using B = std::remove_reference_t<Body>;
    run_chunks(begin, end, min_chunk,
               [](void* ctx, std::size_t /*chunk*/, std::size_t lo,
                  std::size_t hi) { (*static_cast<B*>(ctx))(lo, hi); },
               &body);
  }

  /// Parallel map-reduce over [begin, end): `map(chunk_begin, chunk_end)`
  /// produces one partial result per chunk; partials are folded with
  /// `combine(accumulator, partial)` strictly in ascending chunk order
  /// (starting from `identity`), on the calling thread. With a
  /// deterministic `map`, the result is therefore independent of thread
  /// scheduling — the phase-4 top-K merges rely on this. Exceptions follow
  /// the parallel_for contract (lowest chunk index wins).
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t begin, std::size_t end, T identity, Map&& map,
                    Combine&& combine, std::size_t min_chunk = 1024) {
    if (begin >= end) return identity;
    const ChunkPlan plan = plan_chunks(begin, end, min_chunk);
    if (plan.num_chunks <= 1) {
      return combine(std::move(identity), map(begin, end));
    }
    struct Ctx {
      std::remove_reference_t<Map>* map;
      std::optional<T>* partials;
    };
    std::vector<std::optional<T>> partials(plan.num_chunks);
    Ctx ctx{&map, partials.data()};
    run_chunks(begin, end, min_chunk,
               [](void* c, std::size_t chunk, std::size_t lo,
                  std::size_t hi) {
                 auto* x = static_cast<Ctx*>(c);
                 x->partials[chunk].emplace((*x->map)(lo, hi));
               },
               &ctx);
    T acc = std::move(identity);
    for (auto& partial : partials) {
      acc = combine(std::move(acc), std::move(*partial));
    }
    return acc;
  }

 private:
  struct Job;
  struct ChunkPlan {
    std::size_t num_chunks = 0;
    std::size_t chunk_size = 0;
  };
  /// `fn(ctx, chunk_index, chunk_begin, chunk_end)`; a plain function
  /// pointer + context so a loop costs zero std::function allocations.
  using ChunkFn = void (*)(void*, std::size_t, std::size_t, std::size_t);

  [[nodiscard]] ChunkPlan plan_chunks(std::size_t begin, std::size_t end,
                                      std::size_t min_chunk) const;
  void run_chunks(std::size_t begin, std::size_t end, std::size_t min_chunk,
                  ChunkFn fn, void* ctx);
  /// Claims and executes chunks of `job` until none remain.
  void work_on(Job& job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;       // wakes workers: job / task / stop
  std::condition_variable done_cv_;  // wakes run_chunks when a job drains
  std::queue<std::packaged_task<void()>> tasks_;
  std::shared_ptr<Job> job_;     // active parallel loop, if any
  std::uint64_t job_epoch_ = 0;  // bumped per published job
  bool stop_ = false;
  /// Serialises concurrent parallel_for/parallel_reduce callers (the
  /// single job slot holds one loop at a time).
  std::mutex run_mutex_;
};

}  // namespace knnpc
