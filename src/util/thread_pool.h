// Fixed-size thread pool with a parallel_for helper.
//
// Phase 4 parallelises similarity computation over the tuple bundle of the
// currently loaded PI edge (the paper's future-work "multiple threads").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace knnpc {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Splits [begin, end) into contiguous chunks (one per worker, at least
  /// `min_chunk` items each) and runs `body(chunk_begin, chunk_end)` on the
  /// pool. Blocks until all chunks are done. Exceptions from the body are
  /// rethrown (the first one).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_chunk = 1024);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace knnpc
