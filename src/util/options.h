// Tiny declarative CLI option parser used by examples and bench harnesses.
//
//   Options opts;
//   opts.add_uint("k", "neighbours per user", 10);
//   opts.add_string("heuristic", "seq|high-low|low-high", "low-high");
//   opts.parse(argc, argv);            // accepts --k=16 and --k 16
//   auto k = opts.get_uint("k");
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace knnpc {

class Options {
 public:
  void add_uint(const std::string& name, const std::string& help,
                std::uint64_t default_value);
  void add_double(const std::string& name, const std::string& help,
                  double default_value);
  void add_string(const std::string& name, const std::string& help,
                  const std::string& default_value);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Throws std::invalid_argument on unknown options or
  /// malformed values. Recognises --help by printing usage and returning
  /// false (caller should exit 0).
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Positional arguments left after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  enum class Kind { Uint, Double, String, Flag };
  struct Spec {
    Kind kind;
    std::string help;
    std::string value;  // textual; parsed lazily by getters
  };

  const Spec& find(const std::string& name, Kind kind) const;

  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
};

}  // namespace knnpc
