#include "util/ipc_channel.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

namespace knnpc {
namespace {

constexpr std::uint32_t kFrameMagic = 0x4350494bu;  // "KIPC" little-endian

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t type = 0;
  std::uint32_t length = 0;
};
static_assert(sizeof(FrameHeader) == 12);

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Converts the uniform timeout contract (< 0 forever, 0 poll-once, > 0
/// bounded) to an absolute monotonic deadline (-1 = none). A zero timeout
/// yields an already-expired deadline, which the wait helpers turn into
/// exactly one poll at timeout 0.
std::int64_t deadline_from_timeout(double timeout_s) {
  return timeout_s < 0.0
             ? -1
             : monotonic_ns() + static_cast<std::int64_t>(timeout_s * 1e9);
}

[[noreturn]] void throw_errno(IpcErrorKind kind, const char* what) {
  throw IpcError(kind, std::string(what) + ": " + std::strerror(errno));
}

/// Waits for `fd` to match `events` before `deadline_ns` (-1 = forever).
/// Throws Timeout (with `timeout_what`) when the deadline passes, SysError
/// on poll failure.
void wait_pollable(int fd, short events, std::int64_t deadline_ns,
                   const char* timeout_what) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline_ns >= 0) {
      const std::int64_t remaining_ns = deadline_ns - monotonic_ns();
      // An expired deadline still polls once with timeout 0: data already
      // buffered in the pipe must be drained (and buffer space the peer
      // already freed must be used), not reported as a timeout — the peer
      // delivered in time even if the caller got here late.
      timeout_ms = remaining_ns <= 0
                       ? 0
                       : static_cast<int>((remaining_ns + 999'999) /
                                          1'000'000);
    }
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r > 0) return;  // ready, error or hangup: read()/write() will tell
    if (r == 0) {
      if (deadline_ns < 0) continue;  // spurious; loop re-derives timeout
      throw IpcError(IpcErrorKind::Timeout, timeout_what);
    }
    if (errno == EINTR) continue;
    throw_errno(IpcErrorKind::SysError, "poll");
  }
}

/// Waits for `fd` to become readable before `deadline_ns` (-1 = forever).
void wait_readable(int fd, std::int64_t deadline_ns) {
  wait_pollable(fd, POLLIN, deadline_ns,
                "no complete frame before the deadline");
}

/// Waits for `fd` to accept more bytes before `deadline_ns` (-1 =
/// forever) — the backpressure path for non-blocking sockets.
void wait_writable(int fd, std::int64_t deadline_ns) {
  wait_pollable(fd, POLLOUT, deadline_ns,
                "peer applied backpressure past the deadline");
}

/// Applies the channel socket options: no Nagle (strict request/reply
/// would otherwise serialise on the delayed-ACK timer), keepalive (a
/// vanished peer must surface as an error eventually), non-blocking (so
/// send() can honor deadlines under backpressure via wait_writable).
void configure_channel_socket(int fd) {
  const int one = 1;
  // TCP_NODELAY fails harmlessly on AF_UNIX sockets; ignore the error.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one)) != 0) {
    throw_errno(IpcErrorKind::SysError, "setsockopt(SO_KEEPALIVE)");
  }
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno(IpcErrorKind::SysError, "fcntl(O_NONBLOCK)");
  }
}

/// Closes `fd` preserving errno (for error-path cleanup).
void close_quietly(int fd) noexcept {
  const int err = errno;
  ::close(fd);
  errno = err;
}

struct ResolvedAddr {
  sockaddr_storage addr{};
  socklen_t len = 0;
  int family = AF_INET;
};

/// Resolves `host:port` to one sockaddr (numeric or named hosts; the
/// first result wins). Throws IpcError{SysError} on resolution failure.
ResolvedAddr resolve_host(const std::string& host, std::uint16_t port) {
  struct addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  struct addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &result);
  if (rc != 0 || result == nullptr) {
    throw IpcError(IpcErrorKind::SysError,
                   "cannot resolve \"" + host + "\": " +
                       (rc != 0 ? ::gai_strerror(rc) : "no addresses"));
  }
  ResolvedAddr out;
  std::memcpy(&out.addr, result->ai_addr, result->ai_addrlen);
  out.len = static_cast<socklen_t>(result->ai_addrlen);
  out.family = result->ai_family;
  ::freeaddrinfo(result);
  return out;
}

}  // namespace

const char* ipc_error_kind_name(IpcErrorKind kind) noexcept {
  switch (kind) {
    case IpcErrorKind::Eof:
      return "eof";
    case IpcErrorKind::TruncatedFrame:
      return "truncated-frame";
    case IpcErrorKind::BadMagic:
      return "bad-magic";
    case IpcErrorKind::OversizedFrame:
      return "oversized-frame";
    case IpcErrorKind::Timeout:
      return "timeout";
    case IpcErrorKind::SysError:
      return "sys-error";
  }
  return "unknown";
}

IpcChannel::IpcChannel(int read_fd, int write_fd,
                       std::uint32_t max_frame_bytes)
    : read_fd_(read_fd), write_fd_(write_fd),
      max_frame_bytes_(max_frame_bytes) {
  // A peer that died mid-conversation must surface as EPIPE from write(),
  // not as a process-killing SIGPIPE. Installing SIG_IGN once is the
  // standard middleware move; done lazily here so programs that never use
  // IPC keep their default disposition.
  static const bool sigpipe_ignored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)sigpipe_ignored;
}

IpcChannel IpcChannel::connect_tcp(const std::string& host,
                                   std::uint16_t port, double timeout_s,
                                   std::uint32_t max_frame_bytes) {
  const std::int64_t deadline_ns = deadline_from_timeout(timeout_s);
  const ResolvedAddr target = resolve_host(host, port);
  const int fd = ::socket(target.family,
                          SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK,
                          IPPROTO_TCP);
  if (fd < 0) throw_errno(IpcErrorKind::SysError, "socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&target.addr),
                target.len) != 0) {
    if (errno != EINPROGRESS) {
      close_quietly(fd);
      throw_errno(IpcErrorKind::SysError, "connect");
    }
    // Non-blocking connect: completion is "socket writable"; the result
    // lands in SO_ERROR.
    try {
      wait_pollable(fd, POLLOUT, deadline_ns,
                    "connect did not complete before the deadline");
    } catch (...) {
      ::close(fd);
      throw;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      close_quietly(fd);
      throw_errno(IpcErrorKind::SysError, "getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      ::close(fd);
      errno = err;
      throw_errno(IpcErrorKind::SysError, "connect");
    }
  }
  try {
    configure_channel_socket(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return IpcChannel(fd, fd, max_frame_bytes);
}

IpcChannel::IpcChannel(IpcChannel&& other) noexcept
    : read_fd_(std::exchange(other.read_fd_, -1)),
      write_fd_(std::exchange(other.write_fd_, -1)),
      max_frame_bytes_(other.max_frame_bytes_) {}

IpcChannel& IpcChannel::operator=(IpcChannel&& other) noexcept {
  if (this != &other) {
    close_read();
    close_write();
    read_fd_ = std::exchange(other.read_fd_, -1);
    write_fd_ = std::exchange(other.write_fd_, -1);
    max_frame_bytes_ = other.max_frame_bytes_;
  }
  return *this;
}

IpcChannel::~IpcChannel() {
  close_read();
  close_write();
}

void IpcChannel::close_read() noexcept {
  if (read_fd_ < 0) return;
  if (read_fd_ == write_fd_) {
    // Both directions share a socket: half-close so the peer sees EOF,
    // and let whichever direction goes last do the real close.
    ::shutdown(read_fd_, SHUT_RD);
  } else {
    ::close(read_fd_);
  }
  read_fd_ = -1;
}

void IpcChannel::close_write() noexcept {
  if (write_fd_ < 0) return;
  if (write_fd_ == read_fd_) {
    ::shutdown(write_fd_, SHUT_WR);
  } else {
    ::close(write_fd_);
  }
  write_fd_ = -1;
}

std::pair<int, int> IpcChannel::release() noexcept {
  return {std::exchange(read_fd_, -1), std::exchange(write_fd_, -1)};
}

void IpcChannel::send(std::uint32_t type, std::span<const std::byte> payload,
                      double timeout_s) {
  if (write_fd_ < 0) {
    throw IpcError(IpcErrorKind::SysError, "send on a read-only channel");
  }
  if (payload.size() > max_frame_bytes_) {
    throw IpcError(IpcErrorKind::OversizedFrame,
                   "refusing to send frame type " + std::to_string(type) +
                       " with a " + std::to_string(payload.size()) +
                       "-byte payload (max " +
                       std::to_string(max_frame_bytes_) + " bytes)");
  }
  const std::int64_t deadline_ns = deadline_from_timeout(timeout_s);
  FrameHeader header;
  header.type = type;
  header.length = static_cast<std::uint32_t>(payload.size());

  // One gather write per chunk attempt: a frame larger than the kernel
  // buffer legitimately lands in several short writes, so loop until
  // every byte of header + payload is out. EAGAIN (a non-blocking socket
  // whose peer applies backpressure) polls for writability with the
  // remaining deadline — never a busy-spin.
  const std::byte* chunks[2] = {reinterpret_cast<const std::byte*>(&header),
                                payload.data()};
  std::size_t sizes[2] = {sizeof(header), payload.size()};
  for (int part = 0; part < 2; ++part) {
    const std::byte* data = chunks[part];
    std::size_t remaining = sizes[part];
    while (remaining > 0) {
      const ssize_t written = ::write(write_fd_, data, remaining);
      if (written < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          wait_writable(write_fd_, deadline_ns);
          continue;
        }
        throw_errno(IpcErrorKind::SysError, "write");
      }
      data += written;
      remaining -= static_cast<std::size_t>(written);
    }
  }
}

void IpcChannel::read_exact(std::byte* out, std::size_t size,
                            std::int64_t deadline_ns, bool header) {
  std::size_t have = 0;
  while (have < size) {
    wait_readable(read_fd_, deadline_ns);
    const ssize_t got = ::read(read_fd_, out + have, size - have);
    if (got < 0) {
      // EAGAIN after "readable": a spurious wakeup or a racing reader —
      // safe to re-poll (wait_readable re-derives the remaining time, so
      // this cannot spin).
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      throw_errno(IpcErrorKind::SysError, "read");
    }
    if (got == 0) {
      if (header && have == 0) {
        throw IpcError(IpcErrorKind::Eof, "peer closed the channel");
      }
      throw IpcError(IpcErrorKind::TruncatedFrame,
                     "EOF after " + std::to_string(have) + " of " +
                         std::to_string(size) + " bytes" +
                         (header ? " of the frame header" : " of the payload"));
    }
    have += static_cast<std::size_t>(got);
  }
}

IpcFrame IpcChannel::recv(double timeout_s) {
  if (read_fd_ < 0) {
    throw IpcError(IpcErrorKind::SysError, "recv on a write-only channel");
  }
  const std::int64_t deadline_ns = deadline_from_timeout(timeout_s);
  FrameHeader header;
  read_exact(reinterpret_cast<std::byte*>(&header), sizeof(header),
             deadline_ns, /*header=*/true);
  if (header.magic != kFrameMagic) {
    throw IpcError(IpcErrorKind::BadMagic,
                   "frame header starts with unexpected bytes");
  }
  // Bound BEFORE the allocation: a corrupt length prefix must not drive
  // the buffer size.
  if (header.length > max_frame_bytes_) {
    throw IpcError(IpcErrorKind::OversizedFrame,
                   "frame type " + std::to_string(header.type) +
                       " length prefix claims " +
                       std::to_string(header.length) + " bytes (max " +
                       std::to_string(max_frame_bytes_) + " bytes)");
  }
  IpcFrame frame;
  frame.type = header.type;
  frame.payload.resize(header.length);
  if (header.length > 0) {
    read_exact(frame.payload.data(), frame.payload.size(), deadline_ns,
               /*header=*/false);
  }
  return frame;
}

IpcListener::IpcListener(const std::string& host, std::uint16_t port,
                         std::uint32_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  const ResolvedAddr bind_addr = resolve_host(host, port);
  // Non-blocking: accept() polls first, but the queued connection can be
  // reset between poll and accept4 — on a blocking fd that accept4 would
  // hang forever instead of returning EAGAIN for the re-poll path.
  fd_ = ::socket(bind_addr.family,
                 SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, IPPROTO_TCP);
  if (fd_ < 0) throw_errno(IpcErrorKind::SysError, "socket");
  const int one = 1;
  if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    close_quietly(std::exchange(fd_, -1));
    throw_errno(IpcErrorKind::SysError, "setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&bind_addr.addr),
             bind_addr.len) != 0) {
    close_quietly(std::exchange(fd_, -1));
    throw_errno(IpcErrorKind::SysError, "bind");
  }
  if (::listen(fd_, 64) != 0) {
    close_quietly(std::exchange(fd_, -1));
    throw_errno(IpcErrorKind::SysError, "listen");
  }
  // Re-read the bound address: a port-0 request resolves here.
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    close_quietly(std::exchange(fd_, -1));
    throw_errno(IpcErrorKind::SysError, "getsockname");
  }
  if (bound.ss_family == AF_INET6) {
    port_ = ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port);
  } else {
    port_ = ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
  }
}

IpcListener::IpcListener(IpcListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      max_frame_bytes_(other.max_frame_bytes_) {}

IpcListener& IpcListener::operator=(IpcListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    max_frame_bytes_ = other.max_frame_bytes_;
  }
  return *this;
}

IpcListener::~IpcListener() { close(); }

void IpcListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

IpcChannel IpcListener::accept(double timeout_s) {
  if (fd_ < 0) {
    throw IpcError(IpcErrorKind::SysError, "accept on a closed listener");
  }
  const std::int64_t deadline_ns = deadline_from_timeout(timeout_s);
  for (;;) {
    wait_pollable(fd_, POLLIN, deadline_ns,
                  "no connection before the deadline");
    const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      // The pending connection can vanish between poll and accept
      // (client reset); re-poll with the remaining deadline.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      throw_errno(IpcErrorKind::SysError, "accept4");
    }
    try {
      configure_channel_socket(conn);
    } catch (...) {
      ::close(conn);
      throw;
    }
    return IpcChannel(conn, conn, max_frame_bytes_);
  }
}

IpcChannelPair make_ipc_channel_pair(std::uint32_t max_frame_bytes) {
  int to_child[2];   // parent writes -> child stdin
  int to_parent[2];  // child stdout -> parent reads
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    throw_errno(IpcErrorKind::SysError, "pipe2");
  }
  if (::pipe2(to_parent, O_CLOEXEC) != 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    errno = err;
    throw_errno(IpcErrorKind::SysError, "pipe2");
  }
  IpcChannelPair pair;
  pair.parent = IpcChannel(to_parent[0], to_child[1], max_frame_bytes);
  pair.child_read_fd = to_child[0];
  pair.child_write_fd = to_parent[1];
  return pair;
}

std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& endpoint) {
  std::string host;
  std::string port_text;
  if (!endpoint.empty() && endpoint.front() == '[') {
    // Bracketed IPv6 literal: "[::1]:7070".
    const std::size_t close = endpoint.find(']');
    if (close == std::string::npos || close < 2 ||
        close + 2 >= endpoint.size() || endpoint[close + 1] != ':') {
      throw IpcError(IpcErrorKind::SysError,
                     "malformed endpoint \"" + endpoint +
                         "\" (expected [ipv6-addr]:port)");
    }
    host = endpoint.substr(1, close - 1);
    port_text = endpoint.substr(close + 2);
  } else {
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= endpoint.size()) {
      throw IpcError(IpcErrorKind::SysError,
                     "malformed endpoint \"" + endpoint +
                         "\" (expected host:port)");
    }
    if (endpoint.find(':') != colon) {
      throw IpcError(IpcErrorKind::SysError,
                     "malformed endpoint \"" + endpoint +
                         "\" (bare IPv6 literals are ambiguous; use "
                         "[addr]:port)");
    }
    host = endpoint.substr(0, colon);
    port_text = endpoint.substr(colon + 1);
  }
  std::uint32_t port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      throw IpcError(IpcErrorKind::SysError,
                     "malformed endpoint \"" + endpoint +
                         "\" (port is not a number)");
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) {
      throw IpcError(IpcErrorKind::SysError,
                     "malformed endpoint \"" + endpoint +
                         "\" (port out of range)");
    }
  }
  return {host, static_cast<std::uint16_t>(port)};
}

}  // namespace knnpc
