#include "util/ipc_channel.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <utility>

namespace knnpc {
namespace {

constexpr std::uint32_t kFrameMagic = 0x4350494bu;  // "KIPC" little-endian

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t type = 0;
  std::uint32_t length = 0;
};
static_assert(sizeof(FrameHeader) == 12);

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void throw_errno(IpcErrorKind kind, const char* what) {
  throw IpcError(kind, std::string(what) + ": " + std::strerror(errno));
}

/// Waits for `fd` to become readable before `deadline_ns` (-1 = forever).
/// Throws Timeout when the deadline passes, SysError on poll failure.
void wait_readable(int fd, std::int64_t deadline_ns) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline_ns >= 0) {
      const std::int64_t remaining_ns = deadline_ns - monotonic_ns();
      // An expired deadline still polls once with timeout 0: data already
      // buffered in the pipe must be drained, not reported as a timeout
      // (the peer delivered in time even if the caller got here late).
      timeout_ms = remaining_ns <= 0
                       ? 0
                       : static_cast<int>((remaining_ns + 999'999) /
                                          1'000'000);
    }
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r > 0) return;  // readable, error or hangup: read() will tell
    if (r == 0) {
      if (deadline_ns < 0) continue;  // spurious; loop re-derives timeout
      throw IpcError(IpcErrorKind::Timeout,
                     "no complete frame before the deadline");
    }
    if (errno == EINTR) continue;
    throw_errno(IpcErrorKind::SysError, "poll");
  }
}

}  // namespace

const char* ipc_error_kind_name(IpcErrorKind kind) noexcept {
  switch (kind) {
    case IpcErrorKind::Eof:
      return "eof";
    case IpcErrorKind::TruncatedFrame:
      return "truncated-frame";
    case IpcErrorKind::BadMagic:
      return "bad-magic";
    case IpcErrorKind::OversizedFrame:
      return "oversized-frame";
    case IpcErrorKind::Timeout:
      return "timeout";
    case IpcErrorKind::SysError:
      return "sys-error";
  }
  return "unknown";
}

IpcChannel::IpcChannel(int read_fd, int write_fd,
                       std::uint32_t max_frame_bytes)
    : read_fd_(read_fd), write_fd_(write_fd),
      max_frame_bytes_(max_frame_bytes) {
  // A peer that died mid-conversation must surface as EPIPE from write(),
  // not as a process-killing SIGPIPE. Installing SIG_IGN once is the
  // standard middleware move; done lazily here so programs that never use
  // IPC keep their default disposition.
  static const bool sigpipe_ignored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)sigpipe_ignored;
}

IpcChannel::IpcChannel(IpcChannel&& other) noexcept
    : read_fd_(std::exchange(other.read_fd_, -1)),
      write_fd_(std::exchange(other.write_fd_, -1)),
      max_frame_bytes_(other.max_frame_bytes_) {}

IpcChannel& IpcChannel::operator=(IpcChannel&& other) noexcept {
  if (this != &other) {
    close_read();
    close_write();
    read_fd_ = std::exchange(other.read_fd_, -1);
    write_fd_ = std::exchange(other.write_fd_, -1);
    max_frame_bytes_ = other.max_frame_bytes_;
  }
  return *this;
}

IpcChannel::~IpcChannel() {
  close_read();
  close_write();
}

void IpcChannel::close_read() noexcept {
  if (read_fd_ >= 0) {
    ::close(read_fd_);
    read_fd_ = -1;
  }
}

void IpcChannel::close_write() noexcept {
  if (write_fd_ >= 0) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

void IpcChannel::send(std::uint32_t type, std::span<const std::byte> payload) {
  if (write_fd_ < 0) {
    throw IpcError(IpcErrorKind::SysError, "send on a read-only channel");
  }
  if (payload.size() > max_frame_bytes_) {
    throw IpcError(IpcErrorKind::OversizedFrame,
                   "refusing to send a " + std::to_string(payload.size()) +
                       "-byte payload (max " +
                       std::to_string(max_frame_bytes_) + ")");
  }
  FrameHeader header;
  header.type = type;
  header.length = static_cast<std::uint32_t>(payload.size());

  // One gather write per chunk attempt: a frame larger than the pipe
  // buffer legitimately lands in several short writes, so loop until
  // every byte of header + payload is out.
  const std::byte* chunks[2] = {reinterpret_cast<const std::byte*>(&header),
                                payload.data()};
  std::size_t sizes[2] = {sizeof(header), payload.size()};
  for (int part = 0; part < 2; ++part) {
    const std::byte* data = chunks[part];
    std::size_t remaining = sizes[part];
    while (remaining > 0) {
      const ssize_t written = ::write(write_fd_, data, remaining);
      if (written < 0) {
        if (errno == EINTR) continue;
        throw_errno(IpcErrorKind::SysError, "write");
      }
      data += written;
      remaining -= static_cast<std::size_t>(written);
    }
  }
}

void IpcChannel::read_exact(std::byte* out, std::size_t size,
                            std::int64_t deadline_ns, bool header) {
  std::size_t have = 0;
  while (have < size) {
    wait_readable(read_fd_, deadline_ns);
    const ssize_t got = ::read(read_fd_, out + have, size - have);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw_errno(IpcErrorKind::SysError, "read");
    }
    if (got == 0) {
      if (header && have == 0) {
        throw IpcError(IpcErrorKind::Eof, "peer closed the channel");
      }
      throw IpcError(IpcErrorKind::TruncatedFrame,
                     "EOF after " + std::to_string(have) + " of " +
                         std::to_string(size) + " bytes" +
                         (header ? " of the frame header" : " of the payload"));
    }
    have += static_cast<std::size_t>(got);
  }
}

IpcFrame IpcChannel::recv(double timeout_s) {
  if (read_fd_ < 0) {
    throw IpcError(IpcErrorKind::SysError, "recv on a write-only channel");
  }
  const std::int64_t deadline_ns =
      timeout_s < 0.0
          ? -1
          : monotonic_ns() + static_cast<std::int64_t>(timeout_s * 1e9);
  FrameHeader header;
  read_exact(reinterpret_cast<std::byte*>(&header), sizeof(header),
             deadline_ns, /*header=*/true);
  if (header.magic != kFrameMagic) {
    throw IpcError(IpcErrorKind::BadMagic,
                   "frame header starts with unexpected bytes");
  }
  // Bound BEFORE the allocation: a corrupt length prefix must not drive
  // the buffer size.
  if (header.length > max_frame_bytes_) {
    throw IpcError(IpcErrorKind::OversizedFrame,
                   "length prefix claims " + std::to_string(header.length) +
                       " bytes (max " + std::to_string(max_frame_bytes_) +
                       ")");
  }
  IpcFrame frame;
  frame.type = header.type;
  frame.payload.resize(header.length);
  if (header.length > 0) {
    read_exact(frame.payload.data(), frame.payload.size(), deadline_ns,
               /*header=*/false);
  }
  return frame;
}

IpcChannelPair make_ipc_channel_pair(std::uint32_t max_frame_bytes) {
  int to_child[2];   // parent writes -> child stdin
  int to_parent[2];  // child stdout -> parent reads
  if (::pipe2(to_child, O_CLOEXEC) != 0) {
    throw_errno(IpcErrorKind::SysError, "pipe2");
  }
  if (::pipe2(to_parent, O_CLOEXEC) != 0) {
    const int err = errno;
    ::close(to_child[0]);
    ::close(to_child[1]);
    errno = err;
    throw_errno(IpcErrorKind::SysError, "pipe2");
  }
  IpcChannelPair pair;
  pair.parent = IpcChannel(to_parent[0], to_child[1], max_frame_bytes);
  pair.child_read_fd = to_child[0];
  pair.child_write_fd = to_parent[1];
  return pair;
}

}  // namespace knnpc
