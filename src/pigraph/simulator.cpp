#include "pigraph/simulator.h"

#include <algorithm>
#include <list>
#include <stdexcept>

namespace knnpc {

LoadUnloadSimulator::LoadUnloadSimulator(
    std::size_t slots, std::vector<std::uint64_t> partition_bytes,
    IoModel model)
    : slots_(slots), partition_bytes_(std::move(partition_bytes)),
      model_(std::move(model)) {
  if (slots_ < 2) {
    throw std::invalid_argument(
        "LoadUnloadSimulator: need at least 2 slots to co-locate a pair");
  }
}

SimulationResult LoadUnloadSimulator::run(const PiGraph& pi,
                                          const Schedule& schedule) const {
  if (!is_valid_schedule(pi, schedule)) {
    throw std::invalid_argument("LoadUnloadSimulator: invalid schedule");
  }
  SimulationResult result;
  // Resident set as an LRU list: front = most recently used.
  std::list<PartitionId> resident;
  auto bytes_of = [&](PartitionId p) -> std::uint64_t {
    return p < partition_bytes_.size() ? partition_bytes_[p] : 0;
  };
  auto touch = [&](PartitionId p) {
    const auto it = std::find(resident.begin(), resident.end(), p);
    if (it != resident.end()) {
      resident.erase(it);
      resident.push_front(p);
    }
  };
  auto ensure_resident = [&](PartitionId p, PartitionId also_needed) {
    if (std::find(resident.begin(), resident.end(), p) != resident.end()) {
      touch(p);
      return;
    }
    if (resident.size() >= slots_) {
      // Evict LRU that isn't the pair's other endpoint.
      for (auto it = resident.rbegin(); it != resident.rend(); ++it) {
        if (*it != also_needed) {
          ++result.unloads;
          result.bytes_moved += bytes_of(*it);
          result.modeled_us += model_.op_cost_us(bytes_of(*it));
          resident.erase(std::next(it).base());
          break;
        }
      }
    }
    resident.push_front(p);
    ++result.loads;
    result.bytes_moved += bytes_of(p);
    result.modeled_us += model_.op_cost_us(bytes_of(p));
  };

  for (PairIndex idx : schedule) {
    const PiPair& pair = pi.pair(idx);
    ensure_resident(pair.a, pair.b);
    if (pair.b != pair.a) ensure_resident(pair.b, pair.a);
    touch(pair.a);  // pair endpoints end as most-recent
  }
  // Final flush: everything still resident is unloaded once.
  for (PartitionId p : resident) {
    ++result.unloads;
    result.bytes_moved += bytes_of(p);
    result.modeled_us += model_.op_cost_us(bytes_of(p));
  }
  return result;
}

SimulationResult LoadUnloadSimulator::run(
    const PiGraph& pi, const TraversalHeuristic& heuristic) const {
  return run(pi, heuristic.schedule(pi));
}

}  // namespace knnpc
