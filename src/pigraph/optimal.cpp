#include "pigraph/optimal.h"

#include <algorithm>
#include <stdexcept>

#include "pigraph/simulator_state.h"

namespace knnpc {

void ResidencyState::touch(PartitionId p) {
  const auto it = std::find(lru_.begin(), lru_.end(), p);
  if (it != lru_.end()) {
    lru_.erase(it);
    lru_.insert(lru_.begin(), p);
  }
}

std::uint64_t ResidencyState::ensure(PartitionId p, PartitionId also_needed) {
  if (std::find(lru_.begin(), lru_.end(), p) != lru_.end()) {
    touch(p);
    return 0;
  }
  if (lru_.size() >= slots_) {
    // Evict the least-recent resident that the pair doesn't need.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (*it != also_needed) {
        lru_.erase(std::next(it).base());
        break;
      }
    }
  }
  lru_.insert(lru_.begin(), p);
  ++loads_;
  return 1;
}

std::uint64_t ResidencyState::step(const PiPair& pair) {
  std::uint64_t ops = ensure(pair.a, pair.b);
  if (pair.b != pair.a) ops += ensure(pair.b, pair.a);
  touch(pair.a);
  return ops;
}

namespace {

struct SearchContext {
  const PiGraph* pi;
  std::size_t slots;
  std::vector<bool> used;
  Schedule current;
  Schedule best;
  std::uint64_t best_loads;
};

void search(SearchContext& ctx, ResidencyState& state) {
  if (ctx.current.size() == ctx.pi->num_pairs()) {
    if (state.loads() < ctx.best_loads) {
      ctx.best_loads = state.loads();
      ctx.best = ctx.current;
    }
    return;
  }
  if (state.loads() >= ctx.best_loads) return;  // bound: loads only grow
  for (PairIndex idx = 0; idx < ctx.pi->num_pairs(); ++idx) {
    if (ctx.used[idx]) continue;
    const auto snap = state.snapshot();
    state.step(ctx.pi->pair(idx));
    ctx.used[idx] = true;
    ctx.current.push_back(idx);
    search(ctx, state);
    ctx.current.pop_back();
    ctx.used[idx] = false;
    state.restore(snap);
  }
}

}  // namespace

OptimalSchedule optimal_schedule(const PiGraph& pi, std::size_t slots,
                                 std::size_t max_pairs) {
  if (pi.num_pairs() > max_pairs) {
    throw std::invalid_argument(
        "optimal_schedule: PI graph too large for exhaustive search");
  }
  if (slots < 2) {
    throw std::invalid_argument("optimal_schedule: need >= 2 slots");
  }
  OptimalSchedule result;
  if (pi.num_pairs() == 0) return result;
  SearchContext ctx{&pi, slots, std::vector<bool>(pi.num_pairs(), false),
                    {},  {},    ~0ULL};
  ResidencyState state(slots);
  search(ctx, state);
  result.schedule = ctx.best;
  // Total operations = loads + unloads; everything loaded is eventually
  // unloaded (the simulator's final flush), so ops = 2 * loads.
  result.operations = 2 * ctx.best_loads;
  return result;
}

}  // namespace knnpc
