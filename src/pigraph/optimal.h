// Exhaustive-optimal PI traversal for small graphs.
//
// Branch-and-bound over pair permutations: gives the true minimum
// load/unload count so the heuristics can be measured against the
// optimum (tests and the heuristic ablation use it). Exponential — only
// sensible for num_pairs <= ~10.
#pragma once

#include <cstdint>

#include "pigraph/heuristics.h"
#include "pigraph/pi_graph.h"

namespace knnpc {

struct OptimalSchedule {
  Schedule schedule;
  std::uint64_t operations = 0;
};

/// Finds a schedule with the minimum simulator operations for `slots`
/// resident slots. Throws std::invalid_argument when the PI graph has
/// more than `max_pairs` pairs (guard against accidental blow-up).
OptimalSchedule optimal_schedule(const PiGraph& pi, std::size_t slots = 2,
                                 std::size_t max_pairs = 10);

}  // namespace knnpc
