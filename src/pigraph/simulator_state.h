// Incremental simulator state shared by the optimal searcher: replays
// pairs one at a time with undo, so branch-and-bound can explore without
// re-running whole schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "pigraph/pi_graph.h"

namespace knnpc {

/// 2-slot-or-more resident set with LRU eviction (matching
/// LoadUnloadSimulator's policy) and cheap step/undo.
class ResidencyState {
 public:
  explicit ResidencyState(std::size_t slots) : slots_(slots) {}

  /// Operations (loads; unloads mirror them) incurred by processing pair.
  /// Returns the op delta and mutates the state.
  std::uint64_t step(const PiPair& pair);

  [[nodiscard]] std::uint64_t loads() const noexcept { return loads_; }
  /// Residents currently held (most recent first).
  [[nodiscard]] const std::vector<PartitionId>& residents() const noexcept {
    return lru_;
  }

  /// Snapshot/restore for backtracking.
  struct Snapshot {
    std::vector<PartitionId> lru;
    std::uint64_t loads;
  };
  [[nodiscard]] Snapshot snapshot() const { return {lru_, loads_}; }
  void restore(const Snapshot& snap) {
    lru_ = snap.lru;
    loads_ = snap.loads;
  }

 private:
  void touch(PartitionId p);
  std::uint64_t ensure(PartitionId p, PartitionId also_needed);

  std::size_t slots_;
  std::vector<PartitionId> lru_;  // front = most recent
  std::uint64_t loads_ = 0;
};

}  // namespace knnpc
