// Load/unload simulator: replays a schedule against `slots` resident
// partition slots and counts operations — Table 1's metric.
//
// Counting model (DESIGN.md §5): loading a partition is 1 operation,
// unloading (evicting) is 1 operation; a pair can be processed only when
// both endpoints are resident; eviction picks the least-recently-used
// resident partition not needed by the current pair; residual partitions
// are unloaded (and counted) when the run finishes.
#pragma once

#include <cstdint>
#include <vector>

#include "pigraph/heuristics.h"
#include "pigraph/pi_graph.h"
#include "storage/io_model.h"

namespace knnpc {

struct SimulationResult {
  std::uint64_t loads = 0;
  std::uint64_t unloads = 0;
  /// Bytes moved (loads + unloads), if partition sizes were supplied.
  std::uint64_t bytes_moved = 0;
  /// Modelled device time for the moves, microseconds (IoModel).
  double modeled_us = 0.0;

  [[nodiscard]] std::uint64_t operations() const noexcept {
    return loads + unloads;
  }
};

class LoadUnloadSimulator {
 public:
  /// `slots` >= 2 (a pair needs both endpoints resident). Optional
  /// per-partition byte sizes enable byte/device-time accounting.
  explicit LoadUnloadSimulator(std::size_t slots = 2,
                               std::vector<std::uint64_t> partition_bytes = {},
                               IoModel model = IoModel::none());

  /// Replays `schedule` (must be valid for `pi`) and returns the counts.
  [[nodiscard]] SimulationResult run(const PiGraph& pi,
                                     const Schedule& schedule) const;

  /// Convenience: schedule with `heuristic`, then run.
  [[nodiscard]] SimulationResult run(const PiGraph& pi,
                                     const TraversalHeuristic& heuristic) const;

 private:
  std::size_t slots_;
  std::vector<std::uint64_t> partition_bytes_;
  IoModel model_;
};

}  // namespace knnpc
