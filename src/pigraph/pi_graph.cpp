#include "pigraph/pi_graph.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace knnpc {

PiGraph::PiGraph(PartitionId m) : m_(m) {
  if (m == 0) throw std::invalid_argument("PiGraph: m must be > 0");
}

void PiGraph::add_edge(PartitionId a, PartitionId b, std::uint64_t tuples) {
  if (finalized_) throw std::logic_error("PiGraph: add_edge after finalize");
  if (a >= m_ || b >= m_) {
    throw std::invalid_argument("PiGraph: partition id out of range");
  }
  if (a > b) std::swap(a, b);
  pairs_.push_back({a, b, tuples});
}

void PiGraph::finalize() {
  if (finalized_) return;
  // Merge duplicate pairs by (a, b), summing tuple counts.
  std::sort(pairs_.begin(), pairs_.end(),
            [](const PiPair& x, const PiPair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  std::size_t write = 0;
  for (std::size_t read = 0; read < pairs_.size();) {
    PiPair merged = pairs_[read++];
    while (read < pairs_.size() && pairs_[read].a == merged.a &&
           pairs_[read].b == merged.b) {
      merged.tuples += pairs_[read++].tuples;
    }
    pairs_[write++] = merged;
  }
  pairs_.resize(write);

  // Incidence index: each pair appears under both endpoints (once for a
  // self-pair).
  adj_offsets_.assign(m_ + 1, 0);
  for (const PiPair& p : pairs_) {
    ++adj_offsets_[p.a + 1];
    if (p.b != p.a) ++adj_offsets_[p.b + 1];
  }
  for (PartitionId p = 0; p < m_; ++p) adj_offsets_[p + 1] += adj_offsets_[p];
  adj_.resize(adj_offsets_[m_]);
  std::vector<std::size_t> cursor(adj_offsets_.begin(),
                                  adj_offsets_.end() - 1);
  for (PairIndex i = 0; i < pairs_.size(); ++i) {
    adj_[cursor[pairs_[i].a]++] = i;
    if (pairs_[i].b != pairs_[i].a) adj_[cursor[pairs_[i].b]++] = i;
  }
  // Within each partition's incidence list, sort by counterpart id so the
  // Sequential heuristic's "next partition number" order falls out.
  for (PartitionId p = 0; p < m_; ++p) {
    auto begin = adj_.begin() + static_cast<std::ptrdiff_t>(adj_offsets_[p]);
    auto end = adj_.begin() + static_cast<std::ptrdiff_t>(adj_offsets_[p + 1]);
    std::sort(begin, end, [&](PairIndex x, PairIndex y) {
      const auto other = [&](const PiPair& pr) {
        return pr.a == p ? pr.b : pr.a;
      };
      return other(pairs_[x]) < other(pairs_[y]);
    });
  }
  finalized_ = true;
}

std::span<const PairIndex> PiGraph::incident(PartitionId p) const {
  if (!finalized_) throw std::logic_error("PiGraph: finalize() first");
  if (p >= m_) throw std::out_of_range("PiGraph: partition out of range");
  return {adj_.data() + adj_offsets_[p],
          adj_offsets_[p + 1] - adj_offsets_[p]};
}

std::size_t PiGraph::degree(PartitionId p) const {
  return incident(p).size();
}

PartitionId PiGraph::touched_partitions() const {
  if (!finalized_) throw std::logic_error("PiGraph: finalize() first");
  PartitionId touched = 0;
  for (PartitionId p = 0; p < m_; ++p) {
    if (adj_offsets_[p + 1] > adj_offsets_[p]) ++touched;
  }
  return touched;
}

std::uint64_t PiGraph::total_tuples() const noexcept {
  std::uint64_t total = 0;
  for (const PiPair& p : pairs_) total += p.tuples;
  return total;
}

PiGraph PiGraph::from_digraph(const Digraph& graph) {
  PiGraph pi(std::max<PartitionId>(graph.num_vertices(), 1));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId d : graph.out_neighbors(v)) {
      pi.add_edge(v, d, 1);
    }
  }
  pi.finalize();
  return pi;
}

}  // namespace knnpc
