// Phase-3 traversal heuristics: the order in which PI pairs are processed.
//
// Paper heuristics:
//   Sequential   — pivot partitions in id order; within a pivot, counterpart
//                  partitions in id order; processed pairs are removed.
//   DegreeHighLow — pivots in descending PI-degree order; counterparts in
//                  descending degree ("highest to lowest").
//   DegreeLowHigh — pivots descending; counterparts ascending degree
//                  ("lowest to highest" — the usually-best variant in
//                  Table 1, because each pivot run *ends* at its
//                  highest-degree remaining counterpart, which tends to be
//                  the next pivot and is thus already resident).
//
// Extensions (ablation bench Abl-2):
//   Random        — shuffled pair order (worst-case-ish baseline).
//   GreedyResident — always pick a pair touching the resident set if any.
//   DynamicDegree  — pivots by *remaining* degree, recomputed as pairs are
//                    consumed.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pigraph/pi_graph.h"
#include "storage/io_model.h"

namespace knnpc {

/// A schedule visits every pair of the PI graph exactly once.
using Schedule = std::vector<PairIndex>;

class TraversalHeuristic {
 public:
  virtual ~TraversalHeuristic() = default;
  [[nodiscard]] virtual Schedule schedule(const PiGraph& pi) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class SequentialHeuristic final : public TraversalHeuristic {
 public:
  [[nodiscard]] Schedule schedule(const PiGraph& pi) const override;
  [[nodiscard]] std::string name() const override { return "sequential"; }
};

class DegreeHeuristic final : public TraversalHeuristic {
 public:
  /// high_to_low == true reproduces the paper's first degree-based variant
  /// ("High-Low"); false the second ("Low-High").
  explicit DegreeHeuristic(bool high_to_low) : high_to_low_(high_to_low) {}
  [[nodiscard]] Schedule schedule(const PiGraph& pi) const override;
  [[nodiscard]] std::string name() const override {
    return high_to_low_ ? "high-low" : "low-high";
  }

 private:
  bool high_to_low_;
};

class RandomHeuristic final : public TraversalHeuristic {
 public:
  explicit RandomHeuristic(std::uint64_t seed = 1234) : seed_(seed) {}
  [[nodiscard]] Schedule schedule(const PiGraph& pi) const override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  std::uint64_t seed_;
};

class GreedyResidentHeuristic final : public TraversalHeuristic {
 public:
  [[nodiscard]] Schedule schedule(const PiGraph& pi) const override;
  [[nodiscard]] std::string name() const override {
    return "greedy-resident";
  }
};

class DynamicDegreeHeuristic final : public TraversalHeuristic {
 public:
  /// Counterpart order within a pivot follows the Low-High rule.
  [[nodiscard]] Schedule schedule(const PiGraph& pi) const override;
  [[nodiscard]] std::string name() const override {
    return "dynamic-degree";
  }
};

/// The paper's future-work heuristic: "consider the amount of time consumed
/// for both partition load/unload operations and the similarity computation
/// for tuples given two partitions."
///
/// Greedy-resident variant whose priority is modelled *work density*: the
/// similarity time a pair buys (tuples x per-tuple cost) divided by the
/// device time its loads would cost now (bytes of the non-resident
/// endpoints through the IoModel). Cold pairs therefore only win when
/// their tuple bundles are big enough to amortise the seek.
class CostAwareHeuristic final : public TraversalHeuristic {
 public:
  /// `partition_bytes[p]` is partition p's on-disk size (empty = all equal).
  /// `sim_cost_us` is the modelled per-tuple similarity cost.
  explicit CostAwareHeuristic(std::vector<std::uint64_t> partition_bytes = {},
                              IoModel model = IoModel::hdd(),
                              double sim_cost_us = 0.2);
  [[nodiscard]] Schedule schedule(const PiGraph& pi) const override;
  [[nodiscard]] std::string name() const override { return "cost-aware"; }

 private:
  std::vector<std::uint64_t> partition_bytes_;
  IoModel model_;
  double sim_cost_us_;
};

/// Factory: "sequential" | "high-low" | "low-high" | "random" |
/// "greedy-resident" | "dynamic-degree". Throws on unknown names.
std::unique_ptr<TraversalHeuristic> make_heuristic(std::string_view name);

/// All heuristic names, in bench-report order.
std::vector<std::string> all_heuristic_names();

/// Validates that `s` covers every pair of `pi` exactly once.
[[nodiscard]] bool is_valid_schedule(const PiGraph& pi, const Schedule& s);

}  // namespace knnpc
