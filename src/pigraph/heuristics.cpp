#include "pigraph/heuristics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace knnpc {
namespace {

PartitionId counterpart(const PiPair& pair, PartitionId pivot) {
  return pair.a == pivot ? pair.b : pair.a;
}

/// Shared pivot-sweep skeleton: visit pivots in `pivot_order`; for each,
/// emit its not-yet-consumed incident pairs sorted by `counterpart_less`.
template <typename CounterpartLess>
Schedule pivot_sweep(const PiGraph& pi,
                     const std::vector<PartitionId>& pivot_order,
                     CounterpartLess counterpart_less) {
  Schedule out;
  out.reserve(pi.num_pairs());
  std::vector<bool> consumed(pi.num_pairs(), false);
  std::vector<PairIndex> run;
  for (PartitionId pivot : pivot_order) {
    run.clear();
    for (PairIndex idx : pi.incident(pivot)) {
      if (!consumed[idx]) run.push_back(idx);
    }
    std::sort(run.begin(), run.end(), [&](PairIndex x, PairIndex y) {
      return counterpart_less(counterpart(pi.pair(x), pivot),
                              counterpart(pi.pair(y), pivot), x, y);
    });
    for (PairIndex idx : run) {
      consumed[idx] = true;
      out.push_back(idx);
    }
  }
  return out;
}

std::vector<PartitionId> partitions_by_id(const PiGraph& pi) {
  std::vector<PartitionId> order(pi.num_partitions());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<PartitionId> partitions_by_degree_desc(const PiGraph& pi) {
  auto order = partitions_by_id(pi);
  std::stable_sort(order.begin(), order.end(),
                   [&](PartitionId a, PartitionId b) {
                     return pi.degree(a) > pi.degree(b);
                   });
  return order;
}

}  // namespace

Schedule SequentialHeuristic::schedule(const PiGraph& pi) const {
  // "loads the partition starting from number 1, processes all its edges,
  // removes this partition from further consideration, and continues with
  // next partition number 2, and so on".
  return pivot_sweep(pi, partitions_by_id(pi),
                     [](PartitionId ca, PartitionId cb, PairIndex,
                        PairIndex) { return ca < cb; });
}

Schedule DegreeHeuristic::schedule(const PiGraph& pi) const {
  const auto order = partitions_by_degree_desc(pi);
  const bool high_first = high_to_low_;
  return pivot_sweep(
      pi, order,
      [&pi, high_first](PartitionId ca, PartitionId cb, PairIndex,
                        PairIndex) {
        const std::size_t da = pi.degree(ca);
        const std::size_t db = pi.degree(cb);
        if (da != db) return high_first ? da > db : da < db;
        return ca < cb;  // deterministic tie-break
      });
}

Schedule RandomHeuristic::schedule(const PiGraph& pi) const {
  Schedule out(pi.num_pairs());
  std::iota(out.begin(), out.end(), 0);
  Rng rng(seed_);
  // Fisher-Yates.
  for (std::size_t i = out.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

Schedule GreedyResidentHeuristic::schedule(const PiGraph& pi) const {
  // Maintain the 2-slot resident set explicitly; always prefer a pair
  // incident to a resident partition (cost 2 ops) over a cold pair
  // (cost 4). Among candidates prefer the one whose counterpart has the
  // most remaining pairs, to extend future reuse.
  Schedule out;
  out.reserve(pi.num_pairs());
  std::vector<bool> consumed(pi.num_pairs(), false);
  std::vector<std::size_t> remaining(pi.num_partitions(), 0);
  for (PartitionId p = 0; p < pi.num_partitions(); ++p) {
    remaining[p] = pi.degree(p);
  }
  PartitionId slot_a = kInvalidPartition;
  PartitionId slot_b = kInvalidPartition;
  std::size_t produced = 0;
  while (produced < pi.num_pairs()) {
    PairIndex best = static_cast<PairIndex>(pi.num_pairs());
    std::size_t best_score = 0;
    bool best_warm = false;
    auto consider = [&](PairIndex idx, bool warm) {
      if (consumed[idx]) return;
      const PiPair& pr = pi.pair(idx);
      const std::size_t score = remaining[pr.a] + remaining[pr.b];
      if (best == pi.num_pairs() || (warm && !best_warm) ||
          (warm == best_warm && score > best_score)) {
        best = idx;
        best_score = score;
        best_warm = warm;
      }
    };
    if (slot_a != kInvalidPartition) {
      for (PairIndex idx : pi.incident(slot_a)) consider(idx, true);
    }
    if (slot_b != kInvalidPartition && slot_b != slot_a) {
      for (PairIndex idx : pi.incident(slot_b)) consider(idx, true);
    }
    if (best == pi.num_pairs() || !best_warm) {
      // No warm pair: fall back to the globally best remaining pair.
      for (PairIndex idx = 0; idx < pi.num_pairs(); ++idx) {
        consider(idx, false);
      }
    }
    const PiPair& chosen = pi.pair(best);
    consumed[best] = true;
    out.push_back(best);
    ++produced;
    if (remaining[chosen.a] > 0) --remaining[chosen.a];
    if (chosen.b != chosen.a && remaining[chosen.b] > 0) {
      --remaining[chosen.b];
    }
    // Mirror the simulator's eviction: the pair's endpoints are resident.
    if (chosen.a != slot_a && chosen.a != slot_b) {
      // Evict the slot not used by this pair.
      if (slot_a != chosen.b) {
        slot_a = chosen.a;
      } else {
        slot_b = chosen.a;
      }
    }
    if (chosen.b != slot_a && chosen.b != slot_b) {
      if (slot_a != chosen.a) {
        slot_a = chosen.b;
      } else {
        slot_b = chosen.b;
      }
    }
  }
  return out;
}

Schedule DynamicDegreeHeuristic::schedule(const PiGraph& pi) const {
  Schedule out;
  out.reserve(pi.num_pairs());
  std::vector<bool> consumed(pi.num_pairs(), false);
  std::vector<std::size_t> remaining(pi.num_partitions(), 0);
  for (PartitionId p = 0; p < pi.num_partitions(); ++p) {
    remaining[p] = pi.degree(p);
  }
  std::vector<bool> done(pi.num_partitions(), false);
  std::vector<PairIndex> run;
  for (std::size_t sweep = 0; sweep < pi.num_partitions(); ++sweep) {
    // Next pivot: max remaining pairs among unfinished partitions.
    PartitionId pivot = kInvalidPartition;
    std::size_t best = 0;
    for (PartitionId p = 0; p < pi.num_partitions(); ++p) {
      if (done[p]) continue;
      if (pivot == kInvalidPartition || remaining[p] > best) {
        pivot = p;
        best = remaining[p];
      }
    }
    if (pivot == kInvalidPartition) break;
    done[pivot] = true;
    run.clear();
    for (PairIndex idx : pi.incident(pivot)) {
      if (!consumed[idx]) run.push_back(idx);
    }
    // Low-High counterpart order on *remaining* degree.
    std::sort(run.begin(), run.end(), [&](PairIndex x, PairIndex y) {
      const PartitionId cx = counterpart(pi.pair(x), pivot);
      const PartitionId cy = counterpart(pi.pair(y), pivot);
      if (remaining[cx] != remaining[cy]) {
        return remaining[cx] < remaining[cy];
      }
      return cx < cy;
    });
    for (PairIndex idx : run) {
      consumed[idx] = true;
      out.push_back(idx);
      const PiPair& pr = pi.pair(idx);
      if (remaining[pr.a] > 0) --remaining[pr.a];
      if (pr.b != pr.a && remaining[pr.b] > 0) --remaining[pr.b];
    }
  }
  return out;
}

CostAwareHeuristic::CostAwareHeuristic(
    std::vector<std::uint64_t> partition_bytes, IoModel model,
    double sim_cost_us)
    : partition_bytes_(std::move(partition_bytes)), model_(std::move(model)),
      sim_cost_us_(sim_cost_us) {}

Schedule CostAwareHeuristic::schedule(const PiGraph& pi) const {
  auto bytes_of = [&](PartitionId p) -> std::uint64_t {
    // Equal nominal size when no byte map was given: the heuristic then
    // degrades to "tuples per cold load".
    return p < partition_bytes_.size() ? partition_bytes_[p] : 1 << 20;
  };
  Schedule out;
  out.reserve(pi.num_pairs());
  std::vector<bool> consumed(pi.num_pairs(), false);
  PartitionId slot_a = kInvalidPartition;
  PartitionId slot_b = kInvalidPartition;
  auto resident = [&](PartitionId p) { return p == slot_a || p == slot_b; };
  // Modelled device time to make this pair co-resident right now.
  auto load_cost_us = [&](const PiPair& pr) {
    double cost = 0.0;
    if (!resident(pr.a)) cost += model_.op_cost_us(bytes_of(pr.a));
    if (pr.b != pr.a && !resident(pr.b)) {
      cost += model_.op_cost_us(bytes_of(pr.b));
    }
    return cost;
  };
  std::size_t produced = 0;
  while (produced < pi.num_pairs()) {
    PairIndex best = static_cast<PairIndex>(pi.num_pairs());
    double best_density = -1.0;
    auto consider = [&](PairIndex idx) {
      if (consumed[idx]) return;
      const PiPair& pr = pi.pair(idx);
      const double work =
          static_cast<double>(pr.tuples) * sim_cost_us_ + 1e-9;
      const double io = load_cost_us(pr) + 1e-9;  // avoid div by zero
      const double density = work / io;
      if (density > best_density) {
        best_density = density;
        best = idx;
      }
    };
    // Prefer warm pairs; fall back to a global scan when the resident
    // partitions have nothing left (or nothing is resident yet).
    if (slot_a != kInvalidPartition) {
      for (PairIndex idx : pi.incident(slot_a)) consider(idx);
    }
    if (slot_b != kInvalidPartition && slot_b != slot_a) {
      for (PairIndex idx : pi.incident(slot_b)) consider(idx);
    }
    if (best == pi.num_pairs()) {
      for (PairIndex idx = 0; idx < pi.num_pairs(); ++idx) consider(idx);
    }
    const PiPair& chosen = pi.pair(best);
    consumed[best] = true;
    out.push_back(best);
    ++produced;
    // Mirror the simulator's 2-slot eviction.
    if (!resident(chosen.a)) {
      (slot_a == chosen.b ? slot_b : slot_a) = chosen.a;
    }
    if (!resident(chosen.b)) {
      (slot_a == chosen.a ? slot_b : slot_a) = chosen.b;
    }
  }
  return out;
}

std::unique_ptr<TraversalHeuristic> make_heuristic(std::string_view name) {
  if (name == "sequential") return std::make_unique<SequentialHeuristic>();
  if (name == "high-low") return std::make_unique<DegreeHeuristic>(true);
  if (name == "low-high") return std::make_unique<DegreeHeuristic>(false);
  if (name == "random") return std::make_unique<RandomHeuristic>();
  if (name == "greedy-resident") {
    return std::make_unique<GreedyResidentHeuristic>();
  }
  if (name == "dynamic-degree") {
    return std::make_unique<DynamicDegreeHeuristic>();
  }
  if (name == "cost-aware") return std::make_unique<CostAwareHeuristic>();
  throw std::invalid_argument("unknown heuristic: " + std::string(name));
}

std::vector<std::string> all_heuristic_names() {
  return {"sequential",      "high-low",       "low-high", "random",
          "greedy-resident", "dynamic-degree", "cost-aware"};
}

bool is_valid_schedule(const PiGraph& pi, const Schedule& s) {
  if (s.size() != pi.num_pairs()) return false;
  std::vector<bool> seen(pi.num_pairs(), false);
  for (PairIndex idx : s) {
    if (idx >= pi.num_pairs() || seen[idx]) return false;
    seen[idx] = true;
  }
  return true;
}

}  // namespace knnpc
