// Phase 3: the partition-interaction (PI) graph.
//
// One node per partition R_i; a directed paper-edge (R_i, R_j) bundles the
// tuples {(s,d) ∈ H : s ∈ R_i, d ∈ R_j}. Since processing (R_i, R_j) and
// (R_j, R_i) both require exactly the pair {R_i, R_j} co-resident, we
// normalise to *unordered pairs* carrying the combined tuple count; the
// traversal heuristics and the load/unload simulator operate on pairs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "util/types.h"

namespace knnpc {

/// Index of a pair within PiGraph::pairs().
using PairIndex = std::uint32_t;

/// One unordered partition pair {a, b} (a <= b; a == b for intra-partition
/// tuple bundles) with the number of tuples charged to it.
struct PiPair {
  PartitionId a = kInvalidPartition;
  PartitionId b = kInvalidPartition;
  std::uint64_t tuples = 0;

  friend bool operator==(const PiPair&, const PiPair&) = default;
};

class PiGraph {
 public:
  /// Graph over `m` partitions with no pairs yet.
  explicit PiGraph(PartitionId m);

  /// Accumulates `tuples` onto pair {a, b} (normalised). Must be called
  /// before finalize().
  void add_edge(PartitionId a, PartitionId b, std::uint64_t tuples = 1);

  /// Builds the adjacency index. Further add_edge() calls throw.
  void finalize();

  [[nodiscard]] PartitionId num_partitions() const noexcept { return m_; }
  [[nodiscard]] std::size_t num_pairs() const noexcept {
    return pairs_.size();
  }
  [[nodiscard]] const std::vector<PiPair>& pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] const PiPair& pair(PairIndex i) const { return pairs_.at(i); }

  /// Indices of pairs incident to partition p, sorted by counterpart id
  /// (self-pair first). finalize() required.
  [[nodiscard]] std::span<const PairIndex> incident(PartitionId p) const;

  /// Number of incident pairs (self-pair counts once) — the "degree" the
  /// paper's heuristics order by.
  [[nodiscard]] std::size_t degree(PartitionId p) const;

  /// Total tuples across all pairs.
  [[nodiscard]] std::uint64_t total_tuples() const noexcept;

  /// Number of partitions incident to at least one pair — the partitions a
  /// phase-4 schedule over this PI graph actually streams. Under the
  /// pair-affinity shard split each worker's PI graph touches roughly m/S
  /// of the m partitions; this is the counter that shows it. finalize()
  /// required.
  [[nodiscard]] PartitionId touched_partitions() const;

  /// Interprets a vertex-level graph as a PI graph (Table 1's methodology:
  /// "if the PI graph structure were to resemble these networks"). Every
  /// directed edge becomes a pair with one tuple; mutual edges merge.
  static PiGraph from_digraph(const Digraph& graph);

 private:
  PartitionId m_ = 0;
  bool finalized_ = false;
  std::vector<PiPair> pairs_;
  std::vector<std::size_t> adj_offsets_;  // m_+1 after finalize
  std::vector<PairIndex> adj_;
};

}  // namespace knnpc
