// The online k-NN serving layer: answer queries while the engine runs.
//
// A KnnServer holds an immutable snapshot of (G(t), P(t)) behind an
// atomically swapped pointer. The engine publishes G(t+1)/P(t+1) through
// the SnapshotSink hook at the end of every iteration; publication reuses
// the persistent-worker sync machinery — the new state arrives as `KDLT`
// graph rows (graph/knn_graph_delta.h) and `KPRD` profile rows
// (profiles/profile_delta.h) applied to a copy of the current snapshot,
// so a publish costs one copy plus the changed rows, never a full
// re-serialisation, and the byte stream it applies is exactly what a
// remote subscriber would receive.
//
// Two query paths:
//   - top_k(user): the indexed read. Copies the user's row out of the
//     pinned snapshot — the answer is *exactly* the published G(t),
//     bit-for-bit (knn_server_test pins this).
//   - query(profile, k): the ad-hoc read, for profiles not in the index.
//     Graph-guided beam search in the diskAnnSearchInternal shape: a
//     sorted candidate queue bounded by `search_l`, a visited set, seeds
//     drawn from every partition's representatives so the walk starts in
//     the partitions whose users look most like the query, expansion over
//     both edge directions (out-neighbours + the snapshot's precomputed
//     reverse adjacency). Approximate by construction: recall is a
//     function of `search_l` (bench_serve gates >= 95% @ k=10 on the
//     pinned workload), and results are deterministic per snapshot but
//     NOT covered by the engine's bit-identity contract.
//
// Thread-safety contract:
//   - publish() is single-publisher: at most one thread may publish at a
//     time (the engine's run_iteration already guarantees this; a mutex
//     enforces it for ad-hoc publishers).
//   - Readers are registered via reader(); each Reader owns one hazard
//     slot and may be used by ONE thread at a time. Any number of Readers
//     operate concurrently with each other and with publish() — reads are
//     lock-free (a bounded pointer-validation loop, no mutex, no blocking
//     on the publisher).
//   - Retired snapshots are reclaimed by the next publish() once no
//     reader still pins them (hazard-pointer scan); nothing is freed
//     under a live reader.
//   - All Readers must be destroyed before the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/knn_graph.h"
#include "profiles/profile.h"
#include "profiles/profile_store.h"
#include "profiles/similarity.h"
#include "serve/snapshot_sink.h"
#include "util/types.h"

namespace knnpc {

struct ServeConfig {
  /// Measure ad-hoc queries score with — use the engine's measure, or the
  /// published graph's scores and the query scores won't be comparable.
  SimilarityMeasure measure = SimilarityMeasure::Cosine;
  /// Default beam width (sorted-candidate-queue budget) for query();
  /// raised per call via the search_l argument. Recall rises with it,
  /// latency roughly linearly so.
  std::uint32_t search_l = 64;
  /// Beam entry points kept per phase-1 partition at publish time (evenly
  /// spaced over each partition's members, hash-offset so picks don't
  /// alias with periodic id structure). More seeds = better coverage of
  /// the profile space — the decisive recall knob on clustered data,
  /// where a converged k-NN graph decomposes into near-cliques the beam
  /// cannot cross without an entry point inside the query's cluster.
  std::uint32_t seeds_per_partition = 16;
  /// Hazard-slot pool size: the maximum number of concurrently live
  /// Readers. reader() throws when exhausted.
  std::uint32_t max_readers = 64;
};

/// One immutable published generation. Readers access it only while
/// pinned (Reader::pin() / the query methods); every field is frozen at
/// publish time.
struct ServeSnapshot {
  /// Publication sequence number (1 = first publish) — strictly
  /// increasing, the freshness signal readers observe.
  std::uint64_t version = 0;
  /// Engine iteration that produced this state.
  std::uint32_t iteration = 0;
  SimilarityMeasure measure = SimilarityMeasure::Cosine;
  KnnGraph graph;
  InMemoryProfileStore profiles;
  /// CSR reverse adjacency of `graph` (in-edges), precomputed at publish
  /// so beam expansion can walk both directions.
  ReverseAdjacency reverse;
  /// Beam entry points: seeds_per_partition representatives of every
  /// phase-1 partition (or evenly spaced ids when the publisher had no
  /// assignment), ascending.
  std::vector<VertexId> seeds;
  /// knn_graph_checksum(graph), stamped at publish — the torn-snapshot
  /// canary: any reader can recompute it on its pinned snapshot and must
  /// always get this value back.
  std::uint64_t graph_checksum = 0;
};

/// Per-publication accounting (KnnServer::last_publish()).
struct PublishStats {
  std::uint64_t version = 0;
  /// True when this publish shipped a full snapshot (first publish or
  /// shape change), false for the incremental row-delta path.
  bool full = false;
  /// Rows applied and wire bytes of the two delta streams.
  std::uint32_t graph_rows = 0;
  std::uint32_t profile_rows = 0;
  std::uint64_t graph_bytes = 0;
  std::uint64_t profile_bytes = 0;
};

struct QueryStats {
  /// Snapshot version the query ran against.
  std::uint64_t version = 0;
  /// Candidates expanded (neighbour lists walked).
  std::uint32_t expanded = 0;
  /// Similarities evaluated (distinct vertices scored, seeds included).
  std::uint32_t scored = 0;
};

struct QueryResult {
  /// Up to k results, sorted by (score desc, id asc).
  std::vector<Neighbor> neighbors;
  QueryStats stats;
};

/// Pure beam search over one snapshot — deterministic for a given
/// (snapshot, query, k, search_l). Reader::query is the pinned wrapper;
/// this entry point exists for tests and offline evaluation.
QueryResult beam_search(const ServeSnapshot& snapshot,
                        const SparseProfile& query, std::uint32_t k,
                        std::uint32_t search_l);

class KnnServer final : public SnapshotSink {
 public:
  explicit KnnServer(ServeConfig config = {});
  ~KnnServer() override;
  KnnServer(const KnnServer&) = delete;
  KnnServer& operator=(const KnnServer&) = delete;

  /// Publishes (graph, profiles) as the next snapshot generation — the
  /// SnapshotSink hook both engine drivers call per iteration, also
  /// callable directly. Computes the row deltas against the current
  /// snapshot, serialises them to KDLT/KPRD bytes, applies the *parsed
  /// bytes* to a copy, and atomically swaps it in; the first publish (or
  /// a shape change) ships the full-snapshot delta instead. Never blocks
  /// readers.
  void publish(const KnnGraph& graph, const ProfileStore& profiles,
               std::span<const PartitionId> partition_of,
               std::uint32_t iteration) override;

  /// True once the first publish landed (readers would not throw).
  [[nodiscard]] bool has_snapshot() const noexcept {
    return published_version_.load(std::memory_order_acquire) != 0;
  }
  /// Latest published version (0 = nothing published yet).
  [[nodiscard]] std::uint64_t version() const noexcept {
    return published_version_.load(std::memory_order_acquire);
  }
  /// Accounting for the most recent publish().
  [[nodiscard]] PublishStats last_publish() const;
  /// Retired-but-not-yet-reclaimed snapshot count (bounded by the number
  /// of readers; exposed for the lifecycle tests).
  [[nodiscard]] std::size_t retired_count() const;
  [[nodiscard]] const ServeConfig& config() const noexcept {
    return config_;
  }

  class Reader;
  /// Registers a hazard slot and returns the per-thread query handle.
  /// Throws std::runtime_error once max_readers slots are live.
  [[nodiscard]] Reader reader() const;

 private:
  friend class Reader;

  /// Swaps `next` live, retires the predecessor, and reclaims every
  /// retired snapshot no hazard slot pins. Caller holds publish_mu_.
  void swap_and_retire(std::unique_ptr<const ServeSnapshot> next);

  ServeConfig config_;
  std::atomic<const ServeSnapshot*> live_{nullptr};
  std::atomic<std::uint64_t> published_version_{0};
  /// Hazard slots: slot i non-null = reader i is inside a read on that
  /// snapshot. Fixed-size so the reader fast path is index + atomics.
  mutable std::vector<std::atomic<const ServeSnapshot*>> hazard_;
  mutable std::vector<std::atomic<bool>> slot_taken_;
  mutable std::mutex publish_mu_;
  /// Superseded snapshots still pinned by some reader at last scan.
  std::vector<const ServeSnapshot*> retired_;
  std::uint64_t next_version_ = 1;
  PublishStats last_publish_{};
};

/// One registered reader: a hazard slot plus the two query paths. Use
/// from ONE thread at a time; create one per query thread. Reads pin the
/// current snapshot for their duration only — a Reader never blocks the
/// publisher and never observes a half-applied publication (it sees the
/// old generation or the new one, atomically).
class KnnServer::Reader {
 public:
  Reader(Reader&& other) noexcept;
  Reader& operator=(Reader&& other) noexcept;
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;
  ~Reader();

  /// The indexed read: `user`'s current top-K row, exactly as published
  /// (score desc, id asc — KnnGraph row order). Throws std::logic_error
  /// before the first publish, std::out_of_range for an unknown user.
  [[nodiscard]] std::vector<Neighbor> top_k(VertexId user) const;

  /// The ad-hoc read: beam search for `query`'s k nearest indexed users.
  /// `search_l` 0 = the server's configured default; it is clamped up to
  /// at least k. Throws std::logic_error before the first publish.
  [[nodiscard]] QueryResult query(const SparseProfile& query,
                                  std::uint32_t k,
                                  std::uint32_t search_l = 0) const;

  /// Version of the snapshot a read issued now would see (0 = none yet).
  [[nodiscard]] std::uint64_t version() const;

  /// RAII pin for direct multi-call snapshot access (tests, evaluation).
  /// While a Pin is alive its Reader must not be used for anything else —
  /// the pin occupies the reader's hazard slot.
  class Pin {
   public:
    Pin(Pin&&) = delete;
    Pin& operator=(Pin&&) = delete;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin();
    /// nullptr before the first publish.
    [[nodiscard]] const ServeSnapshot* get() const noexcept {
      return snapshot_;
    }
    const ServeSnapshot* operator->() const noexcept { return snapshot_; }

   private:
    friend class Reader;
    Pin(const Reader* reader, const ServeSnapshot* snapshot)
        : reader_(reader), snapshot_(snapshot) {}
    const Reader* reader_;
    const ServeSnapshot* snapshot_;
  };
  [[nodiscard]] Pin pin() const;

 private:
  friend class KnnServer;
  Reader(const KnnServer* server, std::uint32_t slot)
      : server_(server), slot_(slot) {}

  /// Hazard-pointer acquire: announce then re-validate until stable.
  [[nodiscard]] const ServeSnapshot* acquire() const;
  void release() const;

  const KnnServer* server_ = nullptr;
  std::uint32_t slot_ = 0;
};

}  // namespace knnpc
