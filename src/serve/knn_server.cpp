#include "serve/knn_server.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "graph/knn_graph_delta.h"
#include "graph/knn_graph_io.h"
#include "profiles/profile_delta.h"

namespace knnpc {

namespace {

/// Beam ordering: better = higher score, ties broken towards the lower
/// id — the same (score desc, id asc) rule the engine's top-K uses, so
/// query results are deterministic per snapshot.
struct BeamCandidate {
  float score = 0.0f;
  VertexId id = kInvalidVertex;
  bool expanded = false;
};

bool beam_better(const BeamCandidate& a, const BeamCandidate& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// splitmix64 finaliser — decorrelates seed picks from any periodic
/// structure in the id space (synthetic workloads assign users to
/// clusters by id modulus; a plain fixed stride can alias with it and
/// systematically miss clusters).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// seeds_per_partition representatives of each partition: evenly spaced
/// over its members (ascending-id order) with a hashed per-partition
/// offset, so the seed set covers every partition's id range without
/// lining up across partitions. An empty owner map falls back to hashed
/// strides over [0, n). Deterministic for a given (owner map, n, per).
std::vector<VertexId> compute_seeds(std::span<const PartitionId> partition_of,
                                    VertexId n,
                                    std::uint32_t seeds_per_partition) {
  const std::uint32_t per = std::max<std::uint32_t>(seeds_per_partition, 1);
  std::vector<VertexId> seeds;
  if (n == 0) return seeds;
  auto pick = [&](const auto& pool, std::uint64_t salt) {
    const std::size_t size = pool.size();
    if (size == 0) return;
    const std::size_t count = std::min<std::size_t>(size, per);
    const std::size_t offset = mix64(salt) % size;
    for (std::size_t i = 0; i < count; ++i) {
      seeds.push_back(pool[(offset + (i * size) / count) % size]);
    }
  };
  if (partition_of.size() != n) {
    // No (usable) assignment: treat the id space as 16 strided pools.
    std::vector<VertexId> all(n);
    for (VertexId v = 0; v < n; ++v) all[v] = v;
    for (std::uint64_t pool = 0; pool < 16; ++pool) pick(all, pool);
  } else {
    PartitionId m = 0;
    for (const PartitionId p : partition_of) {
      if (p != kInvalidPartition) m = std::max<PartitionId>(m, p + 1);
    }
    std::vector<std::vector<VertexId>> members(m);
    for (VertexId v = 0; v < n; ++v) {
      if (partition_of[v] != kInvalidPartition) {
        members[partition_of[v]].push_back(v);  // ascending by loop order
      }
    }
    for (PartitionId p = 0; p < m; ++p) pick(members[p], p);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

}  // namespace

QueryResult beam_search(const ServeSnapshot& snapshot,
                        const SparseProfile& query, std::uint32_t k,
                        std::uint32_t search_l) {
  QueryResult out;
  out.stats.version = snapshot.version;
  const VertexId n = snapshot.graph.num_vertices();
  if (n == 0 || k == 0) return out;
  const std::size_t beam = std::max<std::uint32_t>(search_l, k);

  std::vector<BeamCandidate> cands;
  cands.reserve(beam + 1);
  std::unordered_set<VertexId> scored;
  scored.reserve(beam * 8);

  auto offer = [&](VertexId v) {
    if (!scored.insert(v).second) return;
    ++out.stats.scored;
    BeamCandidate c{
        similarity(snapshot.measure, query, snapshot.profiles.get(v)), v,
        false};
    if (cands.size() >= beam && !beam_better(c, cands.back())) return;
    cands.insert(
        std::lower_bound(cands.begin(), cands.end(), c, beam_better), c);
    if (cands.size() > beam) cands.pop_back();
  };

  for (const VertexId s : snapshot.seeds) offer(s);

  // Sorted-candidate-queue walk: repeatedly expand the best candidate not
  // yet expanded, offering both its out-neighbours and its in-neighbours.
  // Terminates when every candidate inside the beam has been expanded —
  // the diskAnnSearchInternal convergence condition.
  for (;;) {
    auto it = std::find_if(cands.begin(), cands.end(),
                           [](const BeamCandidate& c) { return !c.expanded; });
    if (it == cands.end()) break;
    it->expanded = true;
    const VertexId v = it->id;  // `it` is invalidated by offer() below
    ++out.stats.expanded;
    for (const Neighbor& nb : snapshot.graph.neighbors(v)) offer(nb.id);
    for (const VertexId in : snapshot.reverse.in_neighbors(v)) offer(in);
  }

  const std::size_t keep = std::min<std::size_t>(k, cands.size());
  out.neighbors.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    out.neighbors.push_back({cands[i].id, cands[i].score});
  }
  return out;
}

KnnServer::KnnServer(ServeConfig config)
    : config_(config),
      hazard_(std::max<std::uint32_t>(config.max_readers, 1)),
      slot_taken_(std::max<std::uint32_t>(config.max_readers, 1)) {}

KnnServer::~KnnServer() {
  // Contract: all Readers are gone, so no hazard slot is live and
  // everything retired (plus the live snapshot) can be freed.
  for (const ServeSnapshot* s : retired_) delete s;
  delete live_.load(std::memory_order_acquire);
}

void KnnServer::publish(const KnnGraph& graph, const ProfileStore& profiles,
                        std::span<const PartitionId> partition_of,
                        std::uint32_t iteration) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  const ServeSnapshot* cur = live_.load(std::memory_order_acquire);
  const VertexId n = graph.num_vertices();
  if (profiles.num_users() != n) {
    throw std::invalid_argument(
        "KnnServer::publish: graph and profile sizes differ");
  }

  auto next = std::make_unique<ServeSnapshot>();
  PublishStats stats;
  const bool incremental = cur != nullptr &&
                           cur->graph.num_vertices() == n &&
                           cur->graph.k() == graph.k();
  // Publication is the delta stream: both paths serialise KDLT/KPRD
  // bytes and apply the *parsed* bytes to the base state, so what the
  // server swaps in is exactly what a remote subscriber of the stream
  // would reconstruct. The incremental path bases on a copy of the
  // current snapshot and ships only changed rows; the full path bases on
  // empty state and ships every row (the same shape a persistent-worker
  // respawn resync uses).
  KnnGraphDelta graph_rows;
  ProfileDelta profile_rows;
  if (incremental) {
    next->graph = cur->graph;
    next->profiles = cur->profiles;
    graph_rows = knn_graph_delta(cur->graph, graph);
    profile_rows = profile_delta(cur->profiles, profiles);
  } else {
    next->graph = KnnGraph(n, graph.k());
    next->profiles =
        InMemoryProfileStore(std::vector<SparseProfile>(n));
    graph_rows = full_knn_graph_delta(graph);
    profile_rows = full_profile_delta(profiles);
    stats.full = true;
  }
  const std::vector<std::byte> graph_bytes =
      knn_graph_delta_to_bytes(graph_rows);
  const std::vector<std::byte> profile_bytes =
      profile_delta_to_bytes(profile_rows);
  apply_knn_graph_delta(next->graph,
                        knn_graph_delta_from_bytes(graph_bytes));
  apply_profile_delta(next->profiles,
                      profile_delta_from_bytes(profile_bytes));
  stats.graph_rows = static_cast<std::uint32_t>(graph_rows.rows.size());
  stats.profile_rows = static_cast<std::uint32_t>(profile_rows.rows.size());
  stats.graph_bytes = graph_bytes.size();
  stats.profile_bytes = profile_bytes.size();

  next->version = next_version_++;
  next->iteration = iteration;
  next->measure = config_.measure;
  next->reverse = build_reverse_adjacency(next->graph);
  next->seeds = compute_seeds(partition_of, n, config_.seeds_per_partition);
  next->graph_checksum = knn_graph_checksum(next->graph);

  stats.version = next->version;
  last_publish_ = stats;
  const std::uint64_t version = next->version;
  swap_and_retire(std::move(next));
  published_version_.store(version, std::memory_order_release);
}

void KnnServer::swap_and_retire(std::unique_ptr<const ServeSnapshot> next) {
  const ServeSnapshot* old =
      live_.exchange(next.release(), std::memory_order_seq_cst);
  if (old != nullptr) retired_.push_back(old);
  // Hazard scan: a snapshot still announced in some slot stays on the
  // retired list for a later publish (or the destructor) to reclaim.
  std::vector<const ServeSnapshot*> still_pinned;
  for (const ServeSnapshot* candidate : retired_) {
    bool pinned = false;
    for (const auto& slot : hazard_) {
      if (slot.load(std::memory_order_seq_cst) == candidate) {
        pinned = true;
        break;
      }
    }
    if (pinned) {
      still_pinned.push_back(candidate);
    } else {
      delete candidate;
    }
  }
  retired_ = std::move(still_pinned);
}

PublishStats KnnServer::last_publish() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return last_publish_;
}

std::size_t KnnServer::retired_count() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return retired_.size();
}

KnnServer::Reader KnnServer::reader() const {
  for (std::uint32_t i = 0; i < slot_taken_.size(); ++i) {
    bool expected = false;
    if (slot_taken_[i].compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
      return Reader(this, i);
    }
  }
  throw std::runtime_error(
      "KnnServer::reader: all " + std::to_string(slot_taken_.size()) +
      " reader slots are taken (ServeConfig::max_readers)");
}

KnnServer::Reader::Reader(Reader&& other) noexcept
    : server_(other.server_), slot_(other.slot_) {
  other.server_ = nullptr;
}

KnnServer::Reader& KnnServer::Reader::operator=(Reader&& other) noexcept {
  if (this != &other) {
    this->~Reader();
    server_ = other.server_;
    slot_ = other.slot_;
    other.server_ = nullptr;
  }
  return *this;
}

KnnServer::Reader::~Reader() {
  if (server_ == nullptr) return;
  server_->hazard_[slot_].store(nullptr, std::memory_order_release);
  server_->slot_taken_[slot_].store(false, std::memory_order_release);
  server_ = nullptr;
}

const ServeSnapshot* KnnServer::Reader::acquire() const {
  std::atomic<const ServeSnapshot*>& slot = server_->hazard_[slot_];
  const ServeSnapshot* snap =
      server_->live_.load(std::memory_order_seq_cst);
  for (;;) {
    // Announce, then re-validate: once the announced pointer is still
    // live, the publisher's retire scan is guaranteed to see the
    // announcement before it could free the snapshot.
    slot.store(snap, std::memory_order_seq_cst);
    const ServeSnapshot* again =
        server_->live_.load(std::memory_order_seq_cst);
    if (again == snap) return snap;
    snap = again;
  }
}

void KnnServer::Reader::release() const {
  server_->hazard_[slot_].store(nullptr, std::memory_order_release);
}

std::vector<Neighbor> KnnServer::Reader::top_k(VertexId user) const {
  const Pin pinned = pin();  // releases the hazard slot on every path
  const ServeSnapshot* snap = pinned.get();
  if (snap == nullptr) {
    throw std::logic_error("KnnServer: nothing published yet");
  }
  if (user >= snap->graph.num_vertices()) {
    throw std::out_of_range("KnnServer::top_k: unknown user " +
                            std::to_string(user));
  }
  const std::span<const Neighbor> row = snap->graph.neighbors(user);
  return std::vector<Neighbor>(row.begin(), row.end());
}

QueryResult KnnServer::Reader::query(const SparseProfile& query_profile,
                                     std::uint32_t k,
                                     std::uint32_t search_l) const {
  const Pin pinned = pin();
  const ServeSnapshot* snap = pinned.get();
  if (snap == nullptr) {
    throw std::logic_error("KnnServer: nothing published yet");
  }
  if (search_l == 0) search_l = server_->config_.search_l;
  return beam_search(*snap, query_profile, k, search_l);
}

std::uint64_t KnnServer::Reader::version() const {
  const Pin pinned = pin();
  return pinned.get() == nullptr ? 0 : pinned->version;
}

KnnServer::Reader::Pin KnnServer::Reader::pin() const {
  return Pin(this, acquire());
}

KnnServer::Reader::Pin::~Pin() { reader_->release(); }

}  // namespace knnpc
