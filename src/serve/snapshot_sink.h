// The engine -> serving-layer publication boundary.
//
// Both drivers (core/engine.h, core/shard_driver.h) accept one optional
// SnapshotSink and call publish() at the end of every run_iteration(),
// after phase 5 — i.e. with the freshly produced G(t+1) and P(t+1). The
// interface is deliberately thin: the engine side hands out const views
// of state it already owns and never learns what the sink does with
// them, so the serving layer (serve/knn_server.h) stays a pure consumer
// of the iteration loop and the engine stays buildable without it.
#pragma once

#include <cstdint>
#include <span>

#include "util/types.h"

namespace knnpc {

class KnnGraph;
class ProfileStore;

class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  /// Called once per completed iteration, synchronously from
  /// run_iteration() (the engine is single-owner, so publish() never
  /// overlaps itself). `partition_of` is the iteration's phase-1 owner
  /// map (user -> partition), useful for seeding graph searches; it may
  /// be empty when the caller has no assignment. The views are only
  /// valid for the duration of the call — a sink that retains state must
  /// copy (KnnServer copies exactly the rows that changed, via the
  /// KDLT/KPRD delta machinery).
  virtual void publish(const KnnGraph& graph, const ProfileStore& profiles,
                       std::span<const PartitionId> partition_of,
                       std::uint32_t iteration) = 0;
};

}  // namespace knnpc
