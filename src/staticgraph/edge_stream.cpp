#include "staticgraph/edge_stream.h"

#include <stdexcept>

#include "storage/block_file.h"
#include "storage/shard_writer.h"
#include "util/serde.h"

namespace knnpc::staticgraph {
namespace fs = std::filesystem;

EdgeStreamEngine::EdgeStreamEngine(fs::path dir, const EdgeList& graph,
                                   std::uint32_t partitions, IoModel model)
    : dir_(std::move(dir)), n_(graph.num_vertices),
      edges_(graph.edges.size()), partitions_(std::max(partitions, 1u)),
      io_(std::move(model)) {
  if (!endpoints_in_range(graph)) {
    throw std::invalid_argument("EdgeStreamEngine: endpoint out of range");
  }
  fs::create_directories(dir_);
  out_degrees_.assign(n_, 0);
  for (const Edge& e : graph.edges) ++out_degrees_[e.src];

  // Edge stream per destination partition — written once, *unsorted*
  // (X-Stream's whole point: sequential access without preprocessing).
  const VertexId chunk =
      n_ == 0 ? 1 : std::max<VertexId>((n_ + partitions_ - 1) / partitions_, 1);
  std::vector<std::vector<Edge>> streams(partitions_);
  for (const Edge& e : graph.edges) {
    streams[std::min<std::uint32_t>(e.dst / chunk, partitions_ - 1)]
        .push_back(e);
  }
  IoCounters raw;
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    const auto bytes = to_bytes(streams[p]);
    write_file(dir_ / ("edges_" + std::to_string(p) + ".bin"), bytes, raw);
    io_.charge_write(bytes.size());
  }
}

void EdgeStreamEngine::run_iteration(
    const std::function<float(VertexId, VertexId)>& scatter,
    const std::function<void(VertexId, float)>& gather) {
  // Scatter phase: stream every edge file, route updates into buckets.
  RecordShardWriter<StreamUpdate> buckets(dir_, "updates", partitions_,
                                          4u << 20, &io_);
  const VertexId chunk =
      n_ == 0 ? 1 : std::max<VertexId>((n_ + partitions_ - 1) / partitions_, 1);
  IoCounters raw;
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    const auto bytes =
        read_file(dir_ / ("edges_" + std::to_string(p) + ".bin"), raw);
    io_.charge_read(bytes.size());
    for (const Edge& e : from_bytes<Edge>(bytes)) {
      buckets.add(std::min<std::uint32_t>(e.dst / chunk, partitions_ - 1),
                  {e.dst, scatter(e.src, e.dst)});
    }
  }
  buckets.finish();
  // Gather phase: stream each bucket into the caller's vertex state.
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    for (const StreamUpdate& u :
         read_record_shard<StreamUpdate>(buckets.shard_path(p), &io_)) {
      gather(u.dst, u.value);
    }
  }
}

std::vector<double> edge_stream_pagerank(EdgeStreamEngine& engine,
                                         std::uint32_t iterations,
                                         double damping) {
  const VertexId n = engine.num_vertices();
  std::vector<double> rank(n, n == 0 ? 0.0 : 1.0 / n);
  if (n == 0) return rank;
  const auto& out_degrees = engine.out_degrees();
  std::vector<double> gathered(n, 0.0);
  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    std::fill(gathered.begin(), gathered.end(), 0.0);
    engine.run_iteration(
        [&](VertexId src, VertexId) {
          return out_degrees[src] == 0
                     ? 0.0f
                     : static_cast<float>(rank[src] / out_degrees[src]);
        },
        [&](VertexId dst, float value) { gathered[dst] += value; });
    for (VertexId v = 0; v < n; ++v) {
      rank[v] = (1.0 - damping) / n + damping * gathered[v];
    }
  }
  return rank;
}

}  // namespace knnpc::staticgraph
