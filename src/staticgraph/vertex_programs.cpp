#include "staticgraph/vertex_programs.h"

#include <algorithm>
#include <cmath>

namespace knnpc::staticgraph {

PageRankResult pagerank(ShardedGraph& graph, std::uint32_t max_iterations,
                        double damping, double tolerance) {
  PageRankResult result;
  const VertexId n = graph.num_vertices();
  if (n == 0) return result;
  const auto& out_degrees = graph.out_degrees();
  result.rank.assign(n, 1.0 / n);

  // Priming pass: seed the out-edge payloads with rank/out_degree so the
  // first gather sees the uniform distribution.
  graph.run_iteration([&](VertexContext& ctx) {
    const float share = out_degrees[ctx.id] == 0
                            ? 0.0f
                            : static_cast<float>(result.rank[ctx.id] /
                                                 out_degrees[ctx.id]);
    for (EdgeRecord& e : ctx.out_edges) e.data = share;
  });

  for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
    double delta = 0.0;
    graph.run_iteration([&](VertexContext& ctx) {
      double gathered = 0.0;
      for (const EdgeRecord& e : ctx.in_edges) gathered += e.data;
      const double next = (1.0 - damping) / n + damping * gathered;
      delta += std::abs(next - result.rank[ctx.id]);
      result.rank[ctx.id] = next;
      const float share =
          out_degrees[ctx.id] == 0
              ? 0.0f
              : static_cast<float>(next / out_degrees[ctx.id]);
      for (EdgeRecord& e : ctx.out_edges) e.data = share;
    });
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < tolerance) break;
  }
  return result;
}

ComponentsResult connected_components(ShardedGraph& graph,
                                      std::uint32_t max_iterations) {
  ComponentsResult result;
  const VertexId n = graph.num_vertices();
  result.component.resize(n);
  for (VertexId v = 0; v < n; ++v) result.component[v] = v;
  if (n == 0) return result;

  // Labels travel src -> dst through the payload, so weak components
  // require a symmetric edge set (see header). Prime with own labels.
  graph.run_iteration([&](VertexContext& ctx) {
    for (EdgeRecord& e : ctx.out_edges) {
      e.data = static_cast<float>(result.component[ctx.id]);
    }
  });

  for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
    std::size_t changed = 0;
    graph.run_iteration([&](VertexContext& ctx) {
      VertexId best = result.component[ctx.id];
      for (const EdgeRecord& e : ctx.in_edges) {
        best = std::min(best, static_cast<VertexId>(e.data));
      }
      if (best != result.component[ctx.id]) {
        result.component[ctx.id] = best;
        ++changed;
      }
      for (EdgeRecord& e : ctx.out_edges) {
        e.data = static_cast<float>(result.component[ctx.id]);
      }
    });
    result.iterations = iter + 1;
    if (changed == 0) break;
  }
  return result;
}

}  // namespace knnpc::staticgraph
