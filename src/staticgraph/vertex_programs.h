// Vertex programmes for the mini-GraphChi engine: PageRank and connected
// components — the algorithms the paper names as what GraphChi *can* do
// (vs KNN, which it cannot).
#pragma once

#include <cstdint>
#include <vector>

#include "staticgraph/sharded_graph.h"

namespace knnpc::staticgraph {

struct PageRankResult {
  std::vector<double> rank;       // per vertex
  std::uint32_t iterations = 0;
  double final_delta = 0.0;       // L1 change of the last iteration
};

/// Standard damped PageRank on the sharded engine. Ranks flow through the
/// edge payloads: each vertex writes rank/out_degree onto its out-edges;
/// the next iteration gathers in-edge payloads.
PageRankResult pagerank(ShardedGraph& graph, std::uint32_t max_iterations,
                        double damping = 0.85, double tolerance = 1e-6);

struct ComponentsResult {
  std::vector<VertexId> component;  // min-vertex label per vertex
  std::uint32_t iterations = 0;
};

/// Connected components by min-label propagation over the edge payloads.
/// Labels travel src -> dst only, so pass a *symmetrized* graph for weak
/// components. Labels ride the float payload: exact for graphs under 2^24
/// vertices (well beyond this engine's single-PC scale).
ComponentsResult connected_components(ShardedGraph& graph,
                                      std::uint32_t max_iterations = 100);

}  // namespace knnpc::staticgraph
