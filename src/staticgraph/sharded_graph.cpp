#include "staticgraph/sharded_graph.h"

#include <algorithm>
#include <stdexcept>

#include "storage/block_file.h"
#include "util/serde.h"

namespace knnpc {

ShardedKnnGraph::ShardedKnnGraph(PartitionAssignment ownership,
                                 std::uint32_t k)
    : ownership_(std::move(ownership)), k_(k),
      shards_(ownership_.num_partitions()),
      present_(ownership_.num_partitions(), false) {}

void ShardedKnnGraph::set_shard(std::uint32_t s, KnnGraph graph) {
  if (graph.num_vertices() != ownership_.num_vertices()) {
    throw std::invalid_argument("ShardedKnnGraph: vertex count mismatch");
  }
  shards_.at(s) = std::move(graph);
  present_.at(s) = 1;
}

KnnGraph ShardedKnnGraph::merge() const {
  const VertexId n = ownership_.num_vertices();
  KnnGraph merged(n, k_);
  for (VertexId v = 0; v < n; ++v) {
    const PartitionId owner = ownership_.owner(v);
    if (present_.at(owner) == 0) {
      throw std::logic_error(
          "ShardedKnnGraph::merge: shard " + std::to_string(owner) +
          " owns users but was never set");
    }
    const auto list = shards_[owner].neighbors(v);
    merged.set_neighbors(v, std::vector<Neighbor>(list.begin(), list.end()));
  }
  return merged;
}

}  // namespace knnpc

namespace knnpc::staticgraph {
namespace fs = std::filesystem;

ShardedGraph::ShardedGraph(fs::path dir, const EdgeList& graph,
                           std::uint32_t intervals, float initial_data,
                           IoModel model)
    : dir_(std::move(dir)), n_(graph.num_vertices),
      edges_(graph.edges.size()), intervals_(std::max(intervals, 1u)),
      io_(std::move(model)) {
  if (!endpoints_in_range(graph)) {
    throw std::invalid_argument("ShardedGraph: endpoint out of range");
  }
  fs::create_directories(dir_);
  chunk_ = n_ == 0 ? 1 : (n_ + intervals_ - 1) / intervals_;
  chunk_ = std::max<VertexId>(chunk_, 1);

  out_degrees_.assign(n_, 0);
  for (const Edge& e : graph.edges) ++out_degrees_[e.src];

  // Bucket into (dst interval, src interval) blocks sorted by (dst, src).
  std::vector<std::vector<EdgeRecord>> blocks(
      static_cast<std::size_t>(intervals_) * intervals_);
  for (const Edge& e : graph.edges) {
    const std::uint32_t p = interval_of(e.dst);
    const std::uint32_t q = interval_of(e.src);
    blocks[static_cast<std::size_t>(p) * intervals_ + q].push_back(
        {e.src, e.dst, initial_data});
  }
  IoCounters raw;
  for (std::uint32_t p = 0; p < intervals_; ++p) {
    for (std::uint32_t q = 0; q < intervals_; ++q) {
      auto& block = blocks[static_cast<std::size_t>(p) * intervals_ + q];
      std::sort(block.begin(), block.end(),
                [](const EdgeRecord& a, const EdgeRecord& b) {
                  return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
                });
      const auto bytes = to_bytes(block);
      write_file(block_path(p, q), bytes, raw);
      io_.charge_write(bytes.size());
    }
  }
}

std::uint32_t ShardedGraph::interval_of(VertexId v) const {
  return std::min<std::uint32_t>(v / chunk_, intervals_ - 1);
}

VertexId ShardedGraph::interval_begin(std::uint32_t p) const {
  return std::min<VertexId>(p * chunk_, n_);
}

fs::path ShardedGraph::block_path(std::uint32_t p, std::uint32_t q) const {
  return dir_ /
         ("block_" + std::to_string(p) + "_" + std::to_string(q) + ".bin");
}

std::size_t ShardedGraph::run_iteration(const UpdateFn& update) {
  std::size_t updated = 0;
  IoCounters raw;
  for (std::uint32_t p = 0; p < intervals_; ++p) {
    // Load the in-edge column (p, *): all in-edges of interval p, and the
    // out-edge row (*, p): all out-edges of interval p. This is the
    // memory footprint of GraphChi's sliding window for interval p.
    std::vector<EdgeRecord> in_edges;
    for (std::uint32_t q = 0; q < intervals_; ++q) {
      const auto bytes = read_file(block_path(p, q), raw);
      io_.charge_read(bytes.size());
      const auto records = from_bytes<EdgeRecord>(bytes);
      in_edges.insert(in_edges.end(), records.begin(), records.end());
    }
    // in_edges from different blocks are each dst-sorted; merge by dst.
    std::sort(in_edges.begin(), in_edges.end(),
              [](const EdgeRecord& a, const EdgeRecord& b) {
                return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
              });

    std::vector<std::vector<EdgeRecord>> out_row(intervals_);
    for (std::uint32_t q = 0; q < intervals_; ++q) {
      const auto bytes = read_file(block_path(q, p), raw);
      io_.charge_read(bytes.size());
      out_row[q] = from_bytes<EdgeRecord>(bytes);
    }
    // Out-edges of a vertex are scattered across the row; build a
    // src-sorted view of indices for slicing per vertex.
    std::vector<EdgeRecord*> out_ptrs;
    for (auto& block : out_row) {
      for (auto& record : block) out_ptrs.push_back(&record);
    }
    std::sort(out_ptrs.begin(), out_ptrs.end(),
              [](const EdgeRecord* a, const EdgeRecord* b) {
                return a->src != b->src ? a->src < b->src : a->dst < b->dst;
              });

    // Per-vertex update sweep over interval p.
    const VertexId begin = interval_begin(p);
    const VertexId end = interval_begin(p + 1);
    std::size_t in_cursor = 0;
    std::size_t out_cursor = 0;
    std::vector<EdgeRecord> out_scratch;
    for (VertexId v = begin; v < end; ++v) {
      const std::size_t in_lo = in_cursor;
      while (in_cursor < in_edges.size() && in_edges[in_cursor].dst == v) {
        ++in_cursor;
      }
      const std::size_t out_lo = out_cursor;
      while (out_cursor < out_ptrs.size() &&
             out_ptrs[out_cursor]->src == v) {
        ++out_cursor;
      }
      // Materialise the vertex's out-edges contiguously, run the update,
      // then copy mutations back through the pointers.
      out_scratch.clear();
      for (std::size_t i = out_lo; i < out_cursor; ++i) {
        out_scratch.push_back(*out_ptrs[i]);
      }
      VertexContext context;
      context.id = v;
      context.in_edges = {in_edges.data() + in_lo, in_cursor - in_lo};
      context.out_edges = {out_scratch.data(), out_scratch.size()};
      update(context);
      for (std::size_t i = out_lo; i < out_cursor; ++i) {
        *out_ptrs[i] = out_scratch[i - out_lo];
      }
      ++updated;
    }

    // Write the mutated out-edge row back (GraphChi's write phase).
    for (std::uint32_t q = 0; q < intervals_; ++q) {
      const auto bytes = to_bytes(out_row[q]);
      write_file(block_path(q, p), bytes, raw);
      io_.charge_write(bytes.size());
    }
  }
  return updated;
}

std::vector<EdgeRecord> ShardedGraph::read_all_edges() const {
  std::vector<EdgeRecord> all;
  all.reserve(edges_);
  IoCounters raw;
  for (std::uint32_t p = 0; p < intervals_; ++p) {
    for (std::uint32_t q = 0; q < intervals_; ++q) {
      const auto bytes = read_file(block_path(p, q), raw);
      io_.charge_read(bytes.size());
      const auto records = from_bytes<EdgeRecord>(bytes);
      all.insert(all.end(), records.begin(), records.end());
    }
  }
  return all;
}

}  // namespace knnpc::staticgraph
