// Mini X-Stream: edge-centric scatter-gather over *unsorted* edge
// streams (Roy, Mihailovic & Zwaenepoel — SOSP'13), the paper's second
// foil.
//
// X-Stream's bet: never sort edges; stream them sequentially and route
// per-edge "updates" into per-partition buckets, then stream the buckets.
// One iteration is
//     scatter:  for every edge, read state(src), append update to
//               bucket(partition(dst));
//     gather:   for every bucket, stream its updates into state(dst).
// Like GraphChi, edge *structure* never changes — fine for PageRank,
// impossible for KNN.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <vector>

#include "graph/edge_list.h"
#include "storage/io_model.h"
#include "util/types.h"

namespace knnpc::staticgraph {

/// One routed update (X-Stream's "update" record).
struct StreamUpdate {
  VertexId dst = kInvalidVertex;
  float value = 0.0f;
};

class EdgeStreamEngine {
 public:
  /// Writes the (unsorted!) edge stream under `dir`, split into
  /// `partitions` streaming partitions by destination.
  EdgeStreamEngine(std::filesystem::path dir, const EdgeList& graph,
                   std::uint32_t partitions,
                   IoModel model = IoModel::none());

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_; }
  [[nodiscard]] std::uint32_t num_partitions() const noexcept {
    return partitions_;
  }

  /// One scatter-gather sweep.
  ///  - `scatter(src, dst)` returns the update value for that edge (the
  ///    caller reads its own vertex state for src);
  ///  - `gather(dst, value)` folds one update into dst's state.
  /// Edges stream sequentially from disk; updates go through per-partition
  /// bucket files (all I/O accounted).
  void run_iteration(
      const std::function<float(VertexId src, VertexId dst)>& scatter,
      const std::function<void(VertexId dst, float value)>& gather);

  [[nodiscard]] const IoAccountant& io() const noexcept { return io_; }
  void reset_io() noexcept { io_.reset(); }

  /// Out-degrees (PageRank needs them).
  [[nodiscard]] const std::vector<std::uint32_t>& out_degrees() const {
    return out_degrees_;
  }

 private:
  std::filesystem::path dir_;
  VertexId n_ = 0;
  std::size_t edges_ = 0;
  std::uint32_t partitions_ = 1;
  std::vector<std::uint32_t> out_degrees_;
  mutable IoAccountant io_;
};

/// PageRank on the edge-stream engine (same semantics as the sharded
/// version; used to cross-check the two static engines against each
/// other and against graph/ in-memory results).
std::vector<double> edge_stream_pagerank(EdgeStreamEngine& engine,
                                         std::uint32_t iterations,
                                         double damping = 0.85);

}  // namespace knnpc::staticgraph
