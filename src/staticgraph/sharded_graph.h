// Mini-GraphChi: a static-graph out-of-core engine (the paper's foil).
//
// The paper's premise is that frameworks like GraphChi [Kyrola et al.,
// OSDI'12] "rely on the graph structure to remain the same for the entire
// period of computation", which KNN violates. To make that contrast
// concrete — and to have the baseline the introduction argues against —
// this module implements the relevant core of GraphChi:
//
//  * vertices are split into P equal intervals;
//  * every edge (src, dst, data) is stored in block file (p, q) where
//    p = interval(dst), q = interval(src), sorted by (dst, src);
//  * an iteration runs the parallel-sliding-windows pattern: for each
//    interval p it loads the in-edge column (blocks (p, *)) and the
//    out-edge row (blocks (*, p)), runs a vertex update programme, and
//    writes the mutated out-edge data back;
//  * edge *data* is mutable, edge *structure* is immutable — exactly the
//    limitation that rules out KNN.
//
// PageRank and connected components (vertex_programs.h) run on top.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/knn_graph.h"
#include "partition/assignment.h"
#include "storage/io_model.h"
#include "util/types.h"

namespace knnpc {

/// Merged-output container for the sharded KNN driver — the *dynamic*
/// counterpart of the static engine below. Each shard worker produces a
/// KnnGraph populated only for the users it owns; this container collects
/// those partial graphs next to the user→shard map and re-assembles the
/// global G(t+1) with merge(). The merge is deterministic by construction:
/// user v's neighbour list is copied verbatim from its owner shard (the
/// ownership map is a partition — exactly one source per user), so the
/// result is independent of shard count and of the order set_shard() was
/// called in.
///
/// Thread-safety: set_shard() calls for DISTINCT shards may come from
/// different threads (each writes its own pre-allocated slot); merge() and
/// shard() must only run after those writers joined.
class ShardedKnnGraph {
 public:
  /// `ownership` maps each user to its shard (num_partitions = S);
  /// `k` is the out-degree bound of the merged graph.
  ShardedKnnGraph(PartitionAssignment ownership, std::uint32_t k);

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return ownership_.num_vertices();
  }
  [[nodiscard]] const PartitionAssignment& ownership() const noexcept {
    return ownership_;
  }

  /// Installs shard `s`'s partial graph (vertex count must match; only
  /// entries of users owned by s are read back by merge()).
  void set_shard(std::uint32_t s, KnnGraph graph);

  /// Shard `s`'s partial graph (empty KnnGraph until set_shard).
  [[nodiscard]] const KnnGraph& shard(std::uint32_t s) const {
    return shards_.at(s);
  }

  /// Deterministic re-assembly: each user's list from its owner shard.
  /// Throws std::logic_error when a shard that owns users was never set.
  [[nodiscard]] KnnGraph merge() const;

 private:
  PartitionAssignment ownership_;
  std::uint32_t k_ = 0;
  std::vector<KnnGraph> shards_;
  // One byte per shard, NOT vector<bool>: concurrent set_shard() calls on
  // distinct shards must write distinct memory locations.
  std::vector<std::uint8_t> present_;
};

}  // namespace knnpc

namespace knnpc::staticgraph {

/// One stored edge with its mutable float payload.
struct EdgeRecord {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  float data = 0.0f;

  friend bool operator==(const EdgeRecord&, const EdgeRecord&) = default;
};

/// Per-vertex view handed to the update programme.
struct VertexContext {
  VertexId id = kInvalidVertex;
  /// In-edges of id (immutable payloads, written by their sources last
  /// iteration).
  std::span<const EdgeRecord> in_edges;
  /// Out-edges of id; mutate .data to message the destination.
  std::span<EdgeRecord> out_edges;
};

/// Vertex update programme: runs once per vertex per iteration.
using UpdateFn = std::function<void(VertexContext&)>;

class ShardedGraph {
 public:
  /// Builds the shard files for `graph` under `dir` with `intervals`
  /// vertex intervals. Initial edge data is `initial_data` everywhere.
  ShardedGraph(std::filesystem::path dir, const EdgeList& graph,
               std::uint32_t intervals, float initial_data = 0.0f,
               IoModel model = IoModel::none());

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_; }
  [[nodiscard]] std::uint32_t num_intervals() const noexcept {
    return intervals_;
  }
  /// Vertex interval of v.
  [[nodiscard]] std::uint32_t interval_of(VertexId v) const;
  /// First vertex of interval p (end = first of p+1, or n).
  [[nodiscard]] VertexId interval_begin(std::uint32_t p) const;

  /// Runs one parallel-sliding-windows iteration of `update` over every
  /// vertex. Returns the number of vertices updated.
  std::size_t run_iteration(const UpdateFn& update);

  /// Out-degree per vertex (computed once at build; PageRank needs it).
  [[nodiscard]] const std::vector<std::uint32_t>& out_degrees() const {
    return out_degrees_;
  }

  /// Reads the *current* payload of every edge (dst-major order). For
  /// tests and result extraction.
  [[nodiscard]] std::vector<EdgeRecord> read_all_edges() const;

  [[nodiscard]] const IoAccountant& io() const noexcept { return io_; }
  void reset_io() noexcept { io_.reset(); }

 private:
  [[nodiscard]] std::filesystem::path block_path(std::uint32_t p,
                                                 std::uint32_t q) const;

  std::filesystem::path dir_;
  VertexId n_ = 0;
  std::size_t edges_ = 0;
  std::uint32_t intervals_ = 1;
  VertexId chunk_ = 1;
  std::vector<std::uint32_t> out_degrees_;
  mutable IoAccountant io_;
};

}  // namespace knnpc::staticgraph
