// The mutable, bounded-outdegree KNN graph G(t).
//
// This is exactly the structure GraphChi / X-Stream cannot express: every
// iteration *replaces* each vertex's out-edges with its new top-K. Each
// out-edge carries the similarity score that put it there.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "util/rng.h"
#include "util/types.h"

namespace knnpc {

/// One scored out-edge of the KNN graph.
struct Neighbor {
  VertexId id = kInvalidVertex;
  float score = 0.0f;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class KnnGraph {
 public:
  KnnGraph() = default;

  /// Empty graph: n vertices, no edges, out-degree capped at k.
  KnnGraph(VertexId n, std::uint32_t k);

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(adjacency_.size());
  }
  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] std::size_t num_edges() const noexcept;

  /// Current neighbours of v, sorted by descending score.
  [[nodiscard]] std::span<const Neighbor> neighbors(VertexId v) const;

  /// Replaces v's entire neighbour list (phase 4 output). The list is
  /// truncated to k and sorted by descending score. Self-edges and
  /// duplicate ids must already have been removed by the caller.
  void set_neighbors(VertexId v, std::vector<Neighbor> list);

  /// True if v currently points at d.
  [[nodiscard]] bool has_edge(VertexId v, VertexId d) const;

  /// Freezes the out-edges into a plain edge list (drops scores).
  [[nodiscard]] EdgeList to_edge_list() const;

  /// Counts edges present in `a` but not in `b` plus edges in `b` not in
  /// `a`, divided by (n*k): NN-Descent's "scan rate" convergence signal.
  static double change_rate(const KnnGraph& a, const KnnGraph& b);

  /// The numerator of change_rate restricted to vertices [lo, hi) — an
  /// exact integer count, so partial counts summed over a partition of
  /// [0, n) reproduce change_rate bit-for-bit (the engine reduces this
  /// over the phase-4 thread pool).
  static std::size_t change_count(const KnnGraph& a, const KnnGraph& b,
                                  VertexId lo, VertexId hi);

 private:
  std::uint32_t k_ = 0;
  std::vector<std::vector<Neighbor>> adjacency_;
};

/// Compact CSR view of a KNN graph's *in*-edges: the vertices that point
/// at v are `edges[offsets[v] .. offsets[v+1])`, ascending. The serving
/// layer precomputes this per published snapshot so beam search can
/// expand both edge directions — a directed bounded-outdegree graph alone
/// is a poor navigation structure, its reverse edges restore it.
struct ReverseAdjacency {
  std::vector<std::uint32_t> offsets;  // n + 1 entries
  std::vector<VertexId> edges;

  [[nodiscard]] std::span<const VertexId> in_neighbors(VertexId v) const {
    return std::span<const VertexId>(edges)
        .subspan(offsets.at(v), offsets.at(v + 1) - offsets.at(v));
  }
};

/// Builds the reverse adjacency in two counting passes, O(n + edges).
ReverseAdjacency build_reverse_adjacency(const KnnGraph& graph);

/// Random initial KNN graph: each vertex gets k distinct random neighbours
/// (!= itself) with score 0. The standard NN-Descent bootstrap.
KnnGraph random_knn_graph(VertexId n, std::uint32_t k, Rng& rng);

/// Seeds a KNN graph from an existing directed graph (e.g. a social
/// network): each vertex keeps up to k of its out-neighbours (score 0),
/// topped up with random vertices when it has fewer than k. The paper's
/// input graph "could be at any stage in the computation: initial,
/// intermediate, or near-convergence" — this is the warm-start path.
KnnGraph knn_graph_from_edges(const EdgeList& list, std::uint32_t k,
                              Rng& rng);

}  // namespace knnpc
