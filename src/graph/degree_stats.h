// Degree-distribution summaries: used by the dataset registry to verify
// that synthetic Table-1 stand-ins actually have a heavy tail, and by
// benches that report workload shape.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace knnpc {

struct DegreeSummary {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  double mean_out_degree = 0.0;
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;
  std::size_t max_total_degree = 0;
  double p50_total_degree = 0.0;
  double p99_total_degree = 0.0;
  /// Gini coefficient of the total-degree distribution; ~0 for regular
  /// graphs, > 0.5 for strongly skewed (power-law-ish) graphs.
  double degree_gini = 0.0;
};

DegreeSummary summarize_degrees(const Digraph& graph);

/// Total-degree histogram: result[d] = #vertices with total degree d.
std::vector<std::size_t> degree_histogram(const Digraph& graph);

}  // namespace knnpc
