// Row-level deltas between two KNN graphs G_a -> G_b.
//
// The persistent-worker protocol (core/shard_driver.h) keeps each worker
// process's copy of G(t) in sync across iterations by shipping only the
// rows that changed since the worker's last snapshot — on a converging
// KNN graph that is `change_rate * n` rows instead of all n, which is the
// point of keeping workers alive. A delta with every row present doubles
// as the full-snapshot resync after a worker respawn.
//
// Serialised format ("KDLT", little endian, util/serde.h layout):
//   magic "KDLT" (4 bytes), u32 version, u32 n, u32 k, u32 row count,
//   then per row (ascending vertex order): u32 vertex, u32 count,
//   count x {u32 id, f32 score}, and finally the u64 FNV-1a checksum of
//   everything before it.
// The serialisation is checksum-stable: the same delta always produces
// the same bytes (rows are kept sorted by construction), so the trailing
// checksum both detects corruption and lets two sides compare deltas
// without exchanging them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/knn_graph.h"
#include "util/types.h"

namespace knnpc {

struct KnnGraphDelta {
  /// Vertex count and k of BOTH endpoint graphs (a delta never resizes).
  VertexId num_vertices = 0;
  std::uint32_t k = 0;
  /// (vertex, its complete new neighbour list), ascending vertex order.
  std::vector<std::pair<VertexId, std::vector<Neighbor>>> rows;

  [[nodiscard]] bool empty() const noexcept { return rows.empty(); }
};

/// Rows whose neighbour lists differ between `from` and `to` (each row
/// carries `to`'s complete list). Graph shapes must match; throws
/// std::invalid_argument otherwise. delta(G, G) is empty — the fast path
/// costs one row-compare pass and no allocations.
KnnGraphDelta knn_graph_delta(const KnnGraph& from, const KnnGraph& to);

/// Every row of `to` as a delta — the full-snapshot resync payload.
/// apply()ing it reproduces `to` from ANY same-shape base graph.
KnnGraphDelta full_knn_graph_delta(const KnnGraph& to);

/// Replaces the listed rows in `graph`. Invariant (tested): for same-shape
/// graphs, apply(knn_graph_delta(a, b), a) == b bit-for-bit. Throws
/// std::invalid_argument on shape mismatch or out-of-range vertices.
void apply_knn_graph_delta(KnnGraph& graph, const KnnGraphDelta& delta);

/// Serialises to the "KDLT" byte format documented above.
std::vector<std::byte> knn_graph_delta_to_bytes(const KnnGraphDelta& delta);

/// Parses "KDLT" bytes. Throws std::runtime_error on bad magic/version,
/// truncation, trailing bytes, unsorted or out-of-range rows, neighbour
/// counts above k, or a checksum mismatch — corrupt input is always a
/// typed failure, never a silently wrong graph.
KnnGraphDelta knn_graph_delta_from_bytes(std::span<const std::byte> bytes);

/// FNV-1a checksum over the serialised header + rows (the value stored in
/// the trailing 8 bytes of the byte format). Equal deltas have equal
/// checksums; stable across serialise/parse round-trips.
std::uint64_t knn_graph_delta_checksum(const KnnGraphDelta& delta);

}  // namespace knnpc
