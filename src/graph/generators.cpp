#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/hash.h"

namespace knnpc {
namespace {

/// Dedup key for an undirected pair with a < b.
std::uint64_t pair_key(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Relabels vertices with a random permutation. Weight-ranked generators
/// (Chung-Lu) would otherwise correlate vertex id with degree — real
/// datasets don't, and id-ordered baselines (e.g. the Sequential PI
/// traversal) must not accidentally see a degree ordering.
void shuffle_labels(EdgeList& list, Rng& rng) {
  std::vector<VertexId> perm(list.num_vertices);
  for (VertexId v = 0; v < list.num_vertices; ++v) perm[v] = v;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  for (Edge& e : list.edges) {
    e.src = perm[e.src];
    e.dst = perm[e.dst];
  }
  sort_and_dedup(list);
}

}  // namespace

EdgeList erdos_renyi(VertexId n, std::size_t m, Rng& rng) {
  const auto max_edges =
      static_cast<std::size_t>(n) * (n > 0 ? n - 1 : 0);
  if (m > max_edges) {
    throw std::invalid_argument("erdos_renyi: m exceeds n*(n-1)");
  }
  EdgeList out;
  out.num_vertices = n;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  out.edges.reserve(m);
  while (out.edges.size() < m) {
    const auto s = static_cast<VertexId>(rng.next_below(n));
    const auto d = static_cast<VertexId>(rng.next_below(n));
    if (s == d) continue;
    const std::uint64_t key = tuple_key({s, d});
    if (!seen.insert(key).second) continue;
    out.edges.push_back({s, d});
  }
  sort_and_dedup(out);
  return out;
}

EdgeList barabasi_albert(VertexId n, std::uint32_t attach, Rng& rng) {
  if (attach == 0 || n < attach + 1) {
    throw std::invalid_argument("barabasi_albert: need n > attach >= 1");
  }
  EdgeList out;
  out.num_vertices = n;
  // repeated-endpoints list implements preferential attachment in O(1).
  std::vector<VertexId> endpoint_pool;
  std::unordered_set<std::uint64_t> seen;
  // Seed clique over the first attach+1 vertices.
  for (VertexId a = 0; a <= attach; ++a) {
    for (VertexId b = a + 1; b <= attach; ++b) {
      out.edges.push_back({a, b});
      seen.insert(pair_key(a, b));
      endpoint_pool.push_back(a);
      endpoint_pool.push_back(b);
    }
  }
  for (VertexId v = attach + 1; v < n; ++v) {
    std::unordered_set<VertexId> targets;
    while (targets.size() < attach) {
      const VertexId t =
          endpoint_pool[rng.next_below(endpoint_pool.size())];
      if (t == v) continue;
      targets.insert(t);
    }
    for (VertexId t : targets) {
      if (!seen.insert(pair_key(v, t)).second) continue;
      out.edges.push_back({v, t});
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return symmetrized(out);
}

EdgeList chung_lu(VertexId n, std::size_t target_edges, double gamma,
                  Rng& rng) {
  if (n < 2) throw std::invalid_argument("chung_lu: need n >= 2");
  const auto max_undirected =
      static_cast<std::size_t>(n) * (n - 1) / 2;
  if (target_edges > max_undirected) {
    throw std::invalid_argument("chung_lu: target_edges too large");
  }
  // Power-law weights; i0 offsets the head so the max degree stays
  // sub-linear in n (standard Chung-Lu regularisation).
  const double exponent = -1.0 / (gamma - 1.0);
  const double i0 = std::max(1.0, static_cast<double>(n) * 0.001);
  std::vector<double> weights(n);
  double weight_sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + i0, exponent);
    weight_sum += weights[i];
  }
  // Scale so that expected undirected edges ≈ target. Expected edges under
  // Chung-Lu is (Σw)^2 / (2 * S) with S = Σw when p_ij = w_i w_j / S; we
  // instead sample by picking endpoints ∝ w (a fast equivalent for sparse
  // graphs) until we have the exact count.
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    acc += weights[i];
    cumulative[i] = acc;
  }
  auto sample_vertex = [&]() -> VertexId {
    const double r = rng.next_double() * weight_sum;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), r);
    return static_cast<VertexId>(it - cumulative.begin());
  };
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target_edges * 2);
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(target_edges);
  // Rejection loop; bail out to uniform fill-up if the weighted sampler
  // saturates (possible when target is close to the weighted support).
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 64 + 1024;
  while (out.edges.size() < target_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId a = sample_vertex();
    const VertexId b = sample_vertex();
    if (a == b) continue;
    if (!seen.insert(pair_key(a, b)).second) continue;
    out.edges.push_back({std::min(a, b), std::max(a, b)});
  }
  while (out.edges.size() < target_edges) {  // uniform fix-up, exact count
    const auto a = static_cast<VertexId>(rng.next_below(n));
    const auto b = static_cast<VertexId>(rng.next_below(n));
    if (a == b) continue;
    if (!seen.insert(pair_key(a, b)).second) continue;
    out.edges.push_back({std::min(a, b), std::max(a, b)});
  }
  EdgeList sym = symmetrized(out);
  shuffle_labels(sym, rng);
  return sym;
}

EdgeList chung_lu_directed(VertexId n, std::size_t target_edges,
                           double gamma, Rng& rng) {
  if (n < 2) throw std::invalid_argument("chung_lu_directed: need n >= 2");
  const auto max_edges = static_cast<std::size_t>(n) * (n - 1);
  if (target_edges > max_edges) {
    throw std::invalid_argument("chung_lu_directed: target_edges too large");
  }
  const double exponent = -1.0 / (gamma - 1.0);
  const double i0 = std::max(1.0, static_cast<double>(n) * 0.001);
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    acc += std::pow(static_cast<double>(i) + i0, exponent);
    cumulative[i] = acc;
  }
  const double weight_sum = acc;
  auto sample_vertex = [&]() -> VertexId {
    const double r = rng.next_double() * weight_sum;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), r);
    return static_cast<VertexId>(it - cumulative.begin());
  };
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target_edges * 2);
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(target_edges);
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 64 + 1024;
  while (out.edges.size() < target_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId s = sample_vertex();
    const VertexId d = sample_vertex();
    if (s == d) continue;
    if (!seen.insert(tuple_key({s, d})).second) continue;
    out.edges.push_back({s, d});
  }
  while (out.edges.size() < target_edges) {  // uniform fix-up, exact count
    const auto s = static_cast<VertexId>(rng.next_below(n));
    const auto d = static_cast<VertexId>(rng.next_below(n));
    if (s == d) continue;
    if (!seen.insert(tuple_key({s, d})).second) continue;
    out.edges.push_back({s, d});
  }
  shuffle_labels(out, rng);
  return out;
}

EdgeList watts_strogatz(VertexId n, std::uint32_t k_each, double beta,
                        Rng& rng) {
  if (n < 2 * k_each + 2) {
    throw std::invalid_argument("watts_strogatz: n too small for k_each");
  }
  std::unordered_set<std::uint64_t> seen;
  EdgeList out;
  out.num_vertices = n;
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k_each; ++j) {
      VertexId t = (v + j) % n;
      if (rng.next_bool(beta)) {
        // Rewire to a uniform non-duplicate target.
        for (int tries = 0; tries < 64; ++tries) {
          const auto cand = static_cast<VertexId>(rng.next_below(n));
          if (cand == v || seen.contains(pair_key(v, cand))) continue;
          t = cand;
          break;
        }
      }
      if (t == v) continue;
      if (seen.insert(pair_key(v, t)).second) {
        out.edges.push_back({v, t});
      }
    }
  }
  return symmetrized(out);
}

EdgeList ring_lattice(VertexId n, std::uint32_t k) {
  if (n == 0) return {};
  if (k >= n) throw std::invalid_argument("ring_lattice: k must be < n");
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(static_cast<std::size_t>(n) * k);
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      out.edges.push_back({v, static_cast<VertexId>((v + j) % n)});
    }
  }
  sort_and_dedup(out);
  return out;
}

EdgeList star(VertexId n) {
  EdgeList out;
  out.num_vertices = n;
  for (VertexId v = 1; v < n; ++v) {
    out.edges.push_back({0, v});
    out.edges.push_back({v, 0});
  }
  sort_and_dedup(out);
  return out;
}

EdgeList complete(VertexId n) {
  EdgeList out;
  out.num_vertices = n;
  out.edges.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = 0; b < n; ++b) {
      if (a != b) out.edges.push_back({a, b});
    }
  }
  return out;
}

}  // namespace knnpc
