#include "graph/traversal.h"

#include <deque>

#include "util/rng.h"

namespace knnpc {

std::vector<std::uint32_t> bfs_distances(const Digraph& graph,
                                         VertexId source) {
  std::vector<std::uint32_t> dist(graph.num_vertices(), kUnreachable);
  if (source >= graph.num_vertices()) return dist;
  std::deque<VertexId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    for (VertexId d : graph.out_neighbors(v)) {
      if (dist[d] == kUnreachable) {
        dist[d] = dist[v] + 1;
        frontier.push_back(d);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> weakly_connected_components(const Digraph& graph) {
  std::vector<std::uint32_t> label(graph.num_vertices(), kUnreachable);
  std::uint32_t next_label = 0;
  std::deque<VertexId> frontier;
  for (VertexId root = 0; root < graph.num_vertices(); ++root) {
    if (label[root] != kUnreachable) continue;
    label[root] = next_label;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop_front();
      auto visit = [&](VertexId u) {
        if (label[u] == kUnreachable) {
          label[u] = next_label;
          frontier.push_back(u);
        }
      };
      for (VertexId u : graph.out_neighbors(v)) visit(u);
      for (VertexId u : graph.in_neighbors(v)) visit(u);
    }
    ++next_label;
  }
  return label;
}

std::size_t count_weak_components(const Digraph& graph) {
  if (graph.num_vertices() == 0) return 0;
  const auto labels = weakly_connected_components(graph);
  std::uint32_t max_label = 0;
  for (std::uint32_t l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

ReachabilitySummary sample_reachability(const Digraph& graph,
                                        std::size_t samples,
                                        std::uint64_t seed) {
  ReachabilitySummary summary;
  if (graph.num_vertices() == 0 || samples == 0) return summary;
  Rng rng(seed);
  std::vector<bool> reached(graph.num_vertices(), false);
  double distance_sum = 0.0;
  std::size_t finite = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto source =
        static_cast<VertexId>(rng.next_below(graph.num_vertices()));
    const auto dist = bfs_distances(graph, source);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (dist[v] == kUnreachable) continue;
      reached[v] = true;
      distance_sum += dist[v];
      ++finite;
      summary.max_distance = std::max(summary.max_distance, dist[v]);
    }
  }
  for (bool r : reached) summary.reached += r;
  summary.mean_distance =
      finite == 0 ? 0.0 : distance_sum / static_cast<double>(finite);
  return summary;
}

}  // namespace knnpc
