#include "graph/edge_list.h"

#include <algorithm>

namespace knnpc {

void sort_and_dedup(EdgeList& list) {
  std::sort(list.edges.begin(), list.edges.end());
  list.edges.erase(std::unique(list.edges.begin(), list.edges.end()),
                   list.edges.end());
}

void remove_self_loops(EdgeList& list) {
  std::erase_if(list.edges, [](const Edge& e) { return e.src == e.dst; });
}

void fit_num_vertices(EdgeList& list) {
  VertexId max_v = 0;
  bool any = false;
  for (const Edge& e : list.edges) {
    max_v = std::max({max_v, e.src, e.dst});
    any = true;
  }
  list.num_vertices = any ? max_v + 1 : 0;
}

bool is_sorted_unique(const EdgeList& list) {
  return std::adjacent_find(list.edges.begin(), list.edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return !(a < b);
                            }) == list.edges.end();
}

bool endpoints_in_range(const EdgeList& list) {
  return std::all_of(list.edges.begin(), list.edges.end(),
                     [&](const Edge& e) {
                       return e.src < list.num_vertices &&
                              e.dst < list.num_vertices;
                     });
}

EdgeList reversed(const EdgeList& list) {
  EdgeList out;
  out.num_vertices = list.num_vertices;
  out.edges.reserve(list.edges.size());
  for (const Edge& e : list.edges) out.edges.push_back({e.dst, e.src});
  return out;
}

EdgeList symmetrized(const EdgeList& list) {
  EdgeList out;
  out.num_vertices = list.num_vertices;
  out.edges.reserve(list.edges.size() * 2);
  for (const Edge& e : list.edges) {
    out.edges.push_back(e);
    out.edges.push_back({e.dst, e.src});
  }
  sort_and_dedup(out);
  return out;
}

}  // namespace knnpc
