#include "graph/knn_graph_delta.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "util/fnv.h"
#include "util/serde.h"

namespace knnpc {
namespace {

constexpr char kDeltaMagic[4] = {'K', 'D', 'L', 'T'};
constexpr std::uint32_t kDeltaVersion = 1;

void check_same_shape(const KnnGraph& from, const KnnGraph& to) {
  if (from.num_vertices() != to.num_vertices() || from.k() != to.k()) {
    throw std::invalid_argument(
        "knn_graph_delta: graph shapes differ (n " +
        std::to_string(from.num_vertices()) + " vs " +
        std::to_string(to.num_vertices()) + ", k " +
        std::to_string(from.k()) + " vs " + std::to_string(to.k()) + ")");
  }
}

/// Serialises header + rows (everything the trailing checksum covers).
std::vector<std::byte> body_bytes(const KnnGraphDelta& delta) {
  std::vector<std::byte> bytes;
  std::size_t payload = 0;
  for (const auto& [vertex, list] : delta.rows) {
    payload += 2 * sizeof(std::uint32_t) + list.size() * sizeof(Neighbor);
  }
  bytes.reserve(20 + payload);
  for (const char c : kDeltaMagic) append_record(bytes, c);
  append_record(bytes, kDeltaVersion);
  append_record(bytes, delta.num_vertices);
  append_record(bytes, delta.k);
  append_record(bytes, static_cast<std::uint32_t>(delta.rows.size()));
  for (const auto& [vertex, list] : delta.rows) {
    append_record(bytes, vertex);
    append_record(bytes, static_cast<std::uint32_t>(list.size()));
    for (const Neighbor& n : list) {
      append_record(bytes, n.id);
      append_record(bytes, n.score);
    }
  }
  return bytes;
}

}  // namespace

KnnGraphDelta knn_graph_delta(const KnnGraph& from, const KnnGraph& to) {
  check_same_shape(from, to);
  KnnGraphDelta delta;
  delta.num_vertices = to.num_vertices();
  delta.k = to.k();
  for (VertexId v = 0; v < to.num_vertices(); ++v) {
    const auto a = from.neighbors(v);
    const auto b = to.neighbors(v);
    if (std::ranges::equal(a, b)) continue;
    delta.rows.emplace_back(v, std::vector<Neighbor>(b.begin(), b.end()));
  }
  return delta;
}

KnnGraphDelta full_knn_graph_delta(const KnnGraph& to) {
  KnnGraphDelta delta;
  delta.num_vertices = to.num_vertices();
  delta.k = to.k();
  delta.rows.reserve(to.num_vertices());
  for (VertexId v = 0; v < to.num_vertices(); ++v) {
    const auto list = to.neighbors(v);
    delta.rows.emplace_back(v,
                            std::vector<Neighbor>(list.begin(), list.end()));
  }
  return delta;
}

void apply_knn_graph_delta(KnnGraph& graph, const KnnGraphDelta& delta) {
  if (graph.num_vertices() != delta.num_vertices ||
      graph.k() != delta.k) {
    throw std::invalid_argument(
        "apply_knn_graph_delta: delta shape (n=" +
        std::to_string(delta.num_vertices) + ", k=" +
        std::to_string(delta.k) + ") does not match the graph (n=" +
        std::to_string(graph.num_vertices()) + ", k=" +
        std::to_string(graph.k()) + ")");
  }
  for (const auto& [vertex, list] : delta.rows) {
    if (vertex >= graph.num_vertices()) {
      throw std::invalid_argument(
          "apply_knn_graph_delta: row vertex out of range");
    }
    graph.set_neighbors(vertex, list);
  }
}

std::vector<std::byte> knn_graph_delta_to_bytes(const KnnGraphDelta& delta) {
  std::vector<std::byte> bytes = body_bytes(delta);
  append_record(bytes, fnv1a_bytes(bytes));
  return bytes;
}

KnnGraphDelta knn_graph_delta_from_bytes(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  auto fail = [](const std::string& what) -> std::runtime_error {
    return std::runtime_error("knn_graph_delta_from_bytes: " + what);
  };
  auto read = [&]<typename T>(T& out) {
    if (!read_record(bytes, offset, out)) throw fail("truncated delta");
  };
  char magic[4];
  for (char& c : magic) read(c);
  if (std::memcmp(magic, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    throw fail("bad magic");
  }
  std::uint32_t version = 0;
  read(version);
  if (version != kDeltaVersion) {
    throw fail("unsupported version " + std::to_string(version));
  }
  KnnGraphDelta delta;
  read(delta.num_vertices);
  read(delta.k);
  std::uint32_t rows = 0;
  read(rows);
  if (rows > delta.num_vertices) throw fail("row count exceeds n");
  // Each row takes at least 8 bytes — reject a corrupt count before it
  // can drive the reserve below.
  if (bytes.size() < offset || rows > (bytes.size() - offset) / 8) {
    throw fail("row count exceeds input size");
  }
  delta.rows.reserve(rows);
  VertexId prev = 0;
  for (std::uint32_t i = 0; i < rows; ++i) {
    VertexId vertex = 0;
    std::uint32_t count = 0;
    read(vertex);
    read(count);
    if (vertex >= delta.num_vertices) throw fail("row vertex out of range");
    if (i > 0 && vertex <= prev) throw fail("rows not strictly ascending");
    prev = vertex;
    if (count > delta.k) throw fail("neighbour count exceeds k");
    // k itself came from the (untrusted) header, so bound the count by
    // the bytes actually present before it drives the reserve — corrupt
    // input must be a typed failure, never a multi-gigabyte allocation.
    if (count > (bytes.size() - offset) / sizeof(Neighbor)) {
      throw fail("neighbour count exceeds input size");
    }
    std::vector<Neighbor> list;
    list.reserve(count);
    for (std::uint32_t j = 0; j < count; ++j) {
      Neighbor n;
      read(n.id);
      read(n.score);
      if (n.id >= delta.num_vertices) {
        throw fail("neighbour id out of range");
      }
      list.push_back(n);
    }
    delta.rows.emplace_back(vertex, std::move(list));
  }
  std::uint64_t stored = 0;
  read(stored);
  if (offset != bytes.size()) throw fail("trailing bytes");
  const std::uint64_t actual =
      fnv1a_bytes(bytes.subspan(0, bytes.size() - 8));
  if (stored != actual) throw fail("checksum mismatch");
  return delta;
}

std::uint64_t knn_graph_delta_checksum(const KnnGraphDelta& delta) {
  return fnv1a_bytes(body_bytes(delta));
}

}  // namespace knnpc
