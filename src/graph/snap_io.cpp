#include "graph/snap_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace knnpc {

EdgeList load_snap(std::istream& in) {
  EdgeList out;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto intern = [&](std::uint64_t raw) -> VertexId {
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    return it->second;
  };
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t raw_src = 0;
    std::uint64_t raw_dst = 0;
    if (!(fields >> raw_src >> raw_dst)) {
      throw std::runtime_error("load_snap: malformed line " +
                               std::to_string(lineno) + ": " + line);
    }
    out.edges.push_back({intern(raw_src), intern(raw_dst)});
  }
  out.num_vertices = static_cast<VertexId>(remap.size());
  return out;
}

EdgeList load_snap_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_snap_file: cannot open " + path);
  return load_snap(in);
}

void save_snap(std::ostream& out, const EdgeList& list) {
  out << "# knnpc edge list: " << list.num_vertices << " vertices, "
      << list.edges.size() << " edges\n";
  for (const Edge& e : list.edges) {
    out << e.src << '\t' << e.dst << '\n';
  }
}

void save_snap_file(const std::string& path, const EdgeList& list) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_snap_file: cannot open " + path);
  save_snap(out, list);
}

}  // namespace knnpc
