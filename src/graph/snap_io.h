// Readers/writers for the SNAP plain-text edge-list format:
//   # comment lines
//   <src>\t<dst>
//
// Vertex ids in SNAP files are arbitrary; load_snap() compacts them to a
// dense [0, n) range (preserving first-appearance order) like the paper's
// preprocessing must.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.h"

namespace knnpc {

/// Parses SNAP text from a stream. Throws std::runtime_error on malformed
/// lines. Self-loops are kept; callers strip them if undesired.
EdgeList load_snap(std::istream& in);

/// Convenience overload opening a file path.
EdgeList load_snap_file(const std::string& path);

/// Writes SNAP text (with a one-line header comment).
void save_snap(std::ostream& out, const EdgeList& list);

/// Convenience overload writing to a file path.
void save_snap_file(const std::string& path, const EdgeList& list);

}  // namespace knnpc
