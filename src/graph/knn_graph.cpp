#include "graph/knn_graph.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace knnpc {

KnnGraph::KnnGraph(VertexId n, std::uint32_t k)
    : k_(k), adjacency_(n) {}

std::size_t KnnGraph::num_edges() const noexcept {
  std::size_t total = 0;
  for (const auto& list : adjacency_) total += list.size();
  return total;
}

std::span<const Neighbor> KnnGraph::neighbors(VertexId v) const {
  return adjacency_.at(v);
}

void KnnGraph::set_neighbors(VertexId v, std::vector<Neighbor> list) {
  std::sort(list.begin(), list.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;  // deterministic tie-break
            });
  if (list.size() > k_) list.resize(k_);
  adjacency_.at(v) = std::move(list);
}

bool KnnGraph::has_edge(VertexId v, VertexId d) const {
  const auto& list = adjacency_.at(v);
  return std::any_of(list.begin(), list.end(),
                     [d](const Neighbor& n) { return n.id == d; });
}

EdgeList KnnGraph::to_edge_list() const {
  EdgeList out;
  out.num_vertices = num_vertices();
  out.edges.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (const Neighbor& n : adjacency_[v]) out.edges.push_back({v, n.id});
  }
  return out;
}

std::size_t KnnGraph::change_count(const KnnGraph& a, const KnnGraph& b,
                                   VertexId lo, VertexId hi) {
  if (a.num_vertices() != b.num_vertices()) {
    throw std::invalid_argument("change_count: vertex counts differ");
  }
  hi = std::min(hi, a.num_vertices());
  std::size_t differing = 0;
  std::unordered_set<VertexId> set;
  for (VertexId v = lo; v < hi; ++v) {
    set.clear();
    for (const Neighbor& n : a.adjacency_[v]) set.insert(n.id);
    std::size_t common = 0;
    for (const Neighbor& n : b.adjacency_[v]) {
      if (set.contains(n.id)) ++common;
    }
    differing += (a.adjacency_[v].size() - common) +
                 (b.adjacency_[v].size() - common);
  }
  return differing;
}

double KnnGraph::change_rate(const KnnGraph& a, const KnnGraph& b) {
  if (a.num_vertices() == 0 && b.num_vertices() == 0) return 0.0;
  const std::size_t differing =
      change_count(a, b, 0, a.num_vertices());
  const double denom = static_cast<double>(a.num_vertices()) *
                       std::max<std::uint32_t>(a.k_, 1);
  return static_cast<double>(differing) / denom;
}

ReverseAdjacency build_reverse_adjacency(const KnnGraph& graph) {
  const VertexId n = graph.num_vertices();
  ReverseAdjacency rev;
  rev.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.neighbors(v)) ++rev.offsets[nb.id + 1];
  }
  for (VertexId v = 0; v < n; ++v) rev.offsets[v + 1] += rev.offsets[v];
  rev.edges.resize(rev.offsets[n]);
  std::vector<std::uint32_t> cursor(rev.offsets.begin(),
                                    rev.offsets.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.neighbors(v)) {
      rev.edges[cursor[nb.id]++] = v;
    }
  }
  // Sources are visited in ascending order, so each in-list is already
  // sorted — the property in_neighbors() documents.
  return rev;
}

KnnGraph knn_graph_from_edges(const EdgeList& list, std::uint32_t k,
                              Rng& rng) {
  const VertexId n = list.num_vertices;
  KnnGraph graph(n, k);
  if (n <= 1 || k == 0) return graph;
  // Collect out-neighbours per vertex (dedup, drop self loops).
  std::vector<std::vector<VertexId>> out(n);
  for (const Edge& e : list.edges) {
    if (e.src >= n || e.dst >= n) {
      throw std::invalid_argument("knn_graph_from_edges: endpoint range");
    }
    if (e.src != e.dst) out[e.src].push_back(e.dst);
  }
  const std::uint32_t per_vertex = std::min<std::uint32_t>(k, n - 1);
  std::unordered_set<VertexId> chosen;
  for (VertexId v = 0; v < n; ++v) {
    auto& candidates = out[v];
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    chosen.clear();
    std::vector<Neighbor> neighbors;
    neighbors.reserve(per_vertex);
    for (VertexId d : candidates) {
      if (neighbors.size() >= per_vertex) break;
      chosen.insert(d);
      neighbors.push_back({d, 0.0f});
    }
    while (neighbors.size() < per_vertex) {  // random top-up
      const auto d = static_cast<VertexId>(rng.next_below(n));
      if (d == v || chosen.contains(d)) continue;
      chosen.insert(d);
      neighbors.push_back({d, 0.0f});
    }
    graph.set_neighbors(v, std::move(neighbors));
  }
  return graph;
}

KnnGraph random_knn_graph(VertexId n, std::uint32_t k, Rng& rng) {
  KnnGraph graph(n, k);
  if (n <= 1 || k == 0) return graph;
  const std::uint32_t per_vertex = std::min<std::uint32_t>(k, n - 1);
  std::unordered_set<VertexId> chosen;
  for (VertexId v = 0; v < n; ++v) {
    chosen.clear();
    std::vector<Neighbor> list;
    list.reserve(per_vertex);
    while (list.size() < per_vertex) {
      auto candidate = static_cast<VertexId>(rng.next_below(n));
      if (candidate == v || chosen.contains(candidate)) continue;
      chosen.insert(candidate);
      list.push_back({candidate, 0.0f});
    }
    graph.set_neighbors(v, std::move(list));
  }
  return graph;
}

}  // namespace knnpc
