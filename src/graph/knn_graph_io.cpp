#include "graph/knn_graph_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace knnpc {
namespace {

constexpr char kMagic[4] = {'K', 'N', 'N', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_knn_graph: truncated input");
  return value;
}

}  // namespace

void save_knn_graph(std::ostream& out, const KnnGraph& graph) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, graph.num_vertices());
  write_pod(out, graph.k());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto list = graph.neighbors(v);
    write_pod(out, static_cast<std::uint32_t>(list.size()));
    for (const Neighbor& n : list) {
      write_pod(out, n.id);
      write_pod(out, n.score);
    }
  }
  if (!out) throw std::runtime_error("save_knn_graph: write failed");
}

void save_knn_graph_file(const std::filesystem::path& path,
                         const KnnGraph& graph) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_knn_graph_file: cannot open " +
                             path.string());
  }
  save_knn_graph(out, graph);
}

KnnGraph load_knn_graph(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_knn_graph: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("load_knn_graph: unsupported version " +
                             std::to_string(version));
  }
  const auto n = read_pod<VertexId>(in);
  const auto k = read_pod<std::uint32_t>(in);
  KnnGraph graph(n, k);
  for (VertexId v = 0; v < n; ++v) {
    const auto count = read_pod<std::uint32_t>(in);
    if (count > k) {
      throw std::runtime_error("load_knn_graph: neighbour count exceeds k");
    }
    std::vector<Neighbor> list;
    list.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Neighbor nb;
      nb.id = read_pod<VertexId>(in);
      nb.score = read_pod<float>(in);
      if (nb.id >= n) {
        throw std::runtime_error("load_knn_graph: neighbour id out of range");
      }
      list.push_back(nb);
    }
    graph.set_neighbors(v, std::move(list));
  }
  return graph;
}

KnnGraph load_knn_graph_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_knn_graph_file: cannot open " +
                             path.string());
  }
  return load_knn_graph(in);
}

std::uint64_t knn_graph_checksum(const KnnGraph& graph) {
  // FNV-1a over the checkpoint serialisation fields, in file order.
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  auto mix = [&](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((value >> (8 * byte)) & 0xffu)) * kPrime;
    }
  };
  mix(graph.num_vertices());
  mix(graph.k());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto list = graph.neighbors(v);
    mix(list.size());
    for (const Neighbor& n : list) {
      std::uint32_t score_bits = 0;
      std::memcpy(&score_bits, &n.score, sizeof(score_bits));
      mix((static_cast<std::uint64_t>(n.id) << 32) | score_bits);
    }
  }
  return h;
}

}  // namespace knnpc
