#include "graph/knn_graph_io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "storage/block_file.h"
#include "util/fnv.h"
#include "util/serde.h"

namespace knnpc {
namespace {

constexpr char kMagic[4] = {'K', 'N', 'N', 'G'};
constexpr std::uint32_t kVersion = 1;

constexpr char kShardMagic[4] = {'K', 'S', 'H', 'R'};
constexpr std::uint32_t kShardVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_knn_graph: truncated input");
  return value;
}

}  // namespace

void save_knn_graph(std::ostream& out, const KnnGraph& graph) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, graph.num_vertices());
  write_pod(out, graph.k());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto list = graph.neighbors(v);
    write_pod(out, static_cast<std::uint32_t>(list.size()));
    for (const Neighbor& n : list) {
      write_pod(out, n.id);
      write_pod(out, n.score);
    }
  }
  if (!out) throw std::runtime_error("save_knn_graph: write failed");
}

void save_knn_graph_file(const std::filesystem::path& path,
                         const KnnGraph& graph) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_knn_graph_file: cannot open " +
                             path.string());
  }
  save_knn_graph(out, graph);
}

KnnGraph load_knn_graph(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_knn_graph: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("load_knn_graph: unsupported version " +
                             std::to_string(version));
  }
  const auto n = read_pod<VertexId>(in);
  const auto k = read_pod<std::uint32_t>(in);
  KnnGraph graph(n, k);
  for (VertexId v = 0; v < n; ++v) {
    const auto count = read_pod<std::uint32_t>(in);
    if (count > k) {
      throw std::runtime_error("load_knn_graph: neighbour count exceeds k");
    }
    std::vector<Neighbor> list;
    list.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Neighbor nb;
      nb.id = read_pod<VertexId>(in);
      nb.score = read_pod<float>(in);
      if (nb.id >= n) {
        throw std::runtime_error("load_knn_graph: neighbour id out of range");
      }
      list.push_back(nb);
    }
    graph.set_neighbors(v, std::move(list));
  }
  return graph;
}

KnnGraph load_knn_graph_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_knn_graph_file: cannot open " +
                             path.string());
  }
  return load_knn_graph(in);
}

std::vector<std::byte> shard_result_to_bytes(const ShardResult& result) {
  std::vector<std::byte> bytes;
  bytes.reserve(40 + result.entries.size() * (8 + result.k * 8));
  for (const char c : kShardMagic) append_record(bytes, c);
  append_record(bytes, kShardVersion);
  append_record(bytes, result.shard);
  append_record(bytes, result.num_vertices);
  append_record(bytes, result.k);
  append_record(bytes, result.changed);
  append_record(bytes, static_cast<std::uint64_t>(result.entries.size()));
  for (const auto& [user, neighbors] : result.entries) {
    append_record(bytes, user);
    append_record(bytes, static_cast<std::uint32_t>(neighbors.size()));
    for (const Neighbor& n : neighbors) {
      append_record(bytes, n.id);
      append_record(bytes, n.score);
    }
  }
  return bytes;
}

void save_shard_result_file(const std::filesystem::path& path,
                            const ShardResult& result) {
  IoCounters counters;  // write_file is the atomic (tmp + rename) primitive
  write_file(path, shard_result_to_bytes(result), counters);
}

ShardResult shard_result_from_bytes(std::span<const std::byte> bytes,
                                    const std::string& context) {
  std::size_t offset = 0;
  auto fail = [&](const std::string& what) -> std::runtime_error {
    return std::runtime_error("shard_result_from_bytes: " + what + " in " +
                              context);
  };
  auto read = [&]<typename T>(T& out) {
    if (!read_record(bytes, offset, out)) throw fail("truncated result");
  };
  char magic[4];
  for (char& c : magic) read(c);
  if (std::memcmp(magic, kShardMagic, sizeof(kShardMagic)) != 0) {
    throw fail("bad magic");
  }
  std::uint32_t version = 0;
  read(version);
  if (version != kShardVersion) {
    throw fail("unsupported version " + std::to_string(version));
  }
  ShardResult result;
  read(result.shard);
  read(result.num_vertices);
  read(result.k);
  read(result.changed);
  std::uint64_t count = 0;
  read(count);
  if (count > result.num_vertices) throw fail("entry count exceeds n");
  // Each entry takes at least 8 bytes (id + count); a corrupt header
  // must be rejected before it can drive a huge allocation.
  if (count > (bytes.size() - offset) / 8) {
    throw fail("entry count exceeds file size");
  }
  result.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    VertexId user = 0;
    std::uint32_t neighbors = 0;
    read(user);
    read(neighbors);
    if (user >= result.num_vertices) throw fail("user id out of range");
    if (neighbors > result.k) throw fail("neighbour count exceeds k");
    std::vector<Neighbor> list;
    list.reserve(neighbors);
    for (std::uint32_t j = 0; j < neighbors; ++j) {
      Neighbor n;
      read(n.id);
      read(n.score);
      if (n.id >= result.num_vertices) {
        throw fail("neighbour id out of range");
      }
      list.push_back(n);
    }
    result.entries.emplace_back(user, std::move(list));
  }
  if (offset != bytes.size()) throw fail("trailing bytes");
  return result;
}

ShardResult load_shard_result_file(const std::filesystem::path& path) {
  IoCounters counters;
  const std::vector<std::byte> bytes = read_file(path, counters);
  return shard_result_from_bytes(bytes, path.string());
}

std::uint64_t knn_graph_checksum(const KnnGraph& graph) {
  // FNV-1a over the checkpoint serialisation fields, in file order.
  std::uint64_t h = kFnv1aOffset;
  auto mix = [&](std::uint64_t value) { h = fnv1a_mix(h, value); };
  mix(graph.num_vertices());
  mix(graph.k());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto list = graph.neighbors(v);
    mix(list.size());
    for (const Neighbor& n : list) {
      std::uint32_t score_bits = 0;
      std::memcpy(&score_bits, &n.score, sizeof(score_bits));
      mix((static_cast<std::uint64_t>(n.id) << 32) | score_bits);
    }
  }
  return h;
}

}  // namespace knnpc
