#include "graph/digraph.h"

#include <algorithm>
#include <stdexcept>

namespace knnpc {

Digraph::Digraph(const EdgeList& list) : n_(list.num_vertices) {
  if (!endpoints_in_range(list)) {
    throw std::invalid_argument("Digraph: edge endpoint out of range");
  }
  const std::size_t m = list.edges.size();
  out_offsets_.assign(n_ + 1, 0);
  in_offsets_.assign(n_ + 1, 0);
  for (const Edge& e : list.edges) {
    ++out_offsets_[e.src + 1];
    ++in_offsets_[e.dst + 1];
  }
  for (std::size_t v = 0; v < n_; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_adj_.resize(m);
  in_adj_.resize(m);
  std::vector<std::size_t> out_cursor(out_offsets_.begin(),
                                      out_offsets_.end() - 1);
  std::vector<std::size_t> in_cursor(in_offsets_.begin(),
                                     in_offsets_.end() - 1);
  for (const Edge& e : list.edges) {
    out_adj_[out_cursor[e.src]++] = e.dst;
    in_adj_[in_cursor[e.dst]++] = e.src;
  }
  // Sort each adjacency run so neighbour scans are cache-friendly and
  // binary-searchable.
  for (std::size_t v = 0; v < n_; ++v) {
    std::sort(out_adj_.begin() + static_cast<std::ptrdiff_t>(out_offsets_[v]),
              out_adj_.begin() + static_cast<std::ptrdiff_t>(out_offsets_[v + 1]));
    std::sort(in_adj_.begin() + static_cast<std::ptrdiff_t>(in_offsets_[v]),
              in_adj_.begin() + static_cast<std::ptrdiff_t>(in_offsets_[v + 1]));
  }
}

std::span<const VertexId> Digraph::out_neighbors(VertexId v) const {
  return {out_adj_.data() + out_offsets_.at(v),
          out_offsets_.at(v + 1) - out_offsets_.at(v)};
}

std::span<const VertexId> Digraph::in_neighbors(VertexId v) const {
  return {in_adj_.data() + in_offsets_.at(v),
          in_offsets_.at(v + 1) - in_offsets_.at(v)};
}

std::size_t Digraph::out_degree(VertexId v) const {
  return out_offsets_.at(v + 1) - out_offsets_.at(v);
}

std::size_t Digraph::in_degree(VertexId v) const {
  return in_offsets_.at(v + 1) - in_offsets_.at(v);
}

std::size_t Digraph::degree(VertexId v) const {
  return out_degree(v) + in_degree(v);
}

EdgeList Digraph::to_edge_list() const {
  EdgeList out;
  out.num_vertices = n_;
  out.edges.reserve(num_edges());
  for (VertexId v = 0; v < n_; ++v) {
    for (VertexId d : out_neighbors(v)) out.edges.push_back({v, d});
  }
  return out;
}

}  // namespace knnpc
