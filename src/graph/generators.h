// Synthetic graph generators.
//
// These stand in for the SNAP datasets of Table 1 (not available offline;
// see DESIGN.md §4). Chung-Lu with an exact-edge-count fix-up is the main
// one: it reproduces the heavy-tailed degree skew that drives the PI-graph
// heuristic comparison.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "util/rng.h"

namespace knnpc {

/// G(n, m) Erdős–Rényi: exactly `m` distinct directed edges, no self-loops.
/// Requires m <= n*(n-1).
EdgeList erdos_renyi(VertexId n, std::size_t m, Rng& rng);

/// Barabási–Albert preferential attachment; every new vertex attaches
/// `attach` undirected edges, stored as a symmetric directed edge list.
EdgeList barabasi_albert(VertexId n, std::uint32_t attach, Rng& rng);

/// Chung-Lu expected-degree model with a power-law weight sequence
/// w_i ∝ (i + i0)^(-1/(gamma-1)), scaled so the expected edge count is
/// `target_edges`, then fixed up (random additions / deletions) to hit the
/// count exactly. Undirected (symmetric) output; no self-loops.
///
/// gamma in (2, 3.5] matches social / collaboration networks.
EdgeList chung_lu(VertexId n, std::size_t target_edges, double gamma,
                  Rng& rng);

/// Directed Chung-Lu: exactly `target_edges` unique directed edges (no
/// self-loops), endpoints drawn from the same power-law weight sequence.
/// Matches SNAP directed datasets (e.g. Wiki-Vote, Gnutella) where the
/// paper's Table-1 "Edges" column counts directed edges.
EdgeList chung_lu_directed(VertexId n, std::size_t target_edges, double gamma,
                           Rng& rng);

/// Watts–Strogatz small world: ring of n vertices, each linked to `k_each`
/// nearest neighbours on each side, rewired with probability `beta`.
/// Symmetric output.
EdgeList watts_strogatz(VertexId n, std::uint32_t k_each, double beta,
                        Rng& rng);

/// Directed ring lattice: v -> (v+1..v+k mod n). Deterministic; handy for
/// tests where the exact structure matters.
EdgeList ring_lattice(VertexId n, std::uint32_t k);

/// Star: vertex 0 points at all others and all others point at 0.
EdgeList star(VertexId n);

/// Complete directed graph (all ordered pairs, no self-loops). Small n only.
EdgeList complete(VertexId n);

}  // namespace knnpc
