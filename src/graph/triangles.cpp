#include "graph/triangles.h"

#include <algorithm>

#include "graph/edge_list.h"

namespace knnpc {

TriangleCounts count_triangles(const Digraph& graph) {
  TriangleCounts counts;
  const VertexId n = graph.num_vertices();
  counts.per_vertex.assign(n, 0);
  if (n == 0) return counts;

  // Undirected adjacency, deduplicated.
  EdgeList undirected = symmetrized(graph.to_edge_list());
  remove_self_loops(undirected);
  const Digraph u(undirected);

  // Forward algorithm: orient each undirected edge from the
  // lower-(degree, id) endpoint to the higher one; a triangle {a, b, c}
  // is found exactly once as two forward edges a->b, a->c plus forward
  // edge b->c.
  auto rank_less = [&](VertexId a, VertexId b) {
    const std::size_t da = u.out_degree(a);
    const std::size_t db = u.out_degree(b);
    return da != db ? da < db : a < b;
  };
  std::vector<std::vector<VertexId>> forward(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : u.out_neighbors(v)) {
      if (rank_less(v, w)) forward[v].push_back(w);
    }
    std::sort(forward[v].begin(), forward[v].end());
  }
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t deg = u.out_degree(v);
    wedges += deg >= 2 ? static_cast<std::uint64_t>(deg) * (deg - 1) / 2 : 0;
    const auto& fv = forward[v];
    for (std::size_t i = 0; i < fv.size(); ++i) {
      const auto& fw = forward[fv[i]];
      // Triangle {v, fv[i], c}: c is rank-above both v and fv[i], so it
      // appears in forward[v] ∩ forward[fv[i]] and nowhere else — the
      // full sorted intersection counts each triangle exactly once.
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < fv.size() && b < fw.size()) {
        if (fv[a] < fw[b]) {
          ++a;
        } else if (fw[b] < fv[a]) {
          ++b;
        } else {
          ++counts.total;
          ++counts.per_vertex[v];
          ++counts.per_vertex[fv[i]];
          ++counts.per_vertex[fv[a]];
          ++a;
          ++b;
        }
      }
    }
  }
  counts.global_clustering =
      wedges == 0 ? 0.0
                  : 3.0 * static_cast<double>(counts.total) /
                        static_cast<double>(wedges);
  return counts;
}

}  // namespace knnpc
