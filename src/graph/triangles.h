// Triangle counting — with PageRank, the second algorithm the paper names
// as what static-graph frameworks are built for ("various algorithms such
// as PageRank and triangle counting").
//
// Exact counting by sorted-adjacency intersection on the undirected view
// of the graph (each triangle counted once).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace knnpc {

struct TriangleCounts {
  std::uint64_t total = 0;
  /// Triangles incident to each vertex (each triangle contributes to all
  /// three corners).
  std::vector<std::uint64_t> per_vertex;
  /// Global clustering coefficient: 3*triangles / open wedges (0 if no
  /// wedges).
  double global_clustering = 0.0;
};

/// Counts triangles of the graph's undirected view. O(sum of
/// min-degree-ordered intersections) — the standard forward algorithm.
TriangleCounts count_triangles(const Digraph& graph);

}  // namespace knnpc
