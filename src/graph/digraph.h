// Immutable CSR directed graph with both out- and in-adjacency.
//
// The static substrate: the partitioner, the PI-graph heuristics and the
// Table-1 bench all consume this form. The *mutable* KNN graph lives in
// knn_graph.h; an iteration freezes it into a Digraph for phases 1-4.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "util/types.h"

namespace knnpc {

class Digraph {
 public:
  Digraph() = default;

  /// Builds CSR from an edge list (need not be sorted; duplicates kept).
  /// Endpoints must be < list.num_vertices.
  explicit Digraph(const EdgeList& list);

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return out_adj_.size();
  }

  /// Out-neighbours of v (order = insertion order after counting sort).
  [[nodiscard]] std::span<const VertexId> out_neighbors(VertexId v) const;
  /// In-neighbours of v.
  [[nodiscard]] std::span<const VertexId> in_neighbors(VertexId v) const;

  [[nodiscard]] std::size_t out_degree(VertexId v) const;
  [[nodiscard]] std::size_t in_degree(VertexId v) const;
  /// out_degree + in_degree (the "degree" used by the PI-graph heuristics).
  [[nodiscard]] std::size_t degree(VertexId v) const;

  /// Materialises the edges back into a (sorted) edge list.
  [[nodiscard]] EdgeList to_edge_list() const;

 private:
  VertexId n_ = 0;
  std::vector<std::size_t> out_offsets_;  // n_+1 entries
  std::vector<VertexId> out_adj_;
  std::vector<std::size_t> in_offsets_;   // n_+1 entries
  std::vector<VertexId> in_adj_;
};

}  // namespace knnpc
