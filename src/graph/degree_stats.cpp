#include "graph/degree_stats.h"

#include <algorithm>
#include <numeric>

#include "util/stats.h"

namespace knnpc {

DegreeSummary summarize_degrees(const Digraph& graph) {
  DegreeSummary s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  if (s.num_vertices == 0) return s;

  std::vector<double> totals;
  totals.reserve(s.num_vertices);
  RunningStats out_stats;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::size_t od = graph.out_degree(v);
    const std::size_t id = graph.in_degree(v);
    out_stats.add(static_cast<double>(od));
    s.max_out_degree = std::max(s.max_out_degree, od);
    s.max_in_degree = std::max(s.max_in_degree, id);
    s.max_total_degree = std::max(s.max_total_degree, od + id);
    totals.push_back(static_cast<double>(od + id));
  }
  s.mean_out_degree = out_stats.mean();
  s.p50_total_degree = percentile(totals, 50);
  s.p99_total_degree = percentile(totals, 99);

  // Gini via the sorted-rank formula.
  std::sort(totals.begin(), totals.end());
  const double sum = std::accumulate(totals.begin(), totals.end(), 0.0);
  if (sum > 0) {
    double weighted = 0.0;
    for (std::size_t i = 0; i < totals.size(); ++i) {
      weighted += static_cast<double>(i + 1) * totals[i];
    }
    const auto n = static_cast<double>(totals.size());
    s.degree_gini = (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
  }
  return s;
}

std::vector<std::size_t> degree_histogram(const Digraph& graph) {
  std::vector<std::size_t> hist;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::size_t d = graph.degree(v);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace knnpc
