// Basic graph traversals used as diagnostics on KNN graphs.
//
// The engine's candidate propagation is a bounded-hop BFS over G(t):
// whether every user is eventually *reachable* from meaningful seeds
// determines whether local search can converge (see
// EngineConfig::random_candidates). These helpers quantify that.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/digraph.h"

namespace knnpc {

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS hop distance from `source` along out-edges; kUnreachable where the
/// source cannot reach.
std::vector<std::uint32_t> bfs_distances(const Digraph& graph,
                                         VertexId source);

/// Weakly-connected component label per vertex (labels are dense, in
/// order of first discovery).
std::vector<std::uint32_t> weakly_connected_components(const Digraph& graph);

/// Number of distinct labels returned by weakly_connected_components.
std::size_t count_weak_components(const Digraph& graph);

struct ReachabilitySummary {
  /// Vertices reachable from the sampled sources (union).
  std::size_t reached = 0;
  /// Mean finite BFS distance over reached vertices.
  double mean_distance = 0.0;
  /// Max finite BFS distance seen.
  std::uint32_t max_distance = 0;
};

/// BFS from `samples` random sources; summarises how much of the graph
/// local candidate propagation can touch. Deterministic per seed.
ReachabilitySummary sample_reachability(const Digraph& graph,
                                        std::size_t samples,
                                        std::uint64_t seed = 17);

}  // namespace knnpc
