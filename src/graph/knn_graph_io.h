// Binary (de)serialisation of scored KNN graphs and per-shard results.
//
// Whole-graph format (little endian):
//   magic "KNNG" (4 bytes), u32 version, u32 n, u32 k,
//   then per vertex: u32 count, count x {u32 id, f32 score}.
//
// Used by KnnEngine's per-iteration checkpoints (EngineConfig::checkpoint)
// so a long run can resume after a crash — part of the "commodity PC"
// operational story.
//
// Shard-result format ("KSHR", the process-mode worker -> driver handoff):
//   magic "KSHR" (4 bytes), u32 version, u32 shard, u32 n, u32 k,
//   u64 changed, u64 entry count,
//   then per owned user: u32 id, u32 count, count x {u32 id, f32 score}.
// Written atomically (tmp + rename) so the driver either sees a complete
// result or no file at all — a worker that dies mid-write leaves nothing
// to merge (core/shard_driver.h's no-partial-merge contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/knn_graph.h"

namespace knnpc {

void save_knn_graph(std::ostream& out, const KnnGraph& graph);
void save_knn_graph_file(const std::filesystem::path& path,
                         const KnnGraph& graph);

/// Throws std::runtime_error on bad magic, version, or truncation.
KnnGraph load_knn_graph(std::istream& in);
KnnGraph load_knn_graph_file(const std::filesystem::path& path);

/// One shard worker's phase-4 output: the new top-K lists of exactly the
/// users that shard owns, plus the exact change count over those users
/// (summed by the driver to reproduce the serial change rate bit-for-bit).
struct ShardResult {
  std::uint32_t shard = 0;
  /// Vertex count of the full graph (validation against the driver's n).
  VertexId num_vertices = 0;
  std::uint32_t k = 0;
  /// KnnGraph::change_count summed over the owned users.
  std::uint64_t changed = 0;
  /// (user, neighbours) in ascending user order; owned users only.
  std::vector<std::pair<VertexId, std::vector<Neighbor>>> entries;
};

/// Writes the result atomically (tmp file + rename): the file is either
/// absent or complete, never partial.
void save_shard_result_file(const std::filesystem::path& path,
                            const ShardResult& result);

/// Throws std::runtime_error on bad magic, version, truncation, or
/// out-of-range user / neighbour ids (a worker must never smuggle a
/// corrupt result past the driver).
ShardResult load_shard_result_file(const std::filesystem::path& path);

/// The "KSHR" serialisation as bytes — the persistent-worker protocol
/// ships ShardResults inline over the IPC channel instead of through
/// result files; both carry exactly these bytes.
std::vector<std::byte> shard_result_to_bytes(const ShardResult& result);

/// Parses "KSHR" bytes with the same validation as the file loader;
/// `context` names the source in error messages (a path, a worker id).
ShardResult shard_result_from_bytes(std::span<const std::byte> bytes,
                                    const std::string& context);

/// Order-sensitive 64-bit checksum over (n, k, every vertex's neighbour
/// list: id + score bits). Two graphs have equal checksums iff their
/// serialised forms match byte-for-byte — the cheap way for the
/// determinism tests and bench_shards to compare a sharded run against
/// the serial reference without holding both graphs.
std::uint64_t knn_graph_checksum(const KnnGraph& graph);

}  // namespace knnpc
