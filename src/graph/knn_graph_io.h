// Binary (de)serialisation of scored KNN graphs.
//
// Format (little endian):
//   magic "KNNG" (4 bytes), u32 version, u32 n, u32 k,
//   then per vertex: u32 count, count x {u32 id, f32 score}.
//
// Used by KnnEngine's per-iteration checkpoints (EngineConfig::checkpoint)
// so a long run can resume after a crash — part of the "commodity PC"
// operational story.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "graph/knn_graph.h"

namespace knnpc {

void save_knn_graph(std::ostream& out, const KnnGraph& graph);
void save_knn_graph_file(const std::filesystem::path& path,
                         const KnnGraph& graph);

/// Throws std::runtime_error on bad magic, version, or truncation.
KnnGraph load_knn_graph(std::istream& in);
KnnGraph load_knn_graph_file(const std::filesystem::path& path);

/// Order-sensitive 64-bit checksum over (n, k, every vertex's neighbour
/// list: id + score bits). Two graphs have equal checksums iff their
/// serialised forms match byte-for-byte — the cheap way for the
/// determinism tests and bench_shards to compare a sharded run against
/// the serial reference without holding both graphs.
std::uint64_t knn_graph_checksum(const KnnGraph& graph);

}  // namespace knnpc
