// Edge-list representation plus the sort/dedup plumbing every loader and
// generator shares.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace knnpc {

/// A bag of directed edges. Invariants (num_vertices covers all endpoints,
/// sortedness, uniqueness) are established explicitly via the helpers below
/// rather than maintained implicitly — generators build in bulk.
struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;

  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges.size();
  }
};

/// Sorts by (src, dst) and removes duplicate edges.
void sort_and_dedup(EdgeList& list);

/// Removes self-loops (src == dst).
void remove_self_loops(EdgeList& list);

/// Recomputes num_vertices as 1 + max endpoint (0 if no edges).
void fit_num_vertices(EdgeList& list);

/// True when edges are sorted by (src, dst) and unique.
[[nodiscard]] bool is_sorted_unique(const EdgeList& list);

/// True when all endpoints are < num_vertices.
[[nodiscard]] bool endpoints_in_range(const EdgeList& list);

/// Returns the list with every edge reversed (dst -> src).
[[nodiscard]] EdgeList reversed(const EdgeList& list);

/// Interprets the list as undirected: for every (a,b) adds (b,a), then
/// dedups. Used when reading SNAP collaboration networks.
[[nodiscard]] EdgeList symmetrized(const EdgeList& list);

}  // namespace knnpc
