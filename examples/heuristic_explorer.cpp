// Heuristic explorer: load any SNAP-format edge list (or generate a
// synthetic graph), treat it as a PI graph, and compare every traversal
// heuristic's load/unload operations at a chosen memory budget —
// an interactive version of the Table-1 experiment for your own graphs.
//
// Usage:
//   heuristic_explorer --file=my_graph.txt --slots=2
//   heuristic_explorer --synthetic=chung-lu --nodes=5000 --edges=40000
#include <cstdio>

#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/degree_stats.h"
#include "graph/snap_io.h"
#include "graph/triangles.h"
#include "pigraph/heuristics.h"
#include "pigraph/simulator.h"
#include "util/options.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_string("file", "SNAP edge-list file (overrides --synthetic)", "");
  opts.add_string("synthetic", "chung-lu | erdos-renyi | barabasi-albert",
                  "chung-lu");
  opts.add_uint("nodes", "synthetic vertex count", 5000);
  opts.add_uint("edges", "synthetic edge count", 40000);
  opts.add_uint("slots", "resident partition slots", 2);
  opts.add_uint("seed", "generator seed", 1);
  if (!opts.parse(argc, argv)) return 0;

  EdgeList list;
  if (!opts.get_string("file").empty()) {
    list = load_snap_file(opts.get_string("file"));
    std::printf("loaded %s: %u vertices, %zu edges\n",
                opts.get_string("file").c_str(), list.num_vertices,
                list.edges.size());
  } else {
    Rng rng(opts.get_uint("seed"));
    const auto n = static_cast<VertexId>(opts.get_uint("nodes"));
    const auto e = static_cast<std::size_t>(opts.get_uint("edges"));
    const std::string& kind = opts.get_string("synthetic");
    if (kind == "chung-lu") {
      list = chung_lu_directed(n, e, 2.3, rng);
    } else if (kind == "erdos-renyi") {
      list = erdos_renyi(n, e, rng);
    } else if (kind == "barabasi-albert") {
      list = barabasi_albert(
          n, static_cast<std::uint32_t>(std::max<std::size_t>(1, e / n)),
          rng);
    } else {
      std::fprintf(stderr, "unknown --synthetic kind: %s\n", kind.c_str());
      return 1;
    }
    std::printf("generated %s: %u vertices, %zu edges\n", kind.c_str(),
                list.num_vertices, list.edges.size());
  }

  const Digraph graph(list);
  const DegreeSummary degrees = summarize_degrees(graph);
  std::printf("degree shape: mean out %.1f, max total %zu, p99 %.0f, "
              "gini %.2f\n",
              degrees.mean_out_degree, degrees.max_total_degree,
              degrees.p99_total_degree, degrees.degree_gini);
  const TriangleCounts triangles = count_triangles(graph);
  std::printf("triangles: %llu (clustering coefficient %.4f)\n",
              static_cast<unsigned long long>(triangles.total),
              triangles.global_clustering);

  const PiGraph pi = PiGraph::from_digraph(graph);
  const auto slots = static_cast<std::size_t>(opts.get_uint("slots"));
  const LoadUnloadSimulator sim(slots);
  std::printf("\nPI pairs: %zu, memory slots: %zu\n", pi.num_pairs(), slots);
  std::printf("%-16s | %10s %10s %12s | %9s | %s\n", "heuristic", "loads",
              "unloads", "operations", "vs seq", "schedule s");
  std::printf("------------------------------------------------------------"
              "--------------\n");
  std::uint64_t seq_ops = 0;
  for (const auto& name : all_heuristic_names()) {
    Timer timer;
    const Schedule schedule = make_heuristic(name)->schedule(pi);
    const double schedule_s = timer.elapsed_seconds();
    const SimulationResult r = sim.run(pi, schedule);
    if (name == "sequential") seq_ops = r.operations();
    std::printf("%-16s | %10llu %10llu %12llu | %8.2f%% | %.3f\n",
                name.c_str(), static_cast<unsigned long long>(r.loads),
                static_cast<unsigned long long>(r.unloads),
                static_cast<unsigned long long>(r.operations()),
                seq_ops ? 100.0 * static_cast<double>(r.operations()) /
                              static_cast<double>(seq_ops)
                        : 100.0,
                schedule_s);
  }
  return 0;
}
