// Quickstart: the smallest end-to-end use of the knnpc public API.
//
//   1. make some user profiles
//   2. run the out-of-core KNN engine to convergence
//   3. read the resulting KNN graph
//
// Build & run:  build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "profiles/generators.h"
#include "util/rng.h"

using namespace knnpc;

int main() {
  // 1. Profiles: 1000 users, planted into 10 taste communities so the
  //    nearest-neighbour structure is meaningful.
  Rng rng(1);
  ClusteredGenConfig gen;
  gen.base.num_users = 1000;
  gen.base.num_items = 500;
  gen.num_clusters = 10;
  std::vector<SparseProfile> profiles = clustered_profiles(gen, rng);

  // 2. Engine: K=10 neighbours, 8 disk partitions, two partitions resident
  //    at a time (the paper's memory-constrained setting).
  EngineConfig config;
  config.k = 10;
  config.num_partitions = 8;
  config.heuristic = "low-high";  // best Table-1 traversal heuristic
  KnnEngine engine(config, std::move(profiles));

  const RunStats run = engine.run(/*max_iterations=*/15,
                                  /*convergence_delta=*/0.01);
  std::printf("converged=%s after %zu iterations\n",
              run.converged ? "yes" : "no", run.iterations.size());

  // 3. Result: each user's K most similar users, best first.
  const KnnGraph& knn = engine.graph();
  std::printf("user 0's nearest neighbours:\n");
  for (const Neighbor& n : knn.neighbors(0)) {
    std::printf("  user %u (cosine %.3f)\n", n.id, n.score);
  }

  // Iteration stats expose the out-of-core story: partitions loaded,
  // bytes moved, per-phase timings.
  const IterationStats& last = run.iterations.back();
  std::printf("last iteration: %llu tuples, %llu partition loads, "
              "%.1f MB moved, %.3f s\n",
              static_cast<unsigned long long>(last.unique_tuples),
              static_cast<unsigned long long>(last.partition_loads),
              static_cast<double>(last.io.bytes_read +
                                  last.io.bytes_written) / 1e6,
              last.timings.total());
  return 0;
}
