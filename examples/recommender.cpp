// Recommender example: user-item profiles with Zipf item popularity (the
// workload the paper's introduction motivates: "KNN ... widely used in
// recommender systems").
//
// Computes each user's K nearest taste-neighbours out of core, then makes
// item recommendations by voting over neighbours' items the user has not
// seen — classic user-based collaborative filtering on top of the KNN
// graph.
//
// Usage: recommender [--users=N] [--items=N] [--k=N]
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/engine.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 5000);
  opts.add_uint("items", "catalogue size", 2000);
  opts.add_uint("k", "neighbours per user", 10);
  opts.add_uint("recommendations", "items to recommend per user", 5);
  if (!opts.parse(argc, argv)) return 0;

  Rng rng(2024);
  ProfileGenConfig gen;
  gen.num_users = static_cast<VertexId>(opts.get_uint("users"));
  gen.num_items = static_cast<ItemId>(opts.get_uint("items"));
  gen.min_items = 10;
  gen.max_items = 40;
  // Zipf popularity: a few blockbuster items, a long tail.
  std::vector<SparseProfile> profiles = zipf_profiles(gen, 1.1, rng);
  const InMemoryProfileStore snapshot{profiles};

  EngineConfig config;
  config.k = static_cast<std::uint32_t>(opts.get_uint("k"));
  config.num_partitions = 16;
  config.measure = SimilarityMeasure::Cosine;
  KnnEngine engine(config, std::move(profiles));
  const RunStats run = engine.run(12, 0.01);
  std::printf("KNN graph ready (converged=%s, %zu iterations)\n",
              run.converged ? "yes" : "no", run.iterations.size());

  // Recommend for a handful of users: score unseen items by the summed
  // similarity of neighbours who have them.
  const auto want =
      static_cast<std::size_t>(opts.get_uint("recommendations"));
  for (VertexId user : {VertexId{0}, VertexId{1}, VertexId{2}}) {
    const SparseProfile& own = snapshot.get(user);
    std::map<ItemId, float> votes;
    for (const Neighbor& nb : engine.graph().neighbors(user)) {
      for (const ProfileEntry& e : snapshot.get(nb.id).entries()) {
        if (own.weight(e.item) == 0.0f) {
          votes[e.item] += nb.score * e.weight;
        }
      }
    }
    std::vector<std::pair<float, ItemId>> ranked;
    ranked.reserve(votes.size());
    for (const auto& [item, score] : votes) ranked.push_back({score, item});
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("user %u: recommend", user);
    for (std::size_t i = 0; i < std::min(want, ranked.size()); ++i) {
      std::printf(" item%u(%.2f)", ranked[i].second, ranked[i].first);
    }
    std::printf("\n");
  }
  return 0;
}
