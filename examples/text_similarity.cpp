// Text-similarity example: documents as shingle profiles.
//
// Each "document" is synthesised from one of several topic vocabularies,
// converted to a sparse profile of hashed 3-gram shingles, and the engine
// finds each document's most similar documents with Jaccard similarity —
// near-duplicate / related-document detection out of core.
//
// Usage: text_similarity [--docs=N] [--k=N]
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"
#include "profiles/generators.h"
#include "util/hash.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

namespace {

/// Hashed character 3-gram shingles of a string as a set profile.
SparseProfile shingle_profile(const std::string& text,
                              ItemId vocabulary = 1 << 16) {
  std::vector<ProfileEntry> entries;
  for (std::size_t i = 0; i + 3 <= text.size(); ++i) {
    const std::uint32_t h =
        mix32(static_cast<std::uint32_t>(text[i]) |
              (static_cast<std::uint32_t>(text[i + 1]) << 8) |
              (static_cast<std::uint32_t>(text[i + 2]) << 16));
    entries.push_back({h % vocabulary, 1.0f});
  }
  // SparseProfile's constructor merges duplicate shingles by summing.
  return SparseProfile(std::move(entries));
}

/// A synthetic document: `words` draws from the topic's vocabulary.
std::string synth_document(std::uint32_t topic, std::size_t words,
                           Rng& rng) {
  static const char* kRoots[] = {"graph",  "vertex", "edge",    "disk",
                                 "memory", "cache",  "stream",  "shard",
                                 "user",   "item",   "profile", "rating",
                                 "movie",  "genre",  "actor",   "scene",
                                 "tensor", "layer",  "model",   "train"};
  std::string out;
  for (std::size_t w = 0; w < words; ++w) {
    // 5 words per topic vocabulary block, plus 20% global noise.
    const std::size_t base = topic * 5;
    const std::size_t idx = rng.next_bool(0.8)
                                ? base + rng.next_below(5)
                                : rng.next_below(20);
    out += kRoots[idx % 20];
    out += ' ';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("docs", "number of documents", 2000);
  opts.add_uint("k", "similar documents per document", 5);
  if (!opts.parse(argc, argv)) return 0;
  const auto docs = static_cast<VertexId>(opts.get_uint("docs"));
  const std::uint32_t topics = 4;

  Rng rng(31337);
  std::vector<SparseProfile> profiles;
  profiles.reserve(docs);
  for (VertexId d = 0; d < docs; ++d) {
    profiles.push_back(
        shingle_profile(synth_document(d % topics, 60, rng)));
  }

  EngineConfig config;
  config.k = static_cast<std::uint32_t>(opts.get_uint("k"));
  config.num_partitions = 8;
  config.measure = SimilarityMeasure::Jaccard;  // set similarity on shingles
  KnnEngine engine(config, std::move(profiles));
  const RunStats run = engine.run(12, 0.01);

  const auto labels = planted_clusters(docs, topics);
  std::printf("documents=%u topics=%u converged=%s iterations=%zu\n", docs,
              topics, run.converged ? "yes" : "no", run.iterations.size());
  std::printf("topic purity of the similarity graph: %.3f (1.0 = every "
              "neighbour shares the topic)\n",
              cluster_purity(engine.graph(), labels));
  std::printf("document 0 (topic 0) nearest documents: ");
  for (const Neighbor& n : engine.graph().neighbors(0)) {
    std::printf("%u(topic %u, j=%.2f) ", n.id, labels[n.id], n.score);
  }
  std::printf("\n");
  return 0;
}
