// Ratings-file example: the standard recommender on-ramp.
//
// Reads a MovieLens-shaped rating file (user,item,rating triples) — or
// synthesises one if no path is given — builds the KNN user graph out of
// core, and reports neighbourhood quality diagnostics (component count,
// reachability, sampled recall with a confidence interval).
//
// Usage:
//   movielens_style                         # synthetic 5k-user log
//   movielens_style --ratings=ratings.csv   # your own file
#include <cstdio>

#include "core/convergence.h"
#include "core/engine.h"
#include "graph/digraph.h"
#include "graph/traversal.h"
#include "profiles/ratings_io.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

int main(int argc, char** argv) {
  Options opts;
  opts.add_string("ratings", "rating file (user,item,rating); empty = "
                  "synthesise", "");
  opts.add_uint("k", "neighbours per user", 10);
  opts.add_uint("users", "synthetic users (when no file)", 5000);
  if (!opts.parse(argc, argv)) return 0;

  RatingsData data;
  if (!opts.get_string("ratings").empty()) {
    data = load_ratings_file(opts.get_string("ratings"));
    std::printf("loaded %s: %zu users, %zu items, %zu ratings\n",
                opts.get_string("ratings").c_str(), data.profiles.size(),
                data.item_ids.size(), data.num_ratings);
  } else {
    Rng rng(2014);
    SyntheticRatingsConfig config;
    config.num_users = static_cast<VertexId>(opts.get_uint("users"));
    config.num_items = config.num_users / 3;
    data = synthetic_ratings(config, rng);
    std::printf("synthesised %zu users, %u items, %zu ratings "
                "(Zipf popularity)\n",
                data.profiles.size(), config.num_items, data.num_ratings);
  }

  const InMemoryProfileStore snapshot{data.profiles};
  EngineConfig config;
  config.k = static_cast<std::uint32_t>(opts.get_uint("k"));
  config.num_partitions = 16;
  config.measure = SimilarityMeasure::Cosine;
  KnnEngine engine(config, std::move(data.profiles));
  const RunStats run = engine.run(12, 0.01);
  std::printf("KNN graph: converged=%s after %zu iterations\n",
              run.converged ? "yes" : "no", run.iterations.size());

  // Structural diagnostics on the result.
  const Digraph structure(engine.graph().to_edge_list());
  std::printf("weak components: %zu\n",
              count_weak_components(structure));
  const auto reach = sample_reachability(structure, 5);
  std::printf("reachability (5 BFS samples): %zu vertices, mean hop %.1f, "
              "max hop %u\n",
              reach.reached, reach.mean_distance, reach.max_distance);

  // Quality estimate without the O(n^2) ground truth.
  const auto recall = sampled_recall(engine.graph(), snapshot,
                                     config.measure, 50, 23, 8);
  std::printf("sampled recall@%u: %.3f +/- %.3f (%zu users sampled)\n",
              config.k, recall.recall, recall.margin95,
              recall.sampled_users);
  std::printf("mean worst-kept similarity: %.3f\n",
              mean_kth_score(engine.graph()));
  return 0;
}
