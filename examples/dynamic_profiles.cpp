// Dynamic-profiles example: the paper's phase 5 in action.
//
// "User profiles change over time": every iteration, a slice of users
// drifts toward a different taste community through queued updates (the
// lazy queue q). The KNN graph tracks the drift — watch the migrated
// users' neighbourhoods flip to the new community.
//
// Usage: dynamic_profiles [--users=N] [--movers=N]
#include <cstdio>

#include "core/engine.h"
#include "core/metrics.h"
#include "profiles/generators.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

namespace {

/// Fraction of `user`'s KNN edges pointing into `cluster`.
double affinity(const KnnGraph& graph, VertexId user,
                const std::vector<std::uint32_t>& labels,
                std::uint32_t cluster) {
  const auto list = graph.neighbors(user);
  if (list.empty()) return 0.0;
  std::size_t hits = 0;
  for (const Neighbor& n : list) hits += labels[n.id] == cluster;
  return static_cast<double>(hits) / static_cast<double>(list.size());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.add_uint("users", "number of users", 2000);
  opts.add_uint("movers", "users that migrate to cluster 1", 20);
  if (!opts.parse(argc, argv)) return 0;
  const auto n = static_cast<VertexId>(opts.get_uint("users"));
  const auto movers = static_cast<VertexId>(opts.get_uint("movers"));
  const std::uint32_t clusters = 10;

  Rng rng(99);
  ClusteredGenConfig gen;
  gen.base.num_users = n;
  gen.base.num_items = 1000;
  gen.num_clusters = clusters;
  auto profiles = clustered_profiles(gen, rng);
  const auto labels = planted_clusters(n, clusters);

  EngineConfig config;
  config.k = 10;
  config.num_partitions = 8;
  KnnEngine engine(config, std::move(profiles));
  engine.run(10, 0.01);

  // Pick movers from cluster 0 (users 0, 10, 20, ... under round-robin).
  std::vector<VertexId> moving;
  for (VertexId u = 0; moving.size() < movers && u < n; u += clusters) {
    moving.push_back(u);
  }
  double before = 0;
  for (VertexId u : moving) before += affinity(engine.graph(), u, labels, 1);
  std::printf("before drift: movers' mean affinity to cluster 1 = %.3f\n",
              before / static_cast<double>(moving.size()));

  // Queue the drift: each mover's profile becomes a cluster-1 profile.
  // Updates sit in the queue (lazy) until the next iteration's phase 5.
  Rng drift_rng(100);
  ClusteredGenConfig target = gen;
  target.base.num_users = 1;
  for (VertexId u : moving) {
    // Generate one fresh cluster-1-style profile (user id 1 maps to
    // cluster 1 under round-robin labelling).
    auto fresh = clustered_profiles(target, drift_rng);  // cluster of "user 0"
    ProfileUpdate update;
    update.kind = ProfileUpdate::Kind::Replace;
    update.user = u;
    // Shift the generated cluster-0 block items into cluster 1's block.
    SparseProfile shifted;
    const ItemId block = gen.base.num_items / clusters;
    for (const ProfileEntry& e : fresh[0].entries()) {
      shifted.set((e.item + block) % gen.base.num_items, e.weight);
    }
    update.profile = std::move(shifted);
    engine.update_queue().push(std::move(update));
  }
  std::printf("queued %zu profile replacements (applied lazily in "
              "phase 5)\n", moving.size());

  // Iterate: phase 5 applies the queue, later iterations re-route edges.
  for (int iter = 0; iter < 12; ++iter) {
    const IterationStats s = engine.run_iteration();
    double now = 0;
    for (VertexId u : moving) now += affinity(engine.graph(), u, labels, 1);
    std::printf("iteration %2u: updates applied=%zu, movers' cluster-1 "
                "affinity=%.3f, change rate=%.4f\n",
                s.iteration, s.profile_updates_applied,
                now / static_cast<double>(moving.size()), s.change_rate);
  }
  std::printf("expected: affinity climbs toward 1.0 as the KNN graph "
              "follows the profile drift.\n");
  return 0;
}
