#!/usr/bin/env python3
"""Merge `bench_* --json` outputs into one bench_results.json and emit a
markdown summary for CI.

The three perf-tracked benches (bench_table1, bench_phases, bench_threads)
print a single JSON object on stdout when run with --json. The CI bench job
captures each into a file, then runs:

    tools/bench_to_json.py --out bench_results.json t1.json ph.json th.json

which writes the merged machine-readable record (keyed by each bench's
"bench" field) and prints a markdown summary to stdout — CI appends that to
$GITHUB_STEP_SUMMARY so hot-path regressions are visible on every PR.

Only the standard library is used.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if "bench" not in data:
        raise ValueError(f"{path}: missing 'bench' key (not a --json dump?)")
    return data


def summarize_table1(d, out):
    out.append("### bench_table1 — PI-graph load/unload operations")
    out.append("")
    out.append("| Dataset | Nodes | Seq | High-Low | Low-High | LH/Seq |")
    out.append("|---|---:|---:|---:|---:|---:|")
    for row in d.get("datasets", []):
        out.append(
            "| {name} | {nodes} | {seq} | {high_low} | {low_high} "
            "| {lh:.1%} |".format(lh=row["lh_over_seq"], **row))
    out.append("")


def summarize_phases(d, out):
    out.append(
        "### bench_phases — five-phase breakdown "
        f"(n={d.get('users')}, k={d.get('k')}, m={d.get('partitions')})")
    out.append("")
    out.append("| iter | P1 | P2 | P3 | P4 (score/merge) | P5 | total s "
               "| change rate |")
    out.append("|---:|---:|---:|---:|---:|---:|---:|---:|")
    for it in d.get("iterations", []):
        out.append(
            "| {iter} | {partition_s:.3f} | {hash_s:.3f} | {pi_graph_s:.3f} "
            "| {knn_s:.3f} ({knn_score_s:.3f}/{knn_merge_s:.3f}) "
            "| {update_s:.3f} | {total_s:.3f} | {change_rate:.4f} |".format(
                **it))
    cum = d.get("cumulative")
    if cum:
        out.append("")
        out.append(
            "cumulative: total **{total_s:.3f} s** "
            "(P4 knn {knn_s:.3f} s)".format(**cum))
    kernels = d.get("kernels", [])
    if kernels:
        out.append("")
        out.append(
            "#### Phase-4 kernel comparison "
            f"(host backend: {d.get('kernel_backend', '?')}, "
            f"{kernels[0].get('iters', '?')} iters each)")
        out.append("")
        out.append("| kernel | backend | knn s | score s | speedup "
                   "| checksum |")
        out.append("|---|---|---:|---:|---:|---|")
        for row in kernels:
            out.append(
                "| {name} | {backend} | {knn_s:.3f} | {knn_score_s:.3f} "
                "| {speedup:.2f}x | `{checksum}` |".format(**row))
    out.append("")


def summarize_threads(d, out):
    out.append(
        "### bench_threads — phase-4 thread sweep "
        f"(n={d.get('users')}, k={d.get('k')})")
    out.append("")
    out.append("| threads | phase4 s | score s | merge s | speedup |")
    out.append("|---:|---:|---:|---:|---:|")
    for row in d.get("results", []):
        label = (f"auto({row['threads_used']})"
                 if row["threads"] == 0 else str(row["threads"]))
        out.append(
            "| {label} | {phase4_s:.3f} | {score_s:.3f} | {merge_s:.3f} "
            "| {speedup:.2f}x |".format(label=label, **row))
    out.append("")


def summarize_shards(d, out):
    out.append(
        "### bench_shards — sharded-driver sweep "
        f"(n={d.get('users')}, k={d.get('k')}, iters={d.get('iters')})")
    out.append("")
    out.append("| shards | threads/shard | wall s | process wall s "
               "| persistent wall s | cpu s | speedup | max shard wall s "
               "| identical | proc identical | persistent identical "
               "| round trips | tx MiB | rx MiB | profile reads |")
    out.append("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:"
               "|---:|---:|---:|---:|")

    def optional(row, key, fmt="{:.3f}"):
        return fmt.format(row[key]) if key in row else "-"

    def optional_flag(row, key):
        if key not in row:
            return "-"
        return "yes" if row[key] else "**NO**"

    def optional_mib(row, key):
        if key not in row:
            return "-"
        return "{:.2f}".format(row[key] / (1024.0 * 1024.0))

    for row in d.get("results", []):
        max_wall = max(row.get("per_shard_wall_s", [0.0]) or [0.0])
        out.append(
            "| {shards} | {threads_per_shard} | {wall_s:.3f} "
            "| {proc_wall} | {pers_wall} | {cpu_s:.3f} | {speedup:.2f}x "
            "| {max_wall:.3f} | {ident} | {proc_ident} | {pers_ident} "
            "| {round_trips} | {tx_mib} | {rx_mib} | {prof_reads} "
            "|".format(
                max_wall=max_wall,
                ident="yes" if row.get("identical") else "**NO**",
                proc_wall=optional(row, "process_wall_s"),
                pers_wall=optional(row, "persistent_wall_s"),
                proc_ident=optional_flag(row, "process_identical"),
                pers_ident=optional_flag(row, "persistent_identical"),
                round_trips=optional(row, "persistent_round_trips", "{}"),
                tx_mib=optional_mib(row, "persistent_bytes_tx"),
                rx_mib=optional_mib(row, "persistent_bytes_rx"),
                prof_reads=optional(row, "persistent_profile_reads", "{}"),
                **row))
    out.append("")


def summarize_serve(d, out):
    r = d.get("results", {})
    out.append(
        "### bench_serve — online serving under a churning engine "
        f"(n={d.get('users')}, k={d.get('k')}, "
        f"threads={d.get('query_threads')}, search_l={d.get('search_l')})")
    out.append("")
    out.append("| path | queries | p50 ms | p99 ms | QPS |")
    out.append("|---|---:|---:|---:|---:|")
    for path in ("topk", "adhoc"):
        row = r.get(path, {})
        out.append(
            "| {path} | {queries} | {p50_ms:.4f} | {p99_ms:.4f} "
            "| {qps:.0f} |".format(path=path, **row))
    out.append("")
    out.append(
        "recall@{k}: **{recall:.4f}** ({rq} queries) · "
        "indexed top_k exact: {exact} · "
        "{snaps} snapshots published".format(
            k=d.get("k"), recall=r.get("recall", 0.0),
            rq=r.get("recall_queries"),
            exact="yes" if r.get("topk_exact") else "**NO**",
            snaps=r.get("snapshots_published")))
    out.append("")


def summarize_workloads(d, out):
    out.append(
        "### bench_workloads — workload-zoo differential sweep "
        f"(n={d.get('users')}, items={d.get('items')}, k={d.get('k')}, "
        f"iters={d.get('iters')})")
    out.append("")
    out.append("| workload | serial s | threaded s | shard s | process s "
               "| persistent s | modes identical | grid cells | grid identical |")
    out.append("|---|---:|---:|---:|---:|---:|---:|---:|---:|")
    for row in d.get("results", []):
        walls = {m["mode"]: m["wall_s"] for m in row.get("modes", [])}
        out.append(
            "| {name} | {serial:.3f} | {threaded:.3f} | {shard:.3f} "
            "| {process:.3f} | {persistent:.3f} | {ident} | {cells} "
            "| {grid_ident} |".format(
                name=row["workload"],
                serial=walls.get("serial", 0.0),
                threaded=walls.get("threaded", 0.0),
                shard=walls.get("shard-thread", 0.0),
                process=walls.get("shard-process", 0.0),
                persistent=walls.get("shard-persistent", 0.0),
                ident="yes" if row.get("identical") else "**NO**",
                cells=len(row.get("grid", [])),
                grid_ident="yes" if row.get("grid_identical") else "**NO**"))
    out.append("")


SUMMARIZERS = {
    "table1": summarize_table1,
    "phases": summarize_phases,
    "threads": summarize_threads,
    "shards": summarize_shards,
    "serve": summarize_serve,
    "workloads": summarize_workloads,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="per-bench --json output files")
    parser.add_argument("--out", default="bench_results.json",
                        help="merged JSON output path")
    parser.add_argument("--no-summary", action="store_true",
                        help="skip the markdown summary on stdout")
    args = parser.parse_args()

    merged = {"benches": {}}
    for path in args.inputs:
        data = load(path)
        name = data["bench"]
        if name in merged["benches"]:
            raise ValueError(f"duplicate bench '{name}' from {path}")
        merged["benches"][name] = data

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")

    if not args.no_summary:
        lines = ["## Benchmark results", ""]
        for name, data in merged["benches"].items():
            summarizer = SUMMARIZERS.get(name)
            if summarizer:
                summarizer(data, lines)
            else:
                lines.append(f"### {name}")
                lines.append("```json")
                lines.append(json.dumps(data, indent=2))
                lines.append("```")
                lines.append("")
        try:
            print("\n".join(lines))
        except BrokenPipeError:  # e.g. piped into head; the .json is written
            pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
