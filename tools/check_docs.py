#!/usr/bin/env python3
"""Check that the repo's markdown docs stay in sync with the tree.

Three classes of drift, all of which have bitten hard-coded docs before:

1. Broken relative links: every `[text](path)` in the checked markdown
   files must point at an existing file or directory (external http(s)
   links and pure #anchors are skipped; `path#anchor` checks the file).
2. Doc/test-name drift: every `ctest -R <name>` / `ctest -L <label>`
   selector quoted in the docs must still match a registered test name /
   label. Pass --ctest-list / --ctest-labels with the output of
   `ctest -N` and `ctest --print-labels` (run from the build dir) to
   enable this check; without them only links are checked.
3. Doc/CLI-flag drift: every `--flag` the docs attribute to knnpc_run —
   a flag on a quoted `knnpc_run ...` command line (including backslash
   continuations) or a backticked `--flag` in a markdown table whose
   header row contains "Flag" — must exist in `knnpc_run --help`. Pass
   --cli-help with the captured help output to enable this check.

Usage (CI docs job):
    ctest --test-dir build -N > /tmp/ctest_n.txt
    ctest --test-dir build --print-labels > /tmp/ctest_labels.txt
    build/tools/knnpc_run --help > /tmp/knnpc_run_help.txt
    tools/check_docs.py README.md ARCHITECTURE.md \
        --ctest-list /tmp/ctest_n.txt --ctest-labels /tmp/ctest_labels.txt \
        --cli-help /tmp/knnpc_run_help.txt

Only the standard library is used. Exit code 0 = docs in sync.
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CTEST_R_RE = re.compile(r"ctest[^|\n`]*?-R\s+(\S+)")
CTEST_L_RE = re.compile(r"ctest[^|\n`]*?-L(?:E)?\s+(\S+)")
TEST_LINE_RE = re.compile(r"Test\s+#\d+:\s+(\S+)")
FLAG_RE = re.compile(r"--([A-Za-z0-9][A-Za-z0-9-]*)")
BACKTICK_FLAG_RE = re.compile(r"`--([A-Za-z0-9][A-Za-z0-9-]*)")
HELP_FLAG_RE = re.compile(r"^\s+--([A-Za-z0-9][A-Za-z0-9-]*)", re.MULTILINE)


def check_links(doc: pathlib.Path, errors: list) -> None:
    root = doc.parent
    for lineno, line in enumerate(doc.read_text().splitlines(), 1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (root / path).exists():
                errors.append(f"{doc}:{lineno}: broken link -> {target}")


def collect_cli_flags(doc: pathlib.Path):
    """Yields (lineno, flag) for every flag the doc attributes to knnpc_run.

    Two sources:
    - command lines mentioning `knnpc_run` inside fenced code blocks,
      plus their backslash continuation lines (the quickstart blocks);
      prose that merely *talks about* knnpc_run is not a command line;
    - backticked `--flag` tokens in rows of markdown tables whose header
      row contains the word "Flag" (the flag-reference tables).
    """
    lines = doc.read_text().splitlines()
    in_fence = False
    in_command = False
    in_flag_table = False
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            in_command = False
            continue
        if in_fence:
            if "knnpc_run" in line or in_command:
                for flag in FLAG_RE.findall(line):
                    yield lineno, flag
                in_command = stripped.endswith("\\")
            continue
        if stripped.startswith("|"):
            if "flag" in stripped.lower() and not in_flag_table:
                in_flag_table = True
            elif in_flag_table and not set(stripped) <= set("|-: "):
                for flag in BACKTICK_FLAG_RE.findall(line):
                    yield lineno, flag
        else:
            in_flag_table = False


def collect_selectors(docs) -> tuple:
    regexes, labels = [], []
    for doc in docs:
        text = doc.read_text()
        for match in CTEST_R_RE.findall(text):
            regexes.append((doc, match.strip("`'\",.)")))
        for match in CTEST_L_RE.findall(text):
            labels.append((doc, match.strip("`'\",.)")))
    return regexes, labels


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("docs", nargs="+", help="markdown files to check")
    parser.add_argument("--ctest-list",
                        help="output of `ctest -N` (enables -R checking)")
    parser.add_argument("--ctest-labels",
                        help="output of `ctest --print-labels` "
                             "(enables -L checking)")
    parser.add_argument("--cli-help",
                        help="output of `knnpc_run --help` (enables "
                             "CLI-flag checking)")
    args = parser.parse_args()

    errors = []
    docs = [pathlib.Path(d) for d in args.docs]
    for doc in docs:
        if not doc.exists():
            errors.append(f"{doc}: file not found")
    docs = [d for d in docs if d.exists()]

    for doc in docs:
        check_links(doc, errors)

    regexes, labels = collect_selectors(docs)
    if args.ctest_list:
        names = TEST_LINE_RE.findall(
            pathlib.Path(args.ctest_list).read_text())
        if not names:
            errors.append(f"{args.ctest_list}: no tests found in ctest -N "
                          "output (wrong file?)")
        for doc, regex in regexes:
            try:
                pattern = re.compile(regex)
            except re.error:
                errors.append(f"{doc}: invalid ctest -R regex '{regex}'")
                continue
            if not any(pattern.search(name) for name in names):
                errors.append(
                    f"{doc}: `ctest -R {regex}` matches no registered test "
                    f"({len(names)} known)")
    if args.ctest_labels:
        # `ctest --print-labels` output: a "Test project" header, an
        # "All Labels:" line, then one indented label per line.
        known = {
            line.strip()
            for line in pathlib.Path(args.ctest_labels).read_text()
                .splitlines()
            if line.startswith((" ", "\t")) and line.strip()
        }
        for doc, label in labels:
            if label not in known:
                errors.append(
                    f"{doc}: `ctest -L {label}` names unknown label "
                    f"(known: {sorted(known)})")

    flags_checked = 0
    if args.cli_help:
        known_flags = set(
            HELP_FLAG_RE.findall(pathlib.Path(args.cli_help).read_text()))
        if not known_flags:
            errors.append(f"{args.cli_help}: no flags found in --help "
                          "output (wrong file?)")
        known_flags.add("help")  # the help printer never lists itself
        for doc in docs:
            for lineno, flag in collect_cli_flags(doc):
                flags_checked += 1
                if flag not in known_flags:
                    errors.append(
                        f"{doc}:{lineno}: `--{flag}` is not a knnpc_run "
                        "flag (see --help)")

    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        checked = ", ".join(str(d) for d in docs)
        print(f"docs in sync: {checked} "
              f"({len(regexes)} -R and {len(labels)} -L selectors, "
              f"{flags_checked} CLI flags checked)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
