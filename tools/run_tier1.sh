#!/usr/bin/env bash
# Runs the exact tier-1 verify command from ROADMAP.md, from a clean tree or
# an existing build directory. Any argument trouble or failure exits nonzero.
#
# Usage: tools/run_tier1.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"

cd "${repo_root}"
cmake -B "${build_dir}" -S .
cmake --build "${build_dir}" -j
cd "${build_dir}"
ctest --output-on-failure -j
