// knnpc_run — the full command-line driver for the out-of-core KNN engine.
//
// Feeds any combination of inputs through the five-phase pipeline and
// reports per-iteration statistics, exposing every EngineConfig knob:
//
//   knnpc_run --ratings=ratings.csv --k=10 --partitions=32
//   knnpc_run --users=20000 --clusters=50 --heuristic=cost-aware
//             --partitioner=greedy --threads=8 --device=hdd --csv
//   knnpc_run --users=50000 --shards=4 --checkpoint --workdir=/tmp/run
//   knnpc_run --users=50000 --shards=4 --worker-mode=process
//   knnpc_run --users=50000 --shards=4 --iters=10 --worker-mode=persistent
//   knnpc_run --worker-agent=127.0.0.1:7070 --agent-workdir=/tmp/agent
//   knnpc_run --users=50000 --shards=4 --worker-mode=persistent \
//             --worker-endpoint=127.0.0.1:7070
//
// With --csv the per-iteration table is machine-readable. --shards=S runs
// the sharded driver (core/shard_driver.h); the KNN output is
// bit-identical to --shards=1 for any S (the final checksum on stderr
// makes that easy to verify). --worker-mode=process promotes the shard
// workers from threads to supervised child processes (this same binary,
// re-executed in the hidden --shard-worker role) — same checksum again.
// --worker-mode=persistent keeps those processes alive across iterations
// and drives them over pipes with per-iteration deltas, amortising the
// spawn cost on multi-iteration runs — same checksum once more.
// --worker-endpoint moves those persistent workers behind worker-agent
// processes (started with --worker-agent on each machine) and the
// commands ride TCP instead of pipes — same checksum over the network,
// kill-a-remote-worker-mid-run included.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "core/convergence.h"
#include "core/engine.h"
#include "core/shard_driver.h"
#include "core/stats_io.h"
#include "core/worker_agent.h"
#include "graph/knn_graph_io.h"
#include "serve/knn_server.h"
#include "util/ipc_channel.h"
#include "util/timer.h"
#include "profiles/generators.h"
#include "profiles/ratings_io.h"
#include "util/logging.h"
#include "util/options.h"
#include "util/rng.h"

using namespace knnpc;

namespace {

/// Splits a comma-separated flag value ("h1:p1,h2:p2"); empty segments
/// (trailing or doubled commas) are skipped, so "h1:p1," and
/// "h1:p1,,h2:p2" parse the same as their tidy forms.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < value.size()) {
    std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    if (comma > start) out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Process-mode shard workers re-execute this binary; the worker role
  // must win before the option parser sees the hidden flags.
  if (const auto worker_exit = maybe_run_shard_worker(argc, argv)) {
    return *worker_exit;
  }
  Options opts;
  opts.add_string("ratings", "rating file; empty = synthetic profiles", "");
  opts.add_uint("ratings-budget-mb",
                "out-of-core ratings ingestion: stream --ratings through "
                "sorted spill runs under this memory budget instead of "
                "loading it whole (0 = in-memory load)",
                0);
  opts.add_uint("users", "synthetic user count", 10000);
  opts.add_uint("items", "synthetic item count", 2000);
  opts.add_uint("clusters", "planted clusters in synthetic profiles", 40);
  opts.add_uint("k", "neighbours per user", 10);
  opts.add_uint("partitions", "partition count m", 16);
  opts.add_string("partitioner", "range | hash | degree-range | greedy", "range");
  opts.add_string("heuristic",
                  "sequential | high-low | low-high | random | "
                  "greedy-resident | dynamic-degree | cost-aware",
                  "low-high");
  opts.add_string("measure",
                  "cosine | jaccard | dice | overlap | common | inv-euclid | pearson | adj-cosine",
                  "cosine");
  opts.add_uint("slots", "resident partition slots", 2);
  opts.add_uint("threads", "phase-4 threads (0 = auto for large runs)", 0);
  opts.add_uint("shards",
                "engine workers, one per user shard (1 = serial engine, "
                "0 = auto for large runs)",
                1);
  opts.add_string("shard-partitioner",
                  "how users are split into shards (range | hash | "
                  "degree-range | greedy | pair-affinity)",
                  "range");
  opts.add_string("worker-mode",
                  "how shard workers execute (thread | process | "
                  "persistent)",
                  "thread");
  opts.add_double("worker-timeout",
                  "process/persistent modes: seconds one worker wave (or "
                  "wave command) may run before the worker is killed and "
                  "retried (< 0 = no deadline)",
                  600.0);
  opts.add_string("worker-endpoint",
                  "distributed persistent mode: comma-separated worker-"
                  "agent endpoints (host:port); shards are split across "
                  "them in contiguous balanced groups",
                  "");
  opts.add_double("agent-timeout",
                  "distributed mode: seconds for agent connects and each "
                  "control round-trip (sync, spool relay, remote kill)",
                  30.0);
  opts.add_string("shard-stats-json",
                  "with --shards > 1: write per-shard worker stats "
                  "(supervision, channel traffic, distributed sync "
                  "counters) to this file",
                  "");
  opts.add_string("worker-agent",
                  "run as a worker agent on host:port (serves remote "
                  "drivers; all other engine flags are ignored)",
                  "");
  opts.add_string("agent-workdir",
                  "worker agent: root directory for per-run files "
                  "(required with --worker-agent)",
                  "");
  opts.add_string("agent-port-file",
                  "worker agent: write the bound port here atomically "
                  "(how launchers learn an ephemeral --worker-agent=host:0 "
                  "port)",
                  "");
  opts.add_uint("iters", "max iterations", 15);
  opts.add_double("delta", "convergence threshold on change rate", 0.01);
  opts.add_string("device", "none | hdd | ssd | nvme (I/O cost model)",
                  "none");
  opts.add_string("workdir", "partition/shard directory; empty = scratch",
                  "");
  opts.add_flag("reverse", "admit reverse candidates");
  opts.add_double("rho", "candidate sample rate", 1.0);
  opts.add_uint("repartition-every", "phase-1 period", 1);
  opts.add_flag("mmap", "mmap partition files");
  opts.add_flag("spill-scores", "spill phase-4 scores to disk");
  opts.add_string("kernel",
                  "phase-4 similarity kernel backend (auto | scalar | "
                  "simd); KNNPC_KERNEL overrides auto",
                  "auto");
  opts.add_flag("quantize-profiles",
                "score phase 4 over u16-quantized profile weights "
                "(halves the flat weight payload; not bit-identical to "
                "f32 scoring)");
  opts.add_flag("checkpoint", "write checkpoint_latest.knng per iteration");
  opts.add_uint("recall-samples",
                "users sampled for the final recall estimate (0 = skip)",
                0);
  opts.add_flag("serve",
                "publish every iteration to an in-process KnnServer and "
                "run query threads against it while the engine iterates");
  opts.add_uint("serve-threads",
                "concurrent query threads during the run (with --serve)",
                2);
  opts.add_uint("serve-search-l",
                "beam width (candidate-queue budget) for ad-hoc serve "
                "queries (with --serve)",
                64);
  opts.add_uint("serve-queries",
                "ad-hoc queries for the final serve recall estimate "
                "(with --serve)",
                100);
  opts.add_uint("seed", "master seed", 42);
  opts.add_flag("csv", "emit per-iteration rows as CSV");
  opts.add_string("json", "also write the full run stats to this file", "");
  opts.add_string("log", "debug | info | warn | error", "warn");
  if (!opts.parse(argc, argv)) return 0;
  set_log_level(parse_log_level(opts.get_string("log")));

  // Agent role: serve remote drivers until killed; nothing below runs.
  if (!opts.get_string("worker-agent").empty()) {
    WorkerAgentConfig agent_config;
    try {
      const auto [host, port] =
          parse_host_port(opts.get_string("worker-agent"));
      agent_config.host = host;
      agent_config.port = port;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--worker-agent: %s\n", e.what());
      return 2;
    }
    agent_config.work_root = opts.get_string("agent-workdir");
    if (agent_config.work_root.empty()) {
      std::fprintf(stderr, "--worker-agent requires --agent-workdir\n");
      return 2;
    }
    return worker_agent_main(agent_config,
                             opts.get_string("agent-port-file"));
  }

  // Input profiles.
  std::vector<SparseProfile> profiles;
  if (!opts.get_string("ratings").empty()) {
    RatingsData data;
    if (opts.get_uint("ratings-budget-mb") > 0) {
      OutOfCoreIngestConfig ingest;
      ingest.memory_budget_bytes =
          static_cast<std::size_t>(opts.get_uint("ratings-budget-mb")) << 20;
      ingest.work_dir = opts.get_string("workdir");
      const std::string store_path = opts.get_string("ratings") + ".kprs";
      const OutOfCoreIngestStats stats = ingest_ratings_file(
          opts.get_string("ratings"), store_path, ingest);
      std::fprintf(stderr,
                   "ingested %zu lines -> %zu ratings (%zu dup) across %zu "
                   "runs, peak %.1f MiB -> %s\n",
                   stats.lines, stats.ratings, stats.duplicates, stats.runs,
                   static_cast<double>(stats.peak_memory_bytes) / (1 << 20),
                   store_path.c_str());
      data = load_profile_store(store_path);
    } else {
      data = load_ratings_file(opts.get_string("ratings"));
    }
    std::fprintf(stderr, "loaded %zu users / %zu ratings from %s\n",
                 data.profiles.size(), data.num_ratings,
                 opts.get_string("ratings").c_str());
    profiles = std::move(data.profiles);
  } else {
    Rng rng(opts.get_uint("seed") + 1);
    ClusteredGenConfig gen;
    gen.base.num_users = static_cast<VertexId>(opts.get_uint("users"));
    gen.base.num_items = static_cast<ItemId>(opts.get_uint("items"));
    gen.num_clusters = static_cast<std::uint32_t>(opts.get_uint("clusters"));
    profiles = clustered_profiles(gen, rng);
  }

  EngineConfig config;
  config.k = static_cast<std::uint32_t>(opts.get_uint("k"));
  config.num_partitions =
      static_cast<PartitionId>(opts.get_uint("partitions"));
  config.partitioner = opts.get_string("partitioner");
  config.heuristic = opts.get_string("heuristic");
  config.measure = parse_similarity(opts.get_string("measure"));
  config.memory_slots = static_cast<std::size_t>(opts.get_uint("slots"));
  config.threads = static_cast<std::uint32_t>(opts.get_uint("threads"));
  config.io_model = IoModel::parse(opts.get_string("device"));
  config.work_dir = opts.get_string("workdir");
  config.include_reverse = opts.get_flag("reverse");
  config.sample_rate = opts.get_double("rho");
  config.repartition_every =
      static_cast<std::uint32_t>(opts.get_uint("repartition-every"));
  config.storage_mode = opts.get_flag("mmap") ? PartitionStore::Mode::Mmap
                                              : PartitionStore::Mode::Read;
  config.spill_scores = opts.get_flag("spill-scores");
  config.kernel = opts.get_string("kernel");
  config.quantize_profiles = opts.get_flag("quantize-profiles");
  config.checkpoint = opts.get_flag("checkpoint");
  config.seed = opts.get_uint("seed");

  const InMemoryProfileStore snapshot{profiles};

  // --shards != 1 routes through the sharded driver; both paths expose
  // the same per-iteration IterationStats shape.
  const auto shards = static_cast<std::uint32_t>(opts.get_uint("shards"));
  std::unique_ptr<KnnEngine> engine;
  std::unique_ptr<ShardedKnnEngine> sharded;
  if (shards == 1) {
    engine = std::make_unique<KnnEngine>(config, std::move(profiles));
  } else {
    ShardConfig shard_config;
    shard_config.shards = shards;
    shard_config.shard_partitioner = opts.get_string("shard-partitioner");
    shard_config.worker_mode =
        parse_worker_mode(opts.get_string("worker-mode"));
    shard_config.worker_timeout_s = opts.get_double("worker-timeout");
    shard_config.worker_endpoints =
        split_csv(opts.get_string("worker-endpoint"));
    shard_config.agent_timeout_s = opts.get_double("agent-timeout");
    sharded = std::make_unique<ShardedKnnEngine>(config, shard_config,
                                                 std::move(profiles));
    std::fprintf(stderr, "sharded driver: %u workers x %u threads (%s "
                         "mode%s)\n",
                 sharded->num_shards(), sharded->threads_per_shard(),
                 worker_mode_name(shard_config.worker_mode),
                 shard_config.worker_endpoints.empty() ? ""
                                                       : ", distributed");
  }
  // Per-shard stats are retained only when something will read them
  // (--shard-stats-json) — a long run's per-worker vectors are not free.
  std::vector<ShardedIterationStats> shard_iterations;
  const bool keep_shard_stats =
      sharded != nullptr && !opts.get_string("shard-stats-json").empty();
  auto step = [&]() -> IterationStats {
    if (engine) return engine->run_iteration();
    ShardedIterationStats stats = sharded->run_iteration();
    IterationStats merged = stats.merged;
    if (keep_shard_stats) shard_iterations.push_back(std::move(stats));
    return merged;
  };
  const auto graph = [&]() -> const KnnGraph& {
    return engine ? engine->graph() : sharded->graph();
  };

  // --serve: hook a KnnServer into the iteration loop and hammer it with
  // query threads while the engine churns underneath. The server outlives
  // the query threads (joined below) but is only *published to* while the
  // loop runs, so declaring it here is safe.
  const bool serve = opts.get_flag("serve");
  ServeConfig serve_config;
  serve_config.measure = config.measure;
  serve_config.search_l =
      static_cast<std::uint32_t>(opts.get_uint("serve-search-l"));
  KnnServer server(serve_config);
  std::atomic<bool> serve_stop{false};
  std::atomic<std::uint64_t> serve_topk_queries{0};
  std::atomic<std::uint64_t> serve_adhoc_queries{0};
  std::vector<std::thread> serve_threads;
  if (serve) {
    if (engine) {
      engine->set_snapshot_sink(&server);
    } else {
      sharded->set_snapshot_sink(&server);
    }
    const auto num_threads = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(opts.get_uint("serve-threads"), 1));
    const VertexId n = snapshot.num_users();
    for (std::uint32_t t = 0; t < num_threads; ++t) {
      serve_threads.emplace_back([&, t] {
        Rng rng(config.seed + 9000 + t);
        KnnServer::Reader reader = server.reader();
        while (!serve_stop.load(std::memory_order_relaxed)) {
          if (!server.has_snapshot() || n == 0) {
            std::this_thread::yield();
            continue;
          }
          const auto u = static_cast<VertexId>(rng.next_below(n));
          (void)reader.top_k(u);
          serve_topk_queries.fetch_add(1, std::memory_order_relaxed);
          (void)reader.query(snapshot.get(u), config.k);
          serve_adhoc_queries.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }

  const bool csv = opts.get_flag("csv");
  if (csv) {
    std::printf("iter,partition_s,hash_s,pi_s,knn_s,update_s,total_s,"
                "tuples,pi_pairs,loads,unloads,bytes_read,bytes_written,"
                "modeled_io_us,change_rate\n");
  } else {
    std::printf("%4s | %8s %8s %8s %8s | %9s %8s %10s | %9s\n", "iter",
                "P1 s", "P2 s", "P4 s", "total", "tuples", "PIpairs",
                "loads+unl", "chg rate");
  }

  const auto max_iters = static_cast<std::uint32_t>(opts.get_uint("iters"));
  const double delta = opts.get_double("delta");
  RunStats run;
  Timer run_timer;
  for (std::uint32_t i = 0; i < max_iters; ++i) {
    const IterationStats s = step();
    run.iterations.push_back(s);
    if (csv) {
      std::printf("%u,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%llu,%llu,%llu,%llu,"
                  "%llu,%llu,%.1f,%.6f\n",
                  s.iteration, s.timings.partition_s, s.timings.hash_s,
                  s.timings.pi_graph_s, s.timings.knn_s, s.timings.update_s,
                  s.timings.total(),
                  static_cast<unsigned long long>(s.unique_tuples),
                  static_cast<unsigned long long>(s.pi_pairs),
                  static_cast<unsigned long long>(s.partition_loads),
                  static_cast<unsigned long long>(s.partition_unloads),
                  static_cast<unsigned long long>(s.io.bytes_read),
                  static_cast<unsigned long long>(s.io.bytes_written),
                  s.modeled_io_us, s.change_rate);
    } else {
      std::printf("%4u | %8.3f %8.3f %8.3f %8.3f | %9llu %8llu %10llu | "
                  "%9.4f\n",
                  s.iteration, s.timings.partition_s, s.timings.hash_s,
                  s.timings.knn_s, s.timings.total(),
                  static_cast<unsigned long long>(s.unique_tuples),
                  static_cast<unsigned long long>(s.pi_pairs),
                  static_cast<unsigned long long>(s.partition_loads +
                                                  s.partition_unloads),
                  s.change_rate);
    }
    if (s.change_rate < delta) {
      run.converged = true;
      break;
    }
  }
  run.total_seconds = run_timer.elapsed_seconds();

  if (serve) {
    serve_stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : serve_threads) t.join();
    const VertexId n = snapshot.num_users();
    std::fprintf(stderr,
                 "serve: %llu top_k + %llu ad-hoc queries over %zu threads, "
                 "final snapshot v%llu (iteration %u)\n",
                 static_cast<unsigned long long>(serve_topk_queries.load()),
                 static_cast<unsigned long long>(serve_adhoc_queries.load()),
                 serve_threads.size(),
                 static_cast<unsigned long long>(server.version()),
                 run.iterations.empty() ? 0u
                                        : run.iterations.back().iteration);
    if (server.has_snapshot() && n > 0) {
      KnnServer::Reader reader = server.reader();
      // Indexed path: the published rows must equal the engine's final
      // G(t) bit-for-bit.
      bool exact = true;
      const VertexId probes = std::min<VertexId>(n, 256);
      for (VertexId i = 0; i < probes && exact; ++i) {
        const auto u = static_cast<VertexId>(
            (static_cast<std::uint64_t>(i) * n) / probes);
        const std::vector<Neighbor> row = reader.top_k(u);
        const std::span<const Neighbor> expect = graph().neighbors(u);
        exact = std::equal(row.begin(), row.end(), expect.begin(),
                           expect.end());
      }
      std::fprintf(stderr, "serve top_k exact: %s (%u users probed)\n",
                   exact ? "yes" : "NO", probes);
      // Ad-hoc path: beam recall vs a linear scan of the pinned snapshot.
      const auto queries = static_cast<VertexId>(std::min<std::uint64_t>(
          opts.get_uint("serve-queries"), n));
      if (queries > 0) {
        const KnnServer::Reader::Pin pin = reader.pin();
        std::size_t hits = 0, wanted = 0;
        for (VertexId i = 0; i < queries; ++i) {
          const auto u = static_cast<VertexId>(
              (static_cast<std::uint64_t>(i) * n) / queries);
          const SparseProfile& q = snapshot.get(u);
          const QueryResult got =
              beam_search(*pin.get(), q, config.k, serve_config.search_l);
          std::vector<Neighbor> truth;
          for (VertexId v = 0; v < n; ++v) {
            truth.push_back(
                {v, similarity(config.measure, q, pin->profiles.get(v))});
          }
          std::sort(truth.begin(), truth.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
          truth.resize(std::min<std::size_t>(config.k, truth.size()));
          wanted += truth.size();
          for (const Neighbor& want : truth) {
            for (const Neighbor& have : got.neighbors) {
              if (have.id == want.id) {
                ++hits;
                break;
              }
            }
          }
        }
        std::fprintf(stderr,
                     "serve ad-hoc recall@%u: %.3f (%u queries, "
                     "search_l=%u)\n",
                     config.k,
                     wanted ? static_cast<double>(hits) /
                                  static_cast<double>(wanted)
                            : 0.0,
                     queries, serve_config.search_l);
      }
    }
  }

  if (!opts.get_string("json").empty()) {
    std::ofstream json_out(opts.get_string("json"));
    if (!json_out) {
      std::fprintf(stderr, "cannot open %s\n",
                   opts.get_string("json").c_str());
      return 1;
    }
    write_run_json(json_out, run);
    std::fprintf(stderr, "wrote %s\n", opts.get_string("json").c_str());
  }

  if (keep_shard_stats) {
    std::ofstream stats_out(opts.get_string("shard-stats-json"));
    if (!stats_out) {
      std::fprintf(stderr, "cannot open %s\n",
                   opts.get_string("shard-stats-json").c_str());
      return 1;
    }
    write_shard_workers_json(stats_out, shard_iterations);
    std::fprintf(stderr, "wrote %s\n",
                 opts.get_string("shard-stats-json").c_str());
  }

  const auto samples =
      static_cast<std::size_t>(opts.get_uint("recall-samples"));
  if (samples > 0) {
    const auto recall = sampled_recall(graph(), snapshot,
                                       config.measure, samples, config.seed,
                                       config.threads);
    std::fprintf(stderr, "sampled recall@%u: %.3f +/- %.3f (%zu users)\n",
                 config.k, recall.recall, recall.margin95,
                 recall.sampled_users);
  }

  // Shard/thread-count invariant (see core/shard_driver.h): identical
  // workloads print identical checksums regardless of --shards/--threads.
  std::fprintf(stderr, "graph checksum: %016llx\n",
               static_cast<unsigned long long>(knn_graph_checksum(graph())));
  return 0;
}
