// Tests for graph/generators: exact counts, structural invariants,
// determinism, degree skew. Parameterized sweeps act as property tests.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/datasets.h"
#include "graph/degree_stats.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/types.h"

namespace knnpc {
namespace {

bool has_self_loop(const EdgeList& list) {
  for (const Edge& e : list.edges) {
    if (e.src == e.dst) return true;
  }
  return false;
}

bool is_symmetric(const EdgeList& list) {
  std::unordered_set<std::uint64_t> set;
  for (const Edge& e : list.edges) set.insert(tuple_key({e.src, e.dst}));
  for (const Edge& e : list.edges) {
    if (!set.contains(tuple_key({e.dst, e.src}))) return false;
  }
  return true;
}

// ---------------------------------------------------------- erdos-renyi --

TEST(ErdosRenyiTest, ExactEdgeCountNoLoopsNoDuplicates) {
  Rng rng(1);
  const EdgeList g = erdos_renyi(200, 1500, rng);
  EXPECT_EQ(g.num_vertices, 200u);
  EXPECT_EQ(g.edges.size(), 1500u);
  EXPECT_FALSE(has_self_loop(g));
  EXPECT_TRUE(is_sorted_unique(g));
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(erdos_renyi(50, 100, a).edges, erdos_renyi(50, 100, b).edges);
}

TEST(ErdosRenyiTest, RejectsImpossibleEdgeCount) {
  Rng rng(1);
  EXPECT_THROW(erdos_renyi(3, 7, rng), std::invalid_argument);
}

TEST(ErdosRenyiTest, FullDensityWorks) {
  Rng rng(1);
  const EdgeList g = erdos_renyi(5, 20, rng);  // 5*4 = all ordered pairs
  EXPECT_EQ(g.edges.size(), 20u);
}

// ------------------------------------------------------- barabasi-albert --

TEST(BarabasiAlbertTest, SymmetricNoLoops) {
  Rng rng(2);
  const EdgeList g = barabasi_albert(300, 3, rng);
  EXPECT_EQ(g.num_vertices, 300u);
  EXPECT_FALSE(has_self_loop(g));
  EXPECT_TRUE(is_symmetric(g));
}

TEST(BarabasiAlbertTest, ProducesDegreeSkew) {
  Rng rng(3);
  const Digraph g(barabasi_albert(2000, 3, rng));
  const DegreeSummary s = summarize_degrees(g);
  // Preferential attachment must produce hubs well above the mean.
  EXPECT_GT(static_cast<double>(s.max_total_degree),
            5 * 2.0 * s.mean_out_degree);
  EXPECT_GT(s.degree_gini, 0.2);
}

TEST(BarabasiAlbertTest, RejectsBadParameters) {
  Rng rng(4);
  EXPECT_THROW(barabasi_albert(3, 3, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(10, 0, rng), std::invalid_argument);
}

// -------------------------------------------------------------- chung-lu --

TEST(ChungLuTest, UndirectedExactPairCount) {
  Rng rng(5);
  const EdgeList g = chung_lu(500, 2000, 2.3, rng);
  EXPECT_EQ(g.edges.size(), 4000u);  // symmetric: 2 directed per pair
  EXPECT_FALSE(has_self_loop(g));
  EXPECT_TRUE(is_symmetric(g));
}

TEST(ChungLuTest, HeavyTailPresent) {
  Rng rng(6);
  const Digraph g(chung_lu(3000, 15000, 2.3, rng));
  const DegreeSummary s = summarize_degrees(g);
  EXPECT_GT(s.degree_gini, 0.3);
  EXPECT_GT(s.p99_total_degree, 3 * s.p50_total_degree);
}

TEST(ChungLuDirectedTest, ExactDirectedEdgeCount) {
  Rng rng(7);
  const EdgeList g = chung_lu_directed(1000, 8000, 2.3, rng);
  EXPECT_EQ(g.edges.size(), 8000u);
  EXPECT_FALSE(has_self_loop(g));
  EXPECT_TRUE(is_sorted_unique(g));
}

TEST(ChungLuDirectedTest, DeterministicPerSeed) {
  Rng a(8);
  Rng b(8);
  EXPECT_EQ(chung_lu_directed(200, 900, 2.3, a).edges,
            chung_lu_directed(200, 900, 2.3, b).edges);
}

// -------------------------------------------------------- watts-strogatz --

TEST(WattsStrogatzTest, SymmetricNoLoops) {
  Rng rng(9);
  const EdgeList g = watts_strogatz(200, 4, 0.1, rng);
  EXPECT_FALSE(has_self_loop(g));
  EXPECT_TRUE(is_symmetric(g));
}

TEST(WattsStrogatzTest, ZeroBetaIsRing) {
  Rng rng(10);
  const EdgeList g = watts_strogatz(50, 2, 0.0, rng);
  // Pure ring: every vertex has exactly 2 links on each side -> degree 4.
  const Digraph d(g);
  for (VertexId v = 0; v < 50; ++v) {
    EXPECT_EQ(d.out_degree(v), 4u);
  }
}

// -------------------------------------------- deterministic small shapes --

TEST(RingLatticeTest, DegreesAndWraparound) {
  const EdgeList g = ring_lattice(10, 3);
  const Digraph d(g);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(d.out_degree(v), 3u);
  EXPECT_TRUE(d.out_neighbors(9)[0] == 0u || d.out_neighbors(9)[1] == 0u ||
              d.out_neighbors(9)[2] == 0u);
}

TEST(RingLatticeTest, RejectsKGreaterEqualN) {
  EXPECT_THROW(ring_lattice(5, 5), std::invalid_argument);
}

TEST(StarTest, HubStructure) {
  const Digraph d(star(6));
  EXPECT_EQ(d.out_degree(0), 5u);
  EXPECT_EQ(d.in_degree(0), 5u);
  for (VertexId v = 1; v < 6; ++v) {
    EXPECT_EQ(d.out_degree(v), 1u);
    EXPECT_EQ(d.in_degree(v), 1u);
  }
}

TEST(CompleteTest, AllOrderedPairs) {
  const EdgeList g = complete(6);
  EXPECT_EQ(g.edges.size(), 30u);
  EXPECT_FALSE(has_self_loop(g));
}

// ----------------------------------------------------- table-1 stand-ins --

TEST(Table1DatasetsTest, RegistryHasSixRowsInPaperOrder) {
  const auto& rows = table1_datasets();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].name, "wiki-vote");
  EXPECT_EQ(rows[5].name, "gnutella");
}

TEST(Table1DatasetsTest, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(table1_dataset("email").nodes, 36692u);
  EXPECT_THROW(table1_dataset("facebook"), std::invalid_argument);
}

// Every stand-in must match the paper's node/edge counts exactly and be
// reproducible. Parameterized over all six rows.
class Table1GraphTest : public ::testing::TestWithParam<Table1Dataset> {};

TEST_P(Table1GraphTest, ExactCountsAndDeterminism) {
  const Table1Dataset& row = GetParam();
  const EdgeList g = generate_table1_graph(row);
  EXPECT_EQ(g.num_vertices, row.nodes);
  EXPECT_EQ(g.edges.size(), row.edges);
  const EdgeList again = generate_table1_graph(row);
  EXPECT_EQ(g.edges, again.edges);
}

TEST_P(Table1GraphTest, StandInHasHeavyTail) {
  const Table1Dataset& row = GetParam();
  const Digraph d(generate_table1_graph(row));
  const DegreeSummary s = summarize_degrees(d);
  // The heuristic comparison rests on degree skew; require a clear tail.
  EXPECT_GT(s.degree_gini, 0.25) << row.name;
  EXPECT_GT(static_cast<double>(s.max_total_degree),
            4.0 * s.p50_total_degree)
      << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, Table1GraphTest, ::testing::ValuesIn(table1_datasets()),
    [](const ::testing::TestParamInfo<Table1Dataset>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace knnpc
