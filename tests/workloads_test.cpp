// Workload-zoo tests: registry contracts, per-scenario shape assertions
// (the zoo's value is that each scenario actually has its advertised
// shape), byte-level determinism of workload instantiation, and a
// thread-mode cross-mode differential. Process/persistent replays of the
// zoo live in golden_test (which carries the worker-dispatch main) and
// bench_workloads; this suite links plain gtest_main.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "core/engine.h"
#include "core/shard_driver.h"
#include "graph/knn_graph_io.h"
#include "profiles/update_queue.h"
#include "workloads/workload.h"

namespace knnpc {
namespace {

WorkloadParams small_params() {
  WorkloadParams p;
  p.users = 200;
  p.items = 240;
  p.clusters = 4;
  p.seed = 77;
  return p;
}

// ------------------------------------------------------------- registry --

TEST(WorkloadRegistry, ZooHoldsTheAdvertisedScenarios) {
  const std::vector<std::string> names = workload_names();
  const std::set<std::string> got(names.begin(), names.end());
  const std::set<std::string> expected = {
      "steady-trickle", "zipf-tail",        "flash-crowd",
      "cold-start",     "adversarial-pair", "movielens-synthetic"};
  EXPECT_EQ(got, expected);
  EXPECT_EQ(names.size(), workload_zoo().size());
  for (const WorkloadSpec& spec : workload_zoo()) {
    EXPECT_FALSE(spec.summary.empty()) << spec.name;
    ASSERT_NE(spec.make, nullptr) << spec.name;
  }
}

TEST(WorkloadRegistry, UnknownNameThrowsWithTheKnownList) {
  try {
    make_workload("no-such-workload", small_params());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("steady-trickle"),
              std::string::npos)
        << "the error should list the known workloads: " << e.what();
  }
}

TEST(WorkloadRegistry, BadParamsRejected) {
  WorkloadParams tiny;
  tiny.users = 2;
  EXPECT_THROW(make_workload("steady-trickle", tiny),
               std::invalid_argument);
}

TEST(WorkloadRegistry, EveryWorkloadProducesUsableProfiles) {
  const WorkloadParams p = small_params();
  for (const std::string& name : workload_names()) {
    Workload w = make_workload(name, p);
    EXPECT_EQ(w.name, name);
    ASSERT_EQ(w.profiles.size(), p.users) << name;
    for (VertexId u = 0; u < p.users; ++u) {
      // Cosine needs a norm: no scenario may hand the engine an empty
      // profile, including cold-start's stubs.
      EXPECT_FALSE(w.profiles[u].entries().empty())
          << name << " user " << u;
      for (const ProfileEntry& e : w.profiles[u].entries()) {
        EXPECT_LT(e.item, p.items) << name << " user " << u;
      }
    }
  }
}

// ---------------------------------------------------------- determinism --

bool same_profile(const SparseProfile& a, const SparseProfile& b) {
  const auto ea = a.entries();
  const auto eb = b.entries();
  if (ea.size() != eb.size()) return false;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].item != eb[i].item || ea[i].weight != eb[i].weight) {
      return false;
    }
  }
  return true;
}

TEST(WorkloadDeterminism, SameParamsSameProfilesAndSameUpdateStream) {
  const WorkloadParams p = small_params();
  for (const std::string& name : workload_names()) {
    Workload a = make_workload(name, p);
    Workload b = make_workload(name, p);
    ASSERT_EQ(a.profiles.size(), b.profiles.size()) << name;
    for (std::size_t u = 0; u < a.profiles.size(); ++u) {
      ASSERT_TRUE(same_profile(a.profiles[u], b.profiles[u]))
          << name << " user " << u;
    }
    UpdateQueue qa;
    UpdateQueue qb;
    for (int iter = 0; iter < 4; ++iter) {
      ASSERT_EQ(a.tick(qa, p.users), b.tick(qb, p.users))
          << name << " iteration " << iter;
    }
    ASSERT_EQ(qa.size(), qb.size()) << name;
    for (std::size_t i = 0; i < qa.updates().size(); ++i) {
      const ProfileUpdate& ua = qa.updates()[i];
      const ProfileUpdate& ub = qb.updates()[i];
      ASSERT_EQ(ua.kind, ub.kind) << name << " update " << i;
      ASSERT_EQ(ua.user, ub.user) << name << " update " << i;
      ASSERT_EQ(ua.item, ub.item) << name << " update " << i;
      ASSERT_EQ(ua.value, ub.value) << name << " update " << i;
      ASSERT_TRUE(same_profile(ua.profile, ub.profile))
          << name << " update " << i;
    }
  }
}

TEST(WorkloadDeterminism, SeedChangesTheScenarioInstance) {
  WorkloadParams other = small_params();
  other.seed = small_params().seed + 1;
  const Workload a = make_workload("steady-trickle", small_params());
  const Workload b = make_workload("steady-trickle", other);
  bool any_differs = false;
  for (std::size_t u = 0; u < a.profiles.size(); ++u) {
    if (!same_profile(a.profiles[u], b.profiles[u])) {
      any_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_differs) << "seed must reach the profile generator";
}

// -------------------------------------------------------- scenario shape --

TEST(WorkloadShape, FlashCrowdRewritesHalfTheProfileOfOnePercent) {
  const WorkloadParams p = small_params();
  Workload w = make_workload("flash-crowd", p);

  // Track our own shadow of P(t) by applying the stream, so the 50%-kept
  // claim is checked against the real pre-flash state.
  std::vector<SparseProfile> shadow = w.profiles;

  // Iteration 0: trickle only — no Replace updates.
  UpdateQueue q0;
  w.tick(q0, p.users);
  for (const ProfileUpdate& u : q0.updates()) {
    ASSERT_EQ(u.kind, ProfileUpdate::Kind::SetItem);
    shadow[u.user].set(u.item, u.value);
  }

  // Iteration 1: the flash — exactly 1% of users (>= 1), each a Replace
  // keeping half of its previous entries.
  UpdateQueue q1;
  w.tick(q1, p.users);
  const VertexId crowd = std::max<VertexId>(p.users / 100, 1);
  std::size_t replaces = 0;
  for (const ProfileUpdate& u : q1.updates()) {
    ASSERT_EQ(u.kind, ProfileUpdate::Kind::Replace);
    ++replaces;
    const auto old = shadow[u.user].entries();
    // The upper half (by item order) of the old profile survives the
    // rewrite verbatim as items of the new profile.
    std::set<ItemId> now;
    for (const ProfileEntry& e : u.profile.entries()) now.insert(e.item);
    for (std::size_t i = old.size() / 2; i < old.size(); ++i) {
      EXPECT_TRUE(now.count(old[i].item))
          << "user " << u.user << " lost kept item " << old[i].item;
    }
    // And it IS a ~50% rewrite, not a full replacement: the new profile
    // is at least half the old size and not identical to the old one.
    EXPECT_GE(u.profile.entries().size(), old.size() - old.size() / 2);
    EXPECT_FALSE(same_profile(u.profile, shadow[u.user]));
  }
  EXPECT_EQ(replaces, crowd);

  // Iteration 2: back to the trickle.
  UpdateQueue q2;
  w.tick(q2, p.users);
  for (const ProfileUpdate& u : q2.updates()) {
    EXPECT_EQ(u.kind, ProfileUpdate::Kind::SetItem);
  }
}

TEST(WorkloadShape, ColdStartOnboardsTheStubTailInWaves) {
  const WorkloadParams p = small_params();
  Workload w = make_workload("cold-start", p);
  const VertexId cold = std::max<VertexId>(p.users / 5, 1);
  const VertexId first_cold = p.users - cold;

  // The tail starts as stubs, the head as full profiles.
  for (VertexId u = first_cold; u < p.users; ++u) {
    EXPECT_LE(w.profiles[u].entries().size(), 2u) << "user " << u;
  }
  std::size_t full_head = 0;
  for (VertexId u = 0; u < first_cold; ++u) {
    if (w.profiles[u].entries().size() > 2) ++full_head;
  }
  EXPECT_GT(full_head, first_cold * 9 / 10)
      << "head users should carry full clustered profiles";

  // Each wave onboards cold/4 users, all in the cold tail, with full
  // profiles; over 4+ ticks every cold user is onboarded at least once.
  std::set<VertexId> onboarded;
  const VertexId wave = std::max<VertexId>(cold / 4, 1);
  for (int iter = 0; iter < 4; ++iter) {
    UpdateQueue q;
    w.tick(q, p.users);
    ASSERT_EQ(q.size(), wave) << "iteration " << iter;
    for (const ProfileUpdate& u : q.updates()) {
      ASSERT_EQ(u.kind, ProfileUpdate::Kind::Replace);
      ASSERT_GE(u.user, first_cold);
      ASSERT_LT(u.user, p.users);
      EXPECT_GT(u.profile.entries().size(), 2u)
          << "onboarding must install a full profile";
      onboarded.insert(u.user);
    }
  }
  EXPECT_EQ(onboarded.size(), cold)
      << "4 waves of cold/4 must cover the whole cold tail";
}

TEST(WorkloadShape, AdversarialPairConcentratesMassInOnePartitionPair) {
  const WorkloadParams p = small_params();
  Workload w = make_workload("adversarial-pair", p);
  const VertexId pole = std::max<VertexId>(p.users / 8, 1);
  const ItemId hot =
      std::max<ItemId>(std::min<ItemId>(p.items / 16, p.items), 8);

  // Pole users (the extreme user ranges a range partitioner maps to the
  // first and last partition) rate ONLY the hot block; middle users never
  // touch it. All cross-partition similarity mass therefore lives on the
  // single (first, last) partition pair.
  for (VertexId u = 0; u < p.users; ++u) {
    const bool is_pole = u < pole || u >= p.users - pole;
    for (const ProfileEntry& e : w.profiles[u].entries()) {
      if (is_pole) {
        EXPECT_LT(e.item, hot) << "pole user " << u;
      } else {
        EXPECT_GE(e.item, hot) << "middle user " << u;
      }
    }
  }

  // The update stream keeps reinforcing the poles.
  UpdateQueue q;
  w.tick(q, p.users);
  ASSERT_FALSE(q.empty());
  for (const ProfileUpdate& u : q.updates()) {
    EXPECT_EQ(u.kind, ProfileUpdate::Kind::SetItem);
    EXPECT_TRUE(u.user < pole || u.user >= p.users - pole)
        << "adversarial updates must land on pole users, got " << u.user;
    EXPECT_LT(u.item, hot);
  }
}

TEST(WorkloadShape, ZipfTailIsHeavyTailed) {
  const WorkloadParams p = small_params();
  const Workload w = make_workload("zipf-tail", p);
  std::vector<std::size_t> freq(p.items, 0);
  std::size_t total = 0;
  for (const SparseProfile& profile : w.profiles) {
    for (const ProfileEntry& e : profile.entries()) {
      ++freq[e.item];
      ++total;
    }
  }
  ASSERT_GT(total, 0u);
  std::size_t head = 0;  // first decile of the item space
  for (ItemId i = 0; i < p.items / 10; ++i) head += freq[i];
  std::size_t tail = 0;  // the entire last half
  for (ItemId i = p.items / 2; i < p.items; ++i) tail += freq[i];
  EXPECT_GT(head, tail)
      << "the first decile must out-mass the whole last half "
      << "(head=" << head << ", tail=" << tail << ", total=" << total << ")";
}

TEST(WorkloadShape, SteadyTrickleMatchesTheSharedChurnScript) {
  // steady-trickle is ChurnDriver behind the registry: the same stream
  // must fall out of scripted_churn directly — the dedup contract that
  // golden_test / shard_process_test / bench_churn rely on.
  const WorkloadParams p = small_params();
  Workload w = make_workload("steady-trickle", p);
  ChurnDriver driver(scripted_churn(
      ChurnScenario::Proportional,
      scripted_generator(p.users, p.items, p.clusters), p.seed));
  UpdateQueue from_zoo;
  UpdateQueue from_driver;
  for (int iter = 0; iter < 3; ++iter) {
    w.tick(from_zoo, p.users);
    driver.tick(from_driver, p.users);
  }
  ASSERT_EQ(from_zoo.size(), from_driver.size());
  for (std::size_t i = 0; i < from_zoo.updates().size(); ++i) {
    const ProfileUpdate& a = from_zoo.updates()[i];
    const ProfileUpdate& b = from_driver.updates()[i];
    ASSERT_EQ(a.kind, b.kind) << "update " << i;
    ASSERT_EQ(a.user, b.user) << "update " << i;
    ASSERT_EQ(a.item, b.item) << "update " << i;
    ASSERT_EQ(a.value, b.value) << "update " << i;
    ASSERT_TRUE(same_profile(a.profile, b.profile)) << "update " << i;
  }
}

TEST(WorkloadShape, ScriptedGeneratorKnobsArePinned) {
  // Golden checksums depend on these values; this test is the tripwire
  // that a "harmless" knob change regenerates the corpus knowingly.
  const ClusteredGenConfig gen = scripted_generator(120, 400, 6);
  EXPECT_EQ(gen.base.num_users, 120u);
  EXPECT_EQ(gen.base.num_items, 400u);
  EXPECT_EQ(gen.base.min_items, 15u);
  EXPECT_EQ(gen.base.max_items, 25u);
  EXPECT_EQ(gen.num_clusters, 6u);
  EXPECT_DOUBLE_EQ(gen.in_cluster_prob, 0.9);

  const ChurnConfig trickle = scripted_churn(
      ChurnScenario::Trickle, gen, 1007);
  EXPECT_EQ(trickle.rating_updates_per_iteration, 50u);
  EXPECT_EQ(trickle.drifting_users_per_iteration, 2u);
  EXPECT_EQ(trickle.reset_users_per_iteration, 1u);
  const ChurnConfig heavy = scripted_churn(
      ChurnScenario::Heavy, gen, 1007);
  EXPECT_EQ(heavy.rating_updates_per_iteration, 120u);
  EXPECT_EQ(heavy.drifting_users_per_iteration, 15u);
  EXPECT_EQ(heavy.reset_users_per_iteration, 10u);
}

// -------------------------------------------------- cross-mode (thread) --

std::uint64_t replay_serial(const std::string& name,
                            const WorkloadParams& p,
                            const EngineConfig& config,
                            std::uint32_t iters) {
  Workload w = make_workload(name, p);
  KnnEngine engine(config, std::move(w.profiles));
  for (std::uint32_t i = 0; i < iters; ++i) {
    w.tick(engine.update_queue(), p.users);
    engine.run_iteration();
  }
  return knn_graph_checksum(engine.graph());
}

std::uint64_t replay_sharded(const std::string& name,
                             const WorkloadParams& p,
                             const EngineConfig& config,
                             std::uint32_t shards, std::uint32_t iters) {
  Workload w = make_workload(name, p);
  ShardConfig shard_config;
  shard_config.shards = shards;
  ShardedKnnEngine engine(config, shard_config, std::move(w.profiles));
  for (std::uint32_t i = 0; i < iters; ++i) {
    w.tick(engine.update_queue(), p.users);
    engine.run_iteration();
  }
  return knn_graph_checksum(engine.graph());
}

TEST(WorkloadDifferential, ThreadModesAgreeOnEveryScenario) {
  // The in-process slice of the five-mode differential: serial vs
  // thread-pool vs thread-mode sharding, every zoo scenario. The
  // process/persistent slice runs in golden_test (worker-dispatch main)
  // and bench_workloads.
  WorkloadParams p;
  p.users = 96;
  p.items = 150;
  p.clusters = 3;
  p.seed = 2026;
  EngineConfig config;
  config.k = 4;
  config.num_partitions = 3;
  const std::uint32_t iters = 2;

  for (const std::string& name : workload_names()) {
    const std::uint64_t serial = replay_serial(name, p, config, iters);
    EngineConfig threaded = config;
    threaded.threads = 2;
    EXPECT_EQ(replay_serial(name, p, threaded, iters), serial)
        << name << ": thread pool diverged from serial";
    EXPECT_EQ(replay_sharded(name, p, config, 2, iters), serial)
        << name << ": thread-mode sharding diverged from serial";
  }
}

}  // namespace
}  // namespace knnpc
