// Tests for profiles/similarity: correctness of each measure, edge cases,
// and shared properties (symmetry, range, self-similarity maximality)
// via parameterized sweeps over all measures.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "profiles/generators.h"
#include "profiles/similarity.h"
#include "util/rng.h"

namespace knnpc {
namespace {

SparseProfile prof(std::vector<ProfileEntry> entries) {
  return SparseProfile(std::move(entries));
}

// ----------------------------------------------------- individual measures

TEST(CosineTest, KnownValues) {
  const auto a = prof({{1, 1.0f}, {2, 1.0f}});
  const auto b = prof({{1, 1.0f}, {2, 1.0f}});
  EXPECT_NEAR(cosine_similarity(a, b), 1.0f, 1e-6);
  const auto c = prof({{3, 1.0f}});
  EXPECT_FLOAT_EQ(cosine_similarity(a, c), 0.0f);
  const auto d = prof({{1, 1.0f}});
  EXPECT_NEAR(cosine_similarity(a, d), 1.0f / std::sqrt(2.0f), 1e-6);
}

TEST(CosineTest, EmptyProfileGivesZero) {
  EXPECT_FLOAT_EQ(cosine_similarity(prof({}), prof({{1, 1.0f}})), 0.0f);
  EXPECT_FLOAT_EQ(cosine_similarity(prof({}), prof({})), 0.0f);
}

TEST(CosineTest, ScaleInvariant) {
  const auto a = prof({{1, 1.0f}, {2, 3.0f}});
  const auto b = prof({{1, 2.0f}, {2, 6.0f}});  // 2x scaled
  EXPECT_NEAR(cosine_similarity(a, b), 1.0f, 1e-6);
}

TEST(JaccardTest, KnownValues) {
  const auto a = prof({{1, 1.0f}, {2, 1.0f}, {3, 1.0f}});
  const auto b = prof({{2, 5.0f}, {3, 5.0f}, {4, 5.0f}});
  // intersection 2, union 4.
  EXPECT_FLOAT_EQ(jaccard_similarity(a, b), 0.5f);
  EXPECT_FLOAT_EQ(jaccard_similarity(a, a), 1.0f);
  EXPECT_FLOAT_EQ(jaccard_similarity(a, prof({})), 0.0f);
}

TEST(JaccardTest, IgnoresWeights) {
  const auto a = prof({{1, 0.1f}});
  const auto b = prof({{1, 100.0f}});
  EXPECT_FLOAT_EQ(jaccard_similarity(a, b), 1.0f);
}

TEST(DiceTest, KnownValues) {
  const auto a = prof({{1, 1.0f}, {2, 1.0f}});
  const auto b = prof({{2, 1.0f}, {3, 1.0f}, {4, 1.0f}});
  // 2*1 / (2+3) = 0.4.
  EXPECT_FLOAT_EQ(dice_similarity(a, b), 0.4f);
}

TEST(OverlapTest, KnownValues) {
  const auto a = prof({{1, 1.0f}, {2, 1.0f}});
  const auto b = prof({{1, 1.0f}, {2, 1.0f}, {3, 1.0f}, {4, 1.0f}});
  // intersection 2 / min(2, 4) = 1.
  EXPECT_FLOAT_EQ(overlap_similarity(a, b), 1.0f);
  EXPECT_FLOAT_EQ(overlap_similarity(a, prof({})), 0.0f);
}

TEST(CommonItemsTest, CountsIntersection) {
  const auto a = prof({{1, 1.0f}, {2, 1.0f}, {3, 1.0f}});
  const auto b = prof({{3, 1.0f}, {4, 1.0f}});
  EXPECT_FLOAT_EQ(common_items(a, b), 1.0f);
  EXPECT_FLOAT_EQ(common_items(a, a), 3.0f);
}

TEST(InverseEuclideanTest, KnownValues) {
  const auto a = prof({{1, 3.0f}});
  const auto b = prof({{2, 4.0f}});
  // distance 5 -> 1/6.
  EXPECT_NEAR(inverse_euclidean(a, b), 1.0f / 6.0f, 1e-6);
  EXPECT_FLOAT_EQ(inverse_euclidean(a, a), 1.0f);
  // Two empty profiles: identical -> similarity 1 (documented).
  EXPECT_FLOAT_EQ(inverse_euclidean(prof({}), prof({})), 1.0f);
}

TEST(PearsonTest, PerfectCorrelationMapsToOne) {
  // b = 2a over common items: correlation 1 -> similarity 1.
  const auto a = prof({{1, 1.0f}, {2, 2.0f}, {3, 3.0f}});
  const auto b = prof({{1, 2.0f}, {2, 4.0f}, {3, 6.0f}});
  EXPECT_NEAR(pearson_similarity(a, b), 1.0f, 1e-5);
}

TEST(PearsonTest, PerfectAnticorrelationMapsToZero) {
  const auto a = prof({{1, 1.0f}, {2, 2.0f}, {3, 3.0f}});
  const auto b = prof({{1, 3.0f}, {2, 2.0f}, {3, 1.0f}});
  EXPECT_NEAR(pearson_similarity(a, b), 0.0f, 1e-5);
}

TEST(PearsonTest, InsufficientOverlapIsNeutral) {
  const auto a = prof({{1, 1.0f}, {2, 2.0f}});
  const auto b = prof({{2, 5.0f}, {9, 1.0f}});  // one common item
  EXPECT_FLOAT_EQ(pearson_similarity(a, b), 0.5f);
  EXPECT_FLOAT_EQ(pearson_similarity(a, prof({})), 0.5f);
}

TEST(PearsonTest, ConstantRatingsAreNeutral) {
  // Zero variance over common items: correlation undefined -> 0.5.
  const auto a = prof({{1, 3.0f}, {2, 3.0f}});
  const auto b = prof({{1, 1.0f}, {2, 5.0f}});
  EXPECT_FLOAT_EQ(pearson_similarity(a, b), 0.5f);
}

TEST(AdjustedCosineTest, AgreesWithPearsonOnFullOverlap) {
  // When both profiles cover exactly the same items, the user means equal
  // the common-item means, so the two measures coincide.
  const auto a = prof({{1, 1.0f}, {2, 4.0f}, {3, 2.0f}});
  const auto b = prof({{1, 2.0f}, {2, 5.0f}, {3, 1.0f}});
  EXPECT_NEAR(adjusted_cosine(a, b), pearson_similarity(a, b), 1e-5);
}

TEST(AdjustedCosineTest, MeanCenteringRemovesRatingBias) {
  // b rates everything 2 stars above a with the same *shape*: adjusted
  // cosine sees them as identical tastes.
  const auto a = prof({{1, 1.0f}, {2, 3.0f}, {3, 2.0f}});
  const auto b = prof({{1, 3.0f}, {2, 5.0f}, {3, 4.0f}});
  EXPECT_NEAR(adjusted_cosine(a, b), 1.0f, 1e-5);
  // Plain cosine does not fully align them.
  EXPECT_LT(cosine_similarity(a, b), 1.0f);
}

// ------------------------------------------------------- name round-trip --

TEST(SimilarityNamesTest, ParseAndNameRoundTripOverEveryEnumValue) {
  // kAllSimilarityMeasures is the canonical sweep list; every enum value
  // must round-trip through its name, and no two may share one.
  std::set<std::string> names;
  for (const SimilarityMeasure m : kAllSimilarityMeasures) {
    const std::string name = similarity_name(m);
    EXPECT_EQ(parse_similarity(name), m) << name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(names.size(), kAllSimilarityMeasures.size());
  EXPECT_THROW(parse_similarity("manhattan"), std::invalid_argument);
  EXPECT_THROW(parse_similarity("Cosine"), std::invalid_argument);  // case
}

TEST(SimilarityNamesTest, EveryDocumentedNameParses) {
  // The names the header documents for parse_similarity() — this is the
  // doc/parser drift guard (the docstring once listed only 6 of the 8).
  const char* documented[] = {"cosine",  "jaccard",    "dice",
                              "overlap", "common",     "inv-euclid",
                              "pearson", "adj-cosine"};
  std::set<SimilarityMeasure> parsed;
  for (const char* name : documented) {
    EXPECT_NO_THROW(parsed.insert(parse_similarity(name))) << name;
  }
  EXPECT_EQ(parsed.size(), kAllSimilarityMeasures.size());
}

// -------------------------------------- degenerate-input conventions --
// One assertion per cell of the convention table in similarity.h.

TEST(DegenerateConventionTest, EmptyVersusEmpty) {
  const auto e = prof({});
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Cosine, e, e), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Jaccard, e, e), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Dice, e, e), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Overlap, e, e), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::CommonItems, e, e), 0.0f);
  // Two empties are identical profiles: distance 0 -> similarity 1.
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::InverseEuclid, e, e), 1.0f);
  // Correlation measures have no evidence either way.
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Pearson, e, e), 0.5f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::AdjustedCosine, e, e), 0.5f);
}

TEST(DegenerateConventionTest, EmptyVersusNonEmpty) {
  const auto e = prof({});
  const auto p = prof({{1, 3.0f}, {2, 4.0f}});  // norm 5
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Cosine, e, p), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Jaccard, e, p), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Dice, e, p), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Overlap, e, p), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::CommonItems, e, p), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::InverseEuclid, e, p),
                  1.0f / 6.0f);  // 1 / (1 + ||p||)
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Pearson, e, p), 0.5f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::AdjustedCosine, e, p), 0.5f);
}

TEST(DegenerateConventionTest, SingleCommonItemCorrelationIsNeutral) {
  // One common item can never ground a correlation.
  const auto a = prof({{1, 1.0f}, {5, 2.0f}});
  const auto b = prof({{1, 9.0f}, {7, 3.0f}});
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Pearson, a, b), 0.5f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::AdjustedCosine, a, b), 0.5f);
}

TEST(DegenerateConventionTest, ZeroNormCosineIsZero) {
  // All-zero weights: the SparseProfile constructor drops zero-weight
  // entries, so the profile is empty and cosine's zero-denominator guard
  // reduces to the empty convention (0, never NaN). A *non-empty*
  // zero-norm profile is unrepresentable — the smallest float weight
  // (~1.4e-45) still squares to a nonzero double — so the denom == 0.0
  // check in cosine_similarity is purely defensive.
  const auto z = prof({{1, 0.0f}, {2, 0.0f}});
  EXPECT_TRUE(z.empty());
  const auto p = prof({{1, 1.0f}});
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Cosine, z, p), 0.0f);
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::Cosine, z, z), 0.0f);
}

TEST(DegenerateConventionTest, ZeroVarianceAdjustedCosineIsNeutral) {
  // `a` rates its common items exactly at its own mean: the centred
  // vector is zero, the centred norm is 0, and the convention is 0.5.
  const auto a = prof({{1, 2.0f}, {2, 2.0f}, {3, 2.0f}});
  const auto b = prof({{1, 1.0f}, {2, 5.0f}, {3, 3.0f}});
  EXPECT_FLOAT_EQ(similarity(SimilarityMeasure::AdjustedCosine, a, b), 0.5f);
}

// -------------------------------------------- shared measure properties --

class MeasurePropertyTest
    : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(MeasurePropertyTest, Symmetric) {
  Rng rng(101);
  ProfileGenConfig config;
  config.num_users = 40;
  config.num_items = 100;
  const auto profiles = uniform_profiles(config, rng);
  for (std::size_t i = 0; i + 1 < profiles.size(); i += 2) {
    EXPECT_FLOAT_EQ(similarity(GetParam(), profiles[i], profiles[i + 1]),
                    similarity(GetParam(), profiles[i + 1], profiles[i]));
  }
}

TEST_P(MeasurePropertyTest, NonNegative) {
  Rng rng(103);
  ProfileGenConfig config;
  config.num_users = 40;
  config.num_items = 50;  // dense enough for overlaps
  const auto profiles = uniform_profiles(config, rng);
  for (std::size_t i = 0; i + 1 < profiles.size(); i += 2) {
    EXPECT_GE(similarity(GetParam(), profiles[i], profiles[i + 1]), 0.0f);
  }
}

TEST_P(MeasurePropertyTest, SelfSimilarityIsMaximal) {
  Rng rng(107);
  ProfileGenConfig config;
  config.num_users = 20;
  config.num_items = 100;
  const auto profiles = uniform_profiles(config, rng);
  for (const auto& p : profiles) {
    const float self = similarity(GetParam(), p, p);
    for (const auto& q : profiles) {
      EXPECT_LE(similarity(GetParam(), p, q), self + 1e-5f);
    }
  }
}

TEST_P(MeasurePropertyTest, DisjointProfilesScoreNoHigherThanIdentical) {
  // Weights vary so the correlation measures have signal.
  const auto a = prof({{1, 1.0f}, {2, 2.0f}, {3, 0.5f}});
  const auto b = prof({{10, 1.0f}, {20, 2.0f}});
  EXPECT_LT(similarity(GetParam(), a, b), similarity(GetParam(), a, a));
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, MeasurePropertyTest,
    ::testing::ValuesIn(kAllSimilarityMeasures),
    [](const ::testing::TestParamInfo<SimilarityMeasure>& info) {
      std::string name = similarity_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Clustered profiles must score higher inside a cluster than across —
// the planted ground truth the engine's quality metrics rely on.
TEST(SimilarityStructureTest, InClusterBeatsCrossClusterOnAverage) {
  Rng rng(109);
  ClusteredGenConfig config;
  config.base.num_users = 100;
  config.base.num_items = 500;
  config.base.min_items = 15;
  config.base.max_items = 25;
  config.num_clusters = 5;
  config.in_cluster_prob = 0.9;
  const auto profiles = clustered_profiles(config, rng);
  double intra = 0.0;
  double cross = 0.0;
  std::size_t intra_n = 0;
  std::size_t cross_n = 0;
  for (VertexId a = 0; a < 100; ++a) {
    for (VertexId b = a + 1; b < 100; ++b) {
      const float s = cosine_similarity(profiles[a], profiles[b]);
      if (a % 5 == b % 5) {
        intra += s;
        ++intra_n;
      } else {
        cross += s;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(intra / intra_n, 3.0 * (cross / cross_n));
}

}  // namespace
}  // namespace knnpc
