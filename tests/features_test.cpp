// Tests for the second wave of features: graph-seeded initialisation,
// memory-budget partition sizing, profile compaction, and the
// ResidencyState/LoadUnloadSimulator equivalence property.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/engine.h"
#include "core/metrics.h"
#include "graph/generators.h"
#include "graph/knn_graph.h"
#include "pigraph/heuristics.h"
#include "pigraph/simulator.h"
#include "pigraph/simulator_state.h"
#include "profiles/compact.h"
#include "profiles/generators.h"
#include "util/rng.h"

namespace knnpc {
namespace {

// ------------------------------------------------- graph-seeded warm start

TEST(KnnGraphFromEdgesTest, KeepsExistingNeighborsAndTopsUp) {
  EdgeList list;
  list.num_vertices = 10;
  list.edges = {{0, 1}, {0, 2}, {0, 0}, {0, 1}};  // dup + self loop
  Rng rng(7);
  const KnnGraph g = knn_graph_from_edges(list, 4, rng);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 4u);  // 2 real + 2 random top-ups
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  // Vertex 5 has no out-edges: fully random, still k distinct non-self.
  const auto n5 = g.neighbors(5);
  ASSERT_EQ(n5.size(), 4u);
  std::set<VertexId> seen;
  for (const Neighbor& nb : n5) {
    EXPECT_NE(nb.id, 5u);
    EXPECT_TRUE(seen.insert(nb.id).second);
  }
}

TEST(KnnGraphFromEdgesTest, TruncatesHighOutDegreeToK) {
  const EdgeList s = star(20);  // vertex 0 has 19 out-edges
  Rng rng(9);
  const KnnGraph g = knn_graph_from_edges(s, 5, rng);
  EXPECT_EQ(g.neighbors(0).size(), 5u);
}

TEST(KnnGraphFromEdgesTest, RejectsOutOfRangeEndpoints) {
  EdgeList bad;
  bad.num_vertices = 2;
  bad.edges = {{0, 7}};
  Rng rng(11);
  EXPECT_THROW(knn_graph_from_edges(bad, 2, rng), std::invalid_argument);
}

TEST(KnnGraphFromEdgesTest, WarmStartConvergesFasterThanRandom) {
  Rng rng(13);
  ClusteredGenConfig gen;
  gen.base.num_users = 150;
  gen.base.num_items = 400;
  gen.num_clusters = 6;
  auto profiles = clustered_profiles(gen, rng);

  EngineConfig config;
  config.k = 6;
  config.num_partitions = 4;

  // Cold start.
  KnnEngine cold(config, profiles);
  const RunStats cold_run = cold.run(20, 0.01);

  // Warm start: seed from the cold engine's *converged* graph.
  KnnEngine warm(config, profiles);
  warm.set_initial_graph(cold.graph());
  const RunStats warm_run = warm.run(20, 0.01);
  EXPECT_LT(warm_run.iterations.size(), cold_run.iterations.size());
  EXPECT_LT(warm_run.iterations.front().change_rate,
            cold_run.iterations.front().change_rate);
}

// ------------------------------------------------ partition-count sizing

TEST(PartitionSizingTest, ScalesWithDataOverBudget) {
  // 100 MB of data, 10 MB budget, 2 slots -> at least 20 partitions.
  const PartitionId m =
      suggest_partition_count(100u << 20, 10u << 20, 2, 1000000);
  EXPECT_GE(m, 20u);
  EXPECT_LE(m, 24u);  // not wildly over
}

TEST(PartitionSizingTest, ClampsToUserCountAndOne) {
  EXPECT_EQ(suggest_partition_count(1u << 30, 1u << 10, 2, 5), 5u);
  EXPECT_GE(suggest_partition_count(10, 1u << 30, 2, 100), 1u);
  EXPECT_THROW(suggest_partition_count(1, 0, 2, 10), std::invalid_argument);
}

TEST(PartitionSizingTest, EstimateTracksProfileVolume) {
  std::vector<SparseProfile> small(10, SparseProfile({{1, 1.0f}}));
  std::vector<SparseProfile> big(
      10, SparseProfile({{1, 1.0f}, {2, 1.0f}, {3, 1.0f}, {4, 1.0f}}));
  EXPECT_LT(estimate_data_bytes(small, 5), estimate_data_bytes(big, 5));
  EXPECT_LT(estimate_data_bytes(small, 5), estimate_data_bytes(small, 50));
}

TEST(PartitionSizingTest, SuggestedCountKeepsResidentPairUnderBudget) {
  Rng rng(17);
  ProfileGenConfig gen;
  gen.num_users = 2000;
  gen.num_items = 500;
  const auto profiles = uniform_profiles(gen, rng);
  const std::uint64_t total = estimate_data_bytes(profiles, 10);
  const std::uint64_t budget = total / 5;  // force m > 2
  const PartitionId m =
      suggest_partition_count(total, budget, 2, gen.num_users);
  // Two partitions of total/m must fit in the budget.
  EXPECT_LE(2 * (total / m), budget);
}

// ------------------------------------------------------------- compaction

TEST(CompactionTest, DropsRareItemsAndRenumbersDensely) {
  std::vector<SparseProfile> profiles;
  profiles.emplace_back(
      std::vector<ProfileEntry>{{10, 1.0f}, {20, 1.0f}, {99, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{10, 2.0f}, {20, 2.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{10, 3.0f}});
  CompactionConfig config;
  config.min_item_support = 2;  // 99 appears once -> dropped
  const CompactionResult result = compact_profiles(profiles, config);
  EXPECT_EQ(result.dropped_items, 1u);
  EXPECT_EQ(result.kept_items, (std::vector<ItemId>{10, 20}));
  ASSERT_EQ(result.profiles.size(), 3u);
  // Item 10 -> 0, item 20 -> 1.
  EXPECT_FLOAT_EQ(result.profiles[0].weight(0), 1.0f);
  EXPECT_FLOAT_EQ(result.profiles[0].weight(1), 1.0f);
  EXPECT_FLOAT_EQ(result.profiles[0].weight(2), 0.0f);  // 99 gone
  EXPECT_FLOAT_EQ(result.profiles[2].weight(0), 3.0f);
}

TEST(CompactionTest, DropsUndersizedUsers) {
  std::vector<SparseProfile> profiles;
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {2, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {9, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{9, 1.0f}});
  CompactionConfig config;
  config.min_item_support = 2;   // item 2 (1 user) and... 1:2 users, 9:2
  config.min_profile_size = 2;
  const CompactionResult result = compact_profiles(profiles, config);
  // Items 1 and 9 survive; item 2 dropped. User 0 keeps {1} (size 1 <
  // 2) -> dropped; user 1 keeps {1, 9} -> kept; user 2 keeps {9} -> drop.
  EXPECT_EQ(result.dropped_users, 2u);
  ASSERT_EQ(result.kept_users.size(), 1u);
  EXPECT_EQ(result.kept_users[0], 1u);
}

TEST(CompactionTest, NoopWhenEverythingSupported) {
  Rng rng(19);
  ProfileGenConfig gen;
  gen.num_users = 50;
  gen.num_items = 20;  // dense: every item has many users
  gen.min_items = 10;
  gen.max_items = 15;
  const auto profiles = uniform_profiles(gen, rng);
  const CompactionResult result =
      compact_profiles(profiles, CompactionConfig{});
  EXPECT_EQ(result.dropped_users, 0u);
  EXPECT_EQ(result.profiles.size(), 50u);
}

TEST(CompactionTest, EmptyInput) {
  const CompactionResult result = compact_profiles({}, CompactionConfig{});
  EXPECT_TRUE(result.profiles.empty());
  EXPECT_EQ(result.dropped_items, 0u);
}

TEST(CompactionTest, SinglePassLeavesUndersupportedSurvivors) {
  // The documented single-pass semantics: item support is counted over
  // the *original* users, so dropping user 2 (below min_profile_size)
  // may leave item 9 with just one supporter among the kept users —
  // and that is not a bug under cascade=false.
  std::vector<SparseProfile> profiles;
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {2, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {9, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{9, 1.0f}});
  CompactionConfig config;
  config.min_item_support = 2;
  config.min_profile_size = 2;
  const CompactionResult result = compact_profiles(profiles, config);
  EXPECT_EQ(result.kept_items, (std::vector<ItemId>{1, 9}));
  EXPECT_EQ(result.kept_users, (std::vector<VertexId>{1}));
}

TEST(CompactionTest, CascadeIteratesToFixpoint) {
  // Same input under cascade=true: dropping users 0 and 2 leaves items 1
  // and 9 with one supporter each -> they fall, which empties user 1 ->
  // everything cascades away. The exact counters must still add up.
  std::vector<SparseProfile> profiles;
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {2, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {9, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{9, 1.0f}});
  CompactionConfig config;
  config.min_item_support = 2;
  config.min_profile_size = 2;
  config.cascade = true;
  const CompactionResult result = compact_profiles(profiles, config);
  EXPECT_TRUE(result.kept_users.empty());
  EXPECT_TRUE(result.kept_items.empty());
  EXPECT_EQ(result.dropped_users, 3u);
  EXPECT_EQ(result.dropped_items, 3u);  // items 1, 2, 9
}

TEST(CompactionTest, CascadeStopsAtAStableCore) {
  // A 3-user clique over items {1, 2} is a genuine 2-core; a pendant
  // user + pendant item hang off it and must cascade away without
  // taking the core along.
  std::vector<SparseProfile> profiles;
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {2, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {2, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{1, 1.0f}, {2, 1.0f}});
  profiles.emplace_back(std::vector<ProfileEntry>{{2, 1.0f}, {7, 1.0f}});
  CompactionConfig config;
  config.min_item_support = 2;
  config.min_profile_size = 2;
  config.cascade = true;
  const CompactionResult result = compact_profiles(profiles, config);
  EXPECT_EQ(result.kept_users, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(result.kept_items, (std::vector<ItemId>{1, 2}));
  EXPECT_EQ(result.dropped_users, 1u);
  EXPECT_EQ(result.dropped_items, 1u);  // item 7
}

TEST(CompactionTest, CountersAreExactUnderBothSemantics) {
  // Property: dropped + kept always equals the input totals, and under
  // cascade=true every kept item/user satisfies its threshold against
  // the kept set (the fixpoint condition).
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    ProfileGenConfig gen;
    gen.num_users = 60;
    gen.num_items = 120;  // sparse: plenty of rare items
    gen.min_items = 1;
    gen.max_items = 6;
    const auto profiles = uniform_profiles(gen, rng);
    std::set<ItemId> distinct;
    for (const auto& p : profiles) {
      for (const auto& e : p.entries()) distinct.insert(e.item);
    }
    for (const bool cascade : {false, true}) {
      CompactionConfig config;
      config.min_item_support = 2;
      config.min_profile_size = 2;
      config.cascade = cascade;
      const CompactionResult result = compact_profiles(profiles, config);
      EXPECT_EQ(result.dropped_items + result.kept_items.size(),
                distinct.size());
      EXPECT_EQ(result.dropped_users + result.kept_users.size(),
                profiles.size());
      EXPECT_EQ(result.profiles.size(), result.kept_users.size());
      if (!cascade) continue;
      // Fixpoint: recount support/sizes over the surviving set.
      std::map<ItemId, std::uint32_t> support;
      for (const auto& p : result.profiles) {
        EXPECT_GE(p.size(), config.min_profile_size);
        for (const auto& e : p.entries()) ++support[e.item];
      }
      for (const auto& [item, count] : support) {
        EXPECT_GE(count, config.min_item_support) << "item " << item;
      }
    }
  }
}

// ----------------------------- ResidencyState == LoadUnloadSimulator ----

TEST(ResidencyStateTest, AgreesWithSimulatorOnRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 3);
    const PiGraph pi = PiGraph::from_digraph(
        Digraph(chung_lu_directed(30, 150, 2.3, rng)));
    const Schedule schedule = RandomHeuristic{seed}.schedule(pi);
    const auto expected = LoadUnloadSimulator(2).run(pi, schedule);
    ResidencyState state(2);
    for (PairIndex idx : schedule) state.step(pi.pair(idx));
    // loads == unloads after flush, so ops == 2 * loads.
    EXPECT_EQ(2 * state.loads(), expected.operations()) << "seed=" << seed;
  }
}

TEST(ResidencyStateTest, SnapshotRestoreRoundTrips) {
  PiGraph pi(4);
  pi.add_edge(0, 1);
  pi.add_edge(2, 3);
  pi.finalize();
  ResidencyState state(2);
  state.step(pi.pair(0));
  const auto snap = state.snapshot();
  const auto loads_before = state.loads();
  state.step(pi.pair(1));
  EXPECT_GT(state.loads(), loads_before);
  state.restore(snap);
  EXPECT_EQ(state.loads(), loads_before);
  // Replaying after restore gives the same counts as before.
  state.step(pi.pair(1));
  EXPECT_EQ(state.loads(), 4u);
}

// -------------------------------------------- engine across all measures

class EngineMeasureTest
    : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(EngineMeasureTest, ConvergesUnderEveryMeasure) {
  Rng rng(23);
  ClusteredGenConfig gen;
  gen.base.num_users = 100;
  gen.base.num_items = 300;
  gen.num_clusters = 5;
  EngineConfig config;
  config.k = 5;
  config.num_partitions = 4;
  config.measure = GetParam();
  KnnEngine engine(config, clustered_profiles(gen, rng));
  const RunStats run = engine.run(20, 0.02);
  // Whatever the measure, the pipeline must settle and produce full
  // neighbour lists.
  EXPECT_LT(run.iterations.back().change_rate,
            run.iterations.front().change_rate);
  std::size_t full = 0;
  for (VertexId v = 0; v < 100; ++v) {
    full += engine.graph().neighbors(v).size() == 5u;
  }
  EXPECT_GT(full, 90u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, EngineMeasureTest,
    ::testing::Values(SimilarityMeasure::Cosine, SimilarityMeasure::Jaccard,
                      SimilarityMeasure::Dice, SimilarityMeasure::Overlap,
                      SimilarityMeasure::InverseEuclid,
                      SimilarityMeasure::Pearson,
                      SimilarityMeasure::AdjustedCosine),
    [](const ::testing::TestParamInfo<SimilarityMeasure>& info) {
      std::string name = similarity_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace knnpc
