// Tests for core/shard_driver: the shard-count determinism contract (the
// merged graph is bit-identical to the serial engine's for any S), the
// routed spool exchange, and the merged-output container.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/engine.h"
#include "core/shard_driver.h"
#include "graph/knn_graph_io.h"
#include "profiles/generators.h"
#include "staticgraph/sharded_graph.h"
#include "storage/block_file.h"
#include "storage/shard_writer.h"
#include "util/rng.h"

namespace knnpc {
namespace {

std::vector<SparseProfile> clustered(VertexId n, std::uint32_t clusters,
                                     std::uint64_t seed = 7) {
  Rng rng(seed);
  ClusteredGenConfig config;
  config.base.num_users = n;
  config.base.num_items = 400;
  config.base.min_items = 15;
  config.base.max_items = 25;
  config.num_clusters = clusters;
  config.in_cluster_prob = 0.9;
  return clustered_profiles(config, rng);
}

EngineConfig base_config() {
  EngineConfig config;
  config.k = 5;
  config.num_partitions = 4;
  config.seed = 99;
  return config;
}

/// Runs the serial engine for `iters` iterations and returns per-iteration
/// (checksum, stats).
struct SerialRun {
  std::vector<std::uint64_t> checksums;
  std::vector<IterationStats> stats;
};

SerialRun run_serial(const EngineConfig& config, VertexId n,
                     std::uint32_t clusters, std::uint32_t iters,
                     std::uint64_t profile_seed = 21) {
  SerialRun out;
  KnnEngine engine(config, clustered(n, clusters, profile_seed));
  for (std::uint32_t i = 0; i < iters; ++i) {
    out.stats.push_back(engine.run_iteration());
    out.checksums.push_back(knn_graph_checksum(engine.graph()));
  }
  return out;
}

// ------------------------------------------------ determinism contract --

class ShardCountTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShardCountTest, GraphBitIdenticalToSerialAcrossIterations) {
  const EngineConfig config = base_config();
  const SerialRun serial = run_serial(config, 80, 4, 2);

  ShardConfig shard_config;
  shard_config.shards = GetParam();
  ShardedKnnEngine sharded(config, shard_config, clustered(80, 4, 21));
  EXPECT_EQ(sharded.num_shards(), GetParam());
  for (std::uint32_t i = 0; i < 2; ++i) {
    const ShardedIterationStats stats = sharded.run_iteration();
    EXPECT_EQ(knn_graph_checksum(sharded.graph()), serial.checksums[i])
        << "S=" << GetParam() << " iteration " << i;
    // The summed counters that are shard-count invariants.
    EXPECT_EQ(stats.merged.candidate_tuples,
              serial.stats[i].candidate_tuples);
    EXPECT_EQ(stats.merged.unique_tuples, serial.stats[i].unique_tuples);
    EXPECT_DOUBLE_EQ(stats.merged.change_rate, serial.stats[i].change_rate);
  }
}

TEST_P(ShardCountTest, SpillScoresPathBitIdentical) {
  EngineConfig config = base_config();
  config.spill_scores = true;
  const SerialRun serial = run_serial(config, 80, 4, 2);

  ShardConfig shard_config;
  shard_config.shards = GetParam();
  ShardedKnnEngine sharded(config, shard_config, clustered(80, 4, 21));
  for (std::uint32_t i = 0; i < 2; ++i) {
    sharded.run_iteration();
    EXPECT_EQ(knn_graph_checksum(sharded.graph()), serial.checksums[i])
        << "S=" << GetParam() << " iteration " << i;
  }
}

TEST_P(ShardCountTest, SamplingAndReverseCandidatesBitIdentical) {
  EngineConfig config = base_config();
  config.sample_rate = 0.5;
  config.include_reverse = true;
  const SerialRun serial = run_serial(config, 90, 5, 2);

  ShardConfig shard_config;
  shard_config.shards = GetParam();
  ShardedKnnEngine sharded(config, shard_config, clustered(90, 5, 21));
  for (std::uint32_t i = 0; i < 2; ++i) {
    const ShardedIterationStats stats = sharded.run_iteration();
    EXPECT_EQ(knn_graph_checksum(sharded.graph()), serial.checksums[i])
        << "S=" << GetParam() << " iteration " << i;
    EXPECT_EQ(stats.merged.candidate_tuples,
              serial.stats[i].candidate_tuples);
    EXPECT_EQ(stats.merged.unique_tuples, serial.stats[i].unique_tuples);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardCountTest,
                         ::testing::Values(1u, 2u, 3u, 5u));

TEST(ShardDriverTest, ShardSplitStrategyDoesNotChangeOutput) {
  const EngineConfig config = base_config();
  const SerialRun serial = run_serial(config, 80, 4, 1);

  for (const char* strategy : {"range", "hash", "pair-affinity"}) {
    ShardConfig shard_config;
    shard_config.shards = 3;
    shard_config.shard_partitioner = strategy;
    ShardedKnnEngine sharded(config, shard_config, clustered(80, 4, 21));
    sharded.run_iteration();
    EXPECT_EQ(knn_graph_checksum(sharded.graph()), serial.checksums[0])
        << strategy;
  }
}

TEST(ShardDriverTest, ProfileUpdatesMatchSerialAcrossShards) {
  const EngineConfig config = base_config();
  auto queue_updates = [](UpdateQueue& queue) {
    for (VertexId v = 0; v < 10; ++v) {
      ProfileUpdate update;
      update.kind = ProfileUpdate::Kind::SetItem;
      update.user = v;
      update.item = 3;
      update.value = 4.5f;
      queue.push(update);
    }
  };

  KnnEngine serial(config, clustered(80, 4, 21));
  serial.run_iteration();
  queue_updates(serial.update_queue());
  serial.run_iteration();
  serial.run_iteration();

  ShardConfig shard_config;
  shard_config.shards = 3;
  ShardedKnnEngine sharded(config, shard_config, clustered(80, 4, 21));
  sharded.run_iteration();
  queue_updates(sharded.update_queue());
  const auto with_updates = sharded.run_iteration();
  EXPECT_EQ(with_updates.merged.profile_updates_applied, 10u);
  sharded.run_iteration();

  EXPECT_EQ(knn_graph_checksum(sharded.graph()),
            knn_graph_checksum(serial.graph()));
}

TEST(ShardDriverTest, SetInitialGraphIsRespected) {
  const EngineConfig config = base_config();
  Rng rng(5);
  const KnnGraph start = random_knn_graph(80, config.k, rng);

  KnnEngine serial(config, clustered(80, 4, 21));
  serial.set_initial_graph(start);
  serial.run_iteration();

  ShardConfig shard_config;
  shard_config.shards = 2;
  ShardedKnnEngine sharded(config, shard_config, clustered(80, 4, 21));
  sharded.set_initial_graph(start);
  sharded.run_iteration();

  EXPECT_EQ(knn_graph_checksum(sharded.graph()),
            knn_graph_checksum(serial.graph()));
}

// ------------------------------------------------------- worker stats --

TEST(ShardDriverTest, WorkerStatsPartitionTheWork) {
  const EngineConfig config = base_config();
  ShardConfig shard_config;
  shard_config.shards = 3;
  ShardedKnnEngine sharded(config, shard_config, clustered(80, 4, 21));
  const ShardedIterationStats stats = sharded.run_iteration();

  ASSERT_EQ(stats.workers.size(), 3u);
  VertexId users = 0;
  std::uint64_t unique = 0;
  for (const ShardWorkerStats& w : stats.workers) {
    users += w.users;
    unique += w.stats.unique_tuples;
    EXPECT_EQ(w.stats.threads_used, sharded.threads_per_shard());
    EXPECT_GT(w.spooled_tuples, 0u);
    EXPECT_GE(w.spooled_tuples, w.stats.unique_tuples);
  }
  EXPECT_EQ(users, 80u);
  EXPECT_EQ(unique, stats.merged.unique_tuples);
  EXPECT_EQ(stats.merged.threads_used,
            3u * sharded.threads_per_shard());
}

TEST(ShardDriverTest, RunConvergesLikeSerial) {
  const EngineConfig config = base_config();
  ShardConfig shard_config;
  shard_config.shards = 2;
  ShardedKnnEngine sharded(config, shard_config, clustered(80, 4, 21));
  const RunStats run = sharded.run(10, 0.01);
  EXPECT_FALSE(run.iterations.empty());
  EXPECT_TRUE(run.converged);
}

TEST(ShardDriverTest, InvalidConfigsThrow) {
  EngineConfig config = base_config();
  config.num_partitions = 0;
  EXPECT_THROW(ShardedKnnEngine(config, ShardConfig{}, clustered(20, 2)),
               std::invalid_argument);
  config = base_config();
  config.memory_slots = 1;
  EXPECT_THROW(ShardedKnnEngine(config, ShardConfig{}, clustered(20, 2)),
               std::invalid_argument);
}

// ------------------------------------------------- resolve_shard_count --

TEST(ResolveShardCountTest, ExplicitTakenVerbatimClampedToUsers) {
  EXPECT_EQ(resolve_shard_count(4, 1000, 10), 4u);
  EXPECT_EQ(resolve_shard_count(16, 8, 10), 8u);  // never more than users
  EXPECT_EQ(resolve_shard_count(3, 0, 10), 1u);
}

TEST(ResolveShardCountTest, AutoStaysSerialForSmallRuns) {
  EXPECT_EQ(resolve_shard_count(0, 100, 10), 1u);
}

TEST(ResolveShardCountTest, AutoIsBoundedByCap) {
  EXPECT_LE(resolve_shard_count(0, 10'000'000, 10), kMaxAutoShards);
  EXPECT_GE(resolve_shard_count(0, 10'000'000, 10), 1u);
}

// ----------------------------------------------------- ShardedKnnGraph --

PartitionAssignment round_robin(VertexId n, PartitionId shards) {
  std::vector<PartitionId> owner(n);
  for (VertexId v = 0; v < n; ++v) owner[v] = v % shards;
  return PartitionAssignment(std::move(owner), shards);
}

TEST(ShardedKnnGraphTest, MergePicksEachUsersOwnerShard) {
  const VertexId n = 6;
  ShardedKnnGraph output(round_robin(n, 2), 2);
  KnnGraph even(n, 2);
  KnnGraph odd(n, 2);
  for (VertexId v = 0; v < n; ++v) {
    // Owner shard writes the real list; the other shard leaves v empty.
    auto& target = (v % 2 == 0) ? even : odd;
    target.set_neighbors(v, {{(v + 1) % n, 0.5f}});
  }
  output.set_shard(0, std::move(even));
  output.set_shard(1, std::move(odd));
  const KnnGraph merged = output.merge();
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(merged.neighbors(v).size(), 1u) << v;
    EXPECT_EQ(merged.neighbors(v)[0].id, (v + 1) % n);
  }
}

TEST(ShardedKnnGraphTest, MergeThrowsWhenOwnerShardMissing) {
  ShardedKnnGraph output(round_robin(4, 2), 2);
  output.set_shard(0, KnnGraph(4, 2));
  EXPECT_THROW((void)output.merge(), std::logic_error);
}

TEST(ShardedKnnGraphTest, VertexCountMismatchThrows) {
  ShardedKnnGraph output(round_robin(4, 2), 2);
  EXPECT_THROW(output.set_shard(0, KnnGraph(5, 2)), std::invalid_argument);
}

// --------------------------------------------------- RoutedShardWriter --

TEST(RoutedShardWriterTest, ConsumerStreamConcatenatesProducersInOrder) {
  ScratchDir scratch("routed_spool");
  RoutedShardWriter<Tuple> spool(scratch.path(), "t", /*producers=*/2,
                                 /*consumers=*/3, /*budget=*/1 << 10);
  spool.producer(0).add(1, Tuple{10, 11});
  spool.producer(1).add(1, Tuple{20, 21});
  spool.producer(0).add(1, Tuple{12, 13});
  spool.producer(0).add(2, Tuple{30, 31});
  spool.finish();

  EXPECT_EQ(spool.consumer_records(0), 0u);
  EXPECT_EQ(spool.consumer_records(1), 3u);
  EXPECT_EQ(spool.consumer_records(2), 1u);

  const std::vector<Tuple> c1 = spool.read_consumer(1);
  ASSERT_EQ(c1.size(), 3u);
  // Producer 0's records first (in its add order), then producer 1's.
  EXPECT_EQ(c1[0], (Tuple{10, 11}));
  EXPECT_EQ(c1[1], (Tuple{12, 13}));
  EXPECT_EQ(c1[2], (Tuple{20, 21}));
  EXPECT_TRUE(spool.read_consumer(0).empty());
}

TEST(RoutedShardWriterTest, TinyBudgetStillDeliversEverything) {
  ScratchDir scratch("routed_spool_tiny");
  // Budget below one record per producer: every add flushes.
  RoutedShardWriter<Tuple> spool(scratch.path(), "t", 3, 2, 1);
  std::uint64_t expected = 0;
  for (std::uint32_t p = 0; p < 3; ++p) {
    for (std::uint32_t i = 0; i < 50; ++i) {
      spool.producer(p).add(i % 2, Tuple{p * 100 + i, i});
      ++expected;
    }
  }
  spool.finish();
  EXPECT_EQ(spool.consumer_records(0) + spool.consumer_records(1), expected);
  EXPECT_EQ(spool.read_consumer(0).size(), spool.consumer_records(0));
  EXPECT_EQ(spool.read_consumer(1).size(), spool.consumer_records(1));
}

// ------------------------------------------------------------ checksum --

TEST(KnnGraphChecksumTest, EqualGraphsEqualChecksumsAndDifferingDiffer) {
  Rng rng_a(3);
  Rng rng_b(3);
  const KnnGraph a = random_knn_graph(50, 4, rng_a);
  const KnnGraph b = random_knn_graph(50, 4, rng_b);
  EXPECT_EQ(knn_graph_checksum(a), knn_graph_checksum(b));

  KnnGraph c = b;
  c.set_neighbors(0, {{7, 0.25f}});
  EXPECT_NE(knn_graph_checksum(a), knn_graph_checksum(c));
}

}  // namespace
}  // namespace knnpc
