// Protocol-conformance suite for util/ipc_channel — the framing layer
// under the persistent-worker command protocol. The contract under test:
// every malformed input (truncated frame, oversized length prefix, bad
// magic, EOF mid-frame, arbitrary garbage) produces a *typed* IpcError,
// and no input — malformed or enormous — can make recv() hang, over-read,
// or allocate from an untrusted length. Run under ASan/UBSan in CI.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "profiles/profile.h"
#include "profiles/profile_delta.h"
#include "profiles/profile_store.h"
#include "util/ipc_channel.h"
#include "util/rng.h"

namespace knnpc {
namespace {

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

/// A raw pipe whose read end is owned by an IpcChannel and whose write
/// end stays raw, so tests can feed the decoder arbitrary bytes.
struct RawFeed {
  IpcChannel channel;
  int write_fd = -1;

  explicit RawFeed(std::uint32_t max_frame_bytes =
                       IpcChannel::kDefaultMaxFrameBytes) {
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0) {
      ADD_FAILURE() << "pipe2 failed";
      return;
    }
    channel = IpcChannel(fds[0], -1, max_frame_bytes);
    write_fd = fds[1];
  }
  ~RawFeed() { close_write(); }

  void feed(const void* data, std::size_t size) {
    ASSERT_EQ(::write(write_fd, data, size),
              static_cast<ssize_t>(size));
  }
  void close_write() {
    if (write_fd >= 0) {
      ::close(write_fd);
      write_fd = -1;
    }
  }
};

/// Both ends of a connected channel inside one process.
struct Loopback {
  IpcChannel a;  // "parent" end
  IpcChannel b;  // "child" end

  explicit Loopback(std::uint32_t max_frame_bytes =
                        IpcChannel::kDefaultMaxFrameBytes) {
    IpcChannelPair pair = make_ipc_channel_pair(max_frame_bytes);
    a = std::move(pair.parent);
    b = IpcChannel(pair.child_read_fd, pair.child_write_fd,
                   max_frame_bytes);
  }
};

IpcErrorKind recv_error_kind(IpcChannel& channel, double timeout_s = 2.0) {
  try {
    (void)channel.recv(timeout_s);
  } catch (const IpcError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "recv unexpectedly produced a frame";
  return IpcErrorKind::SysError;
}

// The wire header recv() expects (kept in sync with ipc_channel.cpp by
// the round-trip tests, not by sharing code — this suite is the second
// implementation that keeps the first honest).
struct WireHeader {
  std::uint32_t magic = 0x4350494bu;  // "KIPC"
  std::uint32_t type = 0;
  std::uint32_t length = 0;
};

// ----------------------------------------------------------- round trips --

TEST(IpcChannelTest, RoundTripsFramesBothDirections) {
  Loopback loop;
  loop.a.send(7, bytes_of("hello"));
  loop.a.send(8, bytes_of(""));
  const IpcFrame first = loop.b.recv(2.0);
  EXPECT_EQ(first.type, 7u);
  EXPECT_EQ(first.payload, bytes_of("hello"));
  const IpcFrame second = loop.b.recv(2.0);
  EXPECT_EQ(second.type, 8u);
  EXPECT_TRUE(second.payload.empty());

  loop.b.send(9, bytes_of("reply"));
  const IpcFrame third = loop.a.recv(2.0);
  EXPECT_EQ(third.type, 9u);
  EXPECT_EQ(third.payload, bytes_of("reply"));
}

TEST(IpcChannelTest, LargePayloadCrossesPipeBufferBoundaries) {
  // A payload far beyond the 64 KiB default pipe capacity forces both
  // sides through their short-read/short-write loops: the sender blocks
  // until the receiver drains, so the transfer interleaves many partial
  // syscalls on each side.
  Loopback loop;
  std::vector<std::byte> big(3u << 20);
  Rng rng(7);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(rng.next() & 0xff);
  }
  std::thread sender([&] { loop.a.send(42, big); });
  const IpcFrame frame = loop.b.recv(30.0);
  sender.join();
  EXPECT_EQ(frame.type, 42u);
  EXPECT_EQ(frame.payload, big);
}

TEST(IpcChannelTest, BufferedFrameIsDrainedEvenAtAnExpiredDeadline) {
  // A reply that arrived in time must not be reported as a timeout just
  // because the caller shows up at (or past) its deadline.
  Loopback loop;
  loop.a.send(5, bytes_of("already here"));
  const IpcFrame frame = loop.b.recv(0.0);
  EXPECT_EQ(frame.type, 5u);
  EXPECT_EQ(frame.payload, bytes_of("already here"));
}

// --------------------------------------------------------- typed failures --

TEST(IpcChannelTest, CleanEofBetweenFramesIsTypedEof) {
  RawFeed feed;
  feed.close_write();
  EXPECT_EQ(recv_error_kind(feed.channel), IpcErrorKind::Eof);
}

TEST(IpcChannelTest, EofMidHeaderIsTruncatedFrame) {
  RawFeed feed;
  const char partial[5] = {'K', 'I', 'P', 'C', 1};
  feed.feed(partial, sizeof(partial));
  feed.close_write();
  EXPECT_EQ(recv_error_kind(feed.channel), IpcErrorKind::TruncatedFrame);
}

TEST(IpcChannelTest, EofMidPayloadIsTruncatedFrame) {
  RawFeed feed;
  WireHeader header;
  header.type = 3;
  header.length = 100;
  feed.feed(&header, sizeof(header));
  feed.feed("only ten b", 10);
  feed.close_write();
  EXPECT_EQ(recv_error_kind(feed.channel), IpcErrorKind::TruncatedFrame);
}

TEST(IpcChannelTest, WrongMagicIsBadMagic) {
  RawFeed feed;
  WireHeader header;
  header.magic = 0xdeadbeefu;
  feed.feed(&header, sizeof(header));
  feed.close_write();
  EXPECT_EQ(recv_error_kind(feed.channel), IpcErrorKind::BadMagic);
}

TEST(IpcChannelTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  // The bound must trip on the 4-byte prefix alone — no payload bytes
  // exist, so surviving this test means recv() never tried to read (or
  // allocate) the claimed 3 GiB.
  RawFeed feed(/*max_frame_bytes=*/1024);
  WireHeader header;
  header.length = 3u << 30;
  feed.feed(&header, sizeof(header));
  EXPECT_EQ(recv_error_kind(feed.channel), IpcErrorKind::OversizedFrame);
}

TEST(IpcChannelTest, SendRefusesPayloadsOverTheBound) {
  Loopback loop(/*max_frame_bytes=*/64);
  try {
    loop.a.send(1, std::vector<std::byte>(65));
    FAIL() << "expected OversizedFrame";
  } catch (const IpcError& e) {
    EXPECT_EQ(e.kind(), IpcErrorKind::OversizedFrame);
  }
}

TEST(IpcChannelTest, SilentPeerIsTimeoutNotHang) {
  Loopback loop;
  EXPECT_EQ(recv_error_kind(loop.a, /*timeout_s=*/0.05),
            IpcErrorKind::Timeout);
}

TEST(IpcChannelTest, StalledMidFrameIsTimeoutNotHang) {
  // Header promises 64 bytes, 4 arrive, then silence: the deadline must
  // fire even though the stream is mid-frame and the fd stays open.
  RawFeed feed;
  WireHeader header;
  header.length = 64;
  feed.feed(&header, sizeof(header));
  feed.feed("1234", 4);
  EXPECT_EQ(recv_error_kind(feed.channel, 0.05), IpcErrorKind::Timeout);
}

TEST(IpcChannelTest, SendToDeadPeerIsSysErrorNotSigpipe) {
  Loopback loop;
  loop.b = IpcChannel();  // destroys the peer's fds
  try {
    loop.a.send(1, bytes_of("anyone there?"));
    FAIL() << "expected SysError (EPIPE)";
  } catch (const IpcError& e) {
    EXPECT_EQ(e.kind(), IpcErrorKind::SysError);
  }
  // Reaching this line at all proves SIGPIPE did not kill the process.
}

// ------------------------------------------------------------- fuzz loop --

TEST(IpcChannelTest, DeterministicGarbageNeverHangsOrEscapesTyped) {
  // 200 deterministic garbage streams. The first byte is forced away
  // from 'K' so no stream can accidentally be a valid frame: every
  // single one must surface as a typed IpcError within its deadline.
  Rng rng(0xf00d);
  for (int round = 0; round < 200; ++round) {
    RawFeed feed(/*max_frame_bytes=*/4096);
    const std::size_t size = 1 + rng.next_below(96);
    std::vector<unsigned char> garbage(size);
    for (auto& b : garbage) b = static_cast<unsigned char>(rng.next());
    garbage[0] |= 0x80;  // never 'K'
    feed.feed(garbage.data(), garbage.size());
    if (rng.next_bool(0.5)) feed.close_write();
    try {
      (void)feed.channel.recv(0.2);
      FAIL() << "garbage round " << round << " parsed as a frame";
    } catch (const IpcError&) {
      // Typed, bounded — exactly the contract.
    }
  }
}

TEST(IpcChannelTest, FuzzedHeadersAfterValidMagicStayTyped) {
  // Valid magic, then random type/length and a random tail. Outcomes may
  // legitimately differ (Oversized, Truncated, Timeout, or — when the
  // random length happens to match the tail — a parsed frame), but every
  // round must finish, bounded, without UB.
  Rng rng(0xbeef);
  for (int round = 0; round < 200; ++round) {
    RawFeed feed(/*max_frame_bytes=*/512);
    WireHeader header;
    header.type = static_cast<std::uint32_t>(rng.next());
    header.length = static_cast<std::uint32_t>(rng.next_below(2048));
    feed.feed(&header, sizeof(header));
    const std::size_t tail = rng.next_below(256);
    std::vector<unsigned char> garbage(tail);
    for (auto& b : garbage) b = static_cast<unsigned char>(rng.next());
    if (!garbage.empty()) feed.feed(garbage.data(), garbage.size());
    const bool eof = rng.next_bool(0.5);
    if (eof) feed.close_write();
    try {
      const IpcFrame frame = feed.channel.recv(0.2);
      EXPECT_EQ(frame.type, header.type);
      EXPECT_EQ(frame.payload.size(), header.length);
    } catch (const IpcError& e) {
      if (header.length > 512) {
        EXPECT_EQ(e.kind(), IpcErrorKind::OversizedFrame);
      } else if (eof) {
        EXPECT_EQ(e.kind(), IpcErrorKind::TruncatedFrame);
      } else {
        EXPECT_EQ(e.kind(), IpcErrorKind::Timeout);
      }
    }
  }
}

TEST(IpcChannelTest, KprdPayloadsSurviveFramingAndCorruptionStaysTyped) {
  // A RUN_ITERATION command's heaviest cargo is a "KPRD" profile delta.
  // The framing layer must carry it byte-exact, and a payload corrupted
  // in flight must surface as a typed error from the KPRD parser (the
  // frame header itself has no payload checksum — the delta formats
  // carry their own).
  Rng rng(0x9a7d);
  std::vector<SparseProfile> profiles(40);
  for (auto& p : profiles) {
    const auto items = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < items; ++i) {
      p.set(static_cast<ItemId>(rng.next_below(64)),
            0.5f + static_cast<float>(rng.next_double()));
    }
  }
  const InMemoryProfileStore store(std::move(profiles));
  const std::vector<std::byte> wire =
      profile_delta_to_bytes(full_profile_delta(store));

  Loopback loop;
  loop.a.send(4, wire);
  const IpcFrame frame = loop.b.recv(2.0);
  EXPECT_EQ(frame.type, 4u);
  ASSERT_EQ(frame.payload, wire);
  const ProfileDelta decoded = profile_delta_from_bytes(frame.payload);
  EXPECT_EQ(decoded.rows.size(), 40u);
  EXPECT_EQ(profile_delta_to_bytes(decoded), wire);

  // 50 deterministic single-byte corruptions of the framed payload: the
  // frame still parses (framing is length-based), but the KPRD layer
  // must reject every one — never a silently wrong profile set.
  for (int round = 0; round < 50; ++round) {
    std::vector<std::byte> corrupt = wire;
    corrupt[rng.next_below(corrupt.size())] ^=
        static_cast<std::byte>(1 + rng.next_below(255));
    if (corrupt == wire) continue;  // xor happened to cancel? impossible,
                                    // but keep the loop honest
    loop.a.send(4, corrupt);
    const IpcFrame bad = loop.b.recv(2.0);
    ASSERT_EQ(bad.payload.size(), corrupt.size());
    EXPECT_THROW((void)profile_delta_from_bytes(bad.payload),
                 std::runtime_error)
        << "corruption round " << round << " parsed";
  }
}

// --------------------------------------------------------------- plumbing --

TEST(IpcChannelTest, HalfOpenDirectionsFailTyped) {
  RawFeed feed;  // read-only channel
  try {
    feed.channel.send(1, {});
    FAIL() << "expected SysError";
  } catch (const IpcError& e) {
    EXPECT_EQ(e.kind(), IpcErrorKind::SysError);
  }
  IpcChannel write_only(-1, ::dup(STDERR_FILENO));
  try {
    (void)write_only.recv(0.01);
    FAIL() << "expected SysError";
  } catch (const IpcError& e) {
    EXPECT_EQ(e.kind(), IpcErrorKind::SysError);
  }
}

TEST(IpcChannelTest, ErrorKindNamesAreStable) {
  EXPECT_STREQ(ipc_error_kind_name(IpcErrorKind::Eof), "eof");
  EXPECT_STREQ(ipc_error_kind_name(IpcErrorKind::TruncatedFrame),
               "truncated-frame");
  EXPECT_STREQ(ipc_error_kind_name(IpcErrorKind::OversizedFrame),
               "oversized-frame");
  const IpcError error(IpcErrorKind::Timeout, "worker 3");
  EXPECT_NE(std::string(error.what()).find("timeout"), std::string::npos);
}

}  // namespace
}  // namespace knnpc
